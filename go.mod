module irfusion

go 1.22
