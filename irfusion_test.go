package irfusion

// Integration tests of the public facade: the full pipeline from
// design generation through training to fused analysis, exercised the
// way a downstream user would.

import (
	"bytes"
	"testing"

	"irfusion/internal/metrics"
)

func facadeConfig() Config {
	cfg := DefaultConfig(32)
	cfg.Base, cfg.Depth, cfg.Epochs = 4, 2, 4
	cfg.LearningRate = 5e-3
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := facadeConfig()

	// Generate data through the facade.
	cfg.Epochs = 8
	train, err := GenerateTrainingSet(4, 2, 32, 5, cfg.DatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyzer == nil || res.NumParams == 0 {
		t.Fatal("training result incomplete")
	}

	// Analyze a fresh design end to end.
	design, err := GenerateDesign(DesignConfig("facade", Real, 32, 32, 123))
	if err != nil {
		t.Fatal(err)
	}
	pred, runtime, err := res.Analyzer.Analyze(design)
	if err != nil {
		t.Fatal(err)
	}
	if pred.H != 32 || pred.W != 32 || runtime <= 0 {
		t.Fatalf("bad analysis output: %dx%d in %v", pred.H, pred.W, runtime)
	}

	// Compare against the golden numerical solution.
	na := &NumericalAnalyzer{Resolution: 32}
	golden, _, residual, err := na.Analyze(design)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Fatalf("golden residual %v", residual)
	}
	rep := Evaluate(pred, golden)
	// Robust sanity bounds for a minutes-scale CI model on an
	// out-of-distribution design: errors well below the worst-case
	// drop, and a clearly positive spatial correlation.
	if rep.MAE <= 0 || rep.MAE >= 0.2*golden.Max() {
		t.Errorf("fusion prediction implausible: MAE %v vs golden max %v", rep.MAE, golden.Max())
	}
	if rep.CC < 0.3 {
		t.Errorf("fusion prediction uncorrelated with golden: CC %v", rep.CC)
	}
}

func TestFacadeCheckpointing(t *testing.T) {
	cfg := facadeConfig()
	cfg.Epochs = 2
	train, err := GenerateTrainingSet(2, 1, 32, 9, cfg.DatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Analyzer.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sample := train[0]
	a := res.Analyzer.Predict(sample)
	b := restored.Predict(sample)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored analyzer predicts differently")
		}
	}
}

func TestFacadeModelZoo(t *testing.T) {
	names := ModelNames()
	if len(names) != 7 {
		t.Fatalf("expected the 7 paper models, got %v", names)
	}
	cfg := facadeConfig()
	cfg.Epochs = 1
	cfg.ModelName = "maunet"
	cfg.UseNumerical = false
	cfg.Hierarchical = false
	train, err := GenerateTrainingSet(2, 0, 32, 3, cfg.DatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Average(res.Analyzer.Evaluate(train))
	if rep.MAE < 0 || rep.F1 < 0 {
		t.Error("baseline evaluation failed")
	}
}

func TestFacadeBuildSample(t *testing.T) {
	design, err := GenerateDesign(DesignConfig("bs", Fake, 32, 32, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := facadeConfig()
	s, err := BuildSample(design, cfg.DatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Golden.Max() <= 0 || s.Features.Channels() == 0 {
		t.Error("sample incomplete")
	}
	if s.Class != Fake {
		t.Error("class lost")
	}
}

func TestFacadeDualRailAndTransient(t *testing.T) {
	design, err := GenerateDesign(DesignConfig("ext", Fake, 32, 32, 17))
	if err != nil {
		t.Fatal(err)
	}
	systems, skipped, err := AnalyzeNets(design.DualRail())
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 || len(skipped) != 0 {
		t.Fatalf("systems=%d skipped=%v", len(systems), skipped)
	}
	tr, err := NewTransient(systems[1], 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(systems[1].I); err != nil {
		t.Fatal(err)
	}
	if tr.Time() != 1e-12 {
		t.Errorf("time = %v", tr.Time())
	}
}
