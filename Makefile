# Single source of truth for the commands CI runs, so local dev and
# .github/workflows/ci.yml can never drift.

GO ?= go

# The race job forces the worker pool wide open (4 workers, threshold
# 1) so every parallel kernel path is exercised even on small CI
# machines and miniature test grids.
RACE_ENV = IRFUSION_WORKERS=4 IRFUSION_PAR_THRESHOLD=1

.PHONY: all fmt fmt-check vet build test race bench bench-smoke manifest-smoke

all: fmt-check vet build test

fmt: ## rewrite sources with gofmt
	gofmt -w .

fmt-check: ## fail when any file is not gofmt-clean
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(RACE_ENV) $(GO) test -race ./...

bench: ## full benchmark sweep
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke: ## compile-and-run guard for the hot kernel benchmarks
	$(GO) test -bench='BenchmarkSolverSpMV|BenchmarkParallelSpMV' -benchtime=1x -run='^$$' .

MANIFEST_OUT ?= /tmp/irfusion-manifest.json

manifest-smoke: ## end-to-end analyze run; fails when the run manifest is missing required signals
	$(GO) run ./cmd/irfusion analyze -size 48 -seed 3 -manifest $(MANIFEST_OUT)
	$(GO) run ./cmd/manifestcheck $(MANIFEST_OUT)
