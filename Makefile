# Single source of truth for the commands CI runs, so local dev and
# .github/workflows/ci.yml can never drift.

GO ?= go

# The race job forces the worker pool wide open (4 workers, threshold
# 1) so every parallel kernel path is exercised even on small CI
# machines and miniature test grids.
RACE_ENV = IRFUSION_WORKERS=4 IRFUSION_PAR_THRESHOLD=1

.PHONY: all fmt fmt-check vet lint lint-rebaseline build test race bench bench-smoke bench-check bench-rebaseline manifest-smoke fuzz-smoke chaos-smoke cluster-smoke mp-oracle restart-smoke docs-check cover-check

all: fmt-check vet lint build test

# The project's own static-analysis pass (internal/lint): hotpath
# no-allocation discipline, context propagation, hook resolution,
# %w wrapping, float equality, goroutine containment, and the four
# CFG-based dataflow rules (locksafe, ctxleak, atomicmix, sitedrift —
# see docs/LINTING.md). Findings not recorded in lint.baseline fail
# the build, a SARIF copy is written for code-scanning upload, and the
# run fails if analysis wall clock exceeds 3x the committed
# lint.budget seconds. Rebaseline only for reviewed, accepted findings
# with `make lint-rebaseline`.
LINT_SARIF ?= /tmp/irfusionlint.sarif

lint:
	$(GO) run ./cmd/irfusionlint -baseline lint.baseline -budget lint.budget -sarif $(LINT_SARIF)

lint-rebaseline: ## rewrite lint.baseline from current findings (review the diff before committing)
	$(GO) run ./cmd/irfusionlint -update-baseline

fmt: ## rewrite sources with gofmt
	gofmt -w .

fmt-check: ## fail when any file is not gofmt-clean
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(RACE_ENV) $(GO) test -race ./...
	$(RACE_ENV) $(GO) test -race -count=2 -run 'TestCacheConcurrent' ./internal/cache/

bench: ## full benchmark sweep
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke: ## compile-and-run guard for the hot kernel benchmarks
	$(GO) test -bench='BenchmarkSolverSpMV|BenchmarkParallelSpMV' -benchtime=1x -run='^$$' .

# Bench-regression gate: runs the pinned benchmark set declared in
# bench.baseline (fixed -benchtime=Nx iteration counts) and fails on a
# regression past the tolerance band. Allocation counts and the
# ECO-loop cold/hit speedup ratio are machine-independent and gate
# strictly; wall-clock ns/op gates by a multiplicative factor —
# BENCH_NS_FACTOR overrides the file's (CI passes a generous one
# because runner hardware varies). Rebaseline only for reviewed,
# accepted performance changes with `make bench-rebaseline`.
BENCH_NS_FACTOR ?= 0

bench-check: ## pinned benchmarks vs the committed bench.baseline
	$(GO) run ./cmd/benchcheck -baseline bench.baseline -ns-factor $(BENCH_NS_FACTOR)

bench-rebaseline: ## rewrite bench.baseline's measurements from this machine
	$(GO) run ./cmd/benchcheck -baseline bench.baseline -update

MANIFEST_OUT ?= /tmp/irfusion-manifest.json

manifest-smoke: ## end-to-end analyze run; fails when the run manifest is missing required signals
	$(GO) run ./cmd/irfusion analyze -size 48 -seed 3 -manifest $(MANIFEST_OUT)
	$(GO) run ./cmd/manifestcheck $(MANIFEST_OUT)

# The chaos profile kills every AMG-rung PCG solve with a numerical
# breakdown. The suite must stay green — the degradation ladder absorbs
# the fault by falling to SSOR-PCG — and the analyze run must produce a
# manifest whose degradation trail proves the fault actually bit
# (manifestcheck -degraded).
CHAOS_SPEC ?= solver.pcg:breakdown:label=numerical.amg
CHAOS_MANIFEST ?= /tmp/irfusion-chaos-manifest.json

# The cache chaos profile attacks the artifact-cache layer of a cached
# 4-repeat ECO loop: repeat 2's lookup returns a poisoned (stale)
# golden solution — the residual guard must reject it — repeat 3 loses
# its entry to a simulated eviction race mid-lookup, and every neighbor
# search pays injected delta-check latency. The run must still produce
# correct results on every repeat, and its manifest must prove the
# cache both served (hit/stale events) and re-stored after each fault
# (manifestcheck -cache).
CACHE_CHAOS_SPEC ?= cache.lookup:stale:times=1;cache.lookup:evict:times=1,after=1;cache.delta:latency:delay=5ms
CACHE_CHAOS_MANIFEST ?= /tmp/irfusion-cache-chaos-manifest.json
# The hit-only manifest: one more exact analysis of the same design
# after the repeats, answered entirely from the artifact cache — zero
# solves by construction. Before manifestcheck grew -allow-hit such
# manifests could not be gated at all (the PR 7 gotcha: gate cold runs
# by hand); now the gate proves the hit happened AND that the manifest
# is otherwise well-formed.
CACHE_HIT_MANIFEST ?= /tmp/irfusion-cache-hit-manifest.json

chaos-smoke: ## full test suite + end-to-end analyze under injected mid-ladder and cache-layer failures
	IRFUSION_FAULTS='$(CHAOS_SPEC)' $(GO) test ./...
	$(GO) run ./cmd/irfusion analyze -size 48 -seed 3 -faults '$(CHAOS_SPEC)' -manifest $(CHAOS_MANIFEST)
	$(GO) run ./cmd/manifestcheck -degraded $(CHAOS_MANIFEST)
	$(GO) run ./cmd/irfusion analyze -size 48 -seed 3 -cache -repeat 4 -faults '$(CACHE_CHAOS_SPEC)' -manifest $(CACHE_CHAOS_MANIFEST) -hit-manifest $(CACHE_HIT_MANIFEST)
	$(GO) run ./cmd/manifestcheck -cache $(CACHE_CHAOS_MANIFEST)
	$(GO) run ./cmd/manifestcheck -allow-hit $(CACHE_HIT_MANIFEST)

# Cluster rehearsal: the in-process shard fleet behind the gateway
# (internal/cluster fleet_test.go) — routing determinism, cache-warm
# affinity, ring remap on shard kill, mid-job failover with handoff
# provenance, and graceful drain — all under the race detector with
# the pool forced wide, because every one of those paths is
# goroutine-heavy by construction.
cluster-smoke: ## gateway + 3-shard fleet rehearsal under -race
	$(RACE_ENV) $(GO) test -race -count=1 ./internal/cluster/

# Mixed-precision correctness gate: the Cholesky golden-oracle suite
# (full, mixed, and SELL-forced rows must all land on the direct
# factorization's answer) and the SELL/CSR + float32 equivalence
# property suites, under the race detector with the pool forced wide —
# the format and precision kernels are exactly the code the pool
# parallelizes. Then one end-to-end `analyze -precision mixed` run
# whose manifest must prove the mixed rung actually served
# (manifestcheck -mp).
MP_MANIFEST ?= /tmp/irfusion-mp-manifest.json

mp-oracle: ## golden-oracle + format/precision equivalence suites under -race, then an end-to-end mixed-precision run
	$(RACE_ENV) $(GO) test -race -count=1 -run 'TestPCGMatchesCholeskyOracle|TestGoldenSolutionFile' ./internal/solver
	$(RACE_ENV) $(GO) test -race -count=1 -run 'TestSELL|TestCSR32|TestSelectFormat' ./internal/sparse
	$(RACE_ENV) $(GO) test -race -count=1 -run 'TestMixedPrecision' ./internal/core
	$(RACE_ENV) $(GO) test -race -count=1 -run 'TestWarmStartAcrossPrecisions' ./internal/cache
	$(GO) run ./cmd/irfusion analyze -size 48 -seed 3 -precision mixed -manifest $(MP_MANIFEST)
	$(GO) run ./cmd/manifestcheck -mp $(MP_MANIFEST)

# Crash-durability rehearsal: cmd/restartsmoke drives both recovery
# paths end to end against in-process servers — a mid-solve injected
# panic that the worker must requeue once and finish from its
# checkpoint, and a hard Crash() (the on-disk image of kill -9) that
# the next incarnation must recover by replaying the write-ahead
# journal. Both resulting manifests must prove a real mid-solve resume
# (manifestcheck -resume: resume section, outcome "resumed", positive
# iteration) — a run that silently re-solved from scratch fails the
# gate.
REQUEUE_MANIFEST ?= /tmp/irfusion-requeue-manifest.json
RESTART_MANIFEST ?= /tmp/irfusion-restart-manifest.json

restart-smoke: ## crash/requeue recovery rehearsal gated by manifestcheck -resume
	$(GO) run ./cmd/restartsmoke -manifest $(REQUEUE_MANIFEST) -restart-manifest $(RESTART_MANIFEST)
	$(GO) run ./cmd/manifestcheck -resume $(REQUEUE_MANIFEST)
	$(GO) run ./cmd/manifestcheck -resume $(RESTART_MANIFEST)

docs-check: ## fail when any doc link or file:line anchor no longer resolves
	$(GO) run ./cmd/docscheck README.md docs

FUZZTIME ?= 30s

fuzz-smoke: ## short fuzz runs of the SPICE parser and the journal replay path
	$(GO) test -fuzz=FuzzParseSPICE -fuzztime=$(FUZZTIME) -run='^$$' ./internal/spice
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) -run='^$$' ./internal/journal

# Total-statement-coverage floor. Measured at 76.4% when recorded
# (stable across repeat runs); the margin absorbs run-to-run noise
# from timing-dependent serve paths. Raise it when new tests push
# coverage up — never lower it to make a PR pass.
COVERAGE_BASELINE ?= 75.8
COVER_PROFILE ?= /tmp/irfusion-cover.out

cover-check: ## fail when total statement coverage drops below COVERAGE_BASELINE
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total="$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
	echo "total coverage: $$total% (baseline $(COVERAGE_BASELINE)%)"; \
	if ! awk -v t="$$total" -v b="$(COVERAGE_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }'; then \
		echo "coverage $$total% fell below the $(COVERAGE_BASELINE)% baseline"; exit 1; \
	fi
