// Command report renders the CSV artifacts of cmd/experiments into
// markdown tables and (optionally) substitutes them into a document's
// <!-- TAG --> placeholders:
//
//	go run ./cmd/report -in results/full                     # print tables
//	go run ./cmd/report -in results/full -fill EXPERIMENTS.md # rewrite in place
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"irfusion/internal/report"
)

// tagFor maps artifact basenames to EXPERIMENTS.md placeholder tags.
var tagFor = map[string]string{
	"table1.csv": "TABLE1",
	"fig7.csv":   "FIG7",
	"fig8.csv":   "FIG8",
}

func main() {
	log.SetFlags(0)
	in := flag.String("in", "results/full", "directory with experiment CSVs")
	fill := flag.String("fill", "", "markdown file whose <!-- TAG --> placeholders to fill in place")
	flag.Parse()

	tables := map[string]string{}
	entries, err := os.ReadDir(*in)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(*in, e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		md, err := report.CSVToMarkdown(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", e.Name(), err)
		}
		if tag, ok := tagFor[e.Name()]; ok {
			tables[tag] = md
		}
		if *fill == "" {
			fmt.Printf("### %s\n\n%s\n", e.Name(), md)
		}
	}
	if *fill != "" {
		doc, err := os.ReadFile(*fill)
		if err != nil {
			log.Fatal(err)
		}
		out := report.Fill(string(doc), tables)
		if err := os.WriteFile(*fill, []byte(out), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("filled %d tables into %s", len(tables), *fill)
	}
}
