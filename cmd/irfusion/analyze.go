package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"irfusion/internal/cache"
	"irfusion/internal/core"
	"irfusion/internal/grid"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

// cmdAnalyze runs one end-to-end IR-drop analysis with full
// observability: every stage, solve, and kernel dispatch of the run is
// recorded and can be exported as a JSON manifest (-manifest) or
// inspected live (-debug-addr).
//
// Without -spice it generates a synthetic design first, so
// `irfusion analyze -manifest out.json` works standalone. Without
// -model-file it runs the pure numerical analyzer (converged AMG-PCG
// by default, a budgeted rough solve with -iters); with -model-file it
// runs the fused numerical+ML pipeline.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	deck := fs.String("spice", "", "input SPICE file (default: generate a synthetic design)")
	class := fs.String("class", "real", "generated design class: fake|real")
	size := fs.Int("size", 64, "generated die size in um (square)")
	seed := fs.Int64("seed", 1, "generator seed")
	iters := fs.Int("iters", 0, "PCG iteration budget (0 = converge)")
	precond := fs.String("precond", "amg", "preconditioner for budgeted solves: amg|ssor")
	precision := fs.String("precision", "full", "converged-solve arithmetic: full|mixed (float32 V-cycle inside float64 refinement)")
	format := fs.String("format", "auto", "SpMV storage format: auto|csr|sell")
	modelFile := fs.String("model-file", "", "trained checkpoint: run the fused numerical+ML pipeline")
	pgm := fs.String("pgm", "", "write the drop map as PGM")
	resFlag := fs.Int("res", 0, "raster resolution (default: die size or model resolution)")
	useCache := fs.Bool("cache", false, "enable the process artifact cache (sized by IRFUSION_CACHE_BYTES/IRFUSION_CACHE_TTL)")
	repeat := fs.Int("repeat", 1, "run the analysis N times under one manifest — with -cache, later runs hit or warm-start")
	perturb := fs.Float64("perturb", 0, "ECO-style resistor perturbation fraction applied before each repeat after the first")
	hitManifest := fs.String("hit-manifest", "", "with -cache: after the repeats, re-analyze the original design under a fresh recorder and write its manifest here — an exact cache hit, so zero solves; gate it with manifestcheck -allow-hit")
	faultSpec := addFaultsFlag(fs)
	of := addObsFlags(fs)
	fs.Parse(args)
	if err := applyFaults(*faultSpec); err != nil {
		return err
	}
	switch *precision {
	case "full", "mixed":
	default:
		return fmt.Errorf("-precision %q: want full or mixed", *precision)
	}
	switch *format {
	case "auto", "csr", "sell":
	default:
		return fmt.Errorf("-format %q: want auto, csr, or sell", *format)
	}
	if *useCache {
		prev := cache.SetActive(cache.NewFromEnv())
		defer cache.SetActive(prev)
	}

	// Resolve the design: parse a deck or generate one.
	var d *pgen.Design
	if *deck != "" {
		f, err := os.Open(*deck)
		if err != nil {
			return err
		}
		nl, err := spice.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		d = &pgen.Design{Name: *deck, W: *size, H: *size, VDD: padVoltage(nl), Netlist: nl}
	} else {
		c := pgen.Fake
		if *class == "real" {
			c = pgen.Real
		}
		var err error
		d, err = pgen.Generate(pgen.DefaultConfig("analyze", c, *size, *size, *seed))
		if err != nil {
			return err
		}
		log.Printf("generated %s design %q (%dx%d, seed %d)", *class, d.Name, *size, *size, *seed)
	}

	res := *resFlag
	if res == 0 {
		res = *size
	}

	finish := of.start("analyze", map[string]any{
		"spice":      *deck,
		"class":      *class,
		"size":       *size,
		"seed":       *seed,
		"iters":      *iters,
		"precond":    *precond,
		"precision":  *precision,
		"format":     *format,
		"model_file": *modelFile,
		"resolution": res,
		"cache":      *useCache,
		"repeat":     *repeat,
		"perturb":    *perturb,
	})

	// Load the fused pipeline once; it is reused across repeats.
	var analyzer *core.Analyzer
	if *modelFile != "" {
		mf, err := os.Open(*modelFile)
		if err != nil {
			return err
		}
		analyzer, err = core.LoadAnalyzer(mf)
		mf.Close()
		if err != nil {
			return err
		}
		if *resFlag == 0 {
			res = analyzer.Config.Resolution
		}
		analyzer.Config.RoughIters = max(1, *iters)
	}

	runOne := func(dd *pgen.Design) (*grid.Map, error) {
		var (
			m   *grid.Map
			rt  time.Duration
			err error
		)
		if analyzer != nil {
			m, rt, err = analyzer.Analyze(dd)
			if err != nil {
				return nil, err
			}
			log.Printf("fused pipeline: worst-case IR drop %.4g V (%.3fs)", m.Max(), rt.Seconds())
		} else {
			na := &core.NumericalAnalyzer{
				Iters: *iters, Resolution: res, Precond: *precond,
				Precision: *precision, Format: *format,
			}
			var resid float64
			m, rt, resid, err = na.Analyze(dd)
			if err != nil {
				return nil, err
			}
			log.Printf("numerical: worst-case IR drop %.4g V, relative residual %.3g (%.3fs)",
				m.Max(), resid, rt.Seconds())
		}
		return m, nil
	}

	var m *grid.Map
	cur := d
	for r := 0; r < max(1, *repeat); r++ {
		if r > 0 && *perturb > 0 {
			// Each repeat perturbs the ORIGINAL design, modeling a string
			// of independent ECO candidates evaluated against a baseline —
			// every variant stays within -perturb of the cached donor.
			cur = pgen.Perturb(d, *perturb, *seed+int64(r))
			log.Printf("repeat %d: perturbed design %q (frac %g)", r+1, cur.Name, *perturb)
		}
		var err error
		if m, err = runOne(cur); err != nil {
			return err
		}
	}

	if *pgm != "" {
		if err := os.WriteFile(*pgm, []byte(m.PGM()), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s (%dx%d)", *pgm, m.W, m.H)
	}

	// A hit-only manifest: the original design one more time, under an
	// isolated recorder, answered entirely from the artifact cache —
	// zero solves by design, which is exactly what manifestcheck
	// -allow-hit exists to gate.
	if *hitManifest != "" {
		if !*useCache || analyzer != nil {
			return fmt.Errorf("-hit-manifest needs -cache and the numerical pipeline")
		}
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		na := &core.NumericalAnalyzer{
			Iters: *iters, Resolution: res, Precond: *precond,
			Precision: *precision, Format: *format,
		}
		if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
			return fmt.Errorf("hit-manifest run: %w", err)
		}
		hm := rec.Manifest("analyze-hit", map[string]any{"size": *size, "seed": *seed})
		if hm.Cache == nil || hm.Cache.Hits == 0 {
			return fmt.Errorf("hit-manifest run missed the cache (was the first run budgeted?)")
		}
		if err := obs.FileSink(*hitManifest).Write(hm); err != nil {
			return fmt.Errorf("hit manifest: %w", err)
		}
		log.Printf("wrote %s (hit-only manifest)", *hitManifest)
	}
	return finish()
}
