// Command irfusion is the command-line front end of the IR-Fusion
// library:
//
//	irfusion gen      -out design.sp [-class real] [-size 64] [-seed 1] [-config cfg.json]
//	irfusion solve    -spice design.sp [-iters 0] [-tol 1e-10] [-pgm drop.pgm]
//	irfusion analyze  [-spice design.sp] [-iters 0] [-model-file model.bin] [-manifest run.json]
//	irfusion transient -spice design.sp [-h 1e-12] [-steps 100] [-burst 20]
//	irfusion serve    [-addr localhost:8080] [-workers 2] [-queue 16] [-model-file model.bin]
//	irfusion gateway  -shards a=http://h1:8080,b=http://h2:8080 [-addr localhost:8090]
//	irfusion train    -model irfusion [-fake 8 -real 4 -epochs 10] -out model.bin
//	irfusion predict  -spice design.sp -model-file model.bin [-pgm pred.pgm]
//	irfusion models
//
// "solve" is the pure numerical flow (SPICE → MNA → AMG-PCG);
// "analyze" is the instrumented end-to-end run (numerical or fused)
// that can emit a JSON run manifest; "transient" integrates dynamic IR
// drop over C cards; "predict" runs the fused pipeline with a trained
// model.
//
// solve, analyze, train, and predict accept -manifest FILE to write a
// structured run manifest (stage timings, convergence traces, pool
// utilization) and -debug-addr ADDR to serve live expvar counters and
// pprof profiles during the run. analyze and serve additionally accept
// -faults SPEC to install a fault-injection profile (same grammar as
// IRFUSION_FAULTS; see internal/faults) for degradation rehearsals.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"irfusion/internal/amg"
	"irfusion/internal/circuit"
	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/features"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "transient":
		err = cmdTransient(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "models":
		for _, n := range core.ModelNames() {
			fmt.Println(n)
		}
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: irfusion <command> [flags]

commands:
  gen      generate a synthetic power-grid SPICE deck
  solve    numerical IR-drop analysis (AMG-PCG)
  analyze  instrumented end-to-end analysis; -manifest writes a JSON run manifest
  transient dynamic IR-drop analysis (backward Euler over C cards)
  serve    long-lived HTTP analysis service (POST /v1/analyze; see docs/SERVING.md)
  gateway  cluster gateway routing a shard fleet by cache affinity (see docs/CLUSTER.md)
  train    train a fusion model on generated designs
  predict  fused numerical+ML IR-drop prediction
  models   list registered model architectures

solve, analyze, serve, train, and predict also take -manifest FILE and -debug-addr ADDR.
analyze and serve also take -faults SPEC to inject failures and rehearse the
degradation ladder (see docs/RESILIENCE.md).`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "design.sp", "output SPICE file")
	class := fs.String("class", "fake", "design class: fake|real")
	size := fs.Int("size", 64, "die size in um (square)")
	seed := fs.Int64("seed", 1, "generator seed")
	configIn := fs.String("config", "", "JSON generator config (overrides other flags)")
	configOut := fs.String("dump-config", "", "write the effective generator config as JSON")
	fs.Parse(args)

	var cfg pgen.Config
	if *configIn != "" {
		f, err := os.Open(*configIn)
		if err != nil {
			return err
		}
		cfg, err = pgen.ReadConfig(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		c := pgen.Fake
		if *class == "real" {
			c = pgen.Real
		}
		cfg = pgen.DefaultConfig("cli", c, *size, *size, *seed)
	}
	if *configOut != "" {
		f, err := os.Create(*configOut)
		if err != nil {
			return err
		}
		err = pgen.WriteConfig(f, cfg)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("wrote %s", *configOut)
	}
	d, err := pgen.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Netlist.Write(f); err != nil {
		return err
	}
	nr, ni, nv := d.Netlist.Counts()
	log.Printf("wrote %s: %d resistors, %d current loads, %d pads", *out, nr, ni, nv)
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	deck := fs.String("spice", "", "input SPICE file (required)")
	iters := fs.Int("iters", 0, "iteration budget (0 = converge)")
	tol := fs.Float64("tol", 1e-10, "relative residual tolerance")
	pgm := fs.String("pgm", "", "write the bottom-layer drop map as PGM")
	res := fs.Int("res", 0, "raster resolution (default: die size)")
	of := addObsFlags(fs)
	fs.Parse(args)
	if *deck == "" {
		return fmt.Errorf("solve: -spice is required")
	}
	finish := of.start("solve", map[string]any{
		"spice": *deck, "iters": *iters, "tol": *tol,
	})

	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	nl, err := spice.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	nw, err := circuit.FromNetlist(nl)
	if err != nil {
		return err
	}
	sys, err := nw.Assemble()
	if err != nil {
		return err
	}
	log.Printf("system: %d unknowns, %d nonzeros, total load %.4g A",
		sys.N(), sys.G.NNZ(), sys.TotalLoad())

	start := time.Now()
	h, err := amg.Build(sys.G, amg.DefaultOptions())
	if err != nil {
		return err
	}
	log.Printf("AMG setup: %d levels, operator complexity %.2f (%.1f ms)",
		h.NumLevels(), h.OperatorComplexity(), float64(time.Since(start).Microseconds())/1000)

	opts := solver.Options{Tol: *tol, MaxIter: 1000, Flexible: true, Record: true, Label: "solve"}
	if *iters > 0 {
		opts = solver.RoughOptions(*iters)
		opts.Label = "solve"
	}
	x := make([]float64, sys.N())
	t0 := time.Now()
	resu, err := solver.PCG(sys.G, x, sys.I, h, opts)
	if err != nil {
		return err
	}
	log.Printf("AMG-PCG: %d iterations, relative residual %.3g (%.1f ms)",
		resu.Iterations, resu.Residual, float64(time.Since(t0).Microseconds())/1000)

	maxDrop, sum := 0.0, 0.0
	for _, v := range x {
		if v > maxDrop {
			maxDrop = v
		}
		sum += v
	}
	log.Printf("worst-case IR drop: %.4g V, mean %.4g V", maxDrop, sum/float64(len(x)))

	if *pgm != "" {
		r := *res
		if r == 0 {
			r = dieSize(nw)
		}
		m := features.GoldenMap(nw, sys.FullDrops(x), r, r)
		if err := os.WriteFile(*pgm, []byte(m.PGM()), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s (%dx%d)", *pgm, r, r)
	}
	return finish()
}

// dieSize infers a raster size from node coordinates.
func dieSize(nw *circuit.Network) int {
	max := 0
	for i := 0; i < nw.NumNodes(); i++ {
		if !nw.HasMeta[i] {
			continue
		}
		if nw.Meta[i].X > max {
			max = nw.Meta[i].X
		}
		if nw.Meta[i].Y > max {
			max = nw.Meta[i].Y
		}
	}
	return max + 1
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	model := fs.String("model", "irfusion", "model architecture")
	out := fs.String("out", "model.bin", "output checkpoint")
	nFake := fs.Int("fake", 8, "fake training designs")
	nReal := fs.Int("real", 4, "real training designs")
	size := fs.Int("size", 64, "die size / raster resolution")
	epochs := fs.Int("epochs", 10, "training epochs")
	seed := fs.Int64("seed", 1, "seed")
	of := addObsFlags(fs)
	fs.Parse(args)

	cfg := core.Default(*size)
	cfg.ModelName = *model
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	if *model != "irfusion" {
		cfg.UseNumerical = false
		cfg.Hierarchical = false
	}
	finish := of.start("train", cfg)
	log.Printf("generating %d fake + %d real designs at %dx%d...", *nFake, *nReal, *size, *size)
	train, err := dataset.GenerateSet(*nFake, *nReal, *size, *seed, cfg.DatasetOptions())
	if err != nil {
		return err
	}
	log.Printf("training %s (%s)...", *model, cfg.Describe())
	res, err := core.Train(cfg, train)
	if err != nil {
		return err
	}
	log.Printf("trained: %d params, final loss %.4g, %.1fs",
		res.NumParams, res.FinalLoss, res.TrainTime.Seconds())

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Analyzer.Save(f); err != nil {
		return err
	}
	log.Printf("wrote %s", *out)
	return finish()
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	deck := fs.String("spice", "", "input SPICE file (required)")
	modelFile := fs.String("model-file", "", "trained checkpoint from 'irfusion train' (required)")
	pgm := fs.String("pgm", "", "write the predicted drop map as PGM")
	of := addObsFlags(fs)
	fs.Parse(args)
	if *deck == "" || *modelFile == "" {
		return fmt.Errorf("predict: -spice and -model-file are required")
	}
	finish := of.start("predict", map[string]any{
		"spice": *deck, "model_file": *modelFile,
	})

	mf, err := os.Open(*modelFile)
	if err != nil {
		return err
	}
	analyzer, err := core.LoadAnalyzer(mf)
	mf.Close()
	if err != nil {
		return err
	}

	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	nl, err := spice.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	size := analyzer.Config.Resolution
	d := &pgen.Design{Name: *deck, W: size, H: size, VDD: padVoltage(nl), Netlist: nl}
	pred, rt, err := analyzer.Analyze(d)
	if err != nil {
		return err
	}
	log.Printf("predicted worst-case IR drop: %.4g V (runtime %.3fs)", pred.Max(), rt.Seconds())
	fmt.Println(pred.ASCII(64))
	if *pgm != "" {
		if err := os.WriteFile(*pgm, []byte(pred.PGM()), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", *pgm)
	}
	return finish()
}

func padVoltage(nl *spice.Netlist) float64 {
	for _, e := range nl.Elements {
		if e.Type == spice.VoltageSource {
			return e.Value
		}
	}
	return 0
}

func cmdTransient(args []string) error {
	fs := flag.NewFlagSet("transient", flag.ExitOnError)
	deck := fs.String("spice", "", "input SPICE file with C cards (required)")
	step := fs.Float64("h", 1e-12, "time step in seconds")
	steps := fs.Int("steps", 100, "number of backward-Euler steps")
	burst := fs.Int("burst", 0, "apply the deck's loads only for the first N steps (0 = always on)")
	scale := fs.Float64("scale", 1, "load current scale factor")
	fs.Parse(args)
	if *deck == "" {
		return fmt.Errorf("transient: -spice is required")
	}

	f, err := os.Open(*deck)
	if err != nil {
		return err
	}
	nl, err := spice.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	nw, err := circuit.FromNetlist(nl)
	if err != nil {
		return err
	}
	sys, err := nw.Assemble()
	if err != nil {
		return err
	}
	if len(nw.Capacitors) == 0 {
		log.Printf("warning: deck has no C cards; the response is quasi-static")
	}
	tr, err := circuit.NewTransient(sys, *step)
	if err != nil {
		return err
	}
	loads := make([]float64, sys.N())
	for i, v := range sys.I {
		loads[i] = *scale * v
	}
	idle := make([]float64, sys.N())
	peak, err := tr.Run(*steps, func(k int, _ float64) []float64 {
		if *burst > 0 && k >= *burst {
			return idle
		}
		return loads
	})
	if err != nil {
		return err
	}
	final := 0.0
	for _, v := range tr.Drops() {
		if v > final {
			final = v
		}
	}
	log.Printf("transient: %d steps of %.3g s (%d caps)", *steps, *step, len(nw.Capacitors))
	log.Printf("peak dynamic IR drop: %.4g V; final worst drop: %.4g V", peak, final)
	return nil
}
