package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"irfusion/internal/obs"
	"irfusion/internal/parallel"
)

// obsFlags carries the observability flags shared by every analysis
// subcommand: -manifest writes the structured JSON run manifest,
// -debug-addr serves live expvar counters and pprof profiles for the
// duration of the run.
type obsFlags struct {
	manifest  *string
	debugAddr *string
}

// addObsFlags registers -manifest and -debug-addr on a subcommand's
// flag set.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		manifest:  fs.String("manifest", "", "write a JSON run manifest to this file"),
		debugAddr: fs.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. localhost:6060)"),
	}
}

// start activates a run recorder (and the debug server when
// requested) and returns a finish function that deactivates it,
// prints the end-of-run summary table to stderr, and writes the
// manifest when -manifest was given. config is embedded verbatim in
// the manifest's "config" field.
func (o *obsFlags) start(kind string, config any) func() error {
	rec := obs.NewRecorder()
	pool := parallel.Default()
	rec.SetGauge("pool.workers", float64(pool.Workers()))
	rec.SetGauge("pool.min_work", float64(pool.MinWork()))
	prev := obs.SetActive(rec)
	var srv *http.Server
	if *o.debugAddr != "" {
		s, addr, err := obs.ServeDebug(*o.debugAddr)
		if err != nil {
			log.Printf("debug server: %v", err)
		} else {
			srv = s
			log.Printf("debug server at http://%s/debug/vars and /debug/pprof/", addr)
		}
	}
	return func() error {
		obs.SetActive(prev)
		if srv != nil {
			defer srv.Close()
		}
		m := rec.Manifest(kind, config)
		fmt.Fprint(os.Stderr, m.Summary())
		if *o.manifest != "" {
			if err := obs.FileSink(*o.manifest).Write(m); err != nil {
				return fmt.Errorf("manifest: %w", err)
			}
			log.Printf("wrote %s", *o.manifest)
		}
		return nil
	}
}
