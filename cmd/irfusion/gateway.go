package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"irfusion/internal/cluster"
)

// cmdGateway runs the stateless cluster gateway in front of a fleet
// of `irfusion serve -name ...` shards (see docs/CLUSTER.md and
// internal/cluster). It admission-checks requests at the edge, routes
// each deck to the shard owning its cache fingerprint on a consistent
// ring, probes shard health into per-shard circuit breakers, and
// hands failed forwards to the ring successor. SIGINT/SIGTERM trigger
// a graceful drain of in-flight forwards.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8090", "listen address")
	shardList := fs.String("shards", "",
		"comma-separated shard fleet, name=url pairs (e.g. 'a=http://host1:8080,b=http://host2:8080')")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the hash ring")
	maxBody := fs.Int64("max-body", 8<<20, "request-body admission limit in bytes (set at or below the shards' limit)")
	handoffs := fs.Int("handoffs", 0, "max ring-successor retries per request (0 = all successors)")
	probeInterval := fs.Duration("probe-interval", time.Second, "shard health-probe period")
	probeTimeout := fs.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive probe/forward failures that open a shard's breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open retry")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight forwards")
	faultSpec := addFaultsFlag(fs)
	of := addObsFlags(fs)
	fs.Parse(args)
	if err := applyFaults(*faultSpec); err != nil {
		return err
	}

	shards, err := parseShards(*shardList)
	if err != nil {
		return err
	}

	finish := of.start("gateway", map[string]any{
		"addr": *addr, "shards": *shardList, "vnodes": *vnodes,
		"max_body": *maxBody, "handoffs": *handoffs,
		"probe_interval": probeInterval.String(),
	})

	gw, err := cluster.New(cluster.Config{
		Shards:           shards,
		VNodes:           *vnodes,
		MaxBodyBytes:     *maxBody,
		MaxHandoffs:      *handoffs,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("gateway on http://%s routing %d shards; POST /v1/analyze, GET /v1/cluster",
		ln.Addr(), len(shards))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining (budget %s)...", s, *drain)
	case err := <-errc:
		return fmt.Errorf("gateway: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := gw.Close(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	return finish()
}

// parseShards turns the -shards flag value into a fleet spec. The
// flag format is deliberately positional-free: order never matters
// because ring placement depends only on the shard names.
func parseShards(list string) ([]cluster.ShardSpec, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("gateway: -shards is required (name=url,name=url,...)")
	}
	var specs []cluster.ShardSpec
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("gateway: bad shard spec %q, want name=url", part)
		}
		specs = append(specs, cluster.ShardSpec{Name: name, URL: url})
	}
	return specs, nil
}
