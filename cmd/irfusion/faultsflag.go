package main

import (
	"flag"
	"log"
	"strings"

	"irfusion/internal/faults"
)

// addFaultsFlag registers -faults on a subcommand's flag set. The flag
// carries the same spec grammar as the IRFUSION_FAULTS environment
// variable (see internal/faults and docs/RESILIENCE.md) and, when set,
// replaces whatever the environment installed — so one invocation can
// rehearse a failure without exporting anything.
func addFaultsFlag(fs *flag.FlagSet) *string {
	return fs.String("faults", "",
		"fault-injection spec, e.g. 'amg.setup:fail' (overrides "+faults.EnvVar+"; see docs/RESILIENCE.md)")
}

// applyFaults installs the -faults spec as the process-global injector
// and logs the active spec — whether it came from the flag or from the
// environment — so a chaos run is always visible in the serve log.
func applyFaults(spec string) error {
	if strings.TrimSpace(spec) != "" {
		in, err := faults.Parse(spec)
		if err != nil {
			return err
		}
		faults.SetActive(in)
	}
	if sp := faults.Active().Spec(); sp != "" {
		log.Printf("fault injection active: %s", sp)
	}
	return nil
}
