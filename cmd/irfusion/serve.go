package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"irfusion/internal/core"
	"irfusion/internal/serve"
)

// cmdServe runs the long-lived analysis service: a bounded job queue
// of concurrent analyses behind an HTTP JSON API (see docs/SERVING.md
// and internal/serve). SIGINT/SIGTERM trigger a graceful shutdown
// that drains in-flight solves (bounded by -drain, after which
// running solver loops are cancelled mid-iteration).
//
// The obs flags mirror the batch subcommands: -manifest writes one
// session manifest at shutdown summarizing the serving process (each
// request additionally gets its own manifest attached to its job
// result), and -debug-addr serves live expvar counters and pprof.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	name := fs.String("name", "", "shard identity for cluster deployments (prefixes job ids, stamped into manifests)")
	workers := fs.Int("workers", 2, "job-queue worker concurrency (analyses in flight)")
	queue := fs.Int("queue", 16, "bounded job-queue depth; beyond it submissions get 503")
	maxBody := fs.Int64("max-body", 8<<20, "request-body admission limit in bytes")
	maxSize := fs.Int("max-size", 256, "largest die size / raster resolution a request may ask for")
	timeout := fs.Duration("timeout", 2*time.Minute, "default per-request timeout (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight solves")
	modelFile := fs.String("model-file", "", "trained checkpoint enabling fused mode")
	noCache := fs.Bool("no-cache", false, "disable the per-process artifact cache (every request runs cold)")
	cacheBytes := fs.Int64("cache-bytes", 0, "artifact-cache size bound in bytes (0 = default)")
	cacheTTL := fs.Duration("cache-ttl", 0, "artifact-cache entry lifetime (0 = default)")
	journalDir := fs.String("journal-dir", "", "write-ahead job journal directory (enables crash recovery; empty = off)")
	journalSync := fs.String("journal-sync", "", "journal fsync policy: always (default), interval, or none")
	ckptEvery := fs.Int("checkpoint-every", 0, "solver checkpoint interval in PCG iterations (0 = default 32, negative = off)")
	faultSpec := addFaultsFlag(fs)
	of := addObsFlags(fs)
	fs.Parse(args)
	if err := applyFaults(*faultSpec); err != nil {
		return err
	}

	cfg := serve.Config{
		Name:            *name,
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxBodyBytes:    *maxBody,
		MaxDesignSize:   *maxSize,
		DefaultTimeout:  *timeout,
		DisableCache:    *noCache,
		CacheBytes:      *cacheBytes,
		CacheTTL:        *cacheTTL,
		JournalDir:      *journalDir,
		JournalSync:     *journalSync,
		CheckpointEvery: *ckptEvery,
	}
	if *modelFile != "" {
		f, err := os.Open(*modelFile)
		if err != nil {
			return err
		}
		analyzer, err := core.LoadAnalyzer(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Analyzer = analyzer
		log.Printf("fused mode enabled: %s (%s)", *modelFile, analyzer.Config.Describe())
	}

	finish := of.start("serve", map[string]any{
		"addr": *addr, "name": *name, "workers": *workers, "queue": *queue,
		"max_body": *maxBody, "max_size": *maxSize,
		"timeout": timeout.String(), "model_file": *modelFile,
		"cache": !*noCache, "journal_dir": *journalDir,
	})

	svc := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("serving on http://%s (workers=%d queue=%d); POST /v1/analyze, GET /healthz",
		ln.Addr(), *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%s: draining (budget %s)...", s, *drain)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Close(ctx); err != nil {
		log.Printf("drain incomplete, in-flight solves were cancelled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	return finish()
}
