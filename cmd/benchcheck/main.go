// Command benchcheck is the bench-regression CI gate: it runs the
// pinned benchmark set declared in a committed baseline file
// (bench.baseline), parses the `go test -bench` output, and fails when
// a benchmark regresses past the baseline's tolerance band.
//
// The baseline pins each run with -benchtime=Nx (a fixed iteration
// count, not a duration), so per-op allocation counts are exactly
// reproducible across machines and are compared tightly. Wall-clock
// ns/op varies with hardware, so it is gated by a generous
// multiplicative factor — the gate catches "the SpMV kernel got 2×
// slower", not single-digit noise. Cross-benchmark ratios (e.g. the
// ECO-loop cold/hit speedup) are computed from measurements taken in
// the same process on the same machine, making them machine-
// independent; they are the strictest gates.
//
//	benchcheck -baseline bench.baseline          # CI gate
//	benchcheck -baseline bench.baseline -update  # rebaseline after a reviewed change
//
// Exit status: 0 when every gate passes, 1 on any regression, 2 on
// usage or harness errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed bench.baseline document.
type Baseline struct {
	// Runs declares the pinned benchmark invocations. Each entry is one
	// `go test -bench <Bench> -benchtime <Benchtime>` execution.
	Runs []Run `json:"runs"`
	// Tolerance is the regression band applied to every benchmark.
	Tolerance Tolerance `json:"tolerance"`
	// Ratios are machine-independent cross-benchmark gates computed
	// from the measurements of this invocation.
	Ratios []Ratio `json:"ratios"`
	// Benchmarks maps benchmark name (sub-benchmarks as "Parent/sub",
	// CPU suffix stripped) to its recorded baseline measurement.
	Benchmarks map[string]Measure `json:"benchmarks"`
}

// Run pins one benchmark invocation.
type Run struct {
	Bench     string `json:"bench"`         // -bench regex
	Benchtime string `json:"benchtime"`     // -benchtime value; use "Nx" so allocs are exact
	Pkg       string `json:"pkg,omitempty"` // package path, default "."
}

// Tolerance is the regression band. NsFactor multiplies the baseline
// ns/op to get the failure threshold; allocations fail when measured >
// baseline*AllocFactor + AllocSlack (the additive slack absorbs
// one-time setup amortized over small -benchtime counts).
type Tolerance struct {
	NsFactor    float64 `json:"ns_factor"`
	AllocFactor float64 `json:"alloc_factor"`
	AllocSlack  int64   `json:"alloc_slack"`
}

// Ratio gates Numerator.ns/op ÷ Denominator.ns/op >= Min using the
// measurements of this run.
type Ratio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Min         float64 `json:"min"`
}

// Measure is one benchmark's recorded numbers.
type Measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "bench.baseline", "committed baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline's measurements from this run instead of gating")
	nsFactor := flag.Float64("ns-factor", 0, "override the baseline's ns/op tolerance factor (0 = use the file's)")
	flag.Parse()

	bl, err := readBaseline(*baselinePath)
	if err != nil {
		log.Fatalf("benchcheck: %v", err)
	}
	if *nsFactor > 0 {
		bl.Tolerance.NsFactor = *nsFactor
	}

	measured := map[string]Measure{}
	for _, r := range bl.Runs {
		out, err := runBench(r)
		if err != nil {
			log.Fatalf("benchcheck: bench %q: %v", r.Bench, err)
		}
		for name, m := range parseBench(out) {
			measured[name] = m
		}
	}
	if len(measured) == 0 {
		log.Fatalf("benchcheck: no benchmark results parsed — check the runs[].bench regexes")
	}

	if *update {
		bl.Benchmarks = measured
		if err := writeBaseline(*baselinePath, bl); err != nil {
			log.Fatalf("benchcheck: %v", err)
		}
		log.Printf("benchcheck: rebaselined %d benchmark(s) into %s", len(measured), *baselinePath)
		return
	}

	failures := gate(bl, measured)
	if len(failures) > 0 {
		for _, f := range failures {
			log.Printf("FAIL %s", f)
		}
		log.Fatalf("benchcheck: %d regression(s) against %s (rebaseline with -update after review)", len(failures), *baselinePath)
	}
	log.Printf("benchcheck: %d benchmark(s), %d ratio gate(s): ok", len(measured), len(bl.Ratios))
}

func readBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(raw, &bl); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(bl.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs declared", path)
	}
	if bl.Tolerance.NsFactor <= 1 {
		bl.Tolerance.NsFactor = 2
	}
	if bl.Tolerance.AllocFactor <= 1 {
		bl.Tolerance.AllocFactor = 1.25
	}
	return &bl, nil
}

func writeBaseline(path string, bl *Baseline) error {
	buf, err := json.MarshalIndent(bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runBench executes one pinned `go test -bench` invocation and returns
// its combined output (which is also echoed for the CI log).
func runBench(r Run) (string, error) {
	pkg := r.Pkg
	if pkg == "" {
		pkg = "."
	}
	args := []string{"test", "-run", "^$", "-bench", r.Bench, "-benchtime", r.Benchtime, "-benchmem", pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	fmt.Print(string(out))
	if err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return string(out), nil
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
//
//	BenchmarkCacheECOLoop/hit-8   20   1414317 ns/op   988081 B/op   7737 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ [A-Za-z/]+)*?\s+(\d+) allocs/op`)

func parseBench(out string) map[string]Measure {
	res := map[string]Measure{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err1 := strconv.ParseFloat(m[2], 64)
		allocs, err2 := strconv.ParseInt(m[3], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		res[m[1]] = Measure{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return res
}

// gate applies the tolerance band and ratio gates, printing the delta
// table, and returns the failure messages.
func gate(bl *Baseline, measured map[string]Measure) []string {
	var failures []string
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-44s %14s %14s %8s %16s\n", "benchmark", "base ns/op", "now ns/op", "Δ", "allocs base→now")
	for _, name := range names {
		now := measured[name]
		base, ok := bl.Benchmarks[name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s %16s\n", name, "(new)", now.NsPerOp, "", fmt.Sprintf("—→%d", now.AllocsPerOp))
			failures = append(failures, fmt.Sprintf("%s: not in baseline — record it with -update", name))
			continue
		}
		delta := now.NsPerOp/base.NsPerOp - 1
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%% %16s\n",
			name, base.NsPerOp, now.NsPerOp, 100*delta, fmt.Sprintf("%d→%d", base.AllocsPerOp, now.AllocsPerOp))
		if now.NsPerOp > base.NsPerOp*bl.Tolerance.NsFactor {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f × %.2f",
				name, now.NsPerOp, base.NsPerOp, bl.Tolerance.NsFactor))
		}
		allocCap := int64(float64(base.AllocsPerOp)*bl.Tolerance.AllocFactor) + bl.Tolerance.AllocSlack
		if now.AllocsPerOp > allocCap {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d (cap %d)",
				name, now.AllocsPerOp, base.AllocsPerOp, allocCap))
		}
	}
	// Baseline entries the pinned runs no longer produce are stale —
	// failing loudly beats silently gating nothing.
	for name := range bl.Benchmarks {
		if _, ok := measured[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not produced by any pinned run — prune it with -update", name))
		}
	}
	for _, r := range bl.Ratios {
		num, okN := measured[r.Numerator]
		den, okD := measured[r.Denominator]
		if !okN || !okD {
			failures = append(failures, fmt.Sprintf("ratio %q: missing %s or %s in this run", r.Name, r.Numerator, r.Denominator))
			continue
		}
		got := num.NsPerOp / den.NsPerOp
		fmt.Printf("ratio %-38s %14.2f  (min %.2f)\n", r.Name, got, r.Min)
		if got < r.Min {
			failures = append(failures, fmt.Sprintf("ratio %q: %s/%s = %.2f below minimum %.2f",
				r.Name, r.Numerator, r.Denominator, got, r.Min))
		}
	}
	return failures
}
