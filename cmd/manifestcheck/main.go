// Command manifestcheck validates an irfusion run manifest: it loads
// the JSON file, checks it against the manifest schema
// (obs.Manifest.Validate), and enforces the invariants the CI smoke
// test relies on — at least one solve with a positive iteration count
// and a non-empty residual history, at least one worker-pool dispatch
// counter, and internally consistent degradation records. Exit status
// is non-zero on any violation, making it usable as a CI gate:
//
//	irfusion analyze -size 48 -manifest run.json
//	manifestcheck run.json
//
// With -degraded the check additionally requires at least one
// degradation record that reports an actual fallback, retry, or
// breaker skip — the gate of the chaos-smoke CI job, which runs the
// pipeline under an injected fault profile and must prove the ladder
// really degraded rather than silently sailing through.
//
// With -cache the check requires the manifest's cache section to show
// real traffic: at least one store, and at least one hit, warm start,
// or stale rejection — the gate of the cached chaos/smoke runs, which
// repeat an analysis under one recorder and must prove the artifact
// cache actually participated (and that poisoned entries were caught,
// not served).
//
// With -shard NAME the check requires the manifest's shard field to
// equal NAME — the gate of cluster deployments, proving a job manifest
// really came from the shard the gateway claims routed it.
//
// With -mp the check requires at least one solve record with precision
// "mixed" — the gate of the mp-oracle CI job, proving a
// -precision mixed run really took the mixed-precision rung rather
// than silently serving from full precision.
//
// With -allow-hit the solve-with-history and parallel-dispatch
// requirements are waived when the cache section shows at least one
// hit: a manifest describing a run answered entirely from the
// response cache legitimately contains zero solves, and before this
// flag such runs could not be gated at all (the PR 7 chaos-smoke
// cached repeat had to skip manifestcheck for exactly this reason).
//
// With -resume the check requires a resume section whose outcome is
// "resumed" with a positive starting iteration — the gate of the
// restart-smoke CI job, proving a recovered job really continued from
// a checkpoint instead of silently solving cold.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"irfusion/internal/obs"
)

// gateSpec declares one gate flag and the top-level obs.Manifest JSON
// key it inspects. irfusionlint's sitedrift rule cross-checks this
// table against the Manifest struct tags: a gate naming a section
// that no longer exists (e.g. after a manifest field rename) and a
// flag registered outside the table are both lint errors, so the
// gates cannot silently drift away from the manifest schema.
type gateSpec struct {
	flag    string // command-line flag name
	section string // obs.Manifest JSON key the gate inspects
	usage   string
}

var gates = []gateSpec{
	{"degraded", "degradation", "require at least one degradation record showing a fallback, retry, or breaker skip"},
	{"cache", "cache", "require a cache section with at least one store and one hit, warm start, or stale rejection"},
	{"mp", "solves", "require at least one solve record with precision \"mixed\""},
	{"allow-hit", "cache", "waive the solve/dispatch requirements when the cache section shows at least one hit (zero-solve cache-HIT manifests)"},
	{"resume", "resume", "require a resume section with outcome \"resumed\" and a positive starting iteration"},
	{"shard", "shard", "require the manifest's shard identity to equal this name"},
}

func main() {
	log.SetFlags(0)
	boolGates := map[string]*bool{}
	var shard string
	for _, g := range gates {
		if g.flag == "shard" {
			// The one non-boolean gate: it carries the required value.
			flag.StringVar(&shard, g.flag, "", g.usage)
			continue
		}
		boolGates[g.flag] = flag.Bool(g.flag, false, g.usage)
	}
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck [-degraded] [-cache] [-mp] [-allow-hit] [-resume] [-shard NAME] <manifest.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	opts := checkOptions{
		degraded: *boolGates["degraded"], cache: *boolGates["cache"], mp: *boolGates["mp"],
		allowHit: *boolGates["allow-hit"], resume: *boolGates["resume"], shard: shard,
	}
	if err := check(path, opts); err != nil {
		log.Fatalf("manifestcheck: %s: %v", path, err)
	}
	log.Printf("%s: ok", path)
}

// checkOptions collects the gate flags.
type checkOptions struct {
	degraded bool
	cache    bool
	mp       bool
	allowHit bool
	resume   bool
	shard    string
}

func check(path string, opts checkOptions) error {
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if opts.shard != "" && m.Shard != opts.shard {
		return fmt.Errorf("-shard: manifest records shard %q, want %q", m.Shard, opts.shard)
	}

	// A cache-HIT run (answered from the response cache, zero solves)
	// is legitimate under -allow-hit; every other run must prove it
	// solved and dispatched.
	hitOnly := opts.allowHit && m.Cache != nil && m.Cache.Hits > 0

	// The pipeline must have reported at least one real solve with a
	// recorded convergence trace.
	solved := false
	for _, s := range m.Solves {
		if s.Iterations > 0 && len(s.History) > 0 {
			solved = true
			break
		}
	}
	if !solved && !hitOnly {
		return fmt.Errorf("no solve with iterations > 0 and a non-empty residual history (%d solves present)", len(m.Solves))
	}

	// Worker-pool instrumentation must have observed kernel dispatches.
	dispatches := int64(0)
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "parallel.") {
			dispatches += v
		}
	}
	if dispatches <= 0 && !hitOnly {
		return fmt.Errorf("no parallel.* dispatch counters recorded")
	}

	if err := checkDegradations(m); err != nil {
		return err
	}
	if opts.degraded {
		any := false
		for i := range m.Degradations {
			if m.Degradations[i].Degraded() {
				any = true
				break
			}
		}
		if !any {
			return fmt.Errorf("-degraded: no degradation record shows a fallback, retry, or skip (%d records present) — the chaos profile did not bite", len(m.Degradations))
		}
	}
	if opts.cache {
		if err := checkCache(m); err != nil {
			return err
		}
	}
	if opts.mp {
		mixed := false
		for _, s := range m.Solves {
			if s.Precision == obs.PrecisionMixed {
				mixed = true
				break
			}
		}
		if !mixed {
			return fmt.Errorf("-mp: no solve record with precision %q (%d solves present) — the run never took the mixed-precision rung",
				obs.PrecisionMixed, len(m.Solves))
		}
	}
	if opts.resume {
		switch {
		case m.Resume == nil:
			return fmt.Errorf("-resume: manifest has no resume section — the run never consulted a checkpoint")
		case m.Resume.Outcome != obs.ResumeAccepted:
			return fmt.Errorf("-resume: resume outcome is %q, want %q — the checkpoint was not resumed",
				m.Resume.Outcome, obs.ResumeAccepted)
		case m.Resume.Iter <= 0:
			return fmt.Errorf("-resume: resume starts at iteration %d — nothing was actually resumed", m.Resume.Iter)
		}
	}
	return nil
}

// checkCache enforces the cached-run invariants: the manifest carries
// a cache section, the run stored at least one artifact, and at least
// one lookup produced a hit, warm start, or stale rejection — i.e. the
// cache was exercised end to end, not just attached.
func checkCache(m *obs.Manifest) error {
	c := m.Cache
	if c == nil {
		return fmt.Errorf("-cache: manifest has no cache section — the run never touched the artifact cache")
	}
	if c.Stores == 0 {
		return fmt.Errorf("-cache: no store events recorded (%d cache events present)", len(c.Events))
	}
	if c.Hits+c.WarmStarts+c.Stale == 0 {
		return fmt.Errorf("-cache: no hit, warm-start, or stale event recorded (%d stores) — repeats never consulted the cache", c.Stores)
	}
	return nil
}

// checkDegradations enforces the attempt-trail invariants beyond the
// structural ones obs.Manifest.Validate covers: every record carries
// its trail, attempts name their rung, skipped attempts carry no
// per-rung attempt count, and a record that served names a rung that
// actually appears in its trail.
func checkDegradations(m *obs.Manifest) error {
	for i, d := range m.Degradations {
		if len(d.Attempts) == 0 {
			return fmt.Errorf("degradation[%d] (%s): no attempt trail", i, d.Component)
		}
		served := d.Rung == ""
		for j, a := range d.Attempts {
			if a.Rung == "" {
				return fmt.Errorf("degradation[%d] (%s): attempt %d names no rung", i, d.Component, j)
			}
			if a.Skipped != "" && a.Error != "" {
				return fmt.Errorf("degradation[%d] (%s): attempt %d both skipped (%q) and errored (%q)",
					i, d.Component, j, a.Skipped, a.Error)
			}
			if a.Skipped == "" && a.Attempt < 1 {
				return fmt.Errorf("degradation[%d] (%s): attempt %d has attempt number %d",
					i, d.Component, j, a.Attempt)
			}
			if a.Rung == d.Rung {
				served = true
			}
		}
		if !served {
			return fmt.Errorf("degradation[%d] (%s): serving rung %q never appears in the attempt trail",
				i, d.Component, d.Rung)
		}
	}
	return nil
}
