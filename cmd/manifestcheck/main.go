// Command manifestcheck validates an irfusion run manifest: it loads
// the JSON file, checks it against the manifest schema
// (obs.Manifest.Validate), and enforces the invariants the CI smoke
// test relies on — at least one solve with a positive iteration count
// and a non-empty residual history, and at least one worker-pool
// dispatch counter. Exit status is non-zero on any violation, making
// it usable as a CI gate:
//
//	irfusion analyze -size 48 -manifest run.json
//	manifestcheck run.json
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"irfusion/internal/obs"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck <manifest.json>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		log.Fatalf("manifestcheck: %s: %v", os.Args[1], err)
	}
	log.Printf("%s: ok", os.Args[1])
}

func check(path string) error {
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}

	// The pipeline must have reported at least one real solve with a
	// recorded convergence trace.
	solved := false
	for _, s := range m.Solves {
		if s.Iterations > 0 && len(s.History) > 0 {
			solved = true
			break
		}
	}
	if !solved {
		return fmt.Errorf("no solve with iterations > 0 and a non-empty residual history (%d solves present)", len(m.Solves))
	}

	// Worker-pool instrumentation must have observed kernel dispatches.
	dispatches := int64(0)
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "parallel.") {
			dispatches += v
		}
	}
	if dispatches <= 0 {
		return fmt.Errorf("no parallel.* dispatch counters recorded")
	}
	return nil
}
