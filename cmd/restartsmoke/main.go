// Command restartsmoke is the crash-durability rehearsal behind the
// restart-smoke CI gate. It boots in-process serve servers and drives
// the two recovery paths end to end:
//
//  1. Requeue-once: a solve is killed mid-iteration by an injected
//     panic (solver.pcg:panic:after=N) after checkpoints exist. The
//     worker's recovery barrier must requeue the job exactly once,
//     the retry must resume from the in-cache checkpoint, and the
//     client must see a normal 200 — with a manifest whose resume
//     section records outcome "resumed" from "requeue".
//
//  2. Kill and restart: an acknowledged async job is interrupted by a
//     hard crash (serve.(*Server).Crash — the on-disk image of a
//     kill -9, no shutdown hooks). A second server opened on the same
//     journal directory must replay the write-ahead log, re-enqueue
//     the orphan under its original id, restore its checkpoint from
//     the durable blob, and finish it — resume section "resumed" from
//     "restart", map matching an undisturbed cold solve to 1e-8.
//
// Both manifests are written to disk for manifestcheck -resume, the
// gate proving the runs really resumed mid-solve rather than silently
// re-solving from scratch. Exit status is non-zero on any violation.
//
//	restartsmoke -manifest requeue.json -restart-manifest restart.json
//	manifestcheck -resume requeue.json
//	manifestcheck -resume restart.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/serve"
)

func main() {
	manifestOut := flag.String("manifest", "", "write the requeue-path run manifest to this file")
	restartManifestOut := flag.String("restart-manifest", "", "write the restart-path run manifest to this file")
	size := flag.Int("size", 48, "generated die size (cells per side)")
	seed := flag.Int64("seed", 3, "generated die seed")
	every := flag.Int("checkpoint-every", 4, "solver checkpoint interval (iterations)")
	crashAfter := flag.Int("crash-after", 10, "requeue path: kill the solve after this many PCG iterations")
	flag.Parse()

	if err := run(*manifestOut, *restartManifestOut, *size, *seed, *every, *crashAfter); err != nil {
		fmt.Fprintf(os.Stderr, "restartsmoke: %v\n", err)
		os.Exit(1)
	}
}

func run(manifestOut, restartManifestOut string, size int, seed int64, every, crashAfter int) error {
	body := fmt.Sprintf(`{"pgen": {"class": "fake", "w": %d, "h": %d, "seed": %d}, "include_map": true}`, size, size, seed)
	asyncBody := strings.Replace(body, `"include_map"`, `"async": true, "include_map"`, 1)

	// Cold reference: an undisturbed solve of the same die, before any
	// fault profile is installed.
	cold, err := coldSolve(body)
	if err != nil {
		return fmt.Errorf("cold reference solve: %w", err)
	}
	fmt.Printf("cold solve: %d map cells, residual %.3g\n", len(cold.Map), cold.Residual)

	if err := requeuePath(body, cold, manifestOut, every, crashAfter); err != nil {
		return fmt.Errorf("requeue path: %w", err)
	}
	if err := restartPath(asyncBody, cold, restartManifestOut, every); err != nil {
		return fmt.Errorf("restart path: %w", err)
	}
	fmt.Printf("counters: serve.requeues=%d serve.recovered=%d serve.journal.errors=%d\n",
		obs.CounterValue("serve.requeues"), obs.CounterValue("serve.recovered"),
		obs.CounterValue("serve.journal.errors"))
	return nil
}

// coldSolve runs the request on a journal-less, fault-less server.
func coldSolve(body string) (*serve.AnalyzeResult, error) {
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer shutdown(s, ts)
	v, err := postJob(ts, body)
	if err != nil {
		return nil, err
	}
	if v.Status != serve.StatusDone || v.Result == nil || len(v.Result.Map) == 0 {
		return nil, fmt.Errorf("status %q (error %q), no map", v.Status, v.Error)
	}
	return v.Result, nil
}

// requeuePath kills a solve mid-iteration with an injected panic and
// requires the worker's requeue-once barrier to finish the job from
// its checkpoint on the retry — all within one server process.
func requeuePath(body string, cold *serve.AnalyzeResult, manifestOut string, every, crashAfter int) error {
	spec := fmt.Sprintf("solver.pcg:panic:label=numerical.amg,after=%d,times=1", crashAfter)
	faults.SetActive(faults.MustParse(spec))
	defer faults.SetActive(nil)

	dir, err := os.MkdirTemp("", "restartsmoke-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	s := serve.New(serve.Config{Workers: 1, JournalDir: dir, CheckpointEvery: every})
	ts := httptest.NewServer(s.Handler())
	defer shutdown(s, ts)

	v, err := postJob(ts, body)
	if err != nil {
		return err
	}
	if v.Status != serve.StatusDone {
		return fmt.Errorf("job %s ended %q (error %q), want done despite the injected panic", v.ID, v.Status, v.Error)
	}
	if err := checkResumed(v.Result, cold, "requeue"); err != nil {
		return err
	}
	fmt.Printf("requeue path: job %s resumed at iteration %d after an injected panic\n",
		v.ID, v.Result.Manifest.Resume.Iter)
	return writeManifest(manifestOut, v.Result.Manifest)
}

// restartPath crashes a whole server mid-solve and requires the next
// incarnation to replay the journal and finish the orphan.
func restartPath(asyncBody string, cold *serve.AnalyzeResult, manifestOut string, every int) error {
	// Stretch the solve so the crash reliably lands mid-flight: every
	// checkpoint store pays injected latency.
	faults.SetActive(faults.MustParse("checkpoint.save:latency:delay=25ms"))
	defer faults.SetActive(nil)

	dir, err := os.MkdirTemp("", "restartsmoke-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	s1 := serve.New(serve.Config{Workers: 1, JournalDir: dir, CheckpointEvery: every})
	ts1 := httptest.NewServer(s1.Handler())
	v, err := postJob(ts1, asyncBody)
	if err != nil {
		ts1.Close()
		return err
	}
	id := v.ID
	if err := waitForBlob(filepath.Join(dir, "checkpoints")); err != nil {
		ts1.Close()
		return err
	}
	s1.Crash()
	ts1.Close()

	s2 := serve.New(serve.Config{Workers: 1, JournalDir: dir, CheckpointEvery: every})
	ts2 := httptest.NewServer(s2.Handler())
	defer shutdown(s2, ts2)

	v, err = pollJob(ts2, id)
	if err != nil {
		return err
	}
	if v.Status != serve.StatusDone {
		return fmt.Errorf("recovered job %s ended %q (error %q), want done", id, v.Status, v.Error)
	}
	if err := checkResumed(v.Result, cold, "restart"); err != nil {
		return err
	}
	fmt.Printf("restart path: job %s recovered across a crash, resumed at iteration %d\n",
		id, v.Result.Manifest.Resume.Iter)
	return writeManifest(manifestOut, v.Result.Manifest)
}

// checkResumed enforces the shared acceptance bar: a resume section
// with the wanted provenance, outcome "resumed" at a positive
// iteration, and a map matching the cold reference to 1e-8.
func checkResumed(r *serve.AnalyzeResult, cold *serve.AnalyzeResult, wantFrom string) error {
	if r == nil || r.Manifest == nil {
		return fmt.Errorf("no result manifest")
	}
	rs := r.Manifest.Resume
	if rs == nil {
		return fmt.Errorf("manifest has no resume section — the run re-solved from scratch")
	}
	if rs.Outcome != obs.ResumeAccepted || rs.Iter <= 0 {
		return fmt.Errorf("resume section %+v, want outcome %q at a positive iteration", rs, obs.ResumeAccepted)
	}
	if rs.From != wantFrom {
		return fmt.Errorf("resume provenance %q, want %q", rs.From, wantFrom)
	}
	if len(r.Map) != len(cold.Map) {
		return fmt.Errorf("map length %d, cold reference %d", len(r.Map), len(cold.Map))
	}
	var maxDiff float64
	for i := range cold.Map {
		if d := math.Abs(r.Map[i] - cold.Map[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		return fmt.Errorf("resumed map differs from the cold map by %g (tol 1e-8)", maxDiff)
	}
	return nil
}

func writeManifest(path string, m *obs.Manifest) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("manifest written to %s\n", path)
	return nil
}

// postJob submits an analyze request. Synchronous bodies return the
// finished job; async bodies return the 202 acknowledgement.
func postJob(ts *httptest.Server, body string) (serve.JobView, error) {
	var v serve.JobView
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return v, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return v, fmt.Errorf("POST /v1/analyze: status %d: %s", resp.StatusCode, b)
	}
	err = json.Unmarshal(b, &v)
	return v, err
}

// pollJob waits for the job to reach a terminal status.
func pollJob(ts *httptest.Server, id string) (serve.JobView, error) {
	var v serve.JobView
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			return v, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return v, err
		}
		if resp.StatusCode != http.StatusOK {
			return v, fmt.Errorf("GET job %s: status %d: %s", id, resp.StatusCode, b)
		}
		if err := json.Unmarshal(b, &v); err != nil {
			return v, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return v, fmt.Errorf("job %s did not finish before the deadline", id)
}

// waitForBlob blocks until the journal's checkpoint blob directory is
// non-empty — the earliest moment a crash is recoverable mid-solve.
func waitForBlob(dir string) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("no checkpoint blob appeared in %s before the deadline", dir)
}

func shutdown(s *serve.Server, ts *httptest.Server) {
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Close(ctx)
}
