package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunRehearsal drives the full smoke — cold reference, the
// requeue-once path, and the kill-and-restart path — exactly as the
// restart-smoke CI gate does, and checks both manifests land on disk.
func TestRunRehearsal(t *testing.T) {
	dir := t.TempDir()
	requeue := filepath.Join(dir, "requeue.json")
	restart := filepath.Join(dir, "restart.json")
	if err := run(requeue, restart, 32, 3, 4, 10); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{requeue, restart} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("manifest %s missing or empty (err %v)", p, err)
		}
	}
}
