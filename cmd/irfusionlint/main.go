// Command irfusionlint runs the project's static-analysis pass (see
// internal/lint) over the module tree and reports findings as
// file:line: rule: message lines, a JSON report (-json), or SARIF for
// code-scanning upload (-sarif).
//
// Exit status: 0 when clean (after baseline filtering), 1 when
// findings remain or the wall-clock budget is exceeded, 2 on
// load/usage errors. CI runs it via `make lint` with the committed
// lint.baseline and lint.budget.
//
// Baseline maintenance: -update-baseline rewrites the module's
// lint.baseline (or the file named by -baseline) from the current
// findings in one command — review the diff before committing; the
// baseline accepts findings, it does not fix them.
//
// Budget: -budget FILE reads a committed number of seconds and fails
// the run when the analysis wall clock exceeds -budget-factor (default
// 3) times it — a cheap regression tripwire for the linter's own
// performance on 1-CPU CI runners. -write-budget re-measures and
// rewrites the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"irfusion/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json envelope: the findings plus the run metadata CI
// dashboards want without reparsing text output.
type report struct {
	Findings       []lint.Diagnostic `json:"findings"`
	Total          int               `json:"total"`     // before baseline filtering
	Baselined      int               `json:"baselined"` // absorbed by the baseline
	ByRule         map[string]int    `json:"by_rule,omitempty"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irfusionlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modRoot := fs.String("C", ".", "module root to lint (directory containing go.mod)")
	jsonOut := fs.Bool("json", false, "emit a JSON report object (findings, counts, timing) instead of text lines")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings to filter out")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to -baseline and exit 0")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the baseline (default: <modroot>/lint.baseline) from current findings and exit 0")
	sarifPath := fs.String("sarif", "", "also write post-baseline findings as SARIF 2.1.0 to this file")
	budgetPath := fs.String("budget", "", "committed wall-clock budget file (seconds); fail when analysis exceeds -budget-factor times it")
	budgetFactor := fs.Float64("budget-factor", 3, "multiplier applied to the committed budget seconds")
	writeBudget := fs.Bool("write-budget", false, "write the measured analysis seconds to -budget and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBudget && *budgetPath == "" {
		fmt.Fprintln(stderr, "irfusionlint: -write-budget requires -budget")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "irfusionlint: -write-baseline requires -baseline")
		return 2
	}

	start := time.Now()
	diags, err := lint.Run(*modRoot)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "irfusionlint:", err)
		return 2
	}

	if *writeBudget {
		if err := writeBudgetFile(*budgetPath, elapsed.Seconds()); err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "irfusionlint: wrote budget %.2fs to %s\n", elapsed.Seconds(), *budgetPath)
		return 0
	}

	if *writeBaseline || *updateBaseline {
		path := *baselinePath
		if path == "" {
			path = filepath.Join(*modRoot, "lint.baseline")
		}
		if err := lint.WriteBaseline(path, diags); err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "irfusionlint: wrote %d findings to %s\n", len(diags), path)
		return 0
	}

	total := len(diags)
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
		diags = b.Filter(diags)
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
		werr := lint.WriteSARIF(f, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "irfusionlint:", werr)
			return 2
		}
	}

	if *jsonOut {
		rep := report{
			Findings:       diags,
			Total:          total,
			Baselined:      total - len(diags),
			ElapsedSeconds: elapsed.Seconds(),
		}
		if rep.Findings == nil {
			rep.Findings = []lint.Diagnostic{}
		}
		if len(diags) > 0 {
			rep.ByRule = map[string]int{}
			for _, d := range diags {
				rep.ByRule[d.Rule]++
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	status := 0
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "irfusionlint: %d finding(s)\n", len(diags))
		status = 1
	}
	if *budgetPath != "" {
		committed, err := readBudgetFile(*budgetPath)
		if err != nil {
			fmt.Fprintln(stderr, "irfusionlint:", err)
			return 2
		}
		limit := committed * *budgetFactor
		if elapsed.Seconds() > limit {
			fmt.Fprintf(stderr, "irfusionlint: analysis took %.2fs, over budget %.2fs (%.2fs committed x %.1f); investigate or re-run -write-budget\n",
				elapsed.Seconds(), limit, committed, *budgetFactor)
			status = 1
		}
	}
	return status
}

// readBudgetFile reads the committed seconds: '#' comments and blank
// lines ignored, first remaining line is the number.
func readBudgetFile(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("budget file %s: bad seconds value %q", path, line)
		}
		return v, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("budget file %s: no seconds value", path)
}

func writeBudgetFile(path string, seconds float64) error {
	content := fmt.Sprintf("# irfusionlint wall-clock budget, in seconds, measured on a warm\n"+
		"# build cache. `make lint` fails when analysis exceeds this value\n"+
		"# times the -budget-factor (default 3). Regenerate with\n"+
		"# `go run ./cmd/irfusionlint -budget lint.budget -write-budget`.\n%.2f\n", seconds)
	return os.WriteFile(path, []byte(content), 0o644)
}
