// Command irfusionlint runs the project's static-analysis pass (see
// internal/lint) over the module tree and reports findings as
// file:line: rule: message lines (or JSON with -json).
//
// Exit status: 0 when clean (after baseline filtering), 1 when
// findings remain, 2 on load/usage errors. CI runs it via `make lint`
// with the committed lint.baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"irfusion/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	modRoot := flag.String("C", ".", "module root to lint (directory containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings to filter out")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to -baseline and exit 0")
	flag.Parse()

	diags, err := lint.Run(*modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irfusionlint:", err)
		return 2
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "irfusionlint: -write-baseline requires -baseline")
			return 2
		}
		if err := lint.WriteBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintln(os.Stderr, "irfusionlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "irfusionlint: wrote %d findings to %s\n", len(diags), *baselinePath)
		return 0
	}

	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irfusionlint:", err)
			return 2
		}
		diags = b.Filter(diags)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "irfusionlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "irfusionlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
