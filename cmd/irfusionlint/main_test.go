package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The one-command rebaseline contract: -update-baseline followed by a
// plain run against the written baseline is clean, exit 0. Exercises
// the full pipeline (real tree analysis, SARIF and JSON emission, and
// the budget gate wiring) in two runs.
func TestUpdateBaselineThenCleanRun(t *testing.T) {
	tmp := t.TempDir()
	bl := filepath.Join(tmp, "lint.baseline")

	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "-baseline", bl, "-update-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("-update-baseline exit %d\nstderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(bl); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	sarif := filepath.Join(tmp, "lint.sarif")
	budget := filepath.Join(tmp, "lint.budget")
	// Generous committed value: this asserts the gate is wired, the
	// real perf budget lives in the repo's committed lint.budget.
	if err := os.WriteFile(budget, []byte("# test budget\n600\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	code := run([]string{"-C", "../..", "-baseline", bl, "-sarif", sarif, "-budget", budget, "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run against fresh baseline exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}

	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output does not decode: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("findings after rebaseline: %v", rep.Findings)
	}
	if rep.Baselined != rep.Total {
		t.Errorf("baselined %d != total %d", rep.Baselined, rep.Total)
	}
	if rep.ElapsedSeconds <= 0 {
		t.Errorf("elapsed_seconds %v, want > 0", rep.ElapsedSeconds)
	}

	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatalf("SARIF not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF does not decode: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Errorf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
}

func TestBudgetFileRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	path := filepath.Join(tmp, "lint.budget")
	if err := writeBudgetFile(path, 2.37); err != nil {
		t.Fatal(err)
	}
	got, err := readBudgetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.37 {
		t.Errorf("round trip %v, want 2.37", got)
	}
	for _, bad := range []string{"", "# only comments\n", "zero\n", "-1\n", "0\n"} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readBudgetFile(path); err == nil {
			t.Errorf("readBudgetFile accepted %q", bad)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-write-baseline"}, &out, &errOut); code != 2 {
		t.Errorf("-write-baseline without -baseline: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-write-budget"}, &out, &errOut); code != 2 {
		t.Errorf("-write-budget without -budget: exit %d, want 2", code)
	}
}
