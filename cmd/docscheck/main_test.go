package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fixture repo under a temp dir and returns its
// root. Keys are slash-relative paths, values file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func checkOne(t *testing.T, root, doc string) []string {
	t.Helper()
	idx, err := indexTree(root)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := checkDoc(filepath.Join(root, filepath.FromSlash(doc)), idx)
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

// TestDeadLinkDetected is the acceptance fixture of the docs-check
// satellite: a doc with a dead relative link must fail the check.
func TestDeadLinkDetected(t *testing.T) {
	root := writeTree(t, map[string]string{
		"docs/GUIDE.md": "Start with [the overview](OVERVIEW.md) before anything else.\n",
	})
	problems := checkOne(t, root, "docs/GUIDE.md")
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the dead link", problems)
	}
	if !strings.Contains(problems[0], "OVERVIEW.md") || !strings.Contains(problems[0], "dead link") {
		t.Fatalf("diagnostic %q does not name the dead link", problems[0])
	}
}

func TestLinksResolveAndSkip(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": strings.Join([]string{
			"See [the guide](docs/GUIDE.md) and [a section](docs/GUIDE.md#ring).",
			"External [site](https://example.com/x.md) and [mail](mailto:a@b.c) are skipped.",
			"In-page [jump](#local-heading) is skipped too.",
			"",
		}, "\n"),
		"docs/GUIDE.md": "# Guide\n\nBack to [the readme](../README.md).\n",
	})
	for _, doc := range []string{"README.md", "docs/GUIDE.md"} {
		if problems := checkOne(t, root, doc); len(problems) != 0 {
			t.Errorf("%s: unexpected problems: %v", doc, problems)
		}
	}
}

func TestAnchorChecks(t *testing.T) {
	tenLines := strings.Repeat("package p\n", 10)
	root := writeTree(t, map[string]string{
		"internal/solver/solver.go": tenLines,
		"internal/other/solver.go":  strings.Repeat("package q\n", 3),
	})
	cases := []struct {
		line   string
		broken int
	}{
		{"converges at `internal/solver/solver.go:7`", 0},
		{"stale pathed anchor `internal/solver/solver.go:99`", 1},
		{"missing file `internal/gone/gone.go:1`", 1},
		// Bare basename: passes if ANY candidate is long enough.
		{"bare anchor `solver.go:7` matches the longer candidate", 0},
		{"bare anchor `solver.go:99` exceeds every candidate", 1},
		{"unknown basename `nowhere.go:1`", 1},
	}
	for _, tc := range cases {
		doc := writeTree(t, map[string]string{"doc.md": tc.line + "\n"})
		// Anchors resolve against root, but the doc can live anywhere.
		idx, err := indexTree(root)
		if err != nil {
			t.Fatal(err)
		}
		problems, err := checkDoc(filepath.Join(doc, "doc.md"), idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != tc.broken {
			t.Errorf("%q: %d problems %v, want %d", tc.line, len(problems), problems, tc.broken)
		}
	}
}

// TestRepoDocsClean runs the real gate over the repo's own docs: the
// same invocation `make docs-check` uses must come back clean.
func TestRepoDocsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("not running inside the repo tree")
	}
	docs, err := collectMarkdown([]string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "docs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 4 {
		t.Fatalf("only %d docs found — collection is broken", len(docs))
	}
	idx, err := indexTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		problems, err := checkDoc(doc, idx)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
}
