// Command docscheck keeps the prose honest: it scans markdown files
// for relative links and file:line source anchors and fails when any
// of them no longer resolve against the working tree. It is the
// engine of the `make docs-check` CI gate — refactors that move code
// out from under a documented line number, or rename a file a doc
// links to, break the build instead of silently rotting the docs.
//
//	docscheck README.md docs
//
// Arguments are markdown files or directories (scanned recursively
// for *.md). Two kinds of references are checked:
//
//   - Relative markdown links [text](path): the target, resolved
//     against the linking file's directory, must exist. External
//     links (http://, https://, mailto:) and pure #fragment anchors
//     are skipped; a #fragment suffix on a file target is stripped
//     before the existence check.
//
//   - Source anchors file.go:line: the file must exist and hold at
//     least that many lines. Anchors containing a path separator are
//     resolved from the repo root (-root, default "."); bare
//     basenames match any repo file with that name, and pass if any
//     candidate is long enough.
//
// Exit status is non-zero when any reference is broken, with one
// diagnostic line per problem.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	root := flag.String("root", ".", "repo root that file:line anchors resolve against")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: docscheck [-root DIR] <file.md|dir> ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	docs, err := collectMarkdown(flag.Args())
	if err != nil {
		log.Fatalf("docscheck: %v", err)
	}
	idx, err := indexTree(*root)
	if err != nil {
		log.Fatalf("docscheck: %v", err)
	}
	broken := 0
	for _, doc := range docs {
		problems, err := checkDoc(doc, idx)
		if err != nil {
			log.Fatalf("docscheck: %v", err)
		}
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
			broken++
		}
	}
	if broken > 0 {
		log.Fatalf("docscheck: %d broken reference(s) across %d file(s)", broken, len(docs))
	}
	log.Printf("docscheck: %d file(s) clean", len(docs))
}

// collectMarkdown expands the argument list: directories are walked
// recursively for *.md files, plain files are taken as given.
func collectMarkdown(args []string) ([]string, error) {
	var docs []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			docs = append(docs, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				docs = append(docs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return docs, nil
}

// treeIndex is one walk of the repo: every file path (slash-separated,
// relative to root) plus a basename index so bare anchors like
// "solver.go:122" can find their file without a package prefix.
type treeIndex struct {
	root       string
	byBasename map[string][]string // basename → relative paths
	lineCounts map[string]int      // relative path → memoized line count
}

func indexTree(root string) (*treeIndex, error) {
	idx := &treeIndex{
		root:       root,
		byBasename: map[string][]string{},
		lineCounts: map[string]int{},
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		idx.byBasename[d.Name()] = append(idx.byBasename[d.Name()], rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// lines returns the line count of a root-relative file, memoized.
func (idx *treeIndex) lines(rel string) (int, error) {
	if n, ok := idx.lineCounts[rel]; ok {
		return n, nil
	}
	data, err := os.ReadFile(filepath.Join(idx.root, filepath.FromSlash(rel)))
	if err != nil {
		return 0, err
	}
	n := strings.Count(string(data), "\n")
	if len(data) > 0 && !strings.HasSuffix(string(data), "\n") {
		n++
	}
	idx.lineCounts[rel] = n
	return n, nil
}

var (
	// [text](target) — target captured up to the closing paren.
	linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// path/file.go:123 or file.go:123 — Go source anchors only, so
	// URLs with ports and timestamps never false-positive.
	anchorRe = regexp.MustCompile(`([A-Za-z0-9_][A-Za-z0-9_./-]*\.go):([0-9]+)`)
)

// checkDoc scans one markdown file and returns a diagnostic line per
// broken reference.
func checkDoc(doc string, idx *treeIndex) ([]string, error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return nil, err
	}
	var problems []string
	dir := filepath.Dir(doc)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			if frag := strings.IndexByte(target, '#'); frag >= 0 {
				target = target[:frag]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(target))); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: dead link: %s does not resolve", doc, i+1, m[1]))
			}
		}
		for _, m := range anchorRe.FindAllStringSubmatch(line, -1) {
			file, lineStr := m[1], m[2]
			want, err := strconv.Atoi(lineStr)
			if err != nil || want < 1 {
				problems = append(problems,
					fmt.Sprintf("%s:%d: bad anchor line number: %s:%s", doc, i+1, file, lineStr))
				continue
			}
			if p := idx.checkAnchor(file, want); p != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", doc, i+1, p))
			}
		}
	}
	return problems, nil
}

// skipLink reports whether a link target is out of scope: external
// URLs and in-page fragment anchors.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkAnchor verifies a file.go:line anchor against the tree index
// and returns a diagnostic ("" when the anchor resolves). Pathed
// anchors must name an existing root-relative file with enough lines;
// bare basenames pass if any same-named repo file is long enough.
func (idx *treeIndex) checkAnchor(file string, line int) string {
	if strings.Contains(file, "/") {
		n, err := idx.lines(file)
		if err != nil {
			return fmt.Sprintf("stale anchor: %s:%d — file not found under %s", file, line, idx.root)
		}
		if line > n {
			return fmt.Sprintf("stale anchor: %s:%d — file has only %d lines", file, line, n)
		}
		return ""
	}
	candidates := idx.byBasename[file]
	if len(candidates) == 0 {
		return fmt.Sprintf("stale anchor: %s:%d — no file with that basename in the tree", file, line)
	}
	best := 0
	for _, rel := range candidates {
		n, err := idx.lines(rel)
		if err != nil {
			continue
		}
		if n >= line {
			return ""
		}
		if n > best {
			best = n
		}
	}
	return fmt.Sprintf("stale anchor: %s:%d — longest candidate has only %d lines", file, line, best)
}
