package main

import "testing"

func TestScaleFor(t *testing.T) {
	q := scaleFor("quick")
	f := scaleFor("full")
	if q.Res >= f.Res || q.Epochs >= f.Epochs || q.Fake >= f.Fake {
		t.Errorf("quick scale should be smaller than full: %+v vs %+v", q, f)
	}
	if f.Base%4 != 0 {
		t.Error("full Base must stay divisible by 4 for Inception")
	}
}

func TestIsBasicChannel(t *testing.T) {
	cases := map[string]bool{
		"current_m1":    true,
		"current":       true,
		"eff_dist":      true,
		"pdn_density":   true,
		"resistance":    false,
		"sp_resistance": false,
		"num_drop_m1":   false,
	}
	for name, want := range cases {
		if got := isBasicChannel(name); got != want {
			t.Errorf("isBasicChannel(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTable1OrderMatchesPaper(t *testing.T) {
	want := []string{"iredge", "mavirec", "irpnet", "pgau", "maunet", "contestwinner", "irfusion"}
	if len(table1Order) != len(want) {
		t.Fatalf("table rows = %d", len(table1Order))
	}
	for i, row := range table1Order {
		if row.key != want[i] {
			t.Errorf("row %d = %q, want %q", i, row.key, want[i])
		}
	}
}

func TestAblationListCoversFig8(t *testing.T) {
	keys := map[string]bool{}
	for _, ab := range ablations {
		keys[ab.key] = true
	}
	for _, want := range []string{"full", "no_num", "no_hier", "no_inception", "no_cbam", "no_aug", "no_curr"} {
		if !keys[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
	if !ablations[1].rebuildData || !ablations[2].rebuildData {
		t.Error("feature-changing ablations must rebuild data")
	}
	if ablations[3].rebuildData {
		t.Error("architecture ablations must not rebuild data")
	}
}
