package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"irfusion/internal/grid"
	"irfusion/internal/metrics"
)

// runFig6 reproduces the visual comparison of Fig 6: the golden IR
// drop map of one held-out real design next to the MAUnet and
// IR-Fusion predictions, dumped as PGM images plus terminal heatmaps.
func runFig6(e *env_, outDir string) error {
	maunet, err := e.trainModel("maunet")
	if err != nil {
		return err
	}
	ours, err := e.trainModel("irfusion")
	if err != nil {
		return err
	}
	idx := 0
	golden := e.fullTest[idx].Golden
	predM := maunet.Predict(e.basicTest[idx])
	predF := ours.Predict(e.fullTest[idx])

	dump := func(name string, m *grid.Map) error {
		if err := os.WriteFile(filepath.Join(outDir, "fig6_"+name+".pgm"), []byte(m.PGM()), 0o644); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(outDir, "fig6_"+name+".ppm"), []byte(m.PPM()), 0o644)
	}
	for name, m := range map[string]*grid.Map{
		"golden":       golden,
		"maunet":       predM,
		"irfusion":     predF,
		"maunet_err":   grid.DiffMap(predM, golden),
		"irfusion_err": grid.DiffMap(predF, golden),
	} {
		if err := dump(name, m); err != nil {
			return err
		}
	}

	log.Printf("design %s (max drop %.3g V):", e.testDesigns[idx].Name, golden.Max())
	log.Printf("(a) Golden\n%s", golden.ASCII(48))
	log.Printf("(b) MAUnet   MAE=%.3g  F1=%.2f\n%s",
		metrics.MAE(predM, golden), metrics.F1(predM, golden), predM.ASCII(48))
	log.Printf("(c) IR-Fusion  MAE=%.3g  F1=%.2f\n%s",
		metrics.MAE(predF, golden), metrics.F1(predF, golden), predF.ASCII(48))

	f, err := os.Create(filepath.Join(outDir, "fig6_metrics.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fprintRow(f, "method", "mae_1e-4V", "f1", "mirde_1e-4V")
	for name, p := range map[string]*grid.Map{"maunet": predM, "irfusion": predF} {
		fprintRow(f, name, fmt.Sprintf("%.3f", metrics.MAE(p, golden)*1e4),
			fmt.Sprintf("%.3f", metrics.F1(p, golden)),
			fmt.Sprintf("%.3f", metrics.MIRDE(p, golden)*1e4))
	}
	return nil
}
