package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"irfusion/internal/core"
	"irfusion/internal/metrics"
)

// ablation describes one removed technique of Fig 8.
type ablation struct {
	key, label string
	mutate     func(core.Config) core.Config
	// rebuildData indicates the feature set changes (numerical /
	// hierarchical ablations), requiring fresh samples.
	rebuildData bool
}

var ablations = []ablation{
	{"full", "IR-Fusion (full)", func(c core.Config) core.Config { return c }, false},
	{"no_num", "w/o Num. Solu.", func(c core.Config) core.Config { c.UseNumerical = false; return c }, true},
	{"no_hier", "w/o Hier. Feat.", func(c core.Config) core.Config { c.Hierarchical = false; return c }, true},
	{"no_inception", "w/o Inception", func(c core.Config) core.Config { c.UseInception = false; return c }, false},
	{"no_cbam", "w/o CBAM", func(c core.Config) core.Config { c.UseCBAM = false; return c }, false},
	{"no_aug", "w/o Data Aug.", func(c core.Config) core.Config { c.UseAugmentation = false; return c }, false},
	{"no_curr", "w/o Curr. Lear.", func(c core.Config) core.Config { c.UseCurriculum = false; return c }, false},
}

// runFig8 reproduces the ablation study: retrain IR-Fusion with each
// technique removed and report the MAE increase and F1 decrease
// ratios relative to the full model.
func runFig8(e *env_, outDir string) error {
	f, err := os.Create(filepath.Join(outDir, "fig8.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fprintRow(f, "variant", "mae_1e-4V", "f1", "mae_increase_pct", "f1_decrease_pct")

	var fullRep metrics.Report
	log.Printf("%-18s %10s %6s %10s %10s", "Variant", "MAE(1e-4V)", "F1", "ΔMAE(%)", "ΔF1(%)")
	for _, ab := range ablations {
		cfg := ab.mutate(e.baseConfig())
		cfg.ModelName = "irfusion"
		train, test := e.fullTrain, e.fullTest
		if ab.rebuildData {
			opts := cfg.DatasetOptions()
			var err error
			train, err = buildSamples(e.trainDesigns, opts)
			if err != nil {
				return err
			}
			test, err = buildSamples(e.testDesigns, opts)
			if err != nil {
				return err
			}
		}
		log.Printf("training %s...", ab.label)
		res, err := core.Train(cfg, train)
		if err != nil {
			return fmt.Errorf("%s: %w", ab.key, err)
		}
		avg := metrics.Average(res.Analyzer.Evaluate(test))
		if ab.key == "full" {
			fullRep = avg
		}
		dMAE := 0.0
		dF1 := 0.0
		if fullRep.MAE > 0 {
			dMAE = (avg.MAE - fullRep.MAE) / fullRep.MAE * 100
		}
		if fullRep.F1 > 0 {
			dF1 = (fullRep.F1 - avg.F1) / fullRep.F1 * 100
		}
		log.Printf("%-18s %10.2f %6.2f %+10.1f %+10.1f", ab.label, avg.MAE*1e4, avg.F1, dMAE, dF1)
		fprintRow(f, ab.label, fmt.Sprintf("%.3f", avg.MAE*1e4), fmt.Sprintf("%.3f", avg.F1),
			fmt.Sprintf("%.1f", dMAE), fmt.Sprintf("%.1f", dF1))
	}
	return nil
}
