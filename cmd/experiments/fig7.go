package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"irfusion/internal/core"
	"irfusion/internal/metrics"
)

// runFig7 reproduces the trade-off study: for solver iteration
// budgets k = 1..10, compare the pure numerical simulator
// (PowerRush-style budgeted PCG) against IR-Fusion whose rough stage
// runs the same k iterations before ML refinement. Both engines share
// the same preconditioner; see DESIGN.md for the scale substitution.
func runFig7(e *env_, outDir string) error {
	ours, err := e.trainSweepModel()
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outDir, "fig7.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fprintRow(f, "iters", "numerical_mae_1e-4V", "numerical_f1", "fusion_mae_1e-4V", "fusion_f1",
		"numerical_runtime_s", "fusion_runtime_s")

	log.Printf("%5s %16s %14s %16s %12s", "iters", "PowerRush MAE", "PowerRush F1", "IR-Fusion MAE", "IR-Fusion F1")
	type point struct{ numMAE, numF1, fusMAE, fusF1 float64 }
	var curve []point
	for k := 1; k <= 10; k++ {
		// Pure numerical at budget k.
		var numReps, fusReps []metrics.Report
		na := &core.NumericalAnalyzer{Iters: k, Resolution: e.sc.Res}
		for di, d := range e.testDesigns {
			m, rt, _, err := na.Analyze(d)
			if err != nil {
				return err
			}
			r := metrics.Evaluate(m, e.fullTest[di].Golden)
			r.Runtime = rt.Seconds()
			numReps = append(numReps, r)
		}
		// Fusion with rough features rebuilt at budget k.
		opts := e.fullOpts()
		opts.RoughIters = k
		samples, err := buildSamples(e.testDesigns, opts)
		if err != nil {
			return err
		}
		fusReps = ours.Evaluate(samples)
		numAvg := metrics.Average(numReps)
		fusAvg := metrics.Average(fusReps)
		curve = append(curve, point{numAvg.MAE, numAvg.F1, fusAvg.MAE, fusAvg.F1})
		log.Printf("%5d %16.2f %14.2f %16.2f %12.2f",
			k, numAvg.MAE*1e4, numAvg.F1, fusAvg.MAE*1e4, fusAvg.F1)
		fprintRow(f, k, fmt.Sprintf("%.3f", numAvg.MAE*1e4), fmt.Sprintf("%.3f", numAvg.F1),
			fmt.Sprintf("%.3f", fusAvg.MAE*1e4), fmt.Sprintf("%.3f", fusAvg.F1),
			fmt.Sprintf("%.4f", numAvg.Runtime), fmt.Sprintf("%.4f", fusAvg.Runtime))
	}

	// Shape checks from §IV-C: fusion F1 above numerical F1 at every
	// budget, and fusion reaching at small k the MAE that the pure
	// numerical method needs many more iterations for.
	f1OK := true
	for _, p := range curve {
		if p.fusF1 < p.numF1 {
			f1OK = false
		}
	}
	crossover := -1
	for k, p := range curve {
		if p.numMAE <= curve[1].fusMAE {
			crossover = k + 1
			break
		}
	}
	log.Printf("shape check: fusion F1 >= numerical F1 at all k: %v", f1OK)
	if crossover > 0 {
		log.Printf("shape check: numerical needs %d iterations to reach fusion@2 MAE (%.3g)",
			crossover, curve[1].fusMAE)
	} else {
		log.Printf("shape check: numerical never reaches fusion@2 MAE (%.3g) within 10 iterations",
			curve[1].fusMAE)
	}
	return nil
}
