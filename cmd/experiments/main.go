// Command experiments regenerates the evaluation artifacts of the
// IR-Fusion paper on the synthetic ICCAD-2023-like dataset:
//
//	-exp table1   main results (TABLE I): 6 baselines + IR-Fusion
//	-exp fig6     prediction heatmaps: golden vs MAUnet vs IR-Fusion
//	-exp fig7     trade-off sweep: solver iterations 1-10, fusion vs PowerRush
//	-exp fig8     ablation study: ΔMAE% / ΔF1% per removed technique
//	-exp all      everything above, reusing trained models
//
// Modes: -mode quick (CI-sized, ~1 min) or -mode full (the default
// experiment scale). CSVs and PGM images land in -out.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"irfusion/internal/obs"
	"irfusion/internal/parallel"
)

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("exp", "all", "experiments: comma list of table1|fig6|fig7|fig8, or all")
		mode     = flag.String("mode", "quick", "scale: quick|full")
		out      = flag.String("out", "out", "output directory for CSV/PGM artifacts")
		seed     = flag.Int64("seed", 1, "master seed")
		fake     = flag.Int("fake", 0, "override: number of fake (training) designs")
		realN    = flag.Int("real", 0, "override: number of real designs (split train/test)")
		res      = flag.Int("res", 0, "override: raster resolution")
		epoch    = flag.Int("epochs", 0, "override: training epochs")
		manifest = flag.String("manifest", "", "write a JSON run manifest to this file")
		debug    = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	sc := scaleFor(*mode)
	if *fake > 0 {
		sc.Fake = *fake
	}
	if *realN > 1 {
		sc.RealTrain = *realN / 2
		sc.RealTest = *realN - *realN/2
	}
	if *res > 0 {
		sc.Res = *res
	}
	if *epoch > 0 {
		sc.Epochs = *epoch
	}
	sc.Seed = *seed

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	rec := obs.NewRecorder()
	pool := parallel.Default()
	rec.SetGauge("pool.workers", float64(pool.Workers()))
	rec.SetGauge("pool.min_work", float64(pool.MinWork()))
	obs.SetActive(rec)
	if *debug != "" {
		if _, addr, err := obs.ServeDebug(*debug); err != nil {
			log.Printf("debug server: %v", err)
		} else {
			log.Printf("debug server at http://%s/debug/vars and /debug/pprof/", addr)
		}
	}

	env, err := prepare(sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset ready: %d fake + %d real-train + %d real-test designs at %dx%d\n",
		sc.Fake, sc.RealTrain, sc.RealTest, sc.Res, sc.Res)

	run := func(name string, fn func(*env_, string) error) {
		log.Printf("=== %s ===", name)
		if err := fn(env, *out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	selected := *exp
	if selected == "all" {
		selected = "table1,fig6,fig7,fig8"
	}
	for _, name := range strings.Split(selected, ",") {
		switch strings.TrimSpace(name) {
		case "table1":
			run("TABLE I", runTable1)
		case "fig6":
			run("Fig 6", runFig6)
		case "fig7":
			run("Fig 7", runFig7)
		case "fig8":
			run("Fig 8", runFig8)
		case "":
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}
	obs.SetActive(nil)
	m := rec.Manifest("experiments", sc)
	fmt.Fprint(os.Stderr, m.Summary())
	if *manifest != "" {
		if err := obs.FileSink(*manifest).Write(m); err != nil {
			log.Fatalf("manifest: %v", err)
		}
		log.Printf("wrote %s", *manifest)
	}
	log.Printf("artifacts written to %s", mustAbs(*out))
}

func mustAbs(p string) string {
	a, err := filepath.Abs(p)
	if err != nil {
		return p
	}
	return a
}

// scale bundles the experiment sizing knobs.
type scale struct {
	Res       int
	Fake      int
	RealTrain int
	RealTest  int
	Epochs    int
	Base      int
	Depth     int
	LR        float64
	Seed      int64
}

func scaleFor(mode string) scale {
	switch mode {
	case "full":
		// The paper trains on 100 fake + 10 real and tests on 10 real
		// at 256×256; this is the reduced-scale equivalent that runs
		// on a laptop CPU in tens of minutes. Scale further with the
		// -res/-fake/-real/-epochs overrides when more compute is
		// available.
		return scale{Res: 48, Fake: 12, RealTrain: 4, RealTest: 4, Epochs: 12, Base: 8, Depth: 2, LR: 2e-3}
	default:
		return scale{Res: 32, Fake: 6, RealTrain: 2, RealTest: 2, Epochs: 8, Base: 4, Depth: 2, LR: 5e-3}
	}
}

func fprintRow(w *os.File, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "%v", c)
	}
	fmt.Fprintln(w)
}
