package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"irfusion/internal/metrics"
)

// table1Order mirrors the row order of TABLE I in the paper.
var table1Order = []struct {
	key, label string
}{
	{"iredge", "IREDGe"},
	{"mavirec", "MAVIREC"},
	{"irpnet", "IRPnet"},
	{"pgau", "PGAU"},
	{"maunet", "MAUnet"},
	{"contestwinner", "Contest Winner"},
	{"irfusion", "IR-Fusion (Ours)"},
}

// runTable1 trains every model and prints the main-results table:
// MAE, F1, Runtime, MIRDE averaged over the real test designs.
func runTable1(e *env_, outDir string) error {
	f, err := os.Create(filepath.Join(outDir, "table1.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fprintRow(f, "method", "mae_1e-4V", "f1", "runtime_s", "mirde_1e-4V", "cc")

	log.Printf("%-18s %10s %6s %10s %12s %6s", "Methods", "MAE(1e-4V)", "F1", "Runtime(s)", "MIRDE(1e-4V)", "CC")
	results := map[string]metrics.Report{}
	for _, row := range table1Order {
		a, err := e.trainModel(row.key)
		if err != nil {
			return fmt.Errorf("%s: %w", row.key, err)
		}
		avg := metrics.Average(a.Evaluate(e.testSetFor(row.key)))
		results[row.key] = avg
		log.Printf("%-18s %10.2f %6.2f %10.3f %12.2f %6.3f",
			row.label, avg.MAE*1e4, avg.F1, avg.Runtime, avg.MIRDE*1e4, avg.CC)
		fprintRow(f, row.label, fmt.Sprintf("%.3f", avg.MAE*1e4), fmt.Sprintf("%.3f", avg.F1),
			fmt.Sprintf("%.4f", avg.Runtime), fmt.Sprintf("%.3f", avg.MIRDE*1e4), fmt.Sprintf("%.3f", avg.CC))
	}

	// Shape check mirroring the paper's headline: IR-Fusion best on
	// the accuracy metrics.
	ours := results["irfusion"]
	bestBaselineMAE, bestBaselineF1 := 1e18, 0.0
	for k, r := range results {
		if k == "irfusion" {
			continue
		}
		if r.MAE < bestBaselineMAE {
			bestBaselineMAE = r.MAE
		}
		if r.F1 > bestBaselineF1 {
			bestBaselineF1 = r.F1
		}
	}
	log.Printf("shape check: IR-Fusion MAE %.3g vs best baseline %.3g (want lower); F1 %.2f vs %.2f (want higher)",
		ours.MAE, bestBaselineMAE, ours.F1, bestBaselineF1)
	return nil
}
