package main

import (
	"fmt"
	"log"
	"strings"

	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/pgen"
)

// env_ carries the generated designs and the sample sets shared by
// the experiments.
type env_ struct {
	sc scale

	trainDesigns []*pgen.Design
	testDesigns  []*pgen.Design

	// fullTrain/fullTest carry the complete fused feature set
	// (hierarchical structural + numerical at the default budget).
	fullTrain, fullTest []*dataset.Sample
	// basicTrain/basicTest carry only the contest input images
	// (current, effective distance, PDN density) for the baselines.
	basicTrain, basicTest []*dataset.Sample

	// Trained analyzers cached across experiments (name -> analyzer).
	analyzers map[string]*core.Analyzer
}

// fullOpts returns the fused-pipeline dataset options. The rough
// budget matches core.Default (calibrated so the SSOR rough base is
// informative enough for residual correction; see DESIGN.md).
func (e *env_) fullOpts() dataset.Options {
	opts := dataset.DefaultOptions(e.sc.Res, e.sc.Res)
	opts.RoughIters = core.Default(e.sc.Res).RoughIters
	return opts
}

// basicOpts returns the baseline dataset options (no numerical
// features, collapsed layers).
func (e *env_) basicOpts() dataset.Options {
	opts := dataset.DefaultOptions(e.sc.Res, e.sc.Res)
	opts.IncludeNumerical = false
	opts.Hierarchical = false
	return opts
}

// isBasicChannel keeps the three contest input images.
func isBasicChannel(name string) bool {
	return strings.HasPrefix(name, "current") || name == "eff_dist" || name == "pdn_density"
}

// prepare generates designs and builds the shared sample sets.
func prepare(sc scale) (*env_, error) {
	e := &env_{sc: sc, analyzers: map[string]*core.Analyzer{}}

	gen := func(name string, class pgen.Class, seed int64) (*pgen.Design, error) {
		return pgen.Generate(pgen.DefaultConfig(name, class, sc.Res, sc.Res, seed))
	}
	for i := 0; i < sc.Fake; i++ {
		d, err := gen(fmt.Sprintf("fake%02d", i), pgen.Fake, sc.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		e.trainDesigns = append(e.trainDesigns, d)
	}
	for i := 0; i < sc.RealTrain; i++ {
		d, err := gen(fmt.Sprintf("real%02d", i), pgen.Real, sc.Seed+1000+int64(i))
		if err != nil {
			return nil, err
		}
		e.trainDesigns = append(e.trainDesigns, d)
	}
	for i := 0; i < sc.RealTest; i++ {
		d, err := gen(fmt.Sprintf("test%02d", i), pgen.Real, sc.Seed+2000+int64(i))
		if err != nil {
			return nil, err
		}
		e.testDesigns = append(e.testDesigns, d)
	}

	var err error
	e.fullTrain, err = buildSamples(e.trainDesigns, e.fullOpts())
	if err != nil {
		return nil, err
	}
	e.fullTest, err = buildSamples(e.testDesigns, e.fullOpts())
	if err != nil {
		return nil, err
	}
	bt, err := buildSamples(e.trainDesigns, e.basicOpts())
	if err != nil {
		return nil, err
	}
	bs, err := buildSamples(e.testDesigns, e.basicOpts())
	if err != nil {
		return nil, err
	}
	e.basicTrain = dataset.FilterFeatures(bt, isBasicChannel)
	e.basicTest = dataset.FilterFeatures(bs, isBasicChannel)
	return e, nil
}

func buildSamples(designs []*pgen.Design, opts dataset.Options) ([]*dataset.Sample, error) {
	out := make([]*dataset.Sample, 0, len(designs))
	for _, d := range designs {
		s, err := dataset.Build(d, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// baseConfig returns the shared training configuration.
func (e *env_) baseConfig() core.Config {
	cfg := core.Default(e.sc.Res)
	cfg.Base = e.sc.Base
	cfg.Depth = e.sc.Depth
	cfg.Epochs = e.sc.Epochs
	cfg.LearningRate = e.sc.LR
	cfg.Seed = e.sc.Seed
	return cfg
}

// trainModel trains (or returns the cached) analyzer for a registry
// model name using the appropriate sample set.
func (e *env_) trainModel(name string) (*core.Analyzer, error) {
	if a, ok := e.analyzers[name]; ok {
		return a, nil
	}
	cfg := e.baseConfig()
	cfg.ModelName = name
	train := e.fullTrain
	if name != "irfusion" {
		// Baselines consume the contest images only.
		cfg.UseNumerical = false
		cfg.Hierarchical = false
		train = e.basicTrain
	}
	log.Printf("training %s on %d designs (%d epochs)...", name, len(train), cfg.Epochs)
	res, err := core.Train(cfg, train)
	if err != nil {
		return nil, err
	}
	log.Printf("  %s: %d params, final loss %.4g, %.1fs",
		name, res.NumParams, res.FinalLoss, res.TrainTime.Seconds())
	e.analyzers[name] = res.Analyzer
	return res.Analyzer, nil
}

// trainSweepModel trains the Fig-7 fusion model on samples whose
// numerical features come from MIXED iteration budgets, so a single
// model remains calibrated across the whole 1-10 sweep (a model
// trained at one fixed budget misreads features from other budgets).
func (e *env_) trainSweepModel() (*core.Analyzer, error) {
	if a, ok := e.analyzers["irfusion-sweep"]; ok {
		return a, nil
	}
	var train []*dataset.Sample
	for _, k := range []int{1, 2, 4, 7, 10} {
		opts := e.fullOpts()
		opts.RoughIters = k
		s, err := buildSamples(e.trainDesigns, opts)
		if err != nil {
			return nil, err
		}
		train = append(train, s...)
	}
	cfg := e.baseConfig()
	cfg.ModelName = "irfusion"
	// The budget mix already multiplies the set; skip oversampling to
	// keep epochs affordable.
	cfg.OversampleFake = 1
	cfg.OversampleReal = 2
	log.Printf("training irfusion-sweep on %d mixed-budget samples (%d epochs)...", len(train), cfg.Epochs)
	res, err := core.Train(cfg, train)
	if err != nil {
		return nil, err
	}
	log.Printf("  irfusion-sweep: %d params, final loss %.4g, %.1fs",
		res.NumParams, res.FinalLoss, res.TrainTime.Seconds())
	e.analyzers["irfusion-sweep"] = res.Analyzer
	return res.Analyzer, nil
}

// testSetFor picks the evaluation samples matching a model's inputs.
func (e *env_) testSetFor(name string) []*dataset.Sample {
	if name == "irfusion" {
		return e.fullTest
	}
	return e.basicTest
}
