// Solver example: the pure numerical flow of the paper's §III-B.
// A generated SPICE deck is parsed, stamped into the MNA system, and
// solved with several Krylov configurations so the AMG-PCG advantage
// (Fig 3 of the paper) is visible as an iteration-count table.
//
//	go run ./examples/solver
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"irfusion/internal/amg"
	"irfusion/internal/circuit"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

func main() {
	log.SetFlags(0)

	// Generate a deck and round-trip it through the SPICE parser, the
	// way a real flow would consume a foundry netlist.
	design, err := pgen.Generate(pgen.DefaultConfig("solver-demo", pgen.Fake, 96, 96, 5))
	if err != nil {
		log.Fatal(err)
	}
	deck := design.Netlist.String()
	nl, err := spice.Parse(strings.NewReader(deck))
	if err != nil {
		log.Fatal(err)
	}
	nw, err := circuit.FromNetlist(nl)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := nw.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d-byte deck -> %d nodes, %d unknowns, %d nnz\n",
		len(deck), nw.NumNodes(), sys.N(), sys.G.NNZ())

	// AMG setup stage.
	t0 := time.Now()
	hier, err := amg.Build(sys.G, amg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMG setup in %v: %d levels, operator complexity %.2f\n",
		time.Since(t0).Round(time.Microsecond), hier.NumLevels(), hier.OperatorComplexity())
	for i, lvl := range hier.Levels {
		fmt.Printf("  level %d: n=%d nnz=%d\n", i, lvl.A.Rows(), lvl.A.NNZ())
	}

	// Solver shoot-out at 1e-10 relative residual.
	tol := solver.Options{Tol: 1e-10, MaxIter: 20000, Record: false}
	type entry struct {
		name string
		pre  solver.Preconditioner
		flex bool
	}
	kOpts := amg.DefaultOptions()
	vOpts := amg.DefaultOptions()
	vOpts.Cycle = amg.VCycle
	vh, err := amg.Build(sys.G, vOpts)
	if err != nil {
		log.Fatal(err)
	}
	kh, err := amg.Build(sys.G, kOpts)
	if err != nil {
		log.Fatal(err)
	}
	entries := []entry{
		{"CG (no preconditioner)", solver.Identity{}, false},
		{"Jacobi-PCG", solver.NewJacobi(sys.G), false},
		{"SSOR(2)-PCG", solver.NewSSOR(sys.G, 2), false},
		{"AMG(V)-PCG", vh, true},
		{"AMG(K)-PCG (PowerRush)", kh, true},
	}
	fmt.Printf("\n%-26s %10s %12s %14s\n", "solver", "iters", "time", "residual")
	for _, e := range entries {
		x := make([]float64, sys.N())
		o := tol
		o.Flexible = e.flex
		start := time.Now()
		res, err := solver.PCG(sys.G, x, sys.I, e.pre, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10d %12v %14.3g\n",
			e.name, res.Iterations, time.Since(start).Round(time.Microsecond), res.Residual)
	}

	// Worst-case drop from the last (converged) solve.
	x := make([]float64, sys.N())
	if _, err := solver.PCG(sys.G, x, sys.I, kh, solver.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	worst, at := 0.0, 0
	for i, v := range x {
		if v > worst {
			worst, at = v, i
		}
	}
	fmt.Printf("\nworst-case IR drop %.4g V at node %s\n", worst, nw.NodeList[sys.Unknown[at]])
}
