// Transient example: the dynamic IR-drop extension. A generated grid
// is augmented with per-cell decoupling capacitance, hit with a
// pulsed load, and integrated with backward Euler — showing the decap
// smoothing the dynamic droop that MAVIREC-style tools analyze.
//
//	go run ./examples/transient
package main

import (
	"fmt"
	"log"

	"irfusion/internal/circuit"
	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

func main() {
	log.SetFlags(0)

	design, err := pgen.Generate(pgen.DefaultConfig("transient-demo", pgen.Fake, 48, 48, 3))
	if err != nil {
		log.Fatal(err)
	}

	run := func(decapFarads float64) (float64, float64) {
		nl := &spice.Netlist{Title: design.Netlist.Title}
		nl.Elements = append(nl.Elements, design.Netlist.Elements...)
		if decapFarads > 0 {
			// Attach a decap at every load point.
			id := 0
			for _, e := range design.Netlist.Elements {
				if e.Type == spice.CurrentSource {
					id++
					nl.Elements = append(nl.Elements, spice.Element{
						Type: spice.Capacitor, Name: fmt.Sprintf("Cd%d", id),
						NodeA: e.NodeA, NodeB: spice.Ground, Value: decapFarads,
					})
				}
			}
		}
		nw, err := circuit.FromNetlist(nl)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := nw.Assemble()
		if err != nil {
			log.Fatal(err)
		}
		const h = 1e-12 // 1 ps steps
		tr, err := circuit.NewTransient(sys, h)
		if err != nil {
			log.Fatal(err)
		}
		// Pulse: 3× nominal current for 10 steps, then idle.
		burst := make([]float64, sys.N())
		for i, v := range sys.I {
			burst[i] = 3 * v
		}
		idle := make([]float64, sys.N())
		peak, err := tr.Run(100, func(step int, _ float64) []float64 {
			if step < 20 {
				return burst
			}
			return idle
		})
		if err != nil {
			log.Fatal(err)
		}
		final := 0.0
		for _, v := range tr.Drops() {
			if v > final {
				final = v
			}
		}
		return peak, final
	}

	fmt.Println("pulsed-load transient (3x nominal current for 20 ps):")
	fmt.Printf("%-22s %14s %18s\n", "configuration", "peak drop (V)", "drop at 100 ps (V)")
	p0, f0 := run(0)
	fmt.Printf("%-22s %14.5f %18.5f\n", "no decap", p0, f0)
	p1, f1 := run(1e-12)
	fmt.Printf("%-22s %14.5f %18.5f\n", "1 pF decap per cell", p1, f1)
	p2, f2 := run(5e-12)
	fmt.Printf("%-22s %14.5f %18.5f\n", "5 pF decap per cell", p2, f2)
	fmt.Printf("\ndecap suppresses the dynamic peak by %.1f%% (1 pF) and %.1f%% (5 pF)\n",
		100*(1-p1/p0), 100*(1-p2/p0))
}
