// Training example: the augmented-curriculum training loop of §III-E.
// Trains IR-Fusion and a baseline (PGAU) on the same generated data,
// showing the curriculum subsets growing, then evaluates both on
// held-out real-like designs and saves the fusion checkpoint.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/metrics"
	"irfusion/internal/pgen"
)

func main() {
	log.SetFlags(0)
	const size = 32

	cfg := core.Default(size)
	cfg.Base, cfg.Depth, cfg.Epochs = 4, 2, 8
	cfg.LearningRate = 5e-3

	fmt.Println("building dataset (6 fake + 2 real train, 2 real test)...")
	all, err := dataset.GenerateSet(6, 4, size, 11, cfg.DatasetOptions())
	if err != nil {
		log.Fatal(err)
	}
	train, test := all[:8], all[8:]

	// Show what the curriculum scheduler does: fake ("easy") designs
	// first, real ("hard") ones ramped in.
	aug := dataset.Oversample(dataset.Augment(train), 2, 5)
	cur := dataset.Curriculum{Ramp: 0.5}
	rng := rand.New(rand.NewSource(1))
	fmt.Println("\ncurriculum schedule (of", len(aug), "augmented+oversampled samples):")
	for _, epoch := range []int{0, 2, 4, 7} {
		subset := cur.Subset(aug, epoch, cfg.Epochs, rng)
		nReal := 0
		for _, s := range subset {
			if s.Class == pgen.Real {
				nReal++
			}
		}
		fmt.Printf("  epoch %d: %3d samples (%d hard/real)\n", epoch, len(subset), nReal)
	}

	fmt.Println("\ntraining IR-Fusion...")
	fusion, err := core.Train(cfg, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  epoch losses: %.4g ... %.4g\n", fusion.EpochLoss[0], fusion.FinalLoss)

	cfgB := cfg
	cfgB.ModelName = "pgau"
	cfgB.UseNumerical = false
	cfgB.Hierarchical = false
	trainB, err := dataset.GenerateSet(6, 2, size, 11, cfgB.DatasetOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training PGAU baseline (no numerical features)...")
	baseline, err := core.Train(cfgB, trainB)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on the held-out real designs.
	fmt.Println("\nheld-out evaluation:")
	fRep := metrics.Average(fusion.Analyzer.Evaluate(test))
	fmt.Printf("  IR-Fusion: %s\n", fRep)
	// The baseline needs matching (basic) features for its inputs;
	// seed 13 regenerates the same two held-out designs (11+2).
	testB, err := dataset.GenerateSet(0, 2, size, 13, cfgB.DatasetOptions())
	if err != nil {
		log.Fatal(err)
	}
	bRep := metrics.Average(baseline.Analyzer.Evaluate(testB))
	fmt.Printf("  PGAU:      %s\n", bRep)

	f, err := os.CreateTemp("", "irfusion-*.ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fusion.Analyzer.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved checkpoint to %s\n", f.Name())
}
