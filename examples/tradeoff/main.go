// Trade-off example: a miniature of the paper's Fig 7. For solver
// budgets k = 1..8, compare the pure numerical analyzer against the
// fused pipeline on one held-out design, printing the MAE/F1 curves.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/metrics"
	"irfusion/internal/pgen"
)

func main() {
	log.SetFlags(0)
	const size = 32

	cfg := core.Default(size)
	cfg.Base, cfg.Depth, cfg.Epochs = 4, 2, 6
	cfg.LearningRate = 5e-3
	cfg.OversampleFake, cfg.OversampleReal = 1, 2

	// Train on mixed solver budgets so one model serves the sweep.
	fmt.Println("training a budget-robust fusion model...")
	var train []*dataset.Sample
	for _, k := range []int{1, 2, 4, 8} {
		opts := cfg.DatasetOptions()
		opts.RoughIters = k
		s, err := dataset.GenerateSet(4, 2, size, 21, opts)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, s...)
	}
	res, err := core.Train(cfg, train)
	if err != nil {
		log.Fatal(err)
	}

	design, err := pgen.Generate(pgen.DefaultConfig("sweep", pgen.Real, size, size, 99))
	if err != nil {
		log.Fatal(err)
	}
	goldenOpts := cfg.DatasetOptions()
	goldenSample, err := dataset.Build(design, goldenOpts)
	if err != nil {
		log.Fatal(err)
	}
	golden := goldenSample.Golden

	fmt.Printf("\n%5s %18s %12s %18s %12s\n", "iters", "numerical MAE", "num. F1", "fusion MAE", "fusion F1")
	for k := 1; k <= 8; k++ {
		na := &core.NumericalAnalyzer{Iters: k, Resolution: size}
		nm, _, _, err := na.Analyze(design)
		if err != nil {
			log.Fatal(err)
		}
		opts := cfg.DatasetOptions()
		opts.RoughIters = k
		s, err := dataset.Build(design, opts)
		if err != nil {
			log.Fatal(err)
		}
		fp := res.Analyzer.Predict(s)
		fmt.Printf("%5d %18.4g %12.2f %18.4g %12.2f\n",
			k, metrics.MAE(nm, golden), metrics.F1(nm, golden),
			metrics.MAE(fp, golden), metrics.F1(fp, golden))
	}
	fmt.Println("\nfewer solver iterations + ML refinement ≈ many solver iterations (the fusion trade-off)")
}
