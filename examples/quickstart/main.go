// Quickstart: generate a synthetic power grid, run the golden
// numerical analysis, train a miniature IR-Fusion model, and compare
// the fused prediction against the golden IR-drop map.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/metrics"
	"irfusion/internal/pgen"
)

func main() {
	log.SetFlags(0)
	const size = 32

	// 1. Generate a "real-like" power-grid design (SPICE netlist with
	//    straps, vias, current loads, and VDD pads).
	design, err := pgen.Generate(pgen.DefaultConfig("quickstart", pgen.Real, size, size, 42))
	if err != nil {
		log.Fatal(err)
	}
	nr, ni, nv := design.Netlist.Counts()
	fmt.Printf("generated %q: %d resistors, %d loads, %d pads\n", design.Name, nr, ni, nv)

	// 2. Golden numerical analysis (converged AMG-PCG).
	golden := &core.NumericalAnalyzer{Resolution: size}
	gMap, gTime, residual, err := golden.Analyze(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden solve: residual %.2g in %v; worst-case drop %.4g V\n",
		residual, gTime.Round(0), gMap.Max())

	// 3. Train a miniature fusion model on a handful of generated
	//    designs (augmented curriculum learning under the hood).
	cfg := core.Default(size)
	cfg.Base, cfg.Depth, cfg.Epochs = 4, 2, 6
	cfg.LearningRate = 5e-3
	train, err := dataset.GenerateSet(4, 2, size, 7, cfg.DatasetOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training IR-Fusion on %d designs...\n", len(train))
	res, err := core.Train(cfg, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d parameters in %v (loss %.3g -> %.3g)\n",
		res.NumParams, res.TrainTime.Round(0), res.EpochLoss[0], res.FinalLoss)

	// 4. Fused analysis of the quickstart design.
	pred, fTime, err := res.Analyzer.Analyze(design)
	if err != nil {
		log.Fatal(err)
	}
	rep := metrics.Evaluate(pred, gMap)
	fmt.Printf("fusion analysis in %v: %s\n", fTime.Round(0), rep)

	fmt.Println("\ngolden IR-drop map:")
	fmt.Print(gMap.ASCII(48))
	fmt.Println("\nfused prediction:")
	fmt.Print(pred.ASCII(48))
}
