// Package irfusion reproduces "IR-Fusion: A Fusion Framework for
// Static IR Drop Analysis Combining Numerical Solution and Machine
// Learning" (DATE 2025) as a pure-Go library: a SPICE power-grid
// front end, an aggregation-based AMG-PCG solver (K-cycle, PowerRush
// style), hierarchical numerical-structural feature extraction, an
// Inception Attention U-Net (plus the paper's six baselines) on a
// from-scratch autodiff engine, and the augmented-curriculum training
// loop.
//
// This root package is the stable facade over the internal
// implementation packages. Typical use:
//
//	design, _ := irfusion.GenerateDesign(irfusion.DesignConfig("chip", irfusion.Real, 64, 64, 1))
//	cfg := irfusion.DefaultConfig(64)
//	train, _ := irfusion.GenerateTrainingSet(8, 4, 64, 1, cfg.DatasetOptions())
//	res, _ := irfusion.Train(cfg, train)
//	drops, runtime, _ := res.Analyzer.Analyze(design)
//
// The executables under cmd/ (irfusion, experiments) and the
// runnable programs under examples/ demonstrate the full surface.
package irfusion

import (
	"irfusion/internal/circuit"
	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/grid"
	"irfusion/internal/metrics"
	"irfusion/internal/pgen"
)

// Config is the fused-pipeline configuration (solver budget, model
// architecture, ablation switches, training hyper-parameters).
type Config = core.Config

// Analyzer is a trained fusion pipeline: rough AMG-PCG solve →
// hierarchical features → Inception Attention U-Net refinement.
type Analyzer = core.Analyzer

// TrainResult bundles a trained Analyzer with its training
// trajectory.
type TrainResult = core.TrainResult

// NumericalAnalyzer is the pure numerical baseline (budgeted PCG /
// converged AMG-PCG).
type NumericalAnalyzer = core.NumericalAnalyzer

// Design is a synthetic power-grid design (SPICE netlist plus
// metadata).
type Design = pgen.Design

// Sample is a design prepared for the ML stage (features + golden
// label).
type Sample = dataset.Sample

// Map is a dense 2-D raster (feature map or IR-drop map).
type Map = grid.Map

// Report carries the contest metrics for one evaluation: MAE, F1,
// MIRDE, CC, runtime.
type Report = metrics.Report

// DesignClass selects the generator regime.
type DesignClass = pgen.Class

// Design classes: Fake (regular BeGAN-like grids, the "easy"
// curriculum bucket) and Real (irregular grids with blockages, the
// "hard" bucket).
const (
	Fake = pgen.Fake
	Real = pgen.Real
)

// DefaultConfig returns the full IR-Fusion configuration at the given
// square raster resolution.
func DefaultConfig(resolution int) Config { return core.Default(resolution) }

// Train runs the augmented-curriculum training loop on prepared
// samples.
func Train(cfg Config, train []*Sample) (*TrainResult, error) { return core.Train(cfg, train) }

// LoadAnalyzer restores an Analyzer saved with Analyzer.Save.
var LoadAnalyzer = core.LoadAnalyzer

// DesignConfig builds a generator configuration for a synthetic
// power-grid design.
func DesignConfig(name string, class DesignClass, w, h int, seed int64) pgen.Config {
	return pgen.DefaultConfig(name, class, w, h, seed)
}

// GenerateDesign synthesizes a power-grid design (SPICE netlist with
// straps, vias, loads, and pads).
var GenerateDesign = pgen.Generate

// GenerateTrainingSet produces nFake fake plus nReal real designs and
// builds ML-ready samples for each.
var GenerateTrainingSet = dataset.GenerateSet

// BuildSample prepares one design for the ML stage (golden solve,
// rough solve, feature extraction).
var BuildSample = dataset.Build

// Evaluate computes the contest metrics of a prediction against the
// golden map.
var Evaluate = metrics.Evaluate

// ModelNames lists the registered architectures (the paper's six
// baselines plus "irfusion").
var ModelNames = core.ModelNames

// Transient is the dynamic IR-drop integrator (backward Euler over
// SPICE C cards); see circuit.NewTransient.
type Transient = circuit.Transient

// Network is the parsed circuit topology; System the reduced SPD
// IR-drop system.
type (
	Network = circuit.Network
	System  = circuit.System
)

// ParseNetlist builds the circuit topology from a parsed SPICE deck.
var ParseNetlist = circuit.FromNetlist

// NewTransient prepares a backward-Euler integrator over a system's
// capacitors with the given time step.
var NewTransient = circuit.NewTransient

// AnalyzeNets splits a dual-rail (or multi-net) deck and assembles an
// independent SPD system per power net — VDD IR drop and VSS ground
// bounce in one call.
var AnalyzeNets = circuit.AnalyzeNets
