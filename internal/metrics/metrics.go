// Package metrics implements the evaluation metrics of the ICCAD-2023
// static IR-drop contest used throughout the paper: MAE, the F1 score
// over the hotspot region (IR drop above 90 % of the ground-truth
// maximum), and MIRDE (the error in the region of maximum IR drop).
package metrics

import (
	"fmt"
	"math"

	"irfusion/internal/grid"
)

// HotspotFraction is the contest threshold: pixels at or above this
// fraction of the golden maximum are hotspot positives.
const HotspotFraction = 0.9

// MAE returns the mean absolute error between prediction and golden.
func MAE(pred, golden *grid.Map) float64 {
	return grid.MAE(pred, golden)
}

// Confusion counts hotspot classifications: both maps are thresholded
// at HotspotFraction × max(golden), per the contest definition.
type Confusion struct {
	TP, FP, TN, FN int
}

// Classify computes the hotspot confusion matrix.
func Classify(pred, golden *grid.Map) Confusion {
	if pred.H != golden.H || pred.W != golden.W {
		panic("metrics: shape mismatch")
	}
	thresh := HotspotFraction * golden.Max()
	var c Confusion
	for i := range golden.Data {
		gp := golden.Data[i] >= thresh
		pp := pred.Data[i] >= thresh
		switch {
		case gp && pp:
			c.TP++
		case !gp && pp:
			c.FP++
		case gp && !pp:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 { //irfusion:exact precision and recall are exactly zero only when there are no positives at all; guard the division
		return 0
	}
	return 2 * p * r / (p + r)
}

// F1 is a convenience wrapper computing the hotspot F1 directly.
func F1(pred, golden *grid.Map) float64 {
	return Classify(pred, golden).F1()
}

// MIRDE returns the maximum-IR-drop-region error: the mean absolute
// error over the golden hotspot region (≥ 90 % of the golden max),
// the worst-case region designers care about most.
func MIRDE(pred, golden *grid.Map) float64 {
	if pred.H != golden.H || pred.W != golden.W {
		panic("metrics: shape mismatch")
	}
	thresh := HotspotFraction * golden.Max()
	sum, n := 0.0, 0
	for i := range golden.Data {
		if golden.Data[i] >= thresh {
			sum += math.Abs(pred.Data[i] - golden.Data[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxDropError returns |max(pred) − max(golden)|, the error of the
// single worst-case value.
func MaxDropError(pred, golden *grid.Map) float64 {
	return math.Abs(pred.Max() - golden.Max())
}

// CC returns the Pearson correlation coefficient between the two
// maps (an auxiliary fidelity metric; 1 is perfect).
func CC(pred, golden *grid.Map) float64 {
	if pred.H != golden.H || pred.W != golden.W {
		panic("metrics: shape mismatch")
	}
	mp, mg := pred.Mean(), golden.Mean()
	var spg, spp, sgg float64
	for i := range pred.Data {
		dp := pred.Data[i] - mp
		dg := golden.Data[i] - mg
		spg += dp * dg
		spp += dp * dp
		sgg += dg * dg
	}
	if spp == 0 || sgg == 0 { //irfusion:exact exactly zero variance means a constant signal; correlation is undefined, not merely small
		return 0
	}
	return spg / math.Sqrt(spp*sgg)
}

// Report bundles the per-design evaluation numbers.
type Report struct {
	MAE     float64
	F1      float64
	MIRDE   float64
	CC      float64
	Runtime float64 // seconds
}

// Evaluate computes all map metrics at once.
func Evaluate(pred, golden *grid.Map) Report {
	return Report{
		MAE:   MAE(pred, golden),
		F1:    F1(pred, golden),
		MIRDE: MIRDE(pred, golden),
		CC:    CC(pred, golden),
	}
}

// Average returns the element-wise mean of several reports.
func Average(rs []Report) Report {
	var out Report
	if len(rs) == 0 {
		return out
	}
	for _, r := range rs {
		out.MAE += r.MAE
		out.F1 += r.F1
		out.MIRDE += r.MIRDE
		out.CC += r.CC
		out.Runtime += r.Runtime
	}
	n := float64(len(rs))
	out.MAE /= n
	out.F1 /= n
	out.MIRDE /= n
	out.CC /= n
	out.Runtime /= n
	return out
}

// String formats a report in the paper's Table-I units: MAE and MIRDE
// in 1e-4 V, runtime in seconds.
func (r Report) String() string {
	return fmt.Sprintf("MAE=%.2f(1e-4V) F1=%.2f MIRDE=%.2f(1e-4V) CC=%.3f runtime=%.2fs",
		r.MAE*1e4, r.F1, r.MIRDE*1e4, r.CC, r.Runtime)
}
