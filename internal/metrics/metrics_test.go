package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"irfusion/internal/grid"
)

func TestMAEZeroForIdentical(t *testing.T) {
	m := grid.FromData(2, 2, []float64{1, 2, 3, 4})
	if MAE(m, m) != 0 {
		t.Error("MAE of identical maps must be 0")
	}
}

func TestClassifyKnown(t *testing.T) {
	golden := grid.FromData(1, 4, []float64{10, 9.5, 5, 1}) // thresh = 9
	pred := grid.FromData(1, 4, []float64{9.2, 1, 9.5, 2})
	c := Classify(pred, golden)
	// pixel0: g+ p+ TP; pixel1: g+ p- FN; pixel2: g- p+ FP; pixel3: TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("confusion %+v", c)
	}
	if math.Abs(c.Precision()-0.5) > 1e-12 || math.Abs(c.Recall()-0.5) > 1e-12 {
		t.Error("P/R wrong")
	}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Errorf("F1 = %v, want 0.5", c.F1())
	}
}

func TestF1PerfectPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := grid.New(8, 8)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	if F1(g, g) != 1 {
		t.Error("perfect prediction must score F1 = 1")
	}
}

func TestF1EdgeCases(t *testing.T) {
	g := grid.FromData(1, 2, []float64{10, 1})
	miss := grid.FromData(1, 2, []float64{1, 1}) // no predicted positives
	if F1(miss, g) != 0 {
		t.Error("all-miss should be F1 = 0")
	}
	var c Confusion
	if c.F1() != 0 || c.Precision() != 0 || c.Recall() != 0 {
		t.Error("empty confusion must score 0")
	}
}

func TestMIRDE(t *testing.T) {
	golden := grid.FromData(1, 4, []float64{10, 9.5, 5, 1}) // hotspot = {0,1}
	pred := grid.FromData(1, 4, []float64{9, 9.5, 0, 0})
	want := (1.0 + 0.0) / 2
	if got := MIRDE(pred, golden); math.Abs(got-want) > 1e-12 {
		t.Errorf("MIRDE = %v, want %v", got, want)
	}
}

func TestMaxDropError(t *testing.T) {
	a := grid.FromData(1, 2, []float64{3, 7})
	b := grid.FromData(1, 2, []float64{10, 2})
	if MaxDropError(a, b) != 3 {
		t.Errorf("MaxDropError = %v, want 3", MaxDropError(a, b))
	}
}

func TestCCProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := grid.New(6, 6)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	if math.Abs(CC(g, g)-1) > 1e-12 {
		t.Error("self-correlation must be 1")
	}
	neg := g.Clone().Scale(-1)
	if math.Abs(CC(neg, g)+1) > 1e-12 {
		t.Error("negated map must correlate -1")
	}
	flat := grid.New(6, 6)
	if CC(flat, g) != 0 {
		t.Error("constant map correlation must be 0")
	}
}

func TestCCInvariantToAffine(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(4, 5)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		scaled := g.Clone().Scale(2.5)
		for i := range scaled.Data {
			scaled.Data[i] += 3
		}
		return math.Abs(CC(scaled, g)-1) < 1e-9
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestEvaluateAndAverage(t *testing.T) {
	g := grid.FromData(1, 4, []float64{10, 9.5, 5, 1})
	p := grid.FromData(1, 4, []float64{9, 9.5, 5, 1})
	r := Evaluate(p, g)
	if r.MAE != 0.25 {
		t.Errorf("MAE = %v", r.MAE)
	}
	avg := Average([]Report{{MAE: 1, F1: 0.5}, {MAE: 3, F1: 1}})
	if avg.MAE != 2 || avg.F1 != 0.75 {
		t.Errorf("Average = %+v", avg)
	}
	if Average(nil).MAE != 0 {
		t.Error("empty average should be zero")
	}
}

func TestReportString(t *testing.T) {
	s := Report{MAE: 2e-4, F1: 0.5, MIRDE: 3e-4}.String()
	if !strings.Contains(s, "MAE=2.00") || !strings.Contains(s, "F1=0.50") {
		t.Errorf("format: %s", s)
	}
}

func TestBetterPredictionScoresBetter(t *testing.T) {
	// Property: adding noise can only degrade (or tie) MAE, and a
	// heavily corrupted map should not beat a lightly corrupted one.
	rng := rand.New(rand.NewSource(3))
	g := grid.New(16, 16)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	mk := func(noise float64) *grid.Map {
		p := g.Clone()
		for i := range p.Data {
			p.Data[i] += noise * rng.NormFloat64()
		}
		return p
	}
	small, large := mk(0.01), mk(0.5)
	if MAE(small, g) >= MAE(large, g) {
		t.Error("MAE ordering violated")
	}
	if MIRDE(small, g) >= MIRDE(large, g) {
		t.Error("MIRDE ordering violated")
	}
}

func TestSSIMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := grid.New(16, 16)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	if s := SSIM(g, g); math.Abs(s-1) > 1e-12 {
		t.Errorf("SSIM(x,x) = %v, want 1", s)
	}
}

func TestSSIMOrdersByCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := grid.New(20, 20)
	for y := 0; y < 20; y++ {
		for x := 0; x < 20; x++ {
			g.Set(y, x, math.Sin(float64(x)/3)+math.Cos(float64(y)/4))
		}
	}
	corrupt := func(noise float64) *grid.Map {
		p := g.Clone()
		for i := range p.Data {
			p.Data[i] += noise * rng.NormFloat64()
		}
		return p
	}
	sSmall := SSIM(corrupt(0.05), g)
	sBig := SSIM(corrupt(1.0), g)
	if !(sSmall > sBig) {
		t.Errorf("SSIM ordering violated: %v (small noise) vs %v (big noise)", sSmall, sBig)
	}
	if sSmall < 0.5 {
		t.Errorf("lightly corrupted SSIM too low: %v", sSmall)
	}
}

func TestSSIMStructureVsOffset(t *testing.T) {
	// SSIM should penalize structural destruction (shuffled pixels)
	// much harder than a constant luminance offset.
	rng := rand.New(rand.NewSource(10))
	g := grid.New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			g.Set(y, x, float64(x+y))
		}
	}
	offset := g.Clone()
	for i := range offset.Data {
		offset.Data[i] += 0.5
	}
	shuffled := g.Clone()
	rng.Shuffle(len(shuffled.Data), func(i, j int) {
		shuffled.Data[i], shuffled.Data[j] = shuffled.Data[j], shuffled.Data[i]
	})
	if SSIM(offset, g) <= SSIM(shuffled, g) {
		t.Error("offset should preserve structure better than shuffling")
	}
}

func TestSSIMTinyMapFallback(t *testing.T) {
	a := grid.FromData(2, 2, []float64{1, 2, 3, 4})
	if s := SSIM(a, a); s != 1 {
		t.Errorf("tiny identical maps: SSIM = %v, want 1", s)
	}
	b := grid.FromData(2, 2, []float64{4, 3, 2, 1})
	if s := SSIM(b, a); s >= 1 {
		t.Errorf("tiny different maps should not score 1, got %v", s)
	}
}
