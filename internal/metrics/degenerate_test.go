package metrics

import (
	"math"
	"testing"

	"irfusion/internal/grid"
)

// zeros returns an h×w all-zero map.
func zeros(h, w int) *grid.Map { return grid.New(h, w) }

// withNaN returns a copy of m with pixel i set to NaN.
func withNaN(m *grid.Map, i int) *grid.Map {
	c := m.Clone()
	c.Data[i] = math.NaN()
	return c
}

// TestDegenerateMaps pins the documented semantics of every map
// metric on inputs real pipelines do produce: all-zero maps (an
// untrained model, or a design with no load), single-pixel maps
// (resolution 1), and NaN pixels (a diverged solve). These are the
// cases a refactor of the thresholding or accumulation logic silently
// breaks first.
func TestDegenerateMaps(t *testing.T) {
	uniform := grid.FromData(2, 2, []float64{3, 3, 3, 3})
	ramp := grid.FromData(2, 2, []float64{1, 2, 3, 4})

	cases := []struct {
		name         string
		pred, golden *grid.Map
		mae          float64
		f1           float64
		mirde        float64
		cc           float64
	}{
		{
			// thresh = 0.9·0 = 0, so every pixel is a golden positive
			// and a predicted positive: F1 is 1 by construction, the
			// hotspot region is everything with zero error, and CC is 0
			// because neither map has variance.
			name: "all-zero both",
			pred: zeros(4, 4), golden: zeros(4, 4),
			mae: 0, f1: 1, mirde: 0, cc: 0,
		},
		{
			// Golden all-zero keeps thresh at 0; a uniform positive
			// prediction still predicts every pixel hot (TP everywhere)
			// but now carries its value as error.
			name: "all-zero golden, uniform pred",
			pred: grid.FromData(2, 2, []float64{2, 2, 2, 2}), golden: zeros(2, 2),
			mae: 2, f1: 1, mirde: 2, cc: 0,
		},
		{
			// A constant map has zero variance: CC must define itself
			// to 0 rather than divide by zero.
			name: "uniform golden, exact pred",
			pred: uniform.Clone(), golden: uniform,
			mae: 0, f1: 1, mirde: 0, cc: 0,
		},
		{
			// Single pixel: the one pixel is always >= 0.9·max, so it
			// is hotspot; an exact prediction is perfect everywhere,
			// but a single point has no variance for CC.
			name: "single pixel exact",
			pred: grid.FromData(1, 1, []float64{5}), golden: grid.FromData(1, 1, []float64{5}),
			mae: 0, f1: 1, mirde: 0, cc: 0,
		},
		{
			name: "single pixel off",
			pred: grid.FromData(1, 1, []float64{4}), golden: grid.FromData(1, 1, []float64{5}),
			mae: 1, f1: 0, mirde: 1, cc: 0,
		},
		{
			// Negative-only golden: for a negative max, 0.9·max sits
			// ABOVE max, so no pixel clears the threshold — the hotspot
			// is empty, F1 collapses to 0 and MIRDE to its empty-region
			// default of 0 even for an exact prediction.
			name: "all-negative golden",
			pred: grid.FromData(1, 2, []float64{-1, -2}), golden: grid.FromData(1, 2, []float64{-1, -2}),
			mae: 0, f1: 0, mirde: 0, cc: 1,
		},
		{
			name: "ramp exact",
			pred: ramp.Clone(), golden: ramp,
			mae: 0, f1: 1, mirde: 0, cc: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MAE(tc.pred, tc.golden); got != tc.mae {
				t.Errorf("MAE = %g, want %g", got, tc.mae)
			}
			if got := F1(tc.pred, tc.golden); got != tc.f1 {
				t.Errorf("F1 = %g, want %g", got, tc.f1)
			}
			if got := MIRDE(tc.pred, tc.golden); got != tc.mirde {
				t.Errorf("MIRDE = %g, want %g", got, tc.mirde)
			}
			if got := CC(tc.pred, tc.golden); got != tc.cc {
				t.Errorf("CC = %g, want %g", got, tc.cc)
			}
		})
	}
}

// TestNaNPropagation pins how NaN pixels travel through each metric:
// the averaging metrics surface the NaN (so a diverged solve cannot
// hide behind a plausible score), while the thresholded classification
// treats NaN comparisons as false per IEEE-754 — a NaN pixel is simply
// never hot.
func TestNaNPropagation(t *testing.T) {
	golden := grid.FromData(1, 4, []float64{10, 9.5, 5, 1}) // thresh 9, hotspot {0,1}
	pred := grid.FromData(1, 4, []float64{10, 9.5, 5, 1})

	t.Run("NaN in pred averages", func(t *testing.T) {
		p := withNaN(pred, 0)
		if got := MAE(p, golden); !math.IsNaN(got) {
			t.Errorf("MAE = %g, want NaN", got)
		}
		if got := MIRDE(p, golden); !math.IsNaN(got) {
			t.Errorf("MIRDE = %g, want NaN", got)
		}
		if got := CC(p, golden); !math.IsNaN(got) {
			t.Errorf("CC = %g, want NaN", got)
		}
	})

	t.Run("NaN outside hotspot leaves MIRDE finite", func(t *testing.T) {
		// MIRDE only sums over the golden hotspot; a NaN in a cold
		// pixel must not poison it.
		p := withNaN(pred, 3)
		if got := MIRDE(p, golden); got != 0 {
			t.Errorf("MIRDE = %g, want 0", got)
		}
	})

	t.Run("NaN pred pixel is never hot", func(t *testing.T) {
		p := withNaN(pred, 0) // pixel 0 was a TP, now NaN >= thresh is false
		c := Classify(p, golden)
		if c.TP != 1 || c.FN != 1 || c.FP != 0 || c.TN != 2 {
			t.Errorf("confusion %+v, want TP=1 FN=1 FP=0 TN=2", c)
		}
	})

	t.Run("NaN golden pixel drops out of hotspot", func(t *testing.T) {
		g := withNaN(golden, 1) // pixel 1 was hotspot; NaN >= thresh is false
		c := Classify(pred, g)
		// pred pixel 1 still clears the threshold, so it becomes an FP.
		if c.TP != 1 || c.FP != 1 || c.FN != 0 || c.TN != 2 {
			t.Errorf("confusion %+v, want TP=1 FP=1 FN=0 TN=2", c)
		}
	})

	t.Run("all-NaN golden", func(t *testing.T) {
		g := grid.FromData(1, 2, []float64{math.NaN(), math.NaN()})
		// Max of all-NaN is NaN, the threshold is NaN, nothing is hot
		// on either side: zero confusion, F1 = 0.
		if got := F1(pred.Resize(1, 2), g); got != 0 {
			t.Errorf("F1 = %g, want 0", got)
		}
		if got := MIRDE(pred.Resize(1, 2), g); got != 0 {
			t.Errorf("MIRDE = %g, want 0 (empty hotspot)", got)
		}
	})
}
