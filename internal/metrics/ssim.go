package metrics

import (
	"math"

	"irfusion/internal/grid"
)

// SSIM computes the mean structural similarity index between a
// prediction and the golden map with a uniform 7×7 window — the
// "structural fidelity" notion the paper uses when discussing the
// Fig-6 heatmaps. The dynamic range is taken from the golden map.
// Returns a value in [-1, 1]; 1 means structurally identical.
func SSIM(pred, golden *grid.Map) float64 {
	if pred.H != golden.H || pred.W != golden.W {
		panic("metrics: SSIM shape mismatch")
	}
	const win = 7
	half := win / 2
	l := golden.Max() - golden.Min()
	if l == 0 { //irfusion:exact an exactly zero dynamic range means a constant golden map; use a unit range
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	h, w := golden.H, golden.W
	total, count := 0.0, 0
	for cy := half; cy < h-half; cy++ {
		for cx := half; cx < w-half; cx++ {
			var sx, sy, sxx, syy, sxy float64
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					a := pred.At(cy+dy, cx+dx)
					b := golden.At(cy+dy, cx+dx)
					sx += a
					sy += b
					sxx += a * a
					syy += b * b
					sxy += a * b
				}
			}
			n := float64(win * win)
			mx, my := sx/n, sy/n
			vx := sxx/n - mx*mx
			vy := syy/n - my*my
			cov := sxy/n - mx*my
			ssim := ((2*mx*my + c1) * (2*cov + c2)) /
				((mx*mx + my*my + c1) * (vx + vy + c2))
			total += ssim
			count++
		}
	}
	if count == 0 {
		// Degenerate tiny maps: fall back to a global comparison.
		if maxAbsDiff(pred, golden) == 0 { //irfusion:exact bit-identical degenerate maps score a perfect 1
			return 1
		}
		return CC(pred, golden)
	}
	return total / float64(count)
}

func maxAbsDiff(a, b *grid.Map) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}
