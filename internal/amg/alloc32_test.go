package amg

// Zero-allocation guard for the float32 V-cycle: once built, a
// Hierarchy32.Apply must run entirely in its preallocated workspace —
// the mixed-precision preconditioner sits inside the inner PCG loop,
// so any steady-state allocation here multiplies across every
// iteration of every refinement round.

import "testing"

func TestZeroAllocHierarchy32Apply(t *testing.T) {
	pinSerialPool(t)
	a := laplacian2D(16, 16)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h32 := NewHierarchy32(h)
	n := a.Rows()
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) + 1
	}
	requireZeroAllocs(t, "Hierarchy32.Apply", func() { h32.Apply(z, r) })
}
