// Package amg implements aggregation-based algebraic multigrid in the
// style used by the PowerRush power-grid simulator: a setup stage that
// recursively coarsens the conductance matrix with (double) pairwise
// aggregation, and cycling strategies — V-cycle, W-cycle, and the
// Krylov-accelerated K-cycle — that serve as a preconditioner for
// conjugate gradients (see package solver).
//
// The operators produced by modified nodal analysis of a resistive
// power grid are symmetric M-matrices (positive diagonal, non-positive
// off-diagonal), the class for which pairwise aggregation has
// convergence guarantees.
package amg

import (
	"context"
	"errors"
	"fmt"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/parallel"
	"irfusion/internal/sparse"
)

// Cycle selects the multigrid cycling strategy.
type Cycle int

const (
	// VCycle visits each coarse level once per cycle.
	VCycle Cycle = iota
	// WCycle recurses twice at every coarse level.
	WCycle
	// KCycle accelerates the coarse-level solve with (at most) two
	// steps of flexible conjugate gradients, as proposed by Notay.
	// This is the cycle PowerRush uses.
	KCycle
)

func (c Cycle) String() string {
	switch c {
	case VCycle:
		return "V"
	case WCycle:
		return "W"
	case KCycle:
		return "K"
	default:
		return fmt.Sprintf("Cycle(%d)", int(c))
	}
}

// Options configures hierarchy construction and cycling.
type Options struct {
	// Strength is the strong-connection threshold β: the entry a_ij is
	// a strong connection of i when -a_ij ≥ β·max_k(-a_ik).
	Strength float64
	// MaxCoarse is the size at which coarsening stops and a dense
	// Cholesky factorization solves the coarsest level exactly.
	MaxCoarse int
	// MaxLevels caps the hierarchy depth (0 means unlimited).
	MaxLevels int
	// PreSmooth and PostSmooth are the numbers of symmetric
	// Gauss-Seidel sweeps before and after coarse-grid correction.
	PreSmooth, PostSmooth int
	// Cycle selects V, W, or K cycling.
	Cycle Cycle
	// KTolerance is the K-cycle truncation threshold: the second FCG
	// step is skipped when the first already reduced the coarse
	// residual below KTolerance times its input norm.
	KTolerance float64
	// Aggressive pairs two pairwise passes per level (aggregates of
	// size up to 4), the "double pairwise aggregation" of PowerRush.
	Aggressive bool
	// Smoother selects the relaxation: GaussSeidel (default) or
	// Chebyshev (polynomial, no sequential dependency).
	Smoother Smoother
	// ChebyshevDegree is the polynomial degree when Smoother is
	// Chebyshev (default 2).
	ChebyshevDegree int
}

// Smoother enumerates the relaxation schemes usable inside cycles.
type Smoother int

const (
	// GaussSeidel runs forward sweeps before and backward sweeps
	// after coarse-grid correction (keeping the cycle symmetric).
	GaussSeidel Smoother = iota
	// Chebyshev runs a fixed-degree Chebyshev polynomial smoother.
	Chebyshev
)

// DefaultOptions returns the configuration used by the IR-Fusion
// pipeline: K-cycle, double pairwise aggregation, one symmetric
// Gauss-Seidel sweep on each side.
func DefaultOptions() Options {
	return Options{
		Strength:   0.25,
		MaxCoarse:  64,
		MaxLevels:  0,
		PreSmooth:  1,
		PostSmooth: 1,
		Cycle:      KCycle,
		KTolerance: 0.25,
		Aggressive: true,
	}
}

// Level holds one level of the hierarchy: its operator, the
// prolongation from the next-coarser level, and cycling workspace.
type Level struct {
	A *sparse.CSR
	P *sparse.CSR // nil on the coarsest level

	cheb *sparse.Chebyshev // when Options.Smoother == Chebyshev

	// Workspace sized for this level.
	r, tmp []float64
	// K-cycle workspace sized for the NEXT (coarser) level.
	kc1, kv1, kr, kc2, kv2, krhs, kx []float64
}

// Hierarchy is a constructed AMG hierarchy, usable directly as a
// stationary solver (Cycle) or as a preconditioner (Apply).
type Hierarchy struct {
	Levels []*Level
	coarse *sparse.DenseCholesky
	opts   Options
}

// Clone returns a hierarchy sharing h's immutable setup products —
// the level operators, prolongations, smoother coefficients, and the
// coarse factorization — with freshly allocated cycling workspace, so
// the clone can precondition a solve concurrently with h or any other
// clone. Cloning reads only immutable fields, making it safe even
// while another goroutine is mid-cycle on h. This is the contract the
// artifact cache relies on: a stored hierarchy is never used directly,
// every consumer clones it first, and the expensive setup (aggregation,
// Galerkin products, Cholesky) is amortized across all of them.
func (h *Hierarchy) Clone() *Hierarchy {
	if h == nil {
		return nil
	}
	out := &Hierarchy{
		Levels: make([]*Level, len(h.Levels)),
		coarse: h.coarse, // Solve writes only its output vector
		opts:   h.opts,
	}
	for i, lvl := range h.Levels {
		n := lvl.A.Rows()
		nl := &Level{
			A: lvl.A, P: lvl.P,
			cheb: lvl.cheb.Clone(),
			r:    make([]float64, n),
			tmp:  make([]float64, n),
		}
		if i+1 < len(h.Levels) {
			nc := h.Levels[i+1].A.Rows()
			nl.kc1 = make([]float64, nc)
			nl.kv1 = make([]float64, nc)
			nl.kr = make([]float64, nc)
			nl.kc2 = make([]float64, nc)
			nl.kv2 = make([]float64, nc)
			nl.krhs = make([]float64, nc)
			nl.kx = make([]float64, nc)
		}
		out.Levels[i] = nl
	}
	return out
}

// ErrEmptyMatrix is returned when Build receives a 0×0 matrix.
var ErrEmptyMatrix = errors.New("amg: empty matrix")

// ErrSetup wraps every hierarchy-construction failure (including
// injected ones), so callers can classify "the AMG backend is
// unavailable" with errors.Is and fall back to a cheaper
// preconditioner (see the degradation ladder in internal/core).
var ErrSetup = errors.New("amg: setup failed")

// Build runs the setup stage: recursive pairwise aggregation and
// Galerkin coarse-operator construction, stopping at MaxCoarse where
// a dense Cholesky factorization is prepared.
func Build(a *sparse.CSR, opts Options) (*Hierarchy, error) {
	return BuildCtx(context.Background(), a, opts)
}

// BuildCtx is Build with context plumbing for the fault-injection
// harness and cooperative cancellation: an injector resolved from ctx
// (or the process-global one) may fail the setup on demand (site
// faults.SiteAMGSetup), which surfaces as an error wrapping ErrSetup
// exactly like a real construction failure would, and the coarsening
// loop checks ctx between levels so a cancelled request does not pay
// for a full setup. The recorder is resolved with obs.ActiveOr(ctx),
// so concurrent serving requests keep isolated manifests.
func BuildCtx(ctx context.Context, a *sparse.CSR, opts Options) (*Hierarchy, error) {
	st := obs.ActiveOr(ctx).StartStage("amg.setup")
	defer st.End()
	if f := faults.ActiveOr(ctx).Fire(faults.SiteAMGSetup, ""); f != nil && f.Action == faults.ActFail {
		return nil, fmt.Errorf("%w: %w", ErrSetup, f.Error())
	}
	if a.Rows() == 0 {
		return nil, ErrEmptyMatrix
	}
	if a.Rows() != a.Cols() {
		return nil, errors.New("amg: matrix must be square")
	}
	if opts.Strength <= 0 {
		opts.Strength = 0.25
	}
	if opts.MaxCoarse <= 0 {
		opts.MaxCoarse = 64
	}
	if opts.PreSmooth <= 0 && opts.PostSmooth <= 0 {
		opts.PreSmooth, opts.PostSmooth = 1, 1
	}
	if opts.KTolerance <= 0 {
		opts.KTolerance = 0.25
	}
	h := &Hierarchy{opts: opts}
	cur := a
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("amg: setup cancelled after %d levels: %w", len(h.Levels), cerr)
		}
		lvl := &Level{A: cur}
		h.Levels = append(h.Levels, lvl)
		if cur.Rows() <= opts.MaxCoarse ||
			(opts.MaxLevels > 0 && len(h.Levels) >= opts.MaxLevels) {
			break
		}
		p := aggregate(cur, opts.Strength, opts.Aggressive)
		if p == nil || p.Cols() >= cur.Rows() {
			// Coarsening stalled; stop here and solve directly.
			break
		}
		lvl.P = p
		cur = sparse.TripleProduct(p, cur)
	}
	// Factor the coarsest operator densely.
	last := h.Levels[len(h.Levels)-1].A
	chol, err := sparse.NewDenseCholesky(last.Dense(), last.Rows())
	if err != nil {
		return nil, fmt.Errorf("%w: coarsest-level factorization: %w", ErrSetup, err)
	}
	h.coarse = chol
	// Allocate workspace.
	//irfusion:ctx-ok workspace allocation after the last cancellation point is fast and must complete atomically once the hierarchy exists
	for i, lvl := range h.Levels {
		n := lvl.A.Rows()
		lvl.r = make([]float64, n)
		lvl.tmp = make([]float64, n)
		if opts.Smoother == Chebyshev && i < len(h.Levels)-1 {
			deg := opts.ChebyshevDegree
			if deg <= 0 {
				deg = 2
			}
			lvl.cheb = sparse.NewChebyshev(lvl.A, deg, 10)
		}
		if i+1 < len(h.Levels) {
			nc := h.Levels[i+1].A.Rows()
			lvl.kc1 = make([]float64, nc)
			lvl.kv1 = make([]float64, nc)
			lvl.kr = make([]float64, nc)
			lvl.kc2 = make([]float64, nc)
			lvl.kv2 = make([]float64, nc)
			lvl.krhs = make([]float64, nc)
			lvl.kx = make([]float64, nc)
		}
	}
	if rec := obs.ActiveOr(ctx); rec != nil {
		rec.SetGauge("amg.levels", float64(len(h.Levels)))
		rec.SetGauge("amg.operator_complexity", h.OperatorComplexity())
		//irfusion:ctx-ok per-level gauge reporting on a finished hierarchy does no cancellable work
		for i, lvl := range h.Levels {
			rec.SetGauge(fmt.Sprintf("amg.level%d.rows", i), float64(lvl.A.Rows()))
			rec.SetGauge(fmt.Sprintf("amg.level%d.nnz", i), float64(lvl.A.NNZ()))
		}
	}
	return h, nil
}

// NumLevels returns the depth of the hierarchy.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// OperatorComplexity returns Σ nnz(A_ℓ) / nnz(A_0), the standard
// measure of AMG memory overhead.
func (h *Hierarchy) OperatorComplexity() float64 {
	total := 0
	for _, lvl := range h.Levels {
		total += lvl.A.NNZ()
	}
	return float64(total) / float64(h.Levels[0].A.NNZ())
}

// Cycle performs one multigrid cycle for A·x = b, improving x in
// place. x is used as the initial guess.
func (h *Hierarchy) Cycle(x, b []float64) {
	h.cycle(0, x, b)
}

// Apply uses one cycle from a zero initial guess as the
// preconditioner application z = M⁻¹·r. It satisfies the
// solver.Preconditioner contract. When a run recorder is active, each
// application accumulates into the "amg.cycle" timing (gauge
// amg.cycle.seconds / counter amg.cycle.count), separating cycle time
// from the setup time reported by the "amg.setup" stage.
func (h *Hierarchy) Apply(z, r []float64) {
	if rec := obs.Active(); rec != nil {
		start := time.Now()
		defer func() { rec.AddSeconds("amg.cycle", time.Since(start)) }()
	}
	sparse.Zero(z)
	h.cycle(0, z, r)
}

// Solve iterates cycles until the relative residual drops below tol or
// maxCycles is reached. It returns the number of cycles performed and
// the final relative residual. Intended for stationary-solver use and
// tests; production solves go through solver.PCG with Apply.
func (h *Hierarchy) Solve(x, b []float64, tol float64, maxCycles int) (int, float64) {
	n := len(b)
	r := make([]float64, n)
	bn := sparse.Norm2(b)
	if bn == 0 { //irfusion:exact an exactly zero RHS norm means b is identically zero; the exact solution is zero
		sparse.Zero(x)
		return 0, 0
	}
	pool := parallel.Default()
	residual := func() {
		h.Levels[0].A.MulVec(r, x)
		pool.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r[i] = b[i] - r[i]
			}
		})
	}
	for k := 0; k < maxCycles; k++ {
		residual()
		rel := sparse.Norm2(r) / bn
		if rel < tol {
			return k, rel
		}
		h.Cycle(x, b)
	}
	residual()
	return maxCycles, sparse.Norm2(r) / bn
}

func (h *Hierarchy) cycle(level int, x, b []float64) {
	lvl := h.Levels[level]
	if level == len(h.Levels)-1 {
		h.coarse.Solve(x, b)
		return
	}
	a := lvl.A
	for s := 0; s < h.opts.PreSmooth; s++ {
		if lvl.cheb != nil {
			lvl.cheb.Smooth(x, b)
		} else {
			sparse.GaussSeidelForward(a, x, b)
		}
	}
	// Residual restriction: r_c = Pᵀ(b - A·x).
	a.MulVec(lvl.r, x)
	parallel.Default().For(len(lvl.r), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lvl.r[i] = b[i] - lvl.r[i]
		}
	})
	restrict(lvl.P, lvl.krhs, lvl.r)

	sparse.Zero(lvl.kx)
	switch {
	case level+1 == len(h.Levels)-1:
		// Next level is coarsest: solve exactly regardless of cycle type.
		h.coarse.Solve(lvl.kx, lvl.krhs)
	case h.opts.Cycle == VCycle:
		h.cycle(level+1, lvl.kx, lvl.krhs)
	case h.opts.Cycle == WCycle:
		h.cycle(level+1, lvl.kx, lvl.krhs)
		h.cycle(level+1, lvl.kx, lvl.krhs)
	default:
		h.kcycleSolve(level+1, lvl)
	}
	// Prolongate and correct: x += P·x_c.
	prolongAdd(lvl.P, x, lvl.kx)
	for s := 0; s < h.opts.PostSmooth; s++ {
		if lvl.cheb != nil {
			lvl.cheb.Smooth(x, b)
		} else {
			sparse.GaussSeidelBackward(a, x, b)
		}
	}
}

// kcycleSolve performs Notay's K-cycle coarse solve: up to two steps
// of flexible conjugate gradients on A_c·x_c = rhs, preconditioned by
// one multigrid cycle at the coarser level. Inputs and outputs live in
// the parent level's k-workspace (parent.krhs -> parent.kx).
func (h *Hierarchy) kcycleSolve(level int, parent *Level) {
	ac := h.Levels[level].A
	rhs, x := parent.krhs, parent.kx
	c1, v1, r, c2, v2 := parent.kc1, parent.kv1, parent.kr, parent.kc2, parent.kv2

	// First FCG step.
	sparse.Zero(c1)
	h.cycle(level, c1, rhs)
	ac.MulVec(v1, c1)
	rho1 := sparse.Dot(c1, v1)
	alpha1 := sparse.Dot(c1, rhs)
	if rho1 <= 0 {
		copy(x, c1)
		return
	}
	pool := parallel.Default()
	t := alpha1 / rho1
	rhsNorm := sparse.Norm2(rhs)
	pool.For(len(r), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = rhs[i] - t*v1[i]
		}
	})
	if sparse.Norm2(r) <= h.opts.KTolerance*rhsNorm {
		pool.For(len(x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] = t * c1[i]
			}
		})
		return
	}
	// Second FCG step.
	sparse.Zero(c2)
	h.cycle(level, c2, r)
	ac.MulVec(v2, c2)
	gamma := sparse.Dot(c2, v1)
	beta := sparse.Dot(c2, v2)
	alpha2 := sparse.Dot(c2, r)
	rho2 := beta - gamma*gamma/rho1
	if rho2 <= 0 {
		for i := range x {
			x[i] = t * c1[i]
		}
		return
	}
	w1 := alpha1/rho1 - gamma*alpha2/(rho1*rho2)
	w2 := alpha2 / rho2
	pool.For(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = w1*c1[i] + w2*c2[i]
		}
	})
}

// restrict computes rc = Pᵀ·r without materializing Pᵀ: P is a 0/1
// aggregation matrix with exactly one entry per row. The scatter into
// rc races across fine rows of the same aggregate, so this stays
// sequential (coarse vectors are small enough that it doesn't show in
// profiles).
//
//irfusion:hotpath
func restrict(p *sparse.CSR, rc, r []float64) {
	sparse.Zero(rc)
	for i := 0; i < p.RowsN; i++ {
		for q := p.RowPtr[i]; q < p.RowPtr[i+1]; q++ {
			rc[p.ColInd[q]] += p.Val[q] * r[i]
		}
	}
}

// cForSerial accounts the serial fast paths of the cycle kernels
// under the pool's own elementwise-serial counter, keeping
// pool-utilization numbers honest (same idiom as package sparse).
var cForSerial = obs.GlobalCounter("parallel.for.serial")

// prolongAdd computes x += P·xc. Each fine row i writes only x[i], so
// the loop is row-parallel.
//
//irfusion:hotpath
func prolongAdd(p *sparse.CSR, x, xc []float64) {
	if p.RowsN == 0 {
		return
	}
	pool := parallel.Default()
	if pool.SerialFor(p.RowsN) {
		cForSerial.Inc()
		prolongAddRange(p, x, xc, 0, p.RowsN)
		return
	}
	pool.For(p.RowsN, func(lo, hi int) {
		prolongAddRange(p, x, xc, lo, hi)
	})
}

// prolongAddRange is the serial x += P·xc leaf over rows [lo, hi).
//
//irfusion:hotpath
func prolongAddRange(p *sparse.CSR, x, xc []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		for q := p.RowPtr[i]; q < p.RowPtr[i+1]; q++ {
			x[i] += p.Val[q] * xc[p.ColInd[q]]
		}
	}
}
