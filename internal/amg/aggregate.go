package amg

import "irfusion/internal/sparse"

// aggregate builds the piecewise-constant prolongation matrix P for
// one coarsening step. Each fine node is assigned to exactly one
// aggregate; P[i, agg(i)] = 1. With aggressive coarsening two pairwise
// passes are composed, yielding aggregates of up to four nodes
// ("double pairwise aggregation").
//
// It returns nil when no coarsening is possible (every node isolated).
func aggregate(a *sparse.CSR, strength float64, aggressive bool) *sparse.CSR {
	p1, n1 := pairwise(a, strength)
	if p1 == nil {
		return nil
	}
	if !aggressive {
		return p1
	}
	a1 := sparse.TripleProduct(p1, a)
	p2, n2 := pairwise(a1, strength)
	if p2 == nil || n2 >= n1 {
		return p1
	}
	return p1.Mul(p2)
}

// pairwise performs one greedy pairwise-aggregation pass driven by
// strong negative couplings. Returns the prolongator and the number of
// aggregates, or (nil, 0) when no pair could be formed at all and the
// pass would not coarsen.
func pairwise(a *sparse.CSR, strength float64) (*sparse.CSR, int) {
	n := a.Rows()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Order nodes by ascending degree (fewer strong neighbors first),
	// which matches the heuristic of aggregating weakly connected
	// boundary nodes early before their partners are consumed.
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting sort by degree keeps setup O(n + nnz).
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int, maxDeg+1)
	for i := 0; i < n; i++ {
		buckets[deg[i]] = append(buckets[deg[i]], i)
	}
	order = order[:0]
	for _, b := range buckets {
		order = append(order, b...)
	}

	nAgg := 0
	paired := 0
	for _, i := range order {
		if assign[i] != -1 {
			continue
		}
		// Strongest available negative coupling of i.
		maxNeg := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColInd[p]
			if j != i && -a.Val[p] > maxNeg {
				maxNeg = -a.Val[p]
			}
		}
		best := -1
		bestVal := 0.0
		if maxNeg > 0 {
			thresh := strength * maxNeg
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := a.ColInd[p]
				if j == i || assign[j] != -1 {
					continue
				}
				if v := -a.Val[p]; v >= thresh && v > bestVal {
					bestVal = v
					best = j
				}
			}
		}
		assign[i] = nAgg
		if best != -1 {
			assign[best] = nAgg
			paired++
		}
		nAgg++
	}
	if paired == 0 {
		return nil, 0
	}
	t := sparse.NewTriplet(n, nAgg, n)
	for i, g := range assign {
		t.Add(i, g, 1)
	}
	return t.ToCSR(), nAgg
}
