package amg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"irfusion/internal/sparse"
)

func laplacian2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	t := sparse.NewTriplet(n, n, 5*n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			t.Add(i, i, 4)
			if x > 0 {
				t.Add(i, idx(x-1, y), -1)
			}
			if x < nx-1 {
				t.Add(i, idx(x+1, y), -1)
			}
			if y > 0 {
				t.Add(i, idx(x, y-1), -1)
			}
			if y < ny-1 {
				t.Add(i, idx(x, y+1), -1)
			}
		}
	}
	return t.ToCSR()
}

func TestBuildHierarchyShape(t *testing.T) {
	a := laplacian2D(32, 32)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatalf("expected multilevel hierarchy, got %d levels", h.NumLevels())
	}
	// Sizes must strictly decrease and end at/below MaxCoarse.
	for i := 1; i < h.NumLevels(); i++ {
		if h.Levels[i].A.Rows() >= h.Levels[i-1].A.Rows() {
			t.Fatalf("level %d did not coarsen: %d -> %d", i,
				h.Levels[i-1].A.Rows(), h.Levels[i].A.Rows())
		}
	}
	last := h.Levels[h.NumLevels()-1].A.Rows()
	if last > DefaultOptions().MaxCoarse {
		t.Errorf("coarsest level size %d exceeds MaxCoarse", last)
	}
	if oc := h.OperatorComplexity(); oc < 1 || oc > 3 {
		t.Errorf("operator complexity %v outside sane range [1,3]", oc)
	}
}

func TestCoarseOperatorsStaySymmetric(t *testing.T) {
	a := laplacian2D(24, 24)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, lvl := range h.Levels {
		if !lvl.A.IsSymmetric(1e-10) {
			t.Errorf("level %d operator not symmetric", i)
		}
	}
}

func TestAggregationPartition(t *testing.T) {
	// Property: every fine node belongs to exactly one aggregate and
	// P has a single unit entry per row.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 4+rng.Intn(12), 4+rng.Intn(12)
		a := laplacian2D(nx, ny)
		p := aggregate(a, 0.25, true)
		if p == nil {
			return false
		}
		if p.Rows() != a.Rows() || p.Cols() >= a.Rows() {
			return false
		}
		covered := make([]bool, p.Cols())
		for i := 0; i < p.Rows(); i++ {
			lo, hi := p.RowPtr[i], p.RowPtr[i+1]
			if hi-lo != 1 || p.Val[lo] != 1 {
				return false
			}
			covered[p.ColInd[lo]] = true
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestAggressiveCoarsensFaster(t *testing.T) {
	a := laplacian2D(32, 32)
	pd := aggregate(a, 0.25, true)
	ps := aggregate(a, 0.25, false)
	if pd.Cols() >= ps.Cols() {
		t.Errorf("double pairwise (%d aggregates) should coarsen harder than single (%d)",
			pd.Cols(), ps.Cols())
	}
}

func solveWith(t *testing.T, cycle Cycle, nx, ny, maxCycles int) (int, float64) {
	t.Helper()
	a := laplacian2D(nx, ny)
	opts := DefaultOptions()
	opts.Cycle = cycle
	h, err := Build(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	rng := rand.New(rand.NewSource(11))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	x := make([]float64, n)
	iters, rel := h.Solve(x, b, 1e-8, maxCycles)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
			t.Fatalf("%v-cycle solution wrong at %d: %v vs %v", cycle, i, x[i], want[i])
		}
	}
	return iters, rel
}

func TestVCycleSolves(t *testing.T) {
	iters, rel := solveWith(t, VCycle, 24, 24, 200)
	if rel >= 1e-8 {
		t.Errorf("V-cycle did not converge: rel=%v after %d cycles", rel, iters)
	}
}

func TestWCycleSolves(t *testing.T) {
	iters, rel := solveWith(t, WCycle, 24, 24, 200)
	if rel >= 1e-8 {
		t.Errorf("W-cycle did not converge: rel=%v after %d cycles", rel, iters)
	}
}

func TestKCycleSolves(t *testing.T) {
	iters, rel := solveWith(t, KCycle, 24, 24, 200)
	if rel >= 1e-8 {
		t.Errorf("K-cycle did not converge: rel=%v after %d cycles", rel, iters)
	}
}

func TestKCycleAtLeastAsFastAsV(t *testing.T) {
	vIters, _ := solveWith(t, VCycle, 32, 32, 500)
	kIters, _ := solveWith(t, KCycle, 32, 32, 500)
	if kIters > vIters {
		t.Errorf("K-cycle (%d cycles) slower than V-cycle (%d cycles)", kIters, vIters)
	}
}

func TestCycleCountIndependentOfSize(t *testing.T) {
	// The point of multigrid: cycle count should grow only mildly
	// with problem size. Allow generous slack but catch O(n) blowup.
	small, _ := solveWith(t, KCycle, 16, 16, 500)
	large, _ := solveWith(t, KCycle, 48, 48, 500)
	if large > 3*small+10 {
		t.Errorf("cycle count scaled badly: %d (16x16) -> %d (48x48)", small, large)
	}
}

func TestApplyZeroInitialGuess(t *testing.T) {
	a := laplacian2D(16, 16)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	r := make([]float64, n)
	for i := range r {
		r[i] = 1
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = 123 // garbage that Apply must ignore
	}
	h.Apply(z, r)
	// z should be a decent approximation to A⁻¹r: residual reduced.
	tmp := make([]float64, n)
	a.MulVec(tmp, z)
	for i := range tmp {
		tmp[i] = r[i] - tmp[i]
	}
	if sparse.Norm2(tmp) >= sparse.Norm2(r) {
		t.Error("one cycle failed to reduce the residual")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := laplacian2D(8, 8)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows())
	for i := range x {
		x[i] = 5
	}
	iters, rel := h.Solve(x, make([]float64, a.Rows()), 1e-10, 10)
	if iters != 0 || rel != 0 {
		t.Errorf("zero-rhs solve: iters=%d rel=%v", iters, rel)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero-rhs solution should be zero")
		}
	}
}

func TestBuildSmallMatrixSingleLevel(t *testing.T) {
	a := laplacian2D(4, 4) // 16 nodes < MaxCoarse
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 {
		t.Errorf("expected direct-solve-only hierarchy, got %d levels", h.NumLevels())
	}
	b := make([]float64, 16)
	b[5] = 1
	x := make([]float64, 16)
	h.Cycle(x, b)
	if r := make([]float64, 16); true {
		a.MulVec(r, x)
		for i := range r {
			r[i] -= b[i]
		}
		if sparse.Norm2(r) > 1e-10 {
			t.Errorf("single-level cycle should be a direct solve, residual %v", sparse.Norm2(r))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(&sparse.CSR{RowPtr: []int{0}}, DefaultOptions()); err == nil {
		t.Error("expected error on empty matrix")
	}
	tr := sparse.NewTriplet(2, 3, 1)
	tr.Add(0, 0, 1)
	if _, err := Build(tr.ToCSR(), DefaultOptions()); err == nil {
		t.Error("expected error on rectangular matrix")
	}
}

func TestCycleString(t *testing.T) {
	if VCycle.String() != "V" || WCycle.String() != "W" || KCycle.String() != "K" {
		t.Error("Cycle String() values wrong")
	}
	if Cycle(9).String() != "Cycle(9)" {
		t.Error("unknown cycle formatting wrong")
	}
}

func TestChebyshevSmoothedCycleSolves(t *testing.T) {
	a := laplacian2D(24, 24)
	opts := DefaultOptions()
	opts.Smoother = Chebyshev
	opts.ChebyshevDegree = 2
	h, err := Build(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	rng := rand.New(rand.NewSource(31))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	x := make([]float64, n)
	iters, rel := h.Solve(x, b, 1e-8, 300)
	if rel >= 1e-8 {
		t.Fatalf("Chebyshev-smoothed K-cycle did not converge: rel=%v after %d", rel, iters)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
			t.Fatalf("solution wrong at %d", i)
		}
	}
}
