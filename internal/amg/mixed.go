package amg

// Mixed-precision support: Hierarchy32 is the float32 shadow of a
// constructed Hierarchy — float32 level operators, transfer operators,
// and Gauss-Seidel smoothers running a plain V-cycle — used as the
// inner preconditioner of the float64 iterative-refinement solve
// (solver.MPPCGCtx). Only the coarsest-level direct solve stays in
// float64: it reuses the hierarchy's existing dense Cholesky
// factorization through small conversion buffers, which costs nothing
// at coarse sizes and keeps the factorization single-sourced.

import (
	"time"

	"irfusion/internal/obs"
	"irfusion/internal/parallel"
	"irfusion/internal/sparse"
)

// level32 is one level of the float32 hierarchy: the float32 views of
// the operator and prolongation plus per-level cycling workspace.
type level32 struct {
	a *sparse.CSR32
	p *sparse.CSR32 // nil on the coarsest level

	x, b, r []float32
}

// Hierarchy32 is the float32 shadow of a Hierarchy. It implements
// solver.Preconditioner: Apply rounds the float64 residual down to
// float32, runs one V-cycle entirely in float32 (except the coarsest
// direct solve), and widens the correction back. One instance holds
// mutable cycling workspace and must not be shared across concurrent
// solves — derive one per solve from a (cloned) float64 hierarchy.
type Hierarchy32 struct {
	levels []*level32
	coarse *sparse.DenseCholesky
	pre    int
	post   int

	// Coarsest-level float64 conversion buffers for the shared
	// Cholesky solve.
	cb, cx []float64
	// Top-level float32 buffers backing the float64 Apply facade.
	r32, z32 []float32
}

// NewHierarchy32 derives the float32 shadow of h. The conversion
// copies only values (sparsity structures are shared with the float64
// matrices), so it is one O(nnz) pass over the hierarchy — cheap next
// to the setup that built h, and h itself stays untouched, which is
// what lets cached float64 hierarchies serve mixed-precision solves.
func NewHierarchy32(h *Hierarchy) *Hierarchy32 {
	hh := &Hierarchy32{
		coarse: h.coarse,
		pre:    h.opts.PreSmooth,
		post:   h.opts.PostSmooth,
	}
	if hh.pre <= 0 && hh.post <= 0 {
		hh.pre, hh.post = 1, 1
	}
	for _, lvl := range h.Levels {
		n := lvl.A.Rows()
		l := &level32{
			a: sparse.NewCSR32(lvl.A),
			x: make([]float32, n),
			b: make([]float32, n),
			r: make([]float32, n),
		}
		if lvl.P != nil {
			l.p = sparse.NewCSR32(lvl.P)
		}
		hh.levels = append(hh.levels, l)
	}
	nc := hh.levels[len(hh.levels)-1].a.Rows()
	hh.cb = make([]float64, nc)
	hh.cx = make([]float64, nc)
	n0 := hh.levels[0].a.Rows()
	hh.r32 = make([]float32, n0)
	hh.z32 = make([]float32, n0)
	return hh
}

// NumLevels returns the depth of the hierarchy.
func (h *Hierarchy32) NumLevels() int { return len(h.levels) }

// Apply is the preconditioner application z = M⁻¹·r: one float32
// V-cycle from a zero initial guess, entered and left through the
// precision boundary. When a run recorder is active each application
// accumulates into the "amg.cycle32" timing, keeping the mixed-path
// cycle cost separate from the float64 "amg.cycle" one.
func (h *Hierarchy32) Apply(z, r []float64) {
	if rec := obs.Active(); rec != nil {
		start := time.Now()
		defer func() { rec.AddSeconds("amg.cycle32", time.Since(start)) }()
	}
	top := h.levels[0]
	sparse.Downconvert32(top.b, r)
	sparse.Zero32(top.x)
	h.vcycle(0)
	sparse.Upconvert64(z, top.x)
}

// vcycle runs one V-cycle at the given level, improving levels[level].x
// for A·x = b from whatever x holds on entry.
func (h *Hierarchy32) vcycle(level int) {
	lvl := h.levels[level]
	if level == len(h.levels)-1 {
		// Coarsest level: the shared float64 Cholesky solve through
		// the conversion buffers.
		sparse.Upconvert64(h.cb, lvl.b)
		h.coarse.Solve(h.cx, h.cb)
		sparse.Downconvert32(lvl.x, h.cx)
		return
	}
	for s := 0; s < h.pre; s++ {
		sparse.GaussSeidelForward32(lvl.a, lvl.x, lvl.b)
	}
	// Residual restriction: b_c = Pᵀ(b - A·x), all in float32.
	lvl.a.MulVec(lvl.r, lvl.x)
	residualSub32(lvl.r, lvl.b)
	next := h.levels[level+1]
	restrict32(lvl.p, next.b, lvl.r)
	sparse.Zero32(next.x)
	h.vcycle(level + 1)
	prolongAdd32(lvl.p, lvl.x, next.x)
	for s := 0; s < h.post; s++ {
		sparse.GaussSeidelBackward32(lvl.a, lvl.x, lvl.b)
	}
}

// residualSub32 rewrites r as b - r (r holds A·x on entry).
//
//irfusion:hotpath
func residualSub32(r, b []float32) {
	n := len(r)
	pool := parallel.Default()
	if pool.SerialFor(n) {
		cForSerial.Inc()
		residualSubRange32(r, b, 0, n)
		return
	}
	pool.For(n, func(lo, hi int) {
		residualSubRange32(r, b, lo, hi)
	})
}

// residualSubRange32 is the serial r = b - r leaf over [lo, hi).
//
//irfusion:hotpath
func residualSubRange32(r, b []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		r[i] = b[i] - r[i]
	}
}

// restrict32 computes rc = Pᵀ·r in float32; sequential for the same
// scatter-race reason as the float64 restrict.
//
//irfusion:hotpath
func restrict32(p *sparse.CSR32, rc, r []float32) {
	sparse.Zero32(rc)
	for i := 0; i < p.RowsN; i++ {
		for q := p.RowPtr[i]; q < p.RowPtr[i+1]; q++ {
			rc[p.ColInd[q]] += p.Val[q] * r[i]
		}
	}
}

// prolongAdd32 computes x += P·xc in float32; row-parallel like the
// float64 prolongAdd.
//
//irfusion:hotpath
func prolongAdd32(p *sparse.CSR32, x, xc []float32) {
	if p.RowsN == 0 {
		return
	}
	pool := parallel.Default()
	if pool.SerialFor(p.RowsN) {
		cForSerial.Inc()
		prolongAddRange32(p, x, xc, 0, p.RowsN)
		return
	}
	pool.For(p.RowsN, func(lo, hi int) {
		prolongAddRange32(p, x, xc, lo, hi)
	})
}

// prolongAddRange32 is the serial x += P·xc leaf over rows [lo, hi).
//
//irfusion:hotpath
func prolongAddRange32(p *sparse.CSR32, x, xc []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		for q := p.RowPtr[i]; q < p.RowPtr[i+1]; q++ {
			x[i] += p.Val[q] * xc[p.ColInd[q]]
		}
	}
}
