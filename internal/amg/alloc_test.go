package amg

// Zero-allocation regression guards for the cycle transfer kernels;
// see internal/sparse/alloc_test.go for the pattern rationale.

import (
	"testing"

	"irfusion/internal/parallel"
	"irfusion/internal/race"
)

func pinSerialPool(t *testing.T) {
	t.Helper()
	prev := parallel.SetDefault(parallel.New(1))
	t.Cleanup(func() { parallel.SetDefault(prev) })
}

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	fn()
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %v allocs per run in steady state, want 0", name, allocs)
	}
}

func TestZeroAllocTransferKernels(t *testing.T) {
	pinSerialPool(t)
	a := laplacian2D(16, 16)
	h, err := Build(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) < 2 || h.Levels[0].P == nil {
		t.Skip("hierarchy too shallow to exercise transfer kernels")
	}
	lvl := h.Levels[0]
	fine := make([]float64, lvl.A.Rows())
	coarse := make([]float64, lvl.P.Cols())
	for i := range fine {
		fine[i] = float64(i%7) + 1
	}
	for i := range coarse {
		coarse[i] = float64(i%5) + 1
	}
	requireZeroAllocs(t, "restrict", func() { restrict(lvl.P, coarse, fine) })
	requireZeroAllocs(t, "prolongAdd", func() { prolongAdd(lvl.P, fine, coarse) })
}
