package core

import (
	"bytes"
	"strings"
	"testing"

	"irfusion/internal/dataset"
	"irfusion/internal/metrics"
	"irfusion/internal/nn"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
)

// quickCfg returns a tiny configuration that trains in well under a
// second per epoch.
func quickCfg() Config {
	cfg := Default(32)
	cfg.Base = 4
	cfg.Depth = 2
	cfg.Epochs = 6
	cfg.LearningRate = 5e-3
	return cfg
}

// tinySet builds a small train/test split once per test run.
func tinySet(t *testing.T, cfg Config, nFake, nReal int) ([]*dataset.Sample, []*dataset.Sample) {
	t.Helper()
	all, err := dataset.GenerateSet(nFake, nReal+1, 32, 50, cfg.DatasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	return all[:nFake+nReal], all[nFake+nReal:]
}

func TestTrainProducesWorkingAnalyzer(t *testing.T) {
	cfg := quickCfg()
	train, test := tinySet(t, cfg, 3, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParams == 0 || res.TrainTime <= 0 {
		t.Error("training metadata missing")
	}
	if len(res.EpochLoss) != cfg.Epochs {
		t.Errorf("epoch losses %d, want %d", len(res.EpochLoss), cfg.Epochs)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Errorf("loss did not improve: %v", res.EpochLoss)
	}
	reports := res.Analyzer.Evaluate(test)
	if len(reports) != 1 {
		t.Fatal("expected one report")
	}
	r := reports[0]
	if r.Runtime <= 0 {
		t.Error("runtime not charged")
	}
	// The fusion prediction must beat the trivial all-zero predictor.
	zeroMAE := test[0].Golden.Mean()
	if r.MAE >= zeroMAE {
		t.Errorf("prediction MAE %v no better than zero predictor %v", r.MAE, zeroMAE)
	}
}

func TestFusionBeatsItsOwnRoughInput(t *testing.T) {
	// The headline claim in miniature: training on rough numerical
	// features should refine (not degrade) the rough solution.
	cfg := quickCfg()
	cfg.RoughIters = 1
	cfg.Epochs = 12
	train, test := tinySet(t, cfg, 4, 2)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	s := test[0]
	pred := res.Analyzer.Predict(s)
	mlMAE := metrics.MAE(pred, s.Golden)
	roughMAE := metrics.MAE(s.RoughBottom, s.Golden)
	if mlMAE >= roughMAE {
		t.Errorf("ML stage failed to refine the 1-iteration rough solution: ml %v vs rough %v", mlMAE, roughMAE)
	}
}

func TestPredictNonNegative(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, test := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	pred := res.Analyzer.Predict(test[0])
	if pred.Min() < 0 {
		t.Error("predicted drops must be clamped non-negative")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, test := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Analyzer.Predict(test[0])
	var buf bytes.Buffer
	if err := res.Analyzer.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Fresh analyzer with same architecture, random weights.
	res2, err := Train(Config{
		Resolution: cfg.Resolution, RoughIters: cfg.RoughIters,
		ModelName: cfg.ModelName, Base: cfg.Base, Depth: cfg.Depth,
		Seed: 99, UseNumerical: true, Hierarchical: true,
		UseInception: true, UseCBAM: true, ResidualMode: cfg.ResidualMode,
		Epochs: 1, BatchSize: 2, LearningRate: 1e-3,
		OversampleFake: 1, OversampleReal: 1, CurriculumRamp: 0.5,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	res2.Analyzer.Norm = res.Analyzer.Norm
	res2.Analyzer.TargetScale = res.Analyzer.TargetScale
	if err := res2.Analyzer.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	p2 := res2.Analyzer.Predict(test[0])
	for i := range p1.Data {
		if p1.Data[i] != p2.Data[i] {
			t.Fatal("restored model predicts differently")
		}
	}
}

func TestAblationConfigsTrain(t *testing.T) {
	base := quickCfg()
	base.Epochs = 2
	variants := map[string]func(Config) Config{
		"noNumerical":  func(c Config) Config { c.UseNumerical = false; return c },
		"noHierarchy":  func(c Config) Config { c.Hierarchical = false; return c },
		"noInception":  func(c Config) Config { c.UseInception = false; return c },
		"noCBAM":       func(c Config) Config { c.UseCBAM = false; return c },
		"noAugment":    func(c Config) Config { c.UseAugmentation = false; return c },
		"noCurriculum": func(c Config) Config { c.UseCurriculum = false; return c },
	}
	for name, mut := range variants {
		cfg := mut(base)
		train, test := tinySet(t, cfg, 2, 1)
		res, err := Train(cfg, train)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep := res.Analyzer.Evaluate(test); len(rep) != 1 {
			t.Fatalf("%s: evaluation failed", name)
		}
	}
}

func TestAllRegisteredModelsTrain(t *testing.T) {
	base := quickCfg()
	base.Epochs = 2
	train, test := tinySet(t, base, 2, 1)
	for _, name := range ModelNames() {
		cfg := base
		cfg.ModelName = name
		res, err := Train(cfg, train)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reports := res.Analyzer.Evaluate(test)
		if reports[0].MAE < 0 {
			t.Fatalf("%s: bad report", name)
		}
	}
}

func TestNumericalAnalyzer(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("na", pgen.Fake, 32, 32, 7))
	if err != nil {
		t.Fatal(err)
	}
	golden := &NumericalAnalyzer{Iters: 0, Resolution: 32}
	gm, _, gRes, err := golden.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if gRes > 1e-9 {
		t.Errorf("golden solve residual %v", gRes)
	}
	prev := 1e18
	for _, k := range []int{1, 3, 10} {
		na := &NumericalAnalyzer{Iters: k, Resolution: 32}
		m, rt, _, err := na.Analyze(d)
		if err != nil {
			t.Fatal(err)
		}
		if rt <= 0 {
			t.Error("runtime missing")
		}
		mae := metrics.MAE(m, gm)
		if mae > prev*1.05 {
			t.Errorf("numerical MAE not improving with iterations: k=%d %v -> %v", k, prev, mae)
		}
		prev = mae
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, _ := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pgen.Generate(pgen.DefaultConfig("e2e", pgen.Real, 32, 32, 77))
	if err != nil {
		t.Fatal(err)
	}
	pred, rt, err := res.Analyzer.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if pred.H != 32 || pred.W != 32 {
		t.Error("prediction shape wrong")
	}
	if rt <= 0 {
		t.Error("runtime missing")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(quickCfg(), nil); err == nil {
		t.Error("expected error for empty training set")
	}
	cfg := quickCfg()
	cfg.ModelName = "bogus"
	train, _ := tinySet(t, cfg, 1, 0)
	if _, err := Train(cfg, train); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestDescribe(t *testing.T) {
	s := Default(64).Describe()
	for _, want := range []string{"model=irfusion", "res=64", "cbam=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q: %s", want, s)
		}
	}
}

func TestAnalyzerCheckpointRoundTrip(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, test := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Analyzer.Predict(test[0])
	var buf bytes.Buffer
	if err := res.Analyzer.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Predict(test[0])
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("restored analyzer differs at pixel %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	if restored.Config.ModelName != cfg.ModelName || restored.TargetScale != res.Analyzer.TargetScale {
		t.Error("checkpoint metadata lost")
	}
}

func TestLoadAnalyzerGarbage(t *testing.T) {
	if _, err := LoadAnalyzer(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestHotspotWeightedTraining(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 3
	cfg.HotspotWeight = 4
	train, test := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Analyzer.Evaluate(test); rep[0].MAE < 0 {
		t.Fatal("evaluation failed")
	}
}

func TestHotspotWeights(t *testing.T) {
	y := nnTensorFrom([]float64{0, 0.5, 1})
	w := hotspotWeights(y, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if w.Data[i] != want[i] {
			t.Errorf("w[%d] = %v, want %v", i, w.Data[i], want[i])
		}
	}
	z := nnTensorFrom([]float64{0, 0, 0})
	wz := hotspotWeights(z, 2)
	for _, v := range wz.Data {
		if v != 1 {
			t.Error("zero target should give unit weights")
		}
	}
}

func nnTensorFrom(v []float64) *nn.Tensor {
	t := nn.NewTensor(len(v))
	copy(t.Data, v)
	return t
}

func TestResidualModeTrainsAndImproves(t *testing.T) {
	cfg := quickCfg()
	cfg.ResidualMode = true
	cfg.RoughIters = 4
	cfg.Epochs = 8
	train, test := tinySet(t, cfg, 4, 2)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	s := test[0]
	pred := res.Analyzer.Predict(s)
	mlMAE := metrics.MAE(pred, s.Golden)
	roughMAE := metrics.MAE(s.RoughBottom, s.Golden)
	if mlMAE >= roughMAE {
		t.Errorf("residual correction should improve on rough: ml %v vs rough %v", mlMAE, roughMAE)
	}
}

func TestResidualModeRequiresNumerical(t *testing.T) {
	cfg := quickCfg()
	cfg.ResidualMode = true
	cfg.UseNumerical = false
	cfg.Epochs = 1
	train, _ := tinySet(t, cfg, 2, 0)
	// Without the numerical stage, residual mode silently degrades to
	// direct prediction (residual := ResidualMode && UseNumerical).
	if _, err := Train(cfg, train); err != nil {
		t.Fatalf("direct fallback failed: %v", err)
	}
}

func TestResidualModeCheckpointRoundTrip(t *testing.T) {
	cfg := quickCfg()
	cfg.ResidualMode = true
	cfg.Epochs = 2
	train, test := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Analyzer.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Config.ResidualMode {
		t.Fatal("residual flag lost in checkpoint")
	}
	a := res.Analyzer.Predict(test[0])
	b := restored.Predict(test[0])
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored residual analyzer differs")
		}
	}
}

func TestCosineLRAndValidationTraining(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 5
	cfg.CosineLR = true
	cfg.ValidationFraction = 0.25
	train, test := tinySet(t, cfg, 4, 2)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValLoss) != cfg.Epochs {
		t.Fatalf("val losses %d, want %d", len(res.ValLoss), cfg.Epochs)
	}
	if res.BestEpoch < 0 || res.BestEpoch >= cfg.Epochs {
		t.Fatalf("best epoch %d out of range", res.BestEpoch)
	}
	// Best epoch must be the argmin of ValLoss.
	best := 0
	for i, v := range res.ValLoss {
		if v < res.ValLoss[best] {
			best = i
		}
	}
	if best != res.BestEpoch {
		t.Errorf("BestEpoch = %d, argmin(ValLoss) = %d", res.BestEpoch, best)
	}
	if rep := res.Analyzer.Evaluate(test); rep[0].MAE < 0 {
		t.Fatal("evaluation failed")
	}
}

func TestValidationWithoutFractionDisabled(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, _ := tinySet(t, cfg, 2, 1)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValLoss) != 0 {
		t.Error("validation should be off by default")
	}
	if res.BestEpoch != cfg.Epochs-1 {
		t.Errorf("BestEpoch = %d, want final epoch", res.BestEpoch)
	}
}

// TestAnalyzerRunEmitsManifest drives the full pipeline (train, then
// analyze a fresh design) under an active run recorder and checks the
// resulting manifest carries the signals the observability layer
// promises: validated schema, non-zero stage timings, per-epoch
// training records, a convergence trace, and worker-pool counters.
func TestAnalyzerRunEmitsManifest(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 2
	train, _ := tinySet(t, cfg, 2, 1)

	rec := obs.NewRecorder()
	prev := obs.SetActive(rec)
	defer obs.SetActive(prev)

	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pgen.Generate(pgen.DefaultConfig("obs-e2e", pgen.Real, 32, 32, 99))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Analyzer.Analyze(d); err != nil {
		t.Fatal(err)
	}
	obs.SetActive(prev)

	m := rec.Manifest("analyze", cfg)
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}

	timed := 0
	for _, st := range m.Stages {
		if st.Seconds > 0 {
			timed++
		}
	}
	if timed == 0 {
		t.Fatalf("no stage with non-zero wall time in %d stages", len(m.Stages))
	}
	for _, want := range []string{"dataset.golden_solve", "ml.inference"} {
		found := false
		for _, st := range m.Stages {
			if st.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q missing from manifest", want)
		}
	}

	if len(m.Epochs) != cfg.Epochs {
		t.Errorf("epochs recorded = %d, want %d", len(m.Epochs), cfg.Epochs)
	}

	trace := false
	for _, s := range m.Solves {
		if s.Iterations > 0 && len(s.History) > 0 {
			trace = true
		}
	}
	if !trace {
		t.Fatalf("no solve with a non-empty residual history (%d solves)", len(m.Solves))
	}

	pool := false
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "parallel.") && v > 0 {
			pool = true
		}
	}
	if !pool {
		t.Error("no parallel.* dispatch counters in manifest")
	}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("re-decoded manifest invalid: %v", err)
	}
}
