package core

// The graceful-degradation ladder. IR-Fusion's premise is tolerance
// to imprecision — a deliberately rough numerical solve is repaired by
// the ML stage — so when a solve backend misbehaves the pipeline
// should *degrade* to a cheaper/stochastic backend, not die. This
// file implements the generic machinery: ordered backend rungs with
// bounded retries, deterministic exponential backoff with jitter for
// transient faults, per-rung circuit breakers so a repeatedly-failing
// backend stops being attempted under load, and a Degradation record
// in the run manifest saying exactly how the answer was produced.
// The ladders themselves (AMG-PCG → SSOR-PCG → random walk →
// structure-only inference) are wired in core.go.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"irfusion/internal/obs"
	"irfusion/internal/solver"
)

// ErrLadderExhausted is returned when every rung of a degradation
// ladder failed (or was skipped by an open breaker). The serving
// layer maps it to a structured 503 with a Retry-After hint.
var ErrLadderExhausted = errors.New("core: degradation ladder exhausted")

// ResilienceOptions tunes the ladder runner. The zero value means
// "defaults" (two attempts per rung, 5ms..100ms backoff, jitter seed
// 1, no breakers).
type ResilienceOptions struct {
	// MaxAttempts is the number of tries per rung for *retryable*
	// (transient) errors; non-retryable errors move to the next rung
	// immediately. Default 2.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff slept
	// between retries of one rung: attempt k waits
	// min(BackoffBase·2^(k−1), BackoffMax) scaled by jitter in
	// [0.5, 1). Defaults 5ms and 100ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter generator, making retry
	// timing reproducible in tests. Default 1.
	JitterSeed int64
	// Breakers, when non-nil, gates each rung through its named
	// circuit breaker: an open breaker skips the rung without
	// attempting it (recorded as a skipped attempt).
	Breakers *BreakerSet
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	return o
}

// BackoffDelay computes the sleep before retry number attempt (1 =
// the first retry): exponential in the attempt, capped, and scaled by
// a jitter factor drawn from rng in [0.5, 1) so concurrent retriers
// decorrelate. Deterministic for a given rng state.
func BackoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	jitter := 0.5 + 0.5*rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// LadderRung is one backend of a degradation ladder. Run must be
// restartable: it is called once per attempt and must reset any
// output state poisoned by a previous failed attempt.
type LadderRung struct {
	Name string
	Run  func(ctx context.Context) error
}

// classifyError buckets a rung failure:
//
//   - abort: cancellation/deadline — stop the whole ladder, nothing
//     downstream can help.
//   - retryable: numerical breakdown (solver.ErrBreakdown) — a
//     transient-looking failure worth retrying on the same rung with
//     backoff.
//   - neither: structural failures (solver.ErrIndefinite, AMG setup,
//     non-walkable matrix, ...) — this backend will keep failing for
//     this operand, fall to the next rung immediately.
func classifyError(err error) (retryable, abort bool) {
	switch {
	case errors.Is(err, solver.ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false, true
	case errors.Is(err, solver.ErrBreakdown):
		return true, false
	default:
		return false, false
	}
}

// RunLadder tries each rung in order under the resilience policy and
// returns the name and index of the rung that served. Every attempt,
// backoff, and breaker skip is recorded as a Degradation on the
// recorder resolved from ctx (obs.ActiveOr) — including clean
// first-rung successes, so a manifest always says how the answer was
// produced. On cancellation the context error is returned unwrapped
// of ladder semantics (callers and serve already classify it); when
// every rung fails the error wraps ErrLadderExhausted and the last
// rung error.
func RunLadder(ctx context.Context, component string, rungs []LadderRung, o ResilienceOptions) (string, int, error) {
	o = o.withDefaults()
	if len(rungs) == 0 {
		return "", 0, fmt.Errorf("%w: %s: no rungs configured", ErrLadderExhausted, component)
	}
	rec := obs.ActiveOr(ctx)
	rng := rand.New(rand.NewSource(o.JitterSeed))
	deg := obs.Degradation{Component: component}
	var lastErr error
	for idx, rung := range rungs {
		var br *CircuitBreaker
		if o.Breakers != nil {
			br = o.Breakers.Get(rung.Name)
			if !br.Allow() {
				deg.Attempts = append(deg.Attempts, obs.DegradationAttempt{
					Rung: rung.Name, Skipped: "breaker-open",
				})
				continue
			}
		}
		for attempt := 1; attempt <= o.MaxAttempts; attempt++ {
			err := rung.Run(ctx)
			at := obs.DegradationAttempt{Rung: rung.Name, Attempt: attempt}
			if err == nil {
				br.Record(true)
				deg.Attempts = append(deg.Attempts, at)
				deg.Rung, deg.RungIndex = rung.Name, idx
				rec.RecordDegradation(deg)
				return rung.Name, idx, nil
			}
			at.Error = err.Error()
			retryable, abort := classifyError(err)
			if abort {
				// Cancellation is the caller's doing, not the
				// backend's: no breaker penalty, no exhaustion — but
				// the trail still lands in the (partial) manifest.
				deg.Attempts = append(deg.Attempts, at)
				deg.Exhausted = true
				rec.RecordDegradation(deg)
				return "", 0, err
			}
			br.Record(false)
			lastErr = err
			if !retryable || attempt == o.MaxAttempts {
				deg.Attempts = append(deg.Attempts, at)
				break
			}
			delay := BackoffDelay(o.BackoffBase, o.BackoffMax, attempt, rng)
			at.BackoffSeconds = delay.Seconds()
			deg.Attempts = append(deg.Attempts, at)
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				deg.Exhausted = true
				rec.RecordDegradation(deg)
				return "", 0, fmt.Errorf("%s: backoff interrupted: %w", component, ctx.Err())
			}
		}
	}
	deg.Exhausted = true
	rec.RecordDegradation(deg)
	if lastErr == nil {
		// Every rung was skipped by an open breaker.
		return "", 0, fmt.Errorf("%w: %s: all rungs skipped by open breakers", ErrLadderExhausted, component)
	}
	return "", 0, fmt.Errorf("%w: %s: last error: %w", ErrLadderExhausted, component, lastErr)
}

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets one probe through; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// cBreakerTrips counts closed→open transitions process-wide, so run
// manifests and /metricsz surface breaker trips.
var cBreakerTrips = obs.GlobalCounter("core.breaker.trips")

// CircuitBreaker is a consecutive-failure breaker for one ladder
// rung. Closed until Threshold consecutive failures, then open for
// Cooldown; the first Allow after the cooldown transitions to
// half-open and admits a single probe whose Record decides: success
// closes, failure re-opens for another cooldown. Safe for concurrent
// use; methods on a nil receiver are inert (Allow always true).
type CircuitBreaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	openedAt  time.Time
	probing   bool
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook
}

// NewCircuitBreaker builds a breaker; threshold <= 0 defaults to 3
// and cooldown <= 0 to 5s.
func NewCircuitBreaker(threshold int, cooldown time.Duration) *CircuitBreaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &CircuitBreaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed, performing the
// open→half-open transition when the cooldown has elapsed.
func (b *CircuitBreaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of a call admitted by Allow.
func (b *CircuitBreaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if success {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
			cBreakerTrips.Inc()
		}
		return
	}
	if success {
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		cBreakerTrips.Inc()
	}
}

// Reset force-closes the breaker and clears its failure count. It is
// the entry point for authoritative external health evidence: the
// cluster gateway's probe loop closes a shard's breaker the moment a
// real health check succeeds, instead of waiting out the cooldown for
// a half-open probe. Ladder rungs never call it — a rung success
// reaches the breaker through Record, which only closes from
// half-open.
func (b *CircuitBreaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// State returns the current position (closed when nil).
func (b *CircuitBreaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet is a named collection of breakers sharing one policy —
// the per-backend trip registry a serving process hangs off its
// analyzers. Safe for concurrent use; nil-safe (a nil set gates
// nothing).
type BreakerSet struct {
	mu        sync.Mutex
	m         map[string]*CircuitBreaker
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook, applied to new breakers
}

// NewBreakerSet builds a set whose breakers open after threshold
// consecutive failures and cool down for cooldown (defaults as in
// NewCircuitBreaker).
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{m: map[string]*CircuitBreaker{}, threshold: threshold, cooldown: cooldown}
}

// Get returns the breaker for name, creating it on first use. Nil-safe
// (returns a nil breaker, which allows everything).
func (s *BreakerSet) Get(name string) *CircuitBreaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewCircuitBreaker(s.threshold, s.cooldown)
		if s.now != nil {
			b.now = s.now
		}
		s.m[name] = b
	}
	return b
}

// States snapshots every breaker's position, for health endpoints.
func (s *BreakerSet) States() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.m))
	for name, b := range s.m {
		out[name] = b.State().String()
	}
	return out
}
