package core

// Regression tests for error-wrapping identity: the degradation
// ladder's classification (and the serving layer's error_kind mapping
// on top of it) is driven entirely by errors.Is, so every wrap site on
// the failure paths must use %w. These tests pin the contract by
// pushing sentinel errors through the same multi-level wrap chains the
// pipeline produces and asserting the identities survive.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"irfusion/internal/faults"
	"irfusion/internal/solver"
)

// TestLadderExhaustedPreservesBreakdown proves that when every rung
// fails with a (further wrapped) solver.ErrBreakdown, the exhausted
// ladder error still satisfies errors.Is for BOTH sentinels: the
// serving layer classifies on ErrLadderExhausted while diagnostics and
// tests still see the root cause.
func TestLadderExhaustedPreservesBreakdown(t *testing.T) {
	rungs := []LadderRung{
		{Name: "a", Run: func(context.Context) error {
			return fmt.Errorf("rung a: solve failed: %w",
				fmt.Errorf("%w (injected at iteration 3)", solver.ErrBreakdown))
		}},
		{Name: "b", Run: func(context.Context) error {
			return fmt.Errorf("rung b: %w", solver.ErrIndefinite)
		}},
	}
	_, _, err := RunLadder(context.Background(), "test", rungs, ResilienceOptions{
		MaxAttempts: 1,
	})
	if err == nil {
		t.Fatal("want error from fully failing ladder")
	}
	if !errors.Is(err, ErrLadderExhausted) {
		t.Errorf("errors.Is(err, ErrLadderExhausted) = false; err = %v", err)
	}
	if !errors.Is(err, solver.ErrIndefinite) {
		t.Errorf("last rung error lost through exhaustion wrap; err = %v", err)
	}
}

// TestLadderAbortPreservesCancellation proves a cancellation
// surfacing from deep inside a rung (the PCGCtx wrap chain:
// ErrCancelled wrapping ctx.Err()) aborts the ladder and keeps both
// identities — the serve layer needs ErrCancelled/DeadlineExceeded,
// not ErrLadderExhausted, for its 4xx/504 mapping.
func TestLadderAbortPreservesCancellation(t *testing.T) {
	inner := fmt.Errorf("%w after 7 iterations: %w", solver.ErrCancelled, context.Canceled)
	rungs := []LadderRung{
		{Name: "a", Run: func(context.Context) error {
			return fmt.Errorf("numerical.amg: %w", inner)
		}},
		{Name: "b", Run: func(context.Context) error {
			t.Error("ladder must not fall through after cancellation")
			return nil
		}},
	}
	_, _, err := RunLadder(context.Background(), "test", rungs, ResilienceOptions{})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation identity lost; err = %v", err)
	}
	if errors.Is(err, ErrLadderExhausted) {
		t.Errorf("cancellation must not read as exhaustion; err = %v", err)
	}
}

// TestDeadlineSurvivesLadderAsTimeout pins the errors.As path: a
// deadline error keeps its net.Error-style Timeout() through the
// ladder's abort return, which is what lets callers distinguish
// timeout from explicit cancel without string matching.
func TestDeadlineSurvivesLadderAsTimeout(t *testing.T) {
	rungs := []LadderRung{
		{Name: "a", Run: func(context.Context) error {
			return fmt.Errorf("%w mid-solve: %w", solver.ErrCancelled, context.DeadlineExceeded)
		}},
	}
	_, _, err := RunLadder(context.Background(), "test", rungs, ResilienceOptions{})
	if err == nil {
		t.Fatal("want deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, DeadlineExceeded) = false; err = %v", err)
	}
	var te interface{ Timeout() bool }
	if !errors.As(err, &te) || !te.Timeout() {
		t.Errorf("errors.As timeout identity lost; err = %v", err)
	}
}

// TestRetryClassificationThroughWrapping proves classifyError sees
// breakdown through the wrap chains real backends produce: the ladder
// must retry (MaxAttempts times) on wrapped ErrBreakdown but move on
// immediately for structural failures.
func TestRetryClassificationThroughWrapping(t *testing.T) {
	calls := 0
	rungs := []LadderRung{
		{Name: "flaky", Run: func(context.Context) error {
			calls++
			return fmt.Errorf("attempt %d: %w", calls,
				fmt.Errorf("inner: %w", solver.ErrBreakdown))
		}},
		{Name: "fallback", Run: func(context.Context) error { return nil }},
	}
	name, idx, err := RunLadder(context.Background(), "test", rungs, ResilienceOptions{
		MaxAttempts: 3,
		BackoffBase: 1, // nanoseconds; keep the test fast
		BackoffMax:  1,
	})
	if err != nil {
		t.Fatalf("fallback rung should have served: %v", err)
	}
	if name != "fallback" || idx != 1 {
		t.Errorf("served by %q (index %d), want fallback/1", name, idx)
	}
	if calls != 3 {
		t.Errorf("flaky rung tried %d times, want 3 (wrapped breakdown must classify as retryable)", calls)
	}
}

// TestFaultsParseErrorWraps pins the %w fix in the faults spec parser:
// the clause-level wrap must expose the parameter-level cause to
// errors.Is/errors.As, not flatten it to text.
func TestFaultsParseErrorWraps(t *testing.T) {
	sentinel := errors.New("probe")
	wrapped := fmt.Errorf("faults: clause %q: %w", "x", sentinel)
	if !errors.Is(wrapped, sentinel) {
		t.Fatal("wrap idiom lost the cause")
	}
	// The real parser path: a bad probability must produce a chain,
	// not a flattened string (we can only assert non-nil structure
	// here since the inner error is unexported, but Unwrap must work).
	_, err := faults.Parse("solver.pcg:breakdown:p=2.0")
	if err == nil {
		t.Fatal("want error for out-of-range probability")
	}
	if errors.Unwrap(err) == nil {
		t.Errorf("clause error does not wrap its cause: %v", err)
	}
}
