package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"irfusion/internal/obs"
	"irfusion/internal/pgen"
)

// TestConcurrentNumericalAnalyzeManifestIsolation runs N numerical
// analyses in parallel, each under its own context-bound recorder
// (obs.WithRecorder), and checks every manifest contains exactly the
// records of its own run: one "numerical" solve with that goroutine's
// iteration budget, every stage executed once, and only its own
// counter. Any cross-talk means recorder state leaked between
// concurrent analyses. Run under -race this also exercises the shared
// worker pool from competing solves.
func TestConcurrentNumericalAnalyzeManifestIsolation(t *testing.T) {
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			iters := 2 + i%5 // distinct budgets to tell runs apart
			d, err := pgen.Generate(pgen.DefaultConfig(fmt.Sprintf("conc-%d", i), pgen.Fake, 24, 24, int64(i+1)))
			if err != nil {
				errs <- err
				return
			}
			rec := obs.NewRecorder()
			rec.Add("test.analyze", 1)
			ctx := obs.WithRecorder(context.Background(), rec)
			na := &NumericalAnalyzer{Iters: iters, Resolution: 24, Precond: "ssor"}
			if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
				errs <- fmt.Errorf("run %d: %w", i, err)
				return
			}
			m := rec.Manifest("test.numerical", nil)
			if err := m.Validate(); err != nil {
				errs <- fmt.Errorf("run %d: %w", i, err)
				return
			}
			if len(m.Solves) != 1 || m.Solves[0].Label != RungSSOR {
				errs <- fmt.Errorf("run %d: cross-talk: solves %+v", i, m.Solves)
				return
			}
			if got := m.Solves[0].Iterations; got != iters {
				errs <- fmt.Errorf("run %d: solve ran %d iterations, want own budget %d", i, got, iters)
				return
			}
			if m.Counters["test.analyze"] != 1 {
				errs <- fmt.Errorf("run %d: counter %d, want 1", i, m.Counters["test.analyze"])
				return
			}
			for _, st := range m.Stages {
				if st.Count != 1 {
					errs <- fmt.Errorf("run %d: cross-talk: stage %s ran %d times", i, st.Name, st.Count)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentFusedAnalyzeManifestIsolation is the fused-pipeline
// counterpart: one tiny model is trained once, then each goroutine
// analyzes with its own deserialized copy (model inference mutates
// internal buffers, so concurrent users need their own instance —
// the serving layer instead serializes a shared one) under its own
// recorder, with a distinct rough-solve budget as the fingerprint.
func TestConcurrentFusedAnalyzeManifestIsolation(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 1
	train, _ := tinySet(t, cfg, 2, 0)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Analyzer.Save(&buf); err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := LoadAnalyzer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				errs <- err
				return
			}
			a.Config.RoughIters = 2 + i%4
			d, err := pgen.Generate(pgen.DefaultConfig(fmt.Sprintf("fused-%d", i), pgen.Fake, 24, 24, int64(i+1)))
			if err != nil {
				errs <- err
				return
			}
			rec := obs.NewRecorder()
			rec.Add("test.analyze", 1)
			ctx := obs.WithRecorder(context.Background(), rec)
			if _, _, err := a.AnalyzeCtx(ctx, d); err != nil {
				errs <- fmt.Errorf("run %d: %w", i, err)
				return
			}
			m := rec.Manifest("test.fused", nil)
			if err := m.Validate(); err != nil {
				errs <- fmt.Errorf("run %d: %w", i, err)
				return
			}
			// A fused analysis builds its sample (golden + rough solve)
			// then runs inference: exactly two solves, the rough one at
			// this goroutine's budget.
			if len(m.Solves) != 2 {
				errs <- fmt.Errorf("run %d: cross-talk: %d solves %+v", i, len(m.Solves), m.Solves)
				return
			}
			var rough *obs.SolveRecord
			for k := range m.Solves {
				if m.Solves[k].Label == "rough" {
					rough = &m.Solves[k]
				}
			}
			if rough == nil {
				errs <- fmt.Errorf("run %d: no rough solve in %+v", i, m.Solves)
				return
			}
			if rough.Iterations != a.Config.RoughIters {
				errs <- fmt.Errorf("run %d: rough solve ran %d iterations, want own budget %d", i, rough.Iterations, a.Config.RoughIters)
				return
			}
			if m.Counters["test.analyze"] != 1 {
				errs <- fmt.Errorf("run %d: counter %d, want 1", i, m.Counters["test.analyze"])
				return
			}
			for _, st := range m.Stages {
				if st.Count != 1 {
					errs <- fmt.Errorf("run %d: cross-talk: stage %s ran %d times", i, st.Name, st.Count)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
