package core

import (
	"context"
	"math"
	"testing"

	"irfusion/internal/cache"
	"irfusion/internal/faults"
	"irfusion/internal/grid"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
)

func cacheTestDesign(t *testing.T) *pgen.Design {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("cachecore", pgen.Real, 24, 24, 17))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mapMaxDiff(a, b *grid.Map) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// analyzeWithCache runs one converged numerical analysis with c bound
// to the context and a fresh recorder, returning the map and the
// recorded cache events.
func analyzeWithCache(t *testing.T, c *cache.Cache, d *pgen.Design) (*grid.Map, []obs.CacheEvent) {
	t.Helper()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	if c != nil {
		ctx = cache.WithCache(ctx, c)
	}
	na := &NumericalAnalyzer{Iters: 0, Resolution: 24}
	m, _, _, err := na.AnalyzeCtx(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	mf := rec.Manifest("test", nil)
	if mf.Cache == nil {
		return m, nil
	}
	return m, mf.Cache.Events
}

// TestAnalyzeCacheExactHit proves the exact-hit path: the second
// analysis of an identical design serves the cached golden solution
// (guarded by one SpMV), produces a bitwise-identical drop map, and
// runs no solver ladder at all.
func TestAnalyzeCacheExactHit(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	cold, evts := analyzeWithCache(t, c, d)
	if len(evts) == 0 || evts[len(evts)-1].Outcome != obs.CacheStore {
		t.Fatalf("first run events = %+v, want a trailing store", evts)
	}
	hit, evts := analyzeWithCache(t, c, d)
	var sawHit bool
	for _, e := range evts {
		if e.Outcome == obs.CacheHit && e.Stage == "numerical.solve" {
			sawHit = true
		}
		if e.Outcome == obs.CacheStore {
			t.Fatalf("hit run re-stored: %+v", evts)
		}
	}
	if !sawHit {
		t.Fatalf("second run did not hit: %+v", evts)
	}
	if diff := mapMaxDiff(cold, hit); diff != 0 { //irfusion:exact a served golden solution is the stored bits; rasterizing must reproduce the cold map exactly
		t.Fatalf("hit map differs from cold map by %g", diff)
	}
}

// TestAnalyzeCacheWarmStart proves the delta-solve path end to end: an
// ECO-perturbed design warm-starts off the cached baseline (warm event
// with a sub-budget delta, served by the RungAMGWarm rung) and its map
// matches a cold analysis of the same perturbed design to GuardTol.
func TestAnalyzeCacheWarmStart(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	if _, evts := analyzeWithCache(t, c, d); len(evts) == 0 {
		t.Fatal("baseline run recorded no cache events")
	}
	eco := pgen.Perturb(d, 0.01, 5)
	coldEco, _ := analyzeWithCache(t, nil, eco)
	warmEco, evts := analyzeWithCache(t, c, eco)
	var warm *obs.CacheEvent
	for i, e := range evts {
		if e.Outcome == obs.CacheWarm {
			warm = &evts[i]
		}
	}
	if warm == nil {
		t.Fatalf("no warm event recorded: %+v", evts)
	}
	if warm.Delta <= 0 || warm.Delta > cache.DefaultWarmDelta {
		t.Fatalf("warm delta %g outside (0, %g]", warm.Delta, cache.DefaultWarmDelta)
	}
	if diff := mapMaxDiff(coldEco, warmEco); diff > cache.GuardTol {
		t.Fatalf("warm map differs from cold map by %g (tol %g)", diff, cache.GuardTol)
	}
}

// TestAnalyzeCacheStaleGuard proves the residual guard: a poisoned
// lookup (injected via the cache.lookup stale fault) must be rejected,
// dropped, and recomputed — never served.
func TestAnalyzeCacheStaleGuard(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	cold, _ := analyzeWithCache(t, c, d)

	in, err := faults.Parse("cache.lookup:stale")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx = cache.WithCache(ctx, c)
	ctx = faults.WithInjector(ctx, in)
	na := &NumericalAnalyzer{Iters: 0, Resolution: 24}
	m, _, _, err := na.AnalyzeCtx(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	mf := rec.Manifest("test", nil)
	if mf.Cache == nil || mf.Cache.Stale == 0 {
		t.Fatalf("stale rejection not recorded: %+v", mf.Cache)
	}
	if mf.Cache.Hits != 0 {
		t.Fatalf("poisoned entry served as a hit: %+v", mf.Cache)
	}
	if diff := mapMaxDiff(cold, m); diff > cache.GuardTol {
		t.Fatalf("post-stale recompute differs from cold by %g", diff)
	}
}

// TestAnalyzeBudgetedSolvesBypassCache pins the Fig-7 isolation rule:
// budgeted (Iters > 0) analyses never consult or feed the cache —
// their per-iteration progress is the measured quantity.
func TestAnalyzeBudgetedSolvesBypassCache(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx = cache.WithCache(ctx, c)
	na := &NumericalAnalyzer{Iters: 5, Resolution: 24, Precond: "ssor"}
	if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
		t.Fatal(err)
	}
	if mf := rec.Manifest("test", nil); mf.Cache != nil {
		t.Fatalf("budgeted analysis touched the cache: %+v", mf.Cache)
	}
	if c.Len() != 0 {
		t.Fatalf("budgeted analysis stored %d artifact(s)", c.Len())
	}
}
