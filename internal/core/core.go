// Package core is the public face of the IR-Fusion reproduction: the
// Analyzer runs the fused numerical+ML pipeline end to end, the
// Trainer implements the paper's augmented-curriculum training loop,
// and NumericalAnalyzer is the pure AMG-PCG baseline (PowerRush) used
// in the trade-off study.
package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"irfusion/internal/amg"
	"irfusion/internal/cache"
	"irfusion/internal/circuit"
	"irfusion/internal/dataset"
	"irfusion/internal/faults"
	"irfusion/internal/features"
	"irfusion/internal/grid"
	"irfusion/internal/metrics"
	"irfusion/internal/models"
	"irfusion/internal/nn"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
)

// Config assembles every knob of the pipeline. Zero values are filled
// by Default.
type Config struct {
	// Resolution is the square raster size (the contest uses 256; the
	// reduced-scale default here is 64).
	Resolution int
	// RoughIters is the AMG-PCG budget of the numerical stage.
	RoughIters int
	// ModelName selects the architecture from the models registry.
	ModelName string
	// Base and Depth size the model.
	Base, Depth int
	// Seed drives weight init, shuffling, and curriculum sampling.
	Seed int64

	// Ablation switches (all true for the full IR-Fusion).
	UseNumerical    bool
	Hierarchical    bool
	UseInception    bool
	UseCBAM         bool
	UseAugmentation bool
	UseCurriculum   bool

	// Training hyperparameters.
	Epochs         int
	BatchSize      int
	LearningRate   float64
	OversampleFake int
	OversampleReal int
	CurriculumRamp float64
	// HotspotWeight, when positive, re-weights the training loss so a
	// pixel at the golden maximum counts (1 + HotspotWeight)× as much
	// as a zero-drop pixel — the re-weighting analogue of PGAU's
	// label-distribution smoothing, emphasizing the worst-case region
	// that MIRDE and F1 score.
	HotspotWeight float64
	// ResidualMode makes the model predict a *correction* to the
	// rasterized rough solution instead of the absolute drop map, so
	// the fused prediction is rough + correction. This realizes the
	// paper's observation that the numerical solution lets "the model
	// begin training from a point much closer to the target label".
	// It requires UseNumerical and is ignored otherwise.
	ResidualMode bool
	// CosineLR anneals the learning rate to LearningRate/20 with a
	// cosine schedule instead of keeping it constant.
	CosineLR bool
	// ValidationFraction, when positive, holds out that fraction of
	// the training designs for per-epoch validation; the returned
	// analyzer carries the weights of the best validation epoch.
	ValidationFraction float64
}

// Default returns the full IR-Fusion configuration at the given
// raster resolution.
func Default(resolution int) Config {
	return Config{
		Resolution:      resolution,
		RoughIters:      6,
		ModelName:       "irfusion",
		Base:            8,
		Depth:           3,
		Seed:            1,
		UseNumerical:    true,
		Hierarchical:    true,
		UseInception:    true,
		UseCBAM:         true,
		UseAugmentation: true,
		UseCurriculum:   true,
		Epochs:          30,
		BatchSize:       4,
		LearningRate:    2e-3,
		OversampleFake:  2,
		OversampleReal:  5,
		CurriculumRamp:  0.5,
		HotspotWeight:   2,
		ResidualMode:    true,
	}
}

// DatasetOptions derives the dataset build options implied by the
// config.
func (c Config) DatasetOptions() dataset.Options {
	opts := dataset.DefaultOptions(c.Resolution, c.Resolution)
	opts.RoughIters = c.RoughIters
	opts.IncludeNumerical = c.UseNumerical
	opts.Hierarchical = c.Hierarchical
	return opts
}

// buildModel instantiates the configured architecture sized for the
// sample's channel count, honouring the Inception/CBAM ablations when
// the model is IR-Fusion.
func (c Config) buildModel(inChannels int) (models.Model, error) {
	mc := models.Config{InChannels: inChannels, Base: c.Base, Depth: c.Depth, Seed: c.Seed}
	if c.ModelName == "irfusion" {
		return models.NewIRFusionNetAblated(mc, c.UseInception, true, c.UseCBAM), nil
	}
	return models.New(c.ModelName, mc)
}

// Analyzer is a trained fusion pipeline.
type Analyzer struct {
	Config      Config
	Model       models.Model
	Norm        *dataset.Normalizer
	TargetScale float64
	// Resilience tunes the rough-solve degradation ladder used by
	// AnalyzeCtx (retries/backoff, shared circuit breakers). The zero
	// value means defaults. Not serialized with the checkpoint.
	Resilience ResilienceOptions
}

// Predict runs the ML stage on a prepared sample and returns the
// predicted IR-drop map in volts (clamped non-negative). In residual
// mode the model output corrects the rasterized rough solution.
func (a *Analyzer) Predict(s *dataset.Sample) *grid.Map {
	return a.PredictCtx(context.Background(), s)
}

// PredictCtx is Predict reporting to the recorder resolved from ctx
// (obs.ActiveOr), so concurrent predictions with per-context recorders
// do not cross-talk. The dense forward pass is not interruptible; ctx
// only selects the recorder here — cancellation takes effect at the
// solver loops upstream (see AnalyzeCtx).
func (a *Analyzer) PredictCtx(ctx context.Context, s *dataset.Sample) *grid.Map {
	st := obs.ActiveOr(ctx).StartStage("ml.inference")
	defer st.End()
	x, _ := dataset.ToTensors([]*dataset.Sample{s})
	a.Norm.Apply(x)
	a.Model.SetTraining(false)
	out := a.Model.Forward(nil, x)
	m := grid.FromData(s.Golden.H, s.Golden.W, out.Data)
	inv := 1 / a.TargetScale
	residual := a.Config.ResidualMode && a.Config.UseNumerical && s.RoughBottom != nil
	for i, v := range m.Data {
		v *= inv
		if residual {
			v += s.RoughBottom.Data[i]
		}
		if v < 0 {
			v = 0
		}
		m.Data[i] = v
	}
	return m
}

// Analyze runs the complete pipeline on a raw design: rough solve,
// feature extraction, ML refinement. It returns the predicted map and
// the wall-clock runtime (numerical stage + inference).
func (a *Analyzer) Analyze(d *pgen.Design) (*grid.Map, time.Duration, error) {
	return a.AnalyzeCtx(context.Background(), d)
}

// AnalyzeCtx is Analyze with cooperative cancellation and per-context
// observability: the rough/golden solves stop early when ctx is
// cancelled (solver.ErrCancelled), and all stage timers and solve
// records report to the recorder bound to ctx, if any.
//
// The rough solve of the numerical stage runs on a degradation
// ladder: the configured budgeted PCG first, the random-walk solver
// when that fails, and finally a structure-only rung that leaves the
// rough solution at zero — the fused inference then works from
// structural features alone (and, in residual mode, predicts the
// whole drop rather than a correction), exactly the
// imprecision-tolerance the paper's ML stage is trained to absorb.
// The ladder always serves, so a fused analysis degrades rather than
// fails when the numerical backends misbehave.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, d *pgen.Design) (*grid.Map, time.Duration, error) {
	opts := a.Config.DatasetOptions()
	opts.RoughSolver = a.RoughSolver(0)
	s, err := dataset.BuildCtx(ctx, d, opts)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	pred := a.PredictCtx(ctx, s)
	return pred, s.NumericalTime + time.Since(start), nil
}

// RoughSolver builds the dataset.Options.RoughSolver hook that runs
// the fused pipeline's rough solve on the degradation ladder, with the
// given iteration budget (<= 0 uses the config's RoughIters). Exported
// for callers that drive dataset.BuildCtx themselves — the serving
// layer, which overrides the budget per request.
func (a *Analyzer) RoughSolver(iters int) func(ctx context.Context, sys *circuit.System, x []float64) error {
	if iters <= 0 {
		iters = a.Config.RoughIters
	}
	return func(ctx context.Context, sys *circuit.System, x []float64) error {
		primary := LadderRung{Name: RungRough, Run: func(ctx context.Context) error {
			var pre solver.Preconditioner
			if a.Config.DatasetOptions().RoughPrecond == "amg" {
				h, err := amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
				if err != nil {
					return err
				}
				pre = h
			} else {
				pre = solver.NewSSOR(sys.G, 2)
			}
			for i := range x {
				x[i] = 0
			}
			ropts := solver.RoughOptions(iters)
			ropts.Label = RungRough
			_, err := solver.PCGCtx(ctx, sys.G, x, sys.I, pre, ropts)
			return err
		}}
		rwRung := LadderRung{Name: RungRoughRW, Run: func(ctx context.Context) error {
			return randomWalkSolve(ctx, sys, x, RungRoughRW, iters, nil)
		}}
		structOnly := LadderRung{Name: RungStructOnly, Run: func(ctx context.Context) error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", solver.ErrCancelled, err)
			}
			for i := range x {
				x[i] = 0
			}
			return nil
		}}
		_, _, err := RunLadder(ctx, "core.fused.rough",
			[]LadderRung{primary, rwRung, structOnly}, a.Resilience)
		return err
	}
}

// Evaluate scores the analyzer on prepared samples, charging the
// numerical stage plus inference to the runtime.
func (a *Analyzer) Evaluate(samples []*dataset.Sample) []metrics.Report {
	reports := make([]metrics.Report, 0, len(samples))
	for _, s := range samples {
		start := time.Now()
		pred := a.Predict(s)
		infer := time.Since(start)
		r := metrics.Evaluate(pred, s.Golden)
		r.Runtime = (s.NumericalTime + infer).Seconds()
		reports = append(reports, r)
	}
	return reports
}

// checkpointData is the single-blob on-disk form of an Analyzer.
type checkpointData struct {
	Config      Config
	NormNames   []string
	NormScale   []float64
	TargetScale float64
	InChannels  int
	Params      [][]float64
	State       [][]float64
}

// Save serializes the whole analyzer — configuration, feature
// normalizer, target scaling, model weights, and batch-norm state —
// so LoadAnalyzer can restore an identical predictor.
func (a *Analyzer) Save(w io.Writer) error {
	data := checkpointData{
		Config:      a.Config,
		NormNames:   a.Norm.Names,
		NormScale:   a.Norm.Scale,
		TargetScale: a.TargetScale,
		InChannels:  len(a.Norm.Scale),
		State:       a.Model.State(),
	}
	for _, p := range a.Model.Params() {
		data.Params = append(data.Params, p.Data)
	}
	return gob.NewEncoder(w).Encode(data)
}

// LoadAnalyzer restores an analyzer saved with Save, rebuilding the
// model architecture from the stored configuration.
func LoadAnalyzer(r io.Reader) (*Analyzer, error) {
	var data checkpointData
	if err := gob.NewDecoder(r).Decode(&data); err != nil {
		return nil, err
	}
	model, err := data.Config.buildModel(data.InChannels)
	if err != nil {
		return nil, err
	}
	params := model.Params()
	if len(params) != len(data.Params) {
		return nil, fmt.Errorf("core: checkpoint has %d param tensors, model has %d", len(data.Params), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(data.Params[i]) {
			return nil, fmt.Errorf("core: param %d size mismatch", i)
		}
		copy(p.Data, data.Params[i])
	}
	state := model.State()
	if len(state) != len(data.State) {
		return nil, fmt.Errorf("core: checkpoint has %d state vectors, model has %d", len(data.State), len(state))
	}
	for i := range state {
		if len(state[i]) != len(data.State[i]) {
			return nil, fmt.Errorf("core: state vector %d size mismatch", i)
		}
		copy(state[i], data.State[i])
	}
	model.SetTraining(false)
	return &Analyzer{
		Config:      data.Config,
		Model:       model,
		Norm:        &dataset.Normalizer{Names: data.NormNames, Scale: data.NormScale},
		TargetScale: data.TargetScale,
	}, nil
}

// SaveModel serializes the trained weights and batch-norm state.
func (a *Analyzer) SaveModel(w io.Writer) error {
	return nn.SaveCheckpoint(w, a.Model.Params(), a.Model.State())
}

// LoadModel restores trained weights and batch-norm state into the
// analyzer's model.
func (a *Analyzer) LoadModel(r io.Reader) error {
	return nn.LoadCheckpoint(r, a.Model.Params(), a.Model.State())
}

// TrainResult captures the training trajectory.
type TrainResult struct {
	Analyzer   *Analyzer
	EpochLoss  []float64
	ValLoss    []float64 // per-epoch validation loss (when enabled)
	BestEpoch  int       // epoch whose weights the analyzer carries
	FinalLoss  float64
	NumParams  int
	TrainTime  time.Duration
	NumSamples int
}

// Train runs the augmented-curriculum training loop of the paper on
// prepared samples and returns a ready Analyzer.
func Train(cfg Config, train []*dataset.Sample) (*TrainResult, error) {
	if len(train) == 0 {
		return nil, errors.New("core: no training samples")
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Optional validation hold-out, split before augmentation so a
	// rotated copy of a validation design never leaks into training.
	var validation []*dataset.Sample
	if cfg.ValidationFraction > 0 && len(train) > 1 {
		shuffled := append([]*dataset.Sample(nil), train...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		nVal := int(cfg.ValidationFraction * float64(len(shuffled)))
		if nVal < 1 {
			nVal = 1
		}
		if nVal >= len(shuffled) {
			nVal = len(shuffled) - 1
		}
		validation = shuffled[:nVal]
		train = shuffled[nVal:]
	}

	working := train
	if cfg.UseAugmentation {
		working = dataset.Augment(working)
		working = dataset.Oversample(working, cfg.OversampleFake, cfg.OversampleReal)
	}
	norm := dataset.FitNormalizer(working)

	residual := cfg.ResidualMode && cfg.UseNumerical
	if residual {
		for _, s := range working {
			if s.RoughBottom == nil {
				return nil, errors.New("core: residual mode needs samples with a rough solution")
			}
		}
	}

	// Scale targets so the head trains in O(1) range.
	maxDrop := 0.0
	for _, s := range working {
		if residual {
			for i, g := range s.Golden.Data {
				d := g - s.RoughBottom.Data[i]
				if d < 0 {
					d = -d
				}
				if d > maxDrop {
					maxDrop = d
				}
			}
			continue
		}
		if m := s.Golden.Max(); m > maxDrop {
			maxDrop = m
		}
	}
	targetScale := 1.0
	if maxDrop > 0 {
		targetScale = 1 / maxDrop
	}

	model, err := cfg.buildModel(working[0].Features.Channels())
	if err != nil {
		return nil, err
	}
	model.SetTraining(true)
	params := model.Params()
	opt := nn.NewAdam(cfg.LearningRate)
	opt.GradClip = 5

	cur := dataset.Curriculum{Ramp: cfg.CurriculumRamp}
	batchSize := cfg.BatchSize
	if batchSize < 1 {
		batchSize = 1
	}
	res := &TrainResult{NumParams: nn.NumParams(params), NumSamples: len(working)}

	var schedule nn.LRSchedule = nn.ConstantLR{Base: cfg.LearningRate}
	if cfg.CosineLR {
		schedule = nn.CosineLR{Base: cfg.LearningRate, Min: cfg.LearningRate / 20}
	}

	// Best-epoch bookkeeping for validation runs.
	bestVal := 0.0
	var bestParams [][]float64
	var bestState [][]float64
	snapshotBest := func() {
		bestParams = bestParams[:0]
		for _, p := range params {
			bestParams = append(bestParams, append([]float64(nil), p.Data...))
		}
		bestState = bestState[:0]
		for _, s := range model.State() {
			bestState = append(bestState, append([]float64(nil), s...))
		}
	}
	valLoss := func() float64 {
		model.SetTraining(false)
		defer model.SetTraining(true)
		total := 0.0
		for _, s := range validation {
			x, y := dataset.ToTensors([]*dataset.Sample{s})
			norm.Apply(x)
			if residual {
				rough := dataset.RoughTensor([]*dataset.Sample{s})
				for i := range y.Data {
					y.Data[i] -= rough.Data[i]
				}
			}
			for i := range y.Data {
				y.Data[i] *= targetScale
			}
			pred := model.Forward(nil, x)
			total += nn.MSELoss(nil, pred, y).Data[0]
		}
		return total / float64(len(validation))
	}

	rec := obs.Active()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		opt.LR = schedule.Rate(epoch, cfg.Epochs)
		subset := working
		if cfg.UseCurriculum {
			subset = cur.Subset(working, epoch, cfg.Epochs, rng)
		} else {
			subset = append([]*dataset.Sample(nil), working...)
			rng.Shuffle(len(subset), func(i, j int) { subset[i], subset[j] = subset[j], subset[i] })
		}
		epochLoss, batches := 0.0, 0
		for b := 0; b < len(subset); b += batchSize {
			end := b + batchSize
			if end > len(subset) {
				end = len(subset)
			}
			x, y := dataset.ToTensors(subset[b:end])
			norm.Apply(x)
			if residual {
				rough := dataset.RoughTensor(subset[b:end])
				for i := range y.Data {
					y.Data[i] -= rough.Data[i]
				}
			}
			for i := range y.Data {
				y.Data[i] *= targetScale
			}
			tp := nn.NewTape()
			pred := model.Forward(tp, x)
			var loss *nn.Tensor
			switch {
			case cfg.HotspotWeight > 0:
				w := hotspotWeights(y, cfg.HotspotWeight)
				loss = nn.WeightedMSELoss(tp, pred, y, w)
			default:
				if lm, ok := model.(models.LossModel); ok {
					loss = lm.Loss(tp, pred, y)
				} else {
					loss = nn.MSELoss(tp, pred, y)
				}
			}
			nn.ZeroGrads(params)
			tp.Backward(loss)
			opt.Step(params)
			epochLoss += loss.Data[0]
			batches++
		}
		if batches > 0 {
			res.EpochLoss = append(res.EpochLoss, epochLoss/float64(batches))
		}
		var epochVal *float64
		if len(validation) > 0 {
			vl := valLoss()
			res.ValLoss = append(res.ValLoss, vl)
			epochVal = &vl
			if len(res.ValLoss) == 1 || vl < bestVal {
				bestVal = vl
				res.BestEpoch = epoch
				snapshotBest()
			}
		}
		if rec != nil && batches > 0 {
			rec.RecordEpoch(obs.EpochRecord{
				Epoch:   epoch,
				Loss:    epochLoss / float64(batches),
				ValLoss: epochVal,
				LR:      opt.LR,
				Samples: len(subset),
				Batches: batches,
				Seconds: time.Since(epochStart).Seconds(),
			})
		}
	}
	if n := len(res.EpochLoss); n > 0 {
		res.FinalLoss = res.EpochLoss[n-1]
	}
	if bestParams != nil {
		for i, p := range params {
			copy(p.Data, bestParams[i])
		}
		for i, s := range model.State() {
			copy(s, bestState[i])
		}
	} else {
		res.BestEpoch = cfg.Epochs - 1
	}
	model.SetTraining(false)
	res.Analyzer = &Analyzer{Config: cfg, Model: model, Norm: norm, TargetScale: targetScale}
	res.TrainTime = time.Since(start)
	return res, nil
}

// hotspotWeights builds the per-pixel loss weights 1 + hw·(|y|/max|y|)
// for a (scaled) target batch. Magnitudes are used so residual-mode
// targets (signed corrections) still get emphasis where the action is.
func hotspotWeights(y *nn.Tensor, hw float64) *nn.Tensor {
	w := nn.NewTensor(y.Shape...)
	maxY := 0.0
	for _, v := range y.Data {
		if v < 0 {
			v = -v
		}
		if v > maxY {
			maxY = v
		}
	}
	if maxY == 0 { //irfusion:exact an exactly zero maximum means the map is identically zero; fall back to uniform weights
		w.Fill(1)
		return w
	}
	for i, v := range y.Data {
		if v < 0 {
			v = -v
		}
		w.Data[i] = 1 + hw*v/maxY
	}
	return w
}

// Ladder rung names. They double as the obs solve labels of the
// numerical stage, so a manifest's convergence traces say which
// backend produced them, and as the circuit-breaker names in a
// serving process.
const (
	RungAMG        = "numerical.amg"
	RungAMGMP      = "numerical.amg.mp"
	RungAMGWarm    = "numerical.amg.warm"
	RungAMGResume  = "numerical.amg.resume"
	RungSSOR       = "numerical.ssor"
	RungRandomWalk = "numerical.randomwalk"
	RungRough      = "rough"
	RungRoughRW    = "rough.randomwalk"
	RungStructOnly = "rough.structure-only"
)

// NumericalAnalyzer is the pure numerical baseline (PowerRush-style
// budgeted PCG, or a converged golden AMG-PCG solve when Iters <= 0).
// Budgeted solves use the same preconditioner the fusion pipeline's
// rough stage uses ("ssor" by default, "amg" for the full K-cycle) so
// the Fig-7 comparison is engine-for-engine fair.
//
// Solves run on a degradation ladder (AMG-PCG → SSOR-PCG → random
// walk) governed by Resilience: a failing backend is retried with
// backoff when the failure looks transient, abandoned for the next
// rung otherwise, and the outcome is recorded in the run manifest's
// degradation section. When Precond selects SSOR the ladder starts at
// the SSOR rung.
type NumericalAnalyzer struct {
	Iters      int
	Resolution int
	Precond    string
	// Precision selects the arithmetic path of converged AMG solves:
	// "mixed" prepends the mixed-precision rung (RungAMGMP — float32
	// V-cycle inside float64 iterative refinement) ahead of the
	// full-precision AMG rung, so a stagnating refinement falls back
	// to full precision through the ordinary ladder mechanics with a
	// degradation trail. Empty or "full" runs full precision only.
	// Budgeted solves (Iters > 0) ignore it: their per-iteration
	// progress is the quantity under study in the Fig-7 trade-off and
	// the refinement loop has no comparable iteration budget.
	Precision string
	// Format overrides the SpMV storage format of the PCG rungs
	// ("auto", "csr", "sell"); empty keeps the solver default
	// (automatic per-matrix selection).
	Format string
	// Resilience tunes retries/backoff and optionally carries the
	// shared circuit-breaker set of a serving process. The zero value
	// means defaults (see ResilienceOptions).
	Resilience ResilienceOptions
	// CheckpointEvery enables solver checkpointing on converged cached
	// analyses: every CheckpointEvery PCG iterations (every refinement
	// round on the mixed rung) the solve snapshots its iterate into the
	// artifact cache under fingerprint⊕shape, and AnalyzeCtx prepends a
	// resume rung (RungAMGResume) when a matching snapshot already
	// exists — a crashed or handed-off solve continues from its last
	// checkpoint instead of iteration 0. 0 disables checkpointing.
	// Requires an active artifact cache; budgeted solves (Iters > 0)
	// never checkpoint — they run cold by design.
	CheckpointEvery int
	// OnCheckpoint, when non-nil, additionally receives each stored
	// checkpoint's cache key and gob encoding — the durable-persistence
	// hook the serving layer points at its write-ahead journal.
	OnCheckpoint func(key string, encoded []byte)

	// ckptSink is the per-analysis checkpoint writer, installed by
	// AnalyzeCtx when checkpointing applies. NumericalAnalyzer values
	// are per-request (the serving layer builds one per job), so the
	// field needs no locking.
	ckptSink solver.CheckpointSink
}

// Analyze solves the design and rasterizes the bottom-layer drops,
// returning the map, runtime, and the relative residual reached.
func (n *NumericalAnalyzer) Analyze(d *pgen.Design) (*grid.Map, time.Duration, float64, error) {
	return n.AnalyzeCtx(context.Background(), d)
}

// AnalyzeCtx is Analyze with cooperative cancellation (the PCG loop
// stops early with solver.ErrCancelled when ctx is cancelled) and
// per-context observability via obs.ActiveOr. The solve runs on the
// degradation ladder; when every rung fails the error wraps
// ErrLadderExhausted.
//
// Converged analyses (Iters <= 0) consult the artifact cache resolved
// by cache.ActiveOr: an exact fingerprint hit reuses the cached golden
// solution after a one-SpMV residual guard and skips the ladder
// entirely; a neighbor within cache.DefaultWarmDelta adds a warm-start
// rung (RungAMGWarm) ahead of the cold ladder, preconditioning with
// the donor's cloned hierarchy — the rung behaves like any other, so a
// failed warm start degrades to the cold AMG rung via the usual
// ladder mechanics. Budgeted analyses (Iters > 0) always run cold:
// their per-iteration progress is the quantity under study in the
// Fig-7 trade-off, so caching would corrupt the comparison.
func (n *NumericalAnalyzer) AnalyzeCtx(ctx context.Context, d *pgen.Design) (*grid.Map, time.Duration, float64, error) {
	rec := obs.ActiveOr(ctx)
	start := time.Now()
	st := rec.StartStage("numerical.assemble")
	nw, err := circuit.FromNetlist(d.Netlist)
	if err != nil {
		return nil, 0, 0, err
	}
	sys, err := nw.Assemble()
	if err != nil {
		return nil, 0, 0, err
	}
	st.End()
	x := make([]float64, sys.N())
	var res solver.Result
	st = rec.StartStage("numerical.solve")
	cc := cache.ActiveOr(ctx)
	var fp string
	solved := false
	if cc != nil && n.Iters <= 0 {
		fp = cache.DesignFingerprint(d)
		if art := cache.LookupSystem(ctx, cc, fp); art != nil && art.N == sys.N() {
			if r := solver.RelResidual(sys.G, art.Golden, sys.I); r <= cache.GuardTol {
				copy(x, art.Golden)
				res = solver.Result{Iterations: 0, Residual: r, Converged: true}
				solved = true
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "numerical.solve", Outcome: obs.CacheHit, Key: cache.ShortKey(fp),
				})
			} else {
				cc.Drop(cache.SystemKey(fp))
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "numerical.solve", Outcome: obs.CacheStale, Key: cache.ShortKey(fp),
				})
			}
		}
	}
	shape := cache.CheckpointShape(n.Precond, n.Precision, n.Format, n.Iters)
	if cc != nil && fp != "" && n.CheckpointEvery > 0 {
		n.ckptSink = &cache.CheckpointWriter{
			Ctx: ctx, Cache: cc, Fingerprint: fp, Shape: shape, Notify: n.OnCheckpoint,
		}
	}
	if !solved {
		var hier *amg.Hierarchy
		rungs := n.ladderRungs(sys, x, &res, &hier)
		if cc != nil && n.Iters <= 0 {
			nb, delta, werr := cache.FindWarmStart(ctx, cc, sys.G, 0)
			if werr != nil {
				return nil, 0, 0, werr
			}
			if nb != nil {
				warm := LadderRung{Name: RungAMGWarm, Run: func(ctx context.Context) error {
					copy(x, nb.Golden)
					r, err := solver.PCGCtx(ctx, sys.G, x, sys.I, nb.Hier.Clone(), n.solveOpts(RungAMGWarm))
					if err != nil {
						return err
					}
					if !r.Converged {
						return fmt.Errorf("core: warm-started solve stalled at %g", r.Residual)
					}
					res = r
					rec.RecordCacheEvent(obs.CacheEvent{
						Stage: "numerical.solve", Outcome: obs.CacheWarm,
						Key: cache.ShortKey(nb.Fingerprint), Delta: delta,
					})
					return nil
				}}
				rungs = append([]LadderRung{warm}, rungs...)
			}
		}
		if cp := cache.LookupCheckpoint(ctx, cc, fp, shape); cp != nil && cp.N == sys.N() && cp.State.Iter > 0 {
			rungs = append([]LadderRung{n.resumeRung(sys, x, &res, &hier, cp, rec)}, rungs...)
		}
		if _, _, err := RunLadder(ctx, "core.numerical", rungs, n.Resilience); err != nil {
			return nil, 0, 0, err
		}
		if cc != nil && fp != "" && res.Converged {
			// The solve is done; its mid-flight snapshot must not shadow
			// a later identical request (the golden artifact below is
			// strictly better).
			cache.DropCheckpoint(cc, fp, shape)
			prec := obs.PrecisionFull
			if n.Precision == "mixed" {
				prec = obs.PrecisionMixed
			}
			art := &cache.SystemArtifact{
				Fingerprint: fp, N: sys.N(), G: sys.G, I: sys.I,
				Golden: append([]float64(nil), x...),
				Hier:   hier, // nil unless a cold AMG rung built one for sys.G
				// The float64 hierarchy and golden are stored either
				// way; Precision only records which path produced them.
				Precision: prec,
			}
			cache.StoreSystem(ctx, cc, "numerical.solve", art)
		}
	}
	st.End()
	st = rec.StartStage("numerical.rasterize")
	m := features.GoldenMap(nw, sys.FullDrops(x), n.Resolution, n.Resolution)
	st.End()
	return m, time.Since(start), res.Residual, nil
}

// solveOpts returns the PCG options of one ladder rung: a converged
// solve when Iters <= 0, the budgeted rough configuration otherwise,
// labeled with the rung name so the manifest's convergence trace says
// which backend ran.
func (n *NumericalAnalyzer) solveOpts(label string) solver.Options {
	opts := solver.DefaultOptions()
	if n.Iters > 0 {
		opts = solver.RoughOptions(n.Iters)
	}
	opts.Label = label
	if n.Format != "" {
		opts.Format = n.Format
	}
	if n.ckptSink != nil {
		opts.CheckpointEvery = n.CheckpointEvery
		opts.CheckpointSink = n.ckptSink
	}
	return opts
}

// resumeRung builds the checkpoint-resume rung (RungAMGResume),
// prepended ahead of every other rung when a cached checkpoint
// matches the request. The rung re-validates the snapshot against the
// freshly assembled system with a residual guard — the recomputed
// relative residual must land within CheckpointGuardFactor of what
// the snapshot recorded (or under cache.GuardTol outright) — then
// continues PCG from the checkpointed iterate under a freshly built
// AMG hierarchy (flexible PCG tolerates the preconditioner change). A
// guard rejection drops the poisoned snapshot and returns an error,
// so the ordinary ladder mechanics fall through to the cold rungs
// with a recorded degradation trail; either way the manifest's resume
// section says what happened.
func (n *NumericalAnalyzer) resumeRung(sys *circuit.System, x []float64, res *solver.Result, hierOut **amg.Hierarchy, cp *cache.CheckpointArtifact, rec *obs.Recorder) LadderRung {
	return LadderRung{Name: RungAMGResume, Run: func(ctx context.Context) error {
		guard := cp.State.Residual * cache.CheckpointGuardFactor
		if guard < cache.GuardTol {
			guard = cache.GuardTol
		}
		key := cache.CheckpointKey(cp.Fingerprint, cp.Shape)
		got := solver.RelResidual(sys.G, cp.State.X, sys.I)
		if got > guard {
			// Corrupt, stale, or foreign iterate: reject it, drop the
			// snapshot so retries go cold immediately, and let the
			// ladder degrade.
			rec.RecordResume(obs.ResumeSection{
				CheckpointKey: cache.ShortKey(key), Iter: cp.State.Iter,
				Residual: got, Outcome: obs.ResumeRejected,
			})
			rec.RecordCacheEvent(obs.CacheEvent{
				Stage: "checkpoint.restore", Outcome: obs.CacheStale, Key: cache.ShortKey(key),
			})
			cc := cache.ActiveOr(ctx)
			cache.DropCheckpoint(cc, cp.Fingerprint, cp.Shape)
			return fmt.Errorf("core: checkpoint residual %g exceeds guard %g (recorded %g at iteration %d)",
				got, guard, cp.State.Residual, cp.State.Iter)
		}
		h, err := amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
		if err != nil {
			return err
		}
		if hierOut != nil {
			*hierOut = h
		}
		copy(x, cp.State.X)
		r, err := solver.PCGCtx(ctx, sys.G, x, sys.I, h, n.solveOpts(RungAMGResume))
		if err != nil {
			return err
		}
		if !r.Converged {
			return fmt.Errorf("core: resumed solve stalled at %g", r.Residual)
		}
		*res = r
		rec.RecordResume(obs.ResumeSection{
			CheckpointKey: cache.ShortKey(key), Iter: cp.State.Iter,
			Residual: cp.State.Residual, Outcome: obs.ResumeAccepted,
		})
		rec.RecordCacheEvent(obs.CacheEvent{
			Stage: "checkpoint.restore", Outcome: obs.CacheHit, Key: cache.ShortKey(key),
		})
		return nil
	}}
}

// ladderRungs builds the degradation ladder for this analyzer's
// configuration: AMG-PCG → SSOR-PCG → random walk, starting at the
// SSOR rung when Precond selects it. Each rung resets x before
// solving (a failed attempt must not poison the next) and writes the
// winning solver.Result into res. A hierarchy built by the AMG rung is
// also published through hierOut (when non-nil), so the caller can
// hand it to the artifact cache — it was built for exactly sys.G.
func (n *NumericalAnalyzer) ladderRungs(sys *circuit.System, x []float64, res *solver.Result, hierOut **amg.Hierarchy) []LadderRung {
	pcgRung := func(name string, pre func(ctx context.Context) (solver.Preconditioner, error)) LadderRung {
		return LadderRung{Name: name, Run: func(ctx context.Context) error {
			p, err := pre(ctx)
			if err != nil {
				return err
			}
			for i := range x {
				x[i] = 0
			}
			r, err := solver.PCGCtx(ctx, sys.G, x, sys.I, p, n.solveOpts(name))
			if err != nil {
				return err
			}
			*res = r
			return nil
		}}
	}
	amgRung := pcgRung(RungAMG, func(ctx context.Context) (solver.Preconditioner, error) {
		h, err := amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if hierOut != nil {
			*hierOut = h
		}
		return h, nil
	})
	ssorRung := pcgRung(RungSSOR, func(context.Context) (solver.Preconditioner, error) {
		return solver.NewSSOR(sys.G, 2), nil
	})
	rwRung := LadderRung{Name: RungRandomWalk, Run: func(ctx context.Context) error {
		return randomWalkSolve(ctx, sys, x, RungRandomWalk, n.Iters, res)
	}}
	if n.Iters > 0 && n.Precond != "amg" {
		return []LadderRung{ssorRung, rwRung}
	}
	rungs := []LadderRung{amgRung, ssorRung, rwRung}
	if n.Precision == "mixed" && n.Iters <= 0 {
		// The mixed-precision rung sits ahead of full-precision AMG:
		// it builds (and publishes) the same float64 hierarchy, derives
		// the float32 shadow, and refines in float64. A stagnating
		// refinement (solver.ErrMPStagnation) classifies as structural,
		// so the ladder falls straight to the full-precision rung — the
		// degradation trail records the fallback.
		mpRung := LadderRung{Name: RungAMGMP, Run: func(ctx context.Context) error {
			h, err := amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
			if err != nil {
				return err
			}
			if hierOut != nil {
				*hierOut = h
			}
			for i := range x {
				x[i] = 0
			}
			r, err := solver.MPPCGCtx(ctx, sys.G, x, sys.I, amg.NewHierarchy32(h), n.solveOpts(RungAMGMP))
			if err != nil {
				return err
			}
			*res = r
			return nil
		}}
		rungs = append([]LadderRung{mpRung}, rungs...)
	}
	return rungs
}

// randomWalkSolve is the last numerical rung: the Monte-Carlo solver
// of Qian/Nassif/Sapatnekar, which needs no preconditioner setup and
// no Krylov recurrence — it survives faults that break both PCG
// backends. The estimate is rough by construction; that is exactly
// the regime the fusion pipeline tolerates. Reported to the run
// recorder as a solve record (walks as "iterations") under label.
func randomWalkSolve(ctx context.Context, sys *circuit.System, x []float64, label string, iters int, res *solver.Result) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", solver.ErrCancelled, err)
	}
	// Fault hook: the walk has no Krylov recurrence to break down, so
	// of the solver.pcg actions it honors only "fail" — which is how a
	// chaos spec exhausts a whole ladder (PCG rungs ignore "fail").
	if f := faults.ActiveOr(ctx).Fire(faults.SitePCG, label); f != nil && f.Action == faults.ActFail {
		return f.Error()
	}
	rw, err := solver.NewRandomWalk(sys.G, sys.I)
	if err != nil {
		return err
	}
	for i := range x {
		x[i] = 0
	}
	// Walks per node scale with the iteration budget (a budgeted
	// analyzer wants a fast estimate) but stay bounded.
	walks := 64
	if iters > 0 {
		walks = 8 * iters
		if walks > 64 {
			walks = 64
		}
	}
	start := time.Now()
	rw.Solve(x, walks, rand.New(rand.NewSource(1)))
	r := solver.Result{
		Iterations: walks,
		Residual:   solver.RelResidual(sys.G, x, sys.I),
	}
	obs.ActiveOr(ctx).RecordSolve(obs.SolveRecord{
		Label:      label,
		Iterations: r.Iterations,
		Residual:   r.Residual,
		Seconds:    time.Since(start).Seconds(),
	})
	if res != nil {
		*res = r
	}
	return nil
}

// ModelNames exposes the registry for CLI listings.
func ModelNames() []string { return models.Names() }

// Describe formats a one-line pipeline summary.
func (c Config) Describe() string {
	return fmt.Sprintf("model=%s res=%d iters=%d base=%d depth=%d num=%v hier=%v incep=%v cbam=%v aug=%v curr=%v",
		c.ModelName, c.Resolution, c.RoughIters, c.Base, c.Depth,
		c.UseNumerical, c.Hierarchical, c.UseInception, c.UseCBAM,
		c.UseAugmentation, c.UseCurriculum)
}
