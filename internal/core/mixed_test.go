package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

// illConditionedDesign builds the pinned refinement-stagnation deck: a
// generated grid whose resistors are split deterministically into two
// populations 1e10 apart in value. The resulting conductance contrast
// is far beyond 1/eps32 (~8.4e6), so the float32 V-cycle loses the
// small-conductance corrections to rounding and mixed-precision
// refinement stalls around 1e-5 relative residual — while the float64
// AMG rung still converges to 1e-10. (Empirically the mixed path
// stagnates from contrast ~1e8 up; 1e10 pins it with margin.)
func illConditionedDesign(t *testing.T) *pgen.Design {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("illcond", pgen.Real, 24, 24, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	nl := &spice.Netlist{Title: d.Netlist.Title}
	for _, e := range d.Netlist.Elements {
		if e.Type == spice.Resistor && rng.Intn(2) == 0 {
			e.Value *= 1e10
		}
		nl.Elements = append(nl.Elements, e)
	}
	return &pgen.Design{Name: "illcond", Class: d.Class, W: d.W, H: d.H, VDD: d.VDD, Netlist: nl}
}

// TestMixedPrecisionRungServes pins the happy path: on a
// well-conditioned deck the Precision "mixed" analyzer is served by
// the numerical.amg.mp rung on the first attempt (no degradation),
// and the manifest's solve record carries precision "mixed".
func TestMixedPrecisionRungServes(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("mp", pgen.Real, 24, 24, 9))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	na := &NumericalAnalyzer{Resolution: 24, Precision: "mixed"}
	m, _, resid, err := na.AnalyzeCtx(ctx, d)
	if err != nil {
		t.Fatalf("AnalyzeCtx: %v", err)
	}
	if m == nil || m.Max() <= 0 {
		t.Fatal("empty drop map")
	}
	if resid > 1e-9 {
		t.Errorf("mixed solve residual %g, want converged", resid)
	}
	man := rec.Manifest("test.mp", nil)
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(man.Degradations) != 1 {
		t.Fatalf("want 1 degradation record, got %+v", man.Degradations)
	}
	deg := man.Degradations[0]
	if deg.Rung != RungAMGMP || deg.RungIndex != 0 || deg.Degraded() {
		t.Errorf("served by %q (index %d, degraded %v), want clean %q",
			deg.Rung, deg.RungIndex, deg.Degraded(), RungAMGMP)
	}
	if len(man.Solves) != 1 || man.Solves[0].Precision != obs.PrecisionMixed {
		t.Fatalf("want one solve with precision %q, got %+v", obs.PrecisionMixed, man.Solves)
	}
	if man.Solves[0].Label != RungAMGMP {
		t.Errorf("solve label %q, want %q", man.Solves[0].Label, RungAMGMP)
	}
}

// TestMixedPrecisionStagnationFallsBack is the regression test of the
// degradation contract: on the pinned ill-conditioned deck the mixed
// rung stagnates, the ladder classifies that as structural (no
// retries) and falls to the full-precision AMG rung, the analysis
// still converges, and the manifest trail proves the whole story —
// a failed numerical.amg.mp attempt naming the stagnation, service by
// numerical.amg, and a final solve at full precision matching the map
// a full-precision analyzer computes outright.
func TestMixedPrecisionStagnationFallsBack(t *testing.T) {
	d := illConditionedDesign(t)

	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	na := &NumericalAnalyzer{Resolution: 24, Precision: "mixed"}
	m, _, resid, err := na.AnalyzeCtx(ctx, d)
	if err != nil {
		t.Fatalf("AnalyzeCtx: %v", err)
	}
	if resid > 1e-9 {
		t.Errorf("fallback solve residual %g, want converged", resid)
	}

	man := rec.Manifest("test.mp.stagnation", nil)
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(man.Degradations) != 1 {
		t.Fatalf("want 1 degradation record, got %+v", man.Degradations)
	}
	deg := man.Degradations[0]
	if !deg.Degraded() {
		t.Fatalf("record reports a clean solve; want a fallback trail: %+v", deg)
	}
	if deg.Rung != RungAMG || deg.RungIndex != 1 {
		t.Errorf("served by %q (index %d), want %q (index 1); attempts: %+v",
			deg.Rung, deg.RungIndex, RungAMG, deg.Attempts)
	}
	if len(deg.Attempts) < 2 || deg.Attempts[0].Rung != RungAMGMP {
		t.Fatalf("want the trail to open with a failed %q attempt, got %+v", RungAMGMP, deg.Attempts)
	}
	if a := deg.Attempts[0]; a.Error == "" || !strings.Contains(a.Error, "stagnated") {
		t.Errorf("mp attempt error %q, want a stagnation diagnosis", a.Error)
	}
	if a := deg.Attempts[0]; a.Attempt != 1 {
		t.Errorf("stagnation retried (%d attempts on the mp rung); structural errors must fall through immediately", a.Attempt)
	}

	// Both the failed mixed attempt and the serving full-precision
	// solve appear, each tagged with its arithmetic path.
	var sawMixed, sawFull bool
	for _, s := range man.Solves {
		switch s.Precision {
		case obs.PrecisionMixed:
			sawMixed = true
			if s.Converged {
				t.Errorf("stagnated mixed solve recorded as converged: %+v", s)
			}
		case obs.PrecisionFull:
			if s.Label == RungAMG && s.Converged {
				sawFull = true
			}
		}
	}
	if !sawMixed || !sawFull {
		t.Fatalf("want a mixed (failed) and a full (converged) solve record, got %+v", man.Solves)
	}

	// The degraded answer is the full-precision answer: an analyzer
	// asked for full precision outright must land on the same map.
	full := &NumericalAnalyzer{Resolution: 24}
	fm, _, _, err := full.AnalyzeCtx(context.Background(), d)
	if err != nil {
		t.Fatalf("full-precision AnalyzeCtx: %v", err)
	}
	worst := 0.0
	for i := range m.Data {
		if diff := math.Abs(m.Data[i] - fm.Data[i]); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-9 {
		t.Errorf("fallback map differs from the full-precision map by %g", worst)
	}
}
