package core

import (
	"context"
	"testing"

	"irfusion/internal/cache"
	"irfusion/internal/faults"
	"irfusion/internal/obs"
)

// TestAnalyzeResumeMatchesCold is the tentpole correctness check of
// solver checkpoint/resume: a solve that "crashes" mid-flight (we keep
// only its last durable checkpoint, as a restart would) must, when
// re-run against a fresh cache seeded with that checkpoint, resume via
// RungAMGResume and produce a map matching a cold solve to GuardTol.
func TestAnalyzeResumeMatchesCold(t *testing.T) {
	d := cacheTestDesign(t)
	cold, _ := analyzeWithCache(t, nil, d)

	// First run: checkpoint every 2 iterations, capturing the durable
	// blobs the serving layer would journal.
	var lastKey string
	var lastBlob []byte
	c1 := cache.New(0, 0)
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx = cache.WithCache(ctx, c1)
	na := &NumericalAnalyzer{Resolution: 24, CheckpointEvery: 2,
		OnCheckpoint: func(key string, encoded []byte) { lastKey, lastBlob = key, encoded }}
	if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
		t.Fatal(err)
	}
	if lastKey == "" || len(lastBlob) == 0 {
		t.Fatal("no checkpoint was persisted during the solve")
	}
	// A finished solve must not leave its snapshot shadowing the cache.
	fp := cache.DesignFingerprint(d)
	shape := cache.CheckpointShape("", "", "", 0)
	if cache.LookupCheckpoint(context.Background(), c1, fp, shape) != nil {
		t.Fatal("converged solve left its checkpoint in the cache")
	}

	// "Restart": a fresh cache holding only the reloaded checkpoint —
	// exactly what serve's recovery path reconstructs from the journal.
	art, err := cache.DecodeCheckpoint(lastBlob)
	if err != nil {
		t.Fatal(err)
	}
	if art.State.Iter <= 0 {
		t.Fatalf("checkpoint carries iteration %d", art.State.Iter)
	}
	c2 := cache.New(0, 0)
	cache.StoreCheckpoint(context.Background(), c2, art)

	rec2 := obs.NewRecorder()
	ctx2 := obs.WithRecorder(context.Background(), rec2)
	ctx2 = cache.WithCache(ctx2, c2)
	na2 := &NumericalAnalyzer{Resolution: 24}
	m, _, _, err := na2.AnalyzeCtx(ctx2, d)
	if err != nil {
		t.Fatal(err)
	}
	mf := rec2.Manifest("test", nil)
	if mf.Resume == nil {
		t.Fatal("resumed run recorded no resume section")
	}
	if mf.Resume.Outcome != obs.ResumeAccepted || mf.Resume.Iter != art.State.Iter {
		t.Fatalf("resume section %+v, want outcome %q at iteration %d",
			mf.Resume, obs.ResumeAccepted, art.State.Iter)
	}
	if err := mf.Validate(); err != nil {
		t.Fatalf("resumed manifest invalid: %v", err)
	}
	// The resumed solve ran under its own rung label.
	sawResume := false
	for _, s := range mf.Solves {
		if s.Label == RungAMGResume {
			sawResume = true
		}
	}
	if !sawResume {
		t.Fatalf("no solve labeled %s in %+v", RungAMGResume, mf.Solves)
	}
	if diff := mapMaxDiff(cold, m); diff > cache.GuardTol {
		t.Fatalf("resumed map differs from cold map by %g (tol %g)", diff, cache.GuardTol)
	}
}

// TestAnalyzeResumeGuardRejectsCorrupt: a poisoned checkpoint (via the
// checkpoint.restore:corrupt fault) must be rejected by the residual
// guard, dropped, and the ladder must fall through to the cold AMG
// rung — with a degradation trail proving the fallback and a resume
// section recording the rejection. The answer must still match cold.
func TestAnalyzeResumeGuardRejectsCorrupt(t *testing.T) {
	d := cacheTestDesign(t)
	cold, _ := analyzeWithCache(t, nil, d)

	// Capture a real checkpoint, then seed a fresh cache with it.
	var lastBlob []byte
	c1 := cache.New(0, 0)
	ctx := cache.WithCache(context.Background(), c1)
	na := &NumericalAnalyzer{Resolution: 24, CheckpointEvery: 2,
		OnCheckpoint: func(_ string, encoded []byte) { lastBlob = encoded }}
	if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
		t.Fatal(err)
	}
	art, err := cache.DecodeCheckpoint(lastBlob)
	if err != nil {
		t.Fatal(err)
	}
	c2 := cache.New(0, 0)
	cache.StoreCheckpoint(context.Background(), c2, art)

	rec := obs.NewRecorder()
	ctx2 := obs.WithRecorder(context.Background(), rec)
	ctx2 = cache.WithCache(ctx2, c2)
	ctx2 = faults.WithInjector(ctx2, faults.MustParse("checkpoint.restore:corrupt:times=1"))
	na2 := &NumericalAnalyzer{Resolution: 24}
	m, _, _, err := na2.AnalyzeCtx(ctx2, d)
	if err != nil {
		t.Fatal(err)
	}
	mf := rec.Manifest("test", nil)
	if mf.Resume == nil || mf.Resume.Outcome != obs.ResumeRejected {
		t.Fatalf("resume section %+v, want outcome %q", mf.Resume, obs.ResumeRejected)
	}
	if err := mf.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	// The ladder must show the resume rung failing and a cold rung
	// serving.
	if len(mf.Degradations) != 1 {
		t.Fatalf("degradations: %+v", mf.Degradations)
	}
	deg := mf.Degradations[0]
	if deg.Attempts[0].Rung != RungAMGResume || deg.Attempts[0].Error == "" {
		t.Fatalf("first attempt %+v, want a failed %s", deg.Attempts[0], RungAMGResume)
	}
	if deg.Rung != RungAMG || !deg.Degraded() {
		t.Fatalf("served by %q (degraded %v), want cold %s", deg.Rung, deg.Degraded(), RungAMG)
	}
	// The poisoned snapshot must have been dropped on rejection.
	fp := cache.DesignFingerprint(d)
	shape := cache.CheckpointShape("", "", "", 0)
	if cache.LookupCheckpoint(context.Background(), c2, fp, shape) != nil {
		t.Error("rejected checkpoint still cached")
	}
	if diff := mapMaxDiff(cold, m); diff > cache.GuardTol {
		t.Fatalf("post-rejection map differs from cold by %g", diff)
	}
}

// TestAnalyzeBudgetedSolvesNeverCheckpoint pins the scoping rule:
// checkpointing rides the converged cached path only — a budgeted
// (Iters > 0) analysis computes no fingerprint and must not install a
// sink even when CheckpointEvery is set.
func TestAnalyzeBudgetedSolvesNeverCheckpoint(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	ctx := cache.WithCache(context.Background(), c)
	called := false
	na := &NumericalAnalyzer{Iters: 5, Resolution: 24, Precond: "ssor", CheckpointEvery: 1,
		OnCheckpoint: func(string, []byte) { called = true }}
	if _, _, _, err := na.AnalyzeCtx(ctx, d); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("budgeted solve persisted a checkpoint")
	}
	if c.Len() != 0 {
		t.Errorf("budgeted solve stored %d artifact(s)", c.Len())
	}
}
