package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
)

// fastRes keeps ladder tests quick: retries back off for microseconds
// instead of the production milliseconds.
func fastRes() ResilienceOptions {
	return ResilienceOptions{BackoffBase: 10 * time.Microsecond, BackoffMax: 50 * time.Microsecond}
}

// TestLadderFaultClasses is the table-driven heart of the resilience
// suite: each injected fault class must land the numerical analyzer
// on the expected rung, with the expected degradation record in the
// manifest.
func TestLadderFaultClasses(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("ladder", pgen.Fake, 24, 24, 7))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		spec     string // per-request injector spec
		wantRung string
		wantIdx  int
		// minAttempts is a floor on recorded attempts (retries and
		// fallbacks leave a longer trail).
		minAttempts int
	}{
		{
			name:        "no faults serves the AMG rung cleanly",
			spec:        "",
			wantRung:    RungAMG,
			wantIdx:     0,
			minAttempts: 1,
		},
		{
			name: "persistent AMG-solve breakdown degrades to SSOR",
			spec: "solver.pcg:breakdown:label=" + RungAMG,
			// Breakdown is retryable: 2 attempts on the AMG rung, then
			// the SSOR rung serves.
			wantRung:    RungSSOR,
			wantIdx:     1,
			minAttempts: 3,
		},
		{
			name:        "transient breakdown is retried on the same rung",
			spec:        "solver.pcg:breakdown:label=" + RungAMG + ",times=1",
			wantRung:    RungAMG,
			wantIdx:     0,
			minAttempts: 2,
		},
		{
			name: "AMG setup failure falls through without retry",
			spec: "amg.setup:fail",
			// Setup failure is structural (not retryable): one attempt
			// on the AMG rung, then SSOR.
			wantRung:    RungSSOR,
			wantIdx:     1,
			minAttempts: 2,
		},
		{
			name: "indefinite operator on both PCG rungs reaches the random walk",
			spec: "solver.pcg:indefinite",
			// Indefinite is structural: one attempt each on AMG and
			// SSOR, then the Monte-Carlo rung (no PCG) serves.
			wantRung:    RungRandomWalk,
			wantIdx:     2,
			minAttempts: 3,
		},
		{
			name:        "NaN poisoning surfaces as breakdown and degrades",
			spec:        "solver.pcg:nan:label=" + RungAMG,
			wantRung:    RungSSOR,
			wantIdx:     1,
			minAttempts: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := obs.NewRecorder()
			ctx := obs.WithRecorder(context.Background(), rec)
			if tc.spec != "" {
				ctx = faults.WithInjector(ctx, faults.MustParse(tc.spec))
			}
			na := &NumericalAnalyzer{Resolution: 24, Resilience: fastRes()}
			m, _, _, err := na.AnalyzeCtx(ctx, d)
			if err != nil {
				t.Fatalf("AnalyzeCtx: %v", err)
			}
			if m == nil || m.Max() <= 0 {
				t.Fatalf("degraded analysis returned an empty drop map")
			}
			man := rec.Manifest("test.ladder", nil)
			if err := man.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(man.Degradations) != 1 {
				t.Fatalf("want 1 degradation record, got %+v", man.Degradations)
			}
			deg := man.Degradations[0]
			if deg.Component != "core.numerical" {
				t.Errorf("component %q", deg.Component)
			}
			if deg.Rung != tc.wantRung || deg.RungIndex != tc.wantIdx {
				t.Errorf("served by rung %q (index %d), want %q (index %d); attempts: %+v",
					deg.Rung, deg.RungIndex, tc.wantRung, tc.wantIdx, deg.Attempts)
			}
			if deg.Exhausted {
				t.Errorf("record marked exhausted: %+v", deg)
			}
			if len(deg.Attempts) < tc.minAttempts {
				t.Errorf("want >= %d attempts, got %+v", tc.minAttempts, deg.Attempts)
			}
			last := deg.Attempts[len(deg.Attempts)-1]
			if last.Rung != tc.wantRung || last.Error != "" {
				t.Errorf("final attempt should be the clean serve: %+v", last)
			}
			// The winning solve trace carries the rung label (the
			// manifest says which backend produced the numbers).
			found := false
			for _, s := range man.Solves {
				if s.Label == tc.wantRung {
					found = true
				}
			}
			if !found {
				t.Errorf("no solve labeled %q in %+v", tc.wantRung, man.Solves)
			}
		})
	}
}

// TestLadderExhausted checks the structured failure: when every rung
// fails, AnalyzeCtx returns ErrLadderExhausted and the manifest
// records the exhausted trail.
func TestLadderExhausted(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	boom := errors.New("backend down")
	rungs := []LadderRung{
		{Name: "a", Run: func(context.Context) error { return boom }},
		{Name: "b", Run: func(context.Context) error { return fmt.Errorf("%w: b", solver.ErrIndefinite) }},
	}
	_, _, lerr := RunLadder(ctx, "test.exhaust", rungs, fastRes())
	if !errors.Is(lerr, ErrLadderExhausted) {
		t.Fatalf("want ErrLadderExhausted, got %v", lerr)
	}
	man := rec.Manifest("test.exhaust", nil)
	if len(man.Degradations) != 1 || !man.Degradations[0].Exhausted {
		t.Fatalf("want one exhausted degradation record, got %+v", man.Degradations)
	}
	if man.Degradations[0].Rung != "" {
		t.Fatalf("exhausted record should have no serving rung: %+v", man.Degradations[0])
	}
}

// TestLadderCancellationAborts: a cancelled context must stop the
// ladder immediately (no fallback masks a cancellation).
func TestLadderCancellationAborts(t *testing.T) {
	calls := 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rungs := []LadderRung{
		{Name: "a", Run: func(ctx context.Context) error {
			calls++
			return fmt.Errorf("%w: %w", solver.ErrCancelled, ctx.Err())
		}},
		{Name: "b", Run: func(context.Context) error {
			calls++
			return nil
		}},
	}
	_, _, err := RunLadder(ctx, "test.cancel", rungs, fastRes())
	if !errors.Is(err, solver.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("ladder kept going after cancellation: %d rung calls", calls)
	}
}

// TestBackoffDeterminismUnderSeed: the retry backoff sequence is a
// pure function of the jitter seed — two ladders with the same seed
// record identical backoff_seconds trails.
func TestBackoffDeterminismUnderSeed(t *testing.T) {
	trail := func(seed int64) []float64 {
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		fail := 0
		rungs := []LadderRung{{Name: "flaky", Run: func(context.Context) error {
			fail++
			if fail < 4 {
				return fmt.Errorf("%w: transient", solver.ErrBreakdown)
			}
			return nil
		}}}
		o := fastRes()
		o.MaxAttempts = 4
		o.JitterSeed = seed
		if _, _, err := RunLadder(ctx, "test.backoff", rungs, o); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, a := range rec.Manifest("t", nil).Degradations[0].Attempts {
			out = append(out, a.BackoffSeconds)
		}
		return out
	}
	a, b := trail(42), trail(42)
	if len(a) != 4 {
		t.Fatalf("want 4 attempts, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different backoffs: %v vs %v", a, b)
		}
	}
	c := trail(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical backoffs: %v", a)
	}
	// The first three attempts backed off, the serving one did not.
	for i := 0; i < 3; i++ {
		if a[i] <= 0 {
			t.Fatalf("attempt %d recorded no backoff: %v", i+1, a)
		}
	}
	if a[3] != 0 {
		t.Fatalf("serving attempt recorded a backoff: %v", a)
	}
}

// TestBackoffDelayGrowsAndCaps checks the exponential envelope:
// with jitter in [0.5, 1), attempt k's delay lies in
// [cap/2, cap] where cap = min(base·2^(k−1), max).
func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	base, max := 10*time.Millisecond, 40*time.Millisecond
	rng := rand.New(rand.NewSource(1))
	envelopes := []time.Duration{10, 20, 40, 40, 40} // ms, attempt 1..5
	for i, envMs := range envelopes {
		env := envMs * time.Millisecond
		d := BackoffDelay(base, max, i+1, rng)
		if d < env/2 || d > env {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", i+1, d, env/2, env)
		}
	}
}

// TestCircuitBreakerTransitions walks the full state machine with a
// fake clock: closed → (threshold failures) → open → (cooldown) →
// half-open → probe failure → open → (cooldown) → half-open → probe
// success → closed.
func TestCircuitBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewCircuitBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state %v", got)
	}
	// Two failures + success resets the consecutive count.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after interrupted failure streak", got)
	}
	// Third consecutive failure trips it.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after threshold failures", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	// Cooldown elapses: one probe is admitted, concurrent calls are not.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open for another cooldown.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call")
	}
	// Second cooldown, successful probe: closed again.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker did not admit the second probe")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after successful probe", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

// TestLadderSkipsOpenBreakerRung: a rung whose breaker is open is
// skipped (recorded as such) and the next rung serves.
func TestLadderSkipsOpenBreakerRung(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	set := NewBreakerSet(1, time.Hour)
	// Trip rung "a".
	set.Get("a").Record(false)
	if set.Get("a").State() != BreakerOpen {
		t.Fatal("setup: breaker a not open")
	}
	aCalls := 0
	rungs := []LadderRung{
		{Name: "a", Run: func(context.Context) error { aCalls++; return nil }},
		{Name: "b", Run: func(context.Context) error { return nil }},
	}
	o := fastRes()
	o.Breakers = set
	rung, idx, err := RunLadder(ctx, "test.skip", rungs, o)
	if err != nil || rung != "b" || idx != 1 {
		t.Fatalf("RunLadder = %q, %d, %v; want b, 1, nil", rung, idx, err)
	}
	if aCalls != 0 {
		t.Fatalf("open-breaker rung was attempted %d times", aCalls)
	}
	deg := rec.Manifest("t", nil).Degradations[0]
	if len(deg.Attempts) != 2 || deg.Attempts[0].Skipped == "" {
		t.Fatalf("skip not recorded: %+v", deg.Attempts)
	}
	if states := set.States(); states["a"] != "open" || states["b"] != "closed" {
		t.Fatalf("States() = %v", states)
	}
}

// TestBreakerSetConcurrent hammers one BreakerSet from many
// goroutines (race-clean check for the serving path, where every
// worker shares the set).
func TestBreakerSetConcurrent(t *testing.T) {
	set := NewBreakerSet(3, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("rung-%d", g%3)
			for i := 0; i < 200; i++ {
				b := set.Get(name)
				if b.Allow() {
					b.Record(i%4 == 0)
				}
				set.States()
			}
		}(g)
	}
	wg.Wait()
}

// TestFusedLadderStructureOnly: when every numerical backend of the
// fused pipeline fails, the analysis still serves — from structural
// features alone, with the rough map at zero — and the manifest says
// so.
func TestFusedLadderStructureOnly(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 1
	train, _ := tinySet(t, cfg, 2, 0)
	res, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Analyzer
	a.Resilience = fastRes()
	d, err := pgen.Generate(pgen.DefaultConfig("struct-only", pgen.Fake, 24, 24, 9))
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	// Indefinite faults on the rough label kill the budgeted PCG; an
	// amg.setup failure is irrelevant here (ssor rough precond); the
	// random-walk rung is killed by firing indefinite at... the walk
	// does not run PCG, so kill it at its own site is impossible —
	// instead this test faults the PCG rung only and checks the walk
	// serves; the structure-only terminal rung is exercised by
	// RunLadder directly below.
	ctx = faults.WithInjector(ctx, faults.MustParse("solver.pcg:indefinite:label="+RungRough))
	m, _, err := a.AnalyzeCtx(ctx, d)
	if err != nil {
		t.Fatalf("fused analyze under faults: %v", err)
	}
	if m == nil {
		t.Fatal("no prediction")
	}
	man := rec.Manifest("test.fused", nil)
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	var deg *obs.Degradation
	for i := range man.Degradations {
		if man.Degradations[i].Component == "core.fused.rough" {
			deg = &man.Degradations[i]
		}
	}
	if deg == nil {
		t.Fatalf("no fused-rough degradation record in %+v", man.Degradations)
	}
	if deg.Rung != RungRoughRW || deg.RungIndex != 1 {
		t.Fatalf("served by %q (index %d), want the random-walk fallback", deg.Rung, deg.RungIndex)
	}

	// Terminal rung: all numerical backends down, structure-only
	// serves with a zero rough solution.
	rec2 := obs.NewRecorder()
	ctx2 := obs.WithRecorder(context.Background(), rec2)
	x := []float64{1, 2, 3}
	boom := fmt.Errorf("%w: down", solver.ErrIndefinite)
	_, _, lerr := RunLadder(ctx2, "core.fused.rough", []LadderRung{
		{Name: RungRough, Run: func(context.Context) error { return boom }},
		{Name: RungRoughRW, Run: func(context.Context) error { return boom }},
		{Name: RungStructOnly, Run: func(context.Context) error {
			for i := range x {
				x[i] = 0
			}
			return nil
		}},
	}, a.Resilience)
	if lerr != nil {
		t.Fatalf("structure-only rung did not serve: %v", lerr)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("rough solution not zeroed: %v", x)
		}
	}
	deg2 := rec2.Manifest("t", nil).Degradations[0]
	if deg2.Rung != RungStructOnly || deg2.RungIndex != 2 {
		t.Fatalf("terminal rung record wrong: %+v", deg2)
	}
}
