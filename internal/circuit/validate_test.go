package circuit

import (
	"errors"
	"fmt"
	"testing"

	"irfusion/internal/spice"
)

func res(name, a, b string, ohms float64) spice.Element {
	return spice.Element{Type: spice.Resistor, Name: name, NodeA: a, NodeB: b, Value: ohms}
}

func vsrc(name, node string, volts float64) spice.Element {
	return spice.Element{Type: spice.VoltageSource, Name: name, NodeA: node, NodeB: spice.Ground, Value: volts}
}

func isrc(name, node string, amps float64) spice.Element {
	return spice.Element{Type: spice.CurrentSource, Name: name, NodeA: node, NodeB: spice.Ground, Value: amps}
}

// cleanDeck is a minimal valid deck: pad — strap — load.
func cleanDeck() *spice.Netlist {
	return &spice.Netlist{Elements: []spice.Element{
		vsrc("v1", "a", 1.1),
		res("r1", "a", "b", 2),
		isrc("i1", "b", 0.01),
	}}
}

func TestValidateNetlistClean(t *testing.T) {
	if err := ValidateNetlist(cleanDeck()); err != nil {
		t.Fatalf("clean deck flagged: %v", err)
	}
}

func TestValidateNetlistCollectsAllIssues(t *testing.T) {
	nl := &spice.Netlist{Elements: []spice.Element{
		vsrc("v1", "a", 1.1),
		res("rneg", "a", "b", -5),         // non-positive resistance
		res("rgnd", "a", spice.Ground, 1), // touches ground
		{Type: spice.VoltageSource, Name: "vbad", NodeA: "x", NodeB: "y", Value: 1.1}, // ungrounded
		vsrc("vzero", "c", 0),      // zero pad voltage
		res("r1", "a", "b", 2),     // keeps b reachable
		res("rfloat", "p", "q", 3), // island: p,q floating
	}}
	err := ValidateNetlist(nl)
	if err == nil {
		t.Fatal("expected issues")
	}
	var de *DeckError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T, want *DeckError", err)
	}
	want := map[string]bool{
		IssueBadResistance:  true,
		IssueGroundResistor: true,
		IssueUngroundedSrc:  true,
		IssueZeroPad:        true,
		IssueFloatingNode:   true,
	}
	got := map[string]bool{}
	for _, c := range de.Codes() {
		got[c] = true
	}
	for c := range want {
		if !got[c] {
			t.Errorf("missing issue %s in %v", c, de.Codes())
		}
	}
	// Two floating nodes → two findings, each naming its node.
	floats := 0
	for _, is := range de.Issues {
		if is.Code == IssueFloatingNode {
			floats++
			if is.Node != "p" && is.Node != "q" {
				t.Errorf("floating issue names node %q, want p or q", is.Node)
			}
		}
	}
	if floats != 2 {
		t.Errorf("%d floating findings, want 2", floats)
	}
	if de.Error() == "" || de.Summary() == "" {
		t.Error("empty rendering")
	}
}

func TestValidateNetlistNoPads(t *testing.T) {
	nl := &spice.Netlist{Elements: []spice.Element{
		res("r1", "a", "b", 2),
		isrc("i1", "b", 0.01),
	}}
	err := ValidateNetlist(nl)
	var de *DeckError
	if !errors.As(err, &de) {
		t.Fatalf("got %v", err)
	}
	if cs := de.Codes(); len(cs) != 1 || cs[0] != IssueNoPads {
		t.Fatalf("codes %v, want [%s]", cs, IssueNoPads)
	}
}

func TestValidateNetlistPadMismatch(t *testing.T) {
	nl := cleanDeck()
	nl.Elements = append(nl.Elements, vsrc("v2", "b", 0.9))
	err := ValidateNetlist(nl)
	var de *DeckError
	if !errors.As(err, &de) {
		t.Fatalf("got %v", err)
	}
	if cs := de.Codes(); len(cs) != 1 || cs[0] != IssuePadMismatch {
		t.Fatalf("codes %v, want [%s]", cs, IssuePadMismatch)
	}
}

func TestValidateNetlistEmptyDeck(t *testing.T) {
	err := ValidateNetlist(&spice.Netlist{})
	var de *DeckError
	if !errors.As(err, &de) {
		t.Fatalf("got %v", err)
	}
	if cs := de.Codes(); len(cs) != 1 || cs[0] != IssueNoElements {
		t.Fatalf("codes %v, want [%s]", cs, IssueNoElements)
	}
}

func TestValidateNetlistFloatingCap(t *testing.T) {
	nl := cleanDeck()
	// A chain of 8 nodes detached from the pad: findings are capped at
	// maxFloatingReported plus one summary line.
	for i := 0; i < 8; i++ {
		nl.Elements = append(nl.Elements, res(fmt.Sprintf("rf%d", i), fmt.Sprintf("f%d", i), fmt.Sprintf("f%d", i+1), 1))
	}
	err := ValidateNetlist(nl)
	var de *DeckError
	if !errors.As(err, &de) {
		t.Fatalf("got %v", err)
	}
	if len(de.Issues) != maxFloatingReported+1 {
		t.Fatalf("%d findings, want %d", len(de.Issues), maxFloatingReported+1)
	}
	last := de.Issues[len(de.Issues)-1]
	if last.Node != "" {
		t.Fatalf("summary finding should not name a node, got %q", last.Node)
	}
}

// TestValidateAgreesWithAssemble: any deck the validator passes must
// assemble and reduce without error — the validator is a strict
// superset of the assembly-time checks for these constructions.
func TestValidateAgreesWithAssemble(t *testing.T) {
	nl := cleanDeck()
	if err := ValidateNetlist(nl); err != nil {
		t.Fatal(err)
	}
	nw, err := FromNetlist(nl)
	if err != nil {
		t.Fatalf("validator passed but FromNetlist failed: %v", err)
	}
	if _, err := nw.Assemble(); err != nil {
		t.Fatalf("validator passed but Assemble failed: %v", err)
	}
}
