package circuit

import (
	"math"
	"strings"
	"testing"

	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

// dualRailDeck: net 1 = VDD at 1.0 V, net 2 = VSS at 0 V. The same
// cell draws 0.1 A from VDD and returns it into VSS.
const dualRailDeck = `* dual rail
V1 n1_m2_0_0 0 1.0
R1 n1_m2_0_0 n1_m1_1_0 2
I1 n1_m1_1_0 0 0.1
V2 n2_m2_9_0 0 0
R2 n2_m2_9_0 n2_m1_8_0 1
I2 n2_m1_8_0 0 0.1
.end
`

func TestSplitNets(t *testing.T) {
	nl, err := spice.ParseString(dualRailDeck)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := SplitNets(nl)
	if err != nil {
		t.Fatal(err)
	}
	ids := NetIDs(nets)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("net ids = %v, want [1 2]", ids)
	}
	if len(nets[1].Elements) != 3 || len(nets[2].Elements) != 3 {
		t.Errorf("element partition wrong: %d + %d", len(nets[1].Elements), len(nets[2].Elements))
	}
	if !strings.Contains(nets[2].Title, "net 2") {
		t.Errorf("net title %q", nets[2].Title)
	}
}

func TestAnalyzeNetsDualRail(t *testing.T) {
	nl, err := spice.ParseString(dualRailDeck)
	if err != nil {
		t.Fatal(err)
	}
	systems, skipped, err := AnalyzeNets(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped nets %v", skipped)
	}
	// VDD net: drop = 0.1 A × 2 Ω = 0.2 V. VSS net: bounce = 0.1 × 1.
	solve := func(sys *System) []float64 {
		x := make([]float64, sys.N())
		if _, err := solver.CG(sys.G, x, sys.I, solver.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		return x
	}
	vdd := solve(systems[1])
	vss := solve(systems[2])
	if math.Abs(vdd[0]-0.2) > 1e-9 {
		t.Errorf("VDD drop %v, want 0.2", vdd[0])
	}
	if math.Abs(vss[0]-0.1) > 1e-9 {
		t.Errorf("ground bounce %v, want 0.1", vss[0])
	}
}

func TestAnalyzeNetsSkipsPadlessNets(t *testing.T) {
	deck := dualRailDeck[:strings.Index(dualRailDeck, ".end")] +
		"R9 n3_m1_0_5 n3_m1_1_5 1\n.end\n"
	nl, err := spice.ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	systems, skipped, err := AnalyzeNets(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 {
		t.Errorf("systems for %d nets, want 2", len(systems))
	}
	if len(skipped) != 1 || skipped[0] != 3 {
		t.Errorf("skipped = %v, want [3]", skipped)
	}
}

func TestSplitNetsRejectsBridges(t *testing.T) {
	nl, err := spice.ParseString("R1 n1_m1_0_0 n2_m1_1_0 1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitNets(nl); err == nil {
		t.Error("expected bridge error")
	}
}

func TestSplitNetsRejectsUnparseable(t *testing.T) {
	nl, err := spice.ParseString("R1 weird_name n1_m1_1_0 1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitNets(nl); err == nil {
		t.Error("expected parse error for non-conventional node name")
	}
}

func TestSplitNetsGeneratedDesignSingleNet(t *testing.T) {
	nl, err := spice.ParseString(chainDeck)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := SplitNets(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 1 {
		t.Errorf("generated decks are single-net, got %d", len(nets))
	}
}
