package circuit

import (
	"math"
	"testing"

	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

// rcDeck: pad --R-- n with decap C at n and a step load I.
// Time constant τ = R·C; final drop I·R.
const rcDeck = `* rc charge
V1 n1_m2_0_0 0 1.0
R1 n1_m2_0_0 n1_m1_1_0 10
C1 n1_m1_1_0 0 1m
I1 n1_m1_1_0 0 0.02
.end
`

func transientSystem(t *testing.T, deck string) (*Network, *System) {
	t.Helper()
	nl, err := spice.ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return nw, sys
}

func TestTransientRCChargeCurve(t *testing.T) {
	_, sys := transientSystem(t, rcDeck)
	const (
		r   = 10.0
		c   = 1e-3
		amp = 0.02
	)
	tau := r * c // 10 ms
	h := tau / 100
	tr, err := NewTransient(sys, h)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 300; step++ {
		if _, err := tr.Step(sys.I); err != nil {
			t.Fatal(err)
		}
		want := amp * r * (1 - math.Exp(-tr.Time()/tau))
		got := tr.Drops()[0]
		// Backward Euler at h = τ/100 tracks within ~1.5 % of final.
		if math.Abs(got-want) > 0.015*amp*r {
			t.Fatalf("t=%v: drop %v, want %v", tr.Time(), got, want)
		}
	}
	// After 3τ the response should be near the static solution.
	static := make([]float64, sys.N())
	if _, err := solver.CG(sys.G, static, sys.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Drops()[0]-static[0]) > 0.06*static[0] {
		t.Errorf("3τ response %v far from static %v", tr.Drops()[0], static[0])
	}
}

func TestTransientDischargeDecays(t *testing.T) {
	_, sys := transientSystem(t, rcDeck)
	tr, err := NewTransient(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Charge up, then cut the load and watch the drop decay.
	for step := 0; step < 200; step++ {
		if _, err := tr.Step(sys.I); err != nil {
			t.Fatal(err)
		}
	}
	charged := tr.Drops()[0]
	zero := make([]float64, sys.N())
	prev := charged
	for step := 0; step < 100; step++ {
		if _, err := tr.Step(zero); err != nil {
			t.Fatal(err)
		}
		cur := tr.Drops()[0]
		if cur > prev+1e-12 {
			t.Fatalf("discharge not monotone: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev > 0.5*charged {
		t.Errorf("drop barely decayed: %v -> %v", charged, prev)
	}
}

func TestTransientNoCapsMatchesStatic(t *testing.T) {
	// Without capacitance a single backward-Euler step IS the static
	// solve.
	deck := `V1 n1_m2_0_0 0 1
R1 n1_m2_0_0 n1_m1_1_0 2
R2 n1_m1_1_0 n1_m1_2_0 3
I1 n1_m1_2_0 0 0.1
.end
`
	_, sys := transientSystem(t, deck)
	tr, err := NewTransient(sys, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(sys.I); err != nil {
		t.Fatal(err)
	}
	static := make([]float64, sys.N())
	if _, err := solver.CG(sys.G, static, sys.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range static {
		if math.Abs(tr.Drops()[i]-static[i]) > 1e-8 {
			t.Fatalf("no-cap transient differs from static at %d: %v vs %v", i, tr.Drops()[i], static[i])
		}
	}
}

func TestTransientDecapReducesPeak(t *testing.T) {
	// Decoupling capacitance must lower the peak drop under a pulsed
	// load — the physical effect decap insertion exists for.
	base := `V1 n1_m2_0_0 0 1.0
R1 n1_m2_0_0 n1_m1_1_0 10
I1 n1_m1_1_0 0 0.02
`
	run := func(deck string) float64 {
		_, sys := transientSystem(t, deck+".end\n")
		tr, err := NewTransient(sys, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		pulse := func(step int, _ float64) []float64 {
			loads := make([]float64, sys.N())
			if step < 5 { // short burst
				copy(loads, sys.I)
			}
			return loads
		}
		peak, err := tr.Run(30, pulse)
		if err != nil {
			t.Fatal(err)
		}
		return peak
	}
	noDecap := run(base)
	withDecap := run(base + "C1 n1_m1_1_0 0 2m\n")
	if withDecap >= noDecap {
		t.Errorf("decap failed to reduce peak: %v (with) vs %v (without)", withDecap, noDecap)
	}
}

func TestTransientCapBetweenNodes(t *testing.T) {
	deck := `V1 n1_m2_0_0 0 1
R1 n1_m2_0_0 n1_m1_1_0 1
R2 n1_m1_1_0 n1_m1_2_0 1
C1 n1_m1_1_0 n1_m1_2_0 1m
I1 n1_m1_2_0 0 0.01
.end
`
	nw, sys := transientSystem(t, deck)
	if len(nw.Capacitors) != 1 || nw.Capacitors[0].B == -1 {
		t.Fatal("node-to-node capacitor not recorded")
	}
	tr, err := NewTransient(sys, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		if _, err := tr.Step(sys.I); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range tr.Drops() {
		if v < 0 || v > 1 {
			t.Fatalf("implausible drop %v", v)
		}
	}
}

func TestTransientErrors(t *testing.T) {
	_, sys := transientSystem(t, rcDeck)
	if _, err := NewTransient(sys, 0); err != ErrNoTimeStep {
		t.Errorf("err = %v, want ErrNoTimeStep", err)
	}
	tr, err := NewTransient(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(make([]float64, sys.N()+1)); err == nil {
		t.Error("expected length mismatch error")
	}
	// Negative capacitance rejected at parse/build level.
	nl, err := spice.ParseString("V1 n1_m2_0_0 0 1\nR1 n1_m2_0_0 n1_m1_1_0 1\nC1 n1_m1_1_0 0 -1m\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetlist(nl); err == nil {
		t.Error("expected negative-capacitance error")
	}
}

func TestGroundSidedCapacitorNormalized(t *testing.T) {
	nl, err := spice.ParseString("V1 n1_m2_0_0 0 1\nR1 n1_m2_0_0 n1_m1_1_0 1\nC1 0 n1_m1_1_0 3m\nI1 n1_m1_1_0 0 1m\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Capacitors) != 1 || nw.Capacitors[0].B != -1 || nw.Capacitors[0].Farads != 3e-3 {
		t.Fatalf("cap not normalized: %+v", nw.Capacitors)
	}
}
