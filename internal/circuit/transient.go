package circuit

import (
	"errors"
	"fmt"

	"irfusion/internal/amg"
	"irfusion/internal/solver"
	"irfusion/internal/sparse"
)

// Transient analysis extension: the static framework of the paper
// generalizes to dynamic IR drop (the regime MAVIREC targets) by
// adding capacitance and integrating
//
//	G·d(t) + C·d'(t) = I(t)
//
// in the drop formulation with backward Euler:
//
//	(G + C/h)·d_{k+1} = I(t_{k+1}) + (C/h)·d_k.
//
// The left-hand operator is SPD, so the same AMG-PCG machinery
// applies, with the hierarchy built once and reused every step.

// Cap is a capacitor; B == -1 denotes a ground-terminated (decap)
// element.
type Cap struct {
	A, B   int
	Farads float64
}

// Transient integrates the network over time with a fixed step.
type Transient struct {
	sys  *System
	h    float64
	ceff *sparse.CSR // G + C/h over the unknowns
	crhs *sparse.CSR // C/h over the unknowns (for the history term)
	hier *amg.Hierarchy
	d    []float64 // current drop state
	t    float64
}

// ErrNoTimeStep indicates a non-positive step size.
var ErrNoTimeStep = errors.New("circuit: transient step size must be positive")

// NewTransient prepares a backward-Euler integrator with step h
// seconds, starting from the zero-drop (fully charged) state.
func NewTransient(sys *System, h float64) (*Transient, error) {
	if h <= 0 {
		return nil, ErrNoTimeStep
	}
	nw := sys.Network
	m := sys.N()
	tc := sparse.NewTriplet(m, m, 4*len(nw.Capacitors)+1)
	for _, c := range nw.Capacitors {
		if c.Farads < 0 {
			return nil, fmt.Errorf("circuit: negative capacitance %g", c.Farads)
		}
		g := c.Farads / h
		ra := sys.Reduced[c.A]
		rb := -1
		if c.B >= 0 {
			rb = sys.Reduced[c.B]
		}
		if ra >= 0 {
			tc.Add(ra, ra, g)
		}
		if rb >= 0 {
			tc.Add(rb, rb, g)
		}
		if ra >= 0 && rb >= 0 {
			tc.Add(ra, rb, -g)
			tc.Add(rb, ra, -g)
		}
	}
	crhs := tc.ToCSR()
	// ceff = G + C/h.
	te := sparse.NewTriplet(m, m, sys.G.NNZ()+crhs.NNZ())
	for i := 0; i < m; i++ {
		for p := sys.G.RowPtr[i]; p < sys.G.RowPtr[i+1]; p++ {
			te.Add(i, sys.G.ColInd[p], sys.G.Val[p])
		}
		for p := crhs.RowPtr[i]; p < crhs.RowPtr[i+1]; p++ {
			te.Add(i, crhs.ColInd[p], crhs.Val[p])
		}
	}
	ceff := te.ToCSR()
	hier, err := amg.Build(ceff, amg.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("circuit: transient AMG setup: %w", err)
	}
	return &Transient{
		sys: sys, h: h, ceff: ceff, crhs: crhs, hier: hier,
		d: make([]float64, m),
	}, nil
}

// Time returns the current simulation time in seconds.
func (tr *Transient) Time() float64 { return tr.t }

// Drops returns the current reduced drop state (live slice; copy
// before mutating).
func (tr *Transient) Drops() []float64 { return tr.d }

// Step advances one backward-Euler step with the given per-unknown
// current draws (same indexing as System.I; pass sys.I for the static
// load pattern, or a scaled/time-varying vector). It returns the PCG
// iteration count.
func (tr *Transient) Step(loads []float64) (int, error) {
	m := tr.sys.N()
	if len(loads) != m {
		return 0, errors.New("circuit: transient load vector length mismatch")
	}
	rhs := make([]float64, m)
	tr.crhs.MulVec(rhs, tr.d)
	for i := range rhs {
		rhs[i] += loads[i]
	}
	res, err := solver.PCG(tr.ceff, tr.d, rhs, tr.hier, solver.Options{
		Tol: 1e-10, MaxIter: 500, Flexible: true,
	})
	if err != nil {
		return res.Iterations, err
	}
	if !res.Converged {
		return res.Iterations, fmt.Errorf("circuit: transient step stalled at %g", res.Residual)
	}
	tr.t += tr.h
	return res.Iterations, nil
}

// Run integrates steps time steps, calling loadsAt(stepIndex, time)
// for the load vector of each step, and returns the peak drop seen at
// any unknown over the window — the dynamic worst-case IR drop.
func (tr *Transient) Run(steps int, loadsAt func(step int, t float64) []float64) (float64, error) {
	peak := 0.0
	for k := 0; k < steps; k++ {
		loads := loadsAt(k, tr.t+tr.h)
		if _, err := tr.Step(loads); err != nil {
			return peak, err
		}
		for _, v := range tr.d {
			if v > peak {
				peak = v
			}
		}
	}
	return peak, nil
}
