package circuit

import (
	"fmt"
	"sort"

	"irfusion/internal/spice"
)

// SplitNets partitions a deck by power net (the n<id> prefix of the
// node naming convention), enabling dual-rail analysis: the VDD net
// solves for IR drop, the VSS/ground net for ground bounce — each an
// independent SPD system. Cards bridging two nets are rejected;
// ground-terminated cards join their node's net.
func SplitNets(nl *spice.Netlist) (map[int]*spice.Netlist, error) {
	nets := map[int]*spice.Netlist{}
	get := func(id int) *spice.Netlist {
		if n, ok := nets[id]; ok {
			return n
		}
		n := &spice.Netlist{Title: fmt.Sprintf("%s (net %d)", nl.Title, id)}
		nets[id] = n
		return n
	}
	netOf := func(name string) (int, bool, error) {
		if name == spice.Ground {
			return 0, true, nil
		}
		node, err := spice.ParseNode(name)
		if err != nil {
			return 0, false, fmt.Errorf("circuit: cannot determine net of node %q: %w", name, err)
		}
		return node.Net, false, nil
	}
	for _, e := range nl.Elements {
		na, gndA, err := netOf(e.NodeA)
		if err != nil {
			return nil, err
		}
		nb, gndB, err := netOf(e.NodeB)
		if err != nil {
			return nil, err
		}
		switch {
		case gndA && gndB:
			return nil, fmt.Errorf("circuit: element %s connects ground to ground", e.Name)
		case gndA:
			get(nb).Elements = append(get(nb).Elements, e)
		case gndB:
			get(na).Elements = append(get(na).Elements, e)
		case na == nb:
			get(na).Elements = append(get(na).Elements, e)
		default:
			return nil, fmt.Errorf("circuit: element %s bridges nets %d and %d", e.Name, na, nb)
		}
	}
	return nets, nil
}

// NetIDs returns the sorted net ids present in a split result.
func NetIDs(nets map[int]*spice.Netlist) []int {
	out := make([]int, 0, len(nets))
	for id := range nets {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// AnalyzeNets assembles every net of a deck independently and returns
// the per-net systems, keyed by net id. Nets without pads (no V
// cards) are skipped with their ids reported in the second return —
// signal or clock nets sometimes ride along in PG decks.
func AnalyzeNets(nl *spice.Netlist) (map[int]*System, []int, error) {
	nets, err := SplitNets(nl)
	if err != nil {
		return nil, nil, err
	}
	systems := map[int]*System{}
	var skipped []int
	for id, sub := range nets {
		nw, err := FromNetlist(sub)
		if err != nil {
			return nil, nil, fmt.Errorf("circuit: net %d: %w", id, err)
		}
		if len(nw.Pads) == 0 {
			skipped = append(skipped, id)
			continue
		}
		sys, err := nw.Assemble()
		if err != nil {
			return nil, nil, fmt.Errorf("circuit: net %d: %w", id, err)
		}
		systems[id] = sys
	}
	sort.Ints(skipped)
	return systems, skipped, nil
}
