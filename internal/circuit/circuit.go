// Package circuit turns a parsed SPICE power-grid deck into the
// linear system of modified nodal analysis (MNA). It builds the node
// hash table and wire map described in the paper's preprocessing step,
// stamps the conductance matrix G, eliminates the voltage-pad nodes,
// and exposes the SPD "IR-drop system" G·d = I whose unknowns are the
// voltage drops (VDD − v) at every non-pad node.
package circuit

import (
	"errors"
	"fmt"
	"math"

	"irfusion/internal/sparse"
	"irfusion/internal/spice"
)

// Resistor is a wire or via with endpoints given as node indices.
type Resistor struct {
	A, B  int
	Ohms  float64
	IsVia bool // endpoints on different metal layers
}

// Load is a current sink (cell draw) at a node.
type Load struct {
	Node int
	Amps float64
}

// Pad is a voltage-source connection (power pad) at a node.
type Pad struct {
	Node  int
	Volts float64
}

// Network is the in-memory circuit topology: the node list plus the
// element sets, all index-based after hash-consing the node names.
type Network struct {
	Names     map[string]int // node name -> index
	NodeList  []string       // index -> name
	Meta      []spice.Node   // structured name info (layer, x, y)
	HasMeta   []bool         // whether Meta[i] parsed successfully
	Resistors []Resistor
	Loads     []Load
	Pads      []Pad
	// Capacitors feed the transient extension (see transient.go);
	// static analysis ignores them.
	Capacitors []Cap
}

// NumNodes returns the number of distinct non-ground nodes.
func (nw *Network) NumNodes() int { return len(nw.NodeList) }

// Layers returns the sorted set of metal layers present.
func (nw *Network) Layers() []int {
	seen := map[int]bool{}
	for i, ok := range nw.HasMeta {
		if ok {
			seen[nw.Meta[i].Layer] = true
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	// Insertion sort: layer counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FromNetlist builds the network: creates the node hash table,
// classifies elements, and validates PG conventions (current and
// voltage sources must have one terminal at ground; resistors must not
// touch ground; resistances must be positive).
func FromNetlist(nl *spice.Netlist) (*Network, error) {
	nw := &Network{Names: make(map[string]int)}
	intern := func(name string) int {
		if idx, ok := nw.Names[name]; ok {
			return idx
		}
		idx := len(nw.NodeList)
		nw.Names[name] = idx
		nw.NodeList = append(nw.NodeList, name)
		meta, err := spice.ParseNode(name)
		nw.Meta = append(nw.Meta, meta)
		nw.HasMeta = append(nw.HasMeta, err == nil)
		return idx
	}
	for _, e := range nl.Elements {
		switch e.Type {
		case spice.Resistor:
			if e.NodeA == spice.Ground || e.NodeB == spice.Ground {
				return nil, fmt.Errorf("circuit: resistor %s touches ground", e.Name)
			}
			if e.Value <= 0 {
				return nil, fmt.Errorf("circuit: resistor %s has non-positive value %g", e.Name, e.Value)
			}
			a, b := intern(e.NodeA), intern(e.NodeB)
			if a == b {
				continue // degenerate self-loop contributes nothing
			}
			isVia := nw.HasMeta[a] && nw.HasMeta[b] && nw.Meta[a].Layer != nw.Meta[b].Layer
			nw.Resistors = append(nw.Resistors, Resistor{A: a, B: b, Ohms: e.Value, IsVia: isVia})
		case spice.CurrentSource:
			node, err := gndPartner(e)
			if err != nil {
				return nil, err
			}
			nw.Loads = append(nw.Loads, Load{Node: intern(node), Amps: e.Value})
		case spice.VoltageSource:
			node, err := gndPartner(e)
			if err != nil {
				return nil, err
			}
			nw.Pads = append(nw.Pads, Pad{Node: intern(node), Volts: e.Value})
		case spice.Capacitor:
			if e.Value < 0 {
				return nil, fmt.Errorf("circuit: capacitor %s has negative value %g", e.Name, e.Value)
			}
			switch {
			case e.NodeA == spice.Ground && e.NodeB == spice.Ground:
				return nil, fmt.Errorf("circuit: capacitor %s shorted to ground", e.Name)
			case e.NodeB == spice.Ground:
				nw.Capacitors = append(nw.Capacitors, Cap{A: intern(e.NodeA), B: -1, Farads: e.Value})
			case e.NodeA == spice.Ground:
				nw.Capacitors = append(nw.Capacitors, Cap{A: intern(e.NodeB), B: -1, Farads: e.Value})
			default:
				nw.Capacitors = append(nw.Capacitors, Cap{A: intern(e.NodeA), B: intern(e.NodeB), Farads: e.Value})
			}
		}
	}
	return nw, nil
}

func gndPartner(e spice.Element) (string, error) {
	switch {
	case e.NodeA == spice.Ground && e.NodeB != spice.Ground:
		return e.NodeB, nil
	case e.NodeB == spice.Ground && e.NodeA != spice.Ground:
		return e.NodeA, nil
	default:
		return "", fmt.Errorf("circuit: source %s must connect one node to ground", e.Name)
	}
}

// System is the reduced SPD linear system over non-pad nodes, in the
// IR-drop formulation: G·d = I where d_j is the voltage drop at
// unknown j and I_j the current drawn there. Pads sit at drop 0 and
// have been eliminated into G's diagonal.
type System struct {
	G *sparse.CSR
	I []float64

	// Unknown maps reduced index -> network node index; Reduced maps
	// network node index -> reduced index (-1 for pads).
	Unknown []int
	Reduced []int

	Network *Network
	VDD     float64 // pad voltage (all pads must agree)
}

// ErrFloatingNodes indicates nodes with no resistive path to any pad.
var ErrFloatingNodes = errors.New("circuit: network has nodes with no path to a power pad")

// ErrNoPads indicates the deck has no voltage sources.
var ErrNoPads = errors.New("circuit: network has no power pads")

// Assemble stamps and reduces the MNA system.
func (nw *Network) Assemble() (*System, error) {
	if len(nw.Pads) == 0 {
		return nil, ErrNoPads
	}
	n := nw.NumNodes()
	isPad := make([]bool, n)
	vdd := nw.Pads[0].Volts
	for _, p := range nw.Pads {
		isPad[p.Node] = true
		if math.Abs(p.Volts-vdd) > 1e-12 {
			return nil, fmt.Errorf("circuit: pads at different voltages (%g vs %g) unsupported", p.Volts, vdd)
		}
	}
	reduced := make([]int, n)
	unknown := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if isPad[i] {
			reduced[i] = -1
			continue
		}
		reduced[i] = len(unknown)
		unknown = append(unknown, i)
	}
	m := len(unknown)

	// Connectivity: BFS from pads over resistors; every node must be
	// reached, otherwise the reduced matrix is singular.
	adj := make([][]int, n)
	for ri, r := range nw.Resistors {
		adj[r.A] = append(adj[r.A], ri)
		adj[r.B] = append(adj[r.B], ri)
	}
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	for _, p := range nw.Pads {
		if !visited[p.Node] {
			visited[p.Node] = true
			queue = append(queue, p.Node)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ri := range adj[v] {
			r := nw.Resistors[ri]
			o := r.A + r.B - v
			if !visited[o] {
				visited[o] = true
				queue = append(queue, o)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !visited[i] {
			return nil, fmt.Errorf("%w: e.g. node %s", ErrFloatingNodes, nw.NodeList[i])
		}
	}

	t := sparse.NewTriplet(m, m, 4*len(nw.Resistors))
	for _, r := range nw.Resistors {
		g := 1 / r.Ohms
		ra, rb := reduced[r.A], reduced[r.B]
		if ra >= 0 {
			t.Add(ra, ra, g)
		}
		if rb >= 0 {
			t.Add(rb, rb, g)
		}
		if ra >= 0 && rb >= 0 {
			t.Add(ra, rb, -g)
			t.Add(rb, ra, -g)
		}
		// Pad neighbors: drop at pad is 0, so nothing moves to the RHS;
		// the diagonal entry alone keeps the row strictly dominant.
	}
	rhs := make([]float64, m)
	for _, l := range nw.Loads {
		if ri := reduced[l.Node]; ri >= 0 {
			rhs[ri] += l.Amps
		}
	}
	return &System{
		G:       t.ToCSR(),
		I:       rhs,
		Unknown: unknown,
		Reduced: reduced,
		Network: nw,
		VDD:     vdd,
	}, nil
}

// N returns the number of unknowns.
func (s *System) N() int { return len(s.Unknown) }

// FullDrops expands a reduced solution d to per-network-node drops
// (pads get exactly 0).
func (s *System) FullDrops(d []float64) []float64 {
	out := make([]float64, s.Network.NumNodes())
	for ri, ni := range s.Unknown {
		out[ni] = d[ri]
	}
	return out
}

// FullVoltages converts a reduced drop solution to absolute node
// voltages (VDD − drop).
func (s *System) FullVoltages(d []float64) []float64 {
	out := s.FullDrops(d)
	for i := range out {
		out[i] = s.VDD - out[i]
	}
	return out
}

// TotalLoad returns the summed current draw, a sanity metric.
func (s *System) TotalLoad() float64 {
	t := 0.0
	for _, v := range s.I {
		t += v
	}
	return t
}
