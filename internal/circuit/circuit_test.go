package circuit

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

func mustNetwork(t *testing.T, deck string) *Network {
	t.Helper()
	nl, err := spice.ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// chainDeck: pad --R1-- n1 --R2-- n2 with a load at n2.
const chainDeck = `* chain
V1 n1_m2_0_0 0 1.0
R1 n1_m2_0_0 n1_m1_1_0 2
R2 n1_m1_1_0 n1_m1_2_0 3
I1 n1_m1_2_0 0 0.1
.end
`

func TestChainAnalytic(t *testing.T) {
	nw := mustNetwork(t, chainDeck)
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 2 {
		t.Fatalf("N = %d, want 2 (pad eliminated)", sys.N())
	}
	d := make([]float64, sys.N())
	if _, err := solver.CG(sys.G, d, sys.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	full := sys.FullDrops(d)
	// All 0.1 A flows through both resistors: drops 0.2 V and 0.5 V.
	n1 := nw.Names["n1_m1_1_0"]
	n2 := nw.Names["n1_m1_2_0"]
	pad := nw.Names["n1_m2_0_0"]
	if math.Abs(full[n1]-0.2) > 1e-9 {
		t.Errorf("drop(n1) = %v, want 0.2", full[n1])
	}
	if math.Abs(full[n2]-0.5) > 1e-9 {
		t.Errorf("drop(n2) = %v, want 0.5", full[n2])
	}
	if full[pad] != 0 {
		t.Errorf("drop(pad) = %v, want 0", full[pad])
	}
	v := sys.FullVoltages(d)
	if math.Abs(v[n2]-0.5) > 1e-9 { // VDD 1.0 - 0.5
		t.Errorf("voltage(n2) = %v, want 0.5", v[n2])
	}
}

func TestParallelPaths(t *testing.T) {
	// Two equal parallel resistors from pad to a loaded node: drop
	// halves versus the single-resistor case.
	deck := `V1 n1_m2_0_0 0 1.0
R1 n1_m2_0_0 n1_m1_1_0 2
R2 n1_m2_0_0 n1_m1_1_0 2
I1 n1_m1_1_0 0 0.1
.end
`
	nw := mustNetwork(t, deck)
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, sys.N())
	if _, err := solver.CG(sys.G, d, sys.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got := sys.FullDrops(d)[nw.Names["n1_m1_1_0"]]
	if math.Abs(got-0.1) > 1e-9 { // 0.1 A × 1 Ω (parallel)
		t.Errorf("drop = %v, want 0.1", got)
	}
}

func TestViaDetection(t *testing.T) {
	nw := mustNetwork(t, chainDeck)
	if !nw.Resistors[0].IsVia {
		t.Error("R1 crosses m2->m1 and should be a via")
	}
	if nw.Resistors[1].IsVia {
		t.Error("R2 stays on m1 and is not a via")
	}
}

func TestLayers(t *testing.T) {
	nw := mustNetwork(t, chainDeck)
	ls := nw.Layers()
	if len(ls) != 2 || ls[0] != 1 || ls[1] != 2 {
		t.Errorf("Layers = %v, want [1 2]", ls)
	}
}

func TestNoPadsError(t *testing.T) {
	nw := mustNetwork(t, "R1 n1_m1_0_0 n1_m1_1_0 1\nI1 n1_m1_1_0 0 0.1\n.end\n")
	if _, err := nw.Assemble(); !errors.Is(err, ErrNoPads) {
		t.Errorf("err = %v, want ErrNoPads", err)
	}
}

func TestFloatingNodeError(t *testing.T) {
	deck := `V1 n1_m1_0_0 0 1
R1 n1_m1_0_0 n1_m1_1_0 1
R2 n1_m1_5_5 n1_m1_6_5 1
I1 n1_m1_6_5 0 0.1
.end
`
	nw := mustNetwork(t, deck)
	if _, err := nw.Assemble(); !errors.Is(err, ErrFloatingNodes) {
		t.Errorf("err = %v, want ErrFloatingNodes", err)
	}
}

func TestMixedPadVoltagesRejected(t *testing.T) {
	deck := `V1 n1_m1_0_0 0 1.0
V2 n1_m1_9_9 0 1.2
R1 n1_m1_0_0 n1_m1_9_9 1
.end
`
	nw := mustNetwork(t, deck)
	if _, err := nw.Assemble(); err == nil {
		t.Error("expected error for mismatched pad voltages")
	}
}

func TestRejectGroundedResistor(t *testing.T) {
	nl, err := spice.ParseString("R1 n1_m1_0_0 0 1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetlist(nl); err == nil {
		t.Error("expected error for resistor to ground")
	}
}

func TestRejectNonPositiveResistance(t *testing.T) {
	nl, err := spice.ParseString("R1 n1_m1_0_0 n1_m1_1_0 0\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetlist(nl); err == nil {
		t.Error("expected error for zero resistance")
	}
}

func TestRejectFloatingSource(t *testing.T) {
	nl, err := spice.ParseString("I1 n1_m1_0_0 n1_m1_1_0 0.1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetlist(nl); err == nil {
		t.Error("expected error for node-to-node current source")
	}
}

func TestSystemMatrixSPD(t *testing.T) {
	nw := mustNetwork(t, gridDeck(8, 8, 2))
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.G.IsSymmetric(1e-12) {
		t.Error("reduced conductance matrix must be symmetric")
	}
	// Diagonal dominance with strict dominance on pad-adjacent rows.
	strict := false
	for i := 0; i < sys.G.Rows(); i++ {
		diag, off := 0.0, 0.0
		for p := sys.G.RowPtr[i]; p < sys.G.RowPtr[i+1]; p++ {
			if sys.G.ColInd[p] == i {
				diag = sys.G.Val[p]
			} else {
				off += math.Abs(sys.G.Val[p])
			}
		}
		if diag < off-1e-12 {
			t.Fatalf("row %d not diagonally dominant", i)
		}
		if diag > off+1e-12 {
			strict = true
		}
	}
	if !strict {
		t.Error("no strictly dominant row: pad elimination missing")
	}
}

func TestSuperposition(t *testing.T) {
	// Linearity: doubling all loads doubles all drops.
	nw1 := mustNetwork(t, gridDeck(6, 6, 1))
	sys1, err := nw1.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d1 := make([]float64, sys1.N())
	if _, err := solver.CG(sys1.G, d1, sys1.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	scaled := append([]float64(nil), sys1.I...)
	for i := range scaled {
		scaled[i] *= 2
	}
	d2 := make([]float64, sys1.N())
	if _, err := solver.CG(sys1.G, d2, scaled, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if math.Abs(d2[i]-2*d1[i]) > 1e-8*(1+math.Abs(d1[i])) {
			t.Fatalf("superposition violated at %d: %v vs %v", i, d2[i], 2*d1[i])
		}
	}
}

func TestDropsNonNegative(t *testing.T) {
	// Physical invariant: with only sinks (loads), drops are >= 0
	// everywhere (discrete maximum principle for M-matrices).
	nw := mustNetwork(t, gridDeck(10, 10, 3))
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, sys.N())
	if _, err := solver.CG(sys.G, d, sys.I, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if v < -1e-9 {
			t.Fatalf("negative drop %v at unknown %d", v, i)
		}
	}
}

func TestTotalLoad(t *testing.T) {
	nw := mustNetwork(t, chainDeck)
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.TotalLoad()-0.1) > 1e-15 {
		t.Errorf("TotalLoad = %v, want 0.1", sys.TotalLoad())
	}
}

// gridDeck builds an nx×ny single-layer mesh with loads everywhere and
// nPads pads along the top row.
func gridDeck(nx, ny, nPads int) string {
	rng := rand.New(rand.NewSource(42))
	deck := "* mesh\n"
	name := func(x, y int) string { return fmt.Sprintf("n1_m1_%d_%d", x*1000, y*1000) }
	k := 0
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				deck += fmt.Sprintf("R%d %s %s %g\n", k, name(x, y), name(x+1, y), 0.5+rng.Float64())
				k++
			}
			if y+1 < ny {
				deck += fmt.Sprintf("R%d %s %s %g\n", k, name(x, y), name(x, y+1), 0.5+rng.Float64())
				k++
			}
			deck += fmt.Sprintf("I%d %s 0 %g\n", k, name(x, y), 0.001*rng.Float64())
			k++
		}
	}
	for p := 0; p < nPads; p++ {
		deck += fmt.Sprintf("V%d %s 0 1.05\n", k, name(p*(nx-1)/max(1, nPads-1), 0))
		k++
	}
	return deck + ".end\n"
}

func TestFullDropsShape(t *testing.T) {
	nw := mustNetwork(t, chainDeck)
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	full := sys.FullDrops(make([]float64, sys.N()))
	if len(full) != nw.NumNodes() {
		t.Errorf("FullDrops length %d, want %d", len(full), nw.NumNodes())
	}
}
