package circuit

import (
	"fmt"
	"strings"

	"irfusion/internal/spice"
)

// Deck validation: a pre-solve linter over the raw netlist. The
// assembly path (FromNetlist/Assemble) fails fast on the first
// malformed element, and deeper pathologies — no pads, floating
// nodes — only used to surface mid-solve as solver.ErrIndefinite.
// ValidateNetlist instead collects *every* problem up front into a
// structured DeckError, which the serving layer maps to a 400 with a
// machine-readable issue list instead of a cryptic 500.

// Deck-issue codes. Stable strings — clients and tests match on them.
const (
	IssueNoPads         = "no-pads"
	IssueZeroPad        = "zero-pad-voltage"
	IssuePadMismatch    = "pad-voltage-mismatch"
	IssueBadResistance  = "nonpositive-resistance"
	IssueGroundResistor = "resistor-touches-ground"
	IssueUngroundedSrc  = "ungrounded-source"
	IssueNegativeCap    = "negative-capacitance"
	IssueShortedCap     = "capacitor-shorted"
	IssueFloatingNode   = "floating-node"
	IssueNoElements     = "empty-deck"
)

// DeckIssue is one validation finding.
type DeckIssue struct {
	Code    string `json:"code"`
	Element string `json:"element,omitempty"` // offending element name
	Node    string `json:"node,omitempty"`    // offending node name
	Detail  string `json:"detail"`
}

// DeckError aggregates every issue found in a deck. It implements
// error; errors.As extracts it for structured rendering.
type DeckError struct {
	Issues []DeckIssue `json:"issues"`
}

func (e *DeckError) Error() string {
	if len(e.Issues) == 0 {
		return "circuit: invalid deck"
	}
	parts := make([]string, 0, len(e.Issues))
	for _, is := range e.Issues {
		parts = append(parts, is.Code+": "+is.Detail)
	}
	n := ""
	if len(parts) > 1 {
		n = fmt.Sprintf(" (and %d more)", len(parts)-1)
	}
	return "circuit: invalid deck: " + parts[0] + n
}

// maxFloatingReported caps the floating-node findings per deck so a
// detached region of thousands of nodes doesn't flood the response.
const maxFloatingReported = 5

// ValidateNetlist lints a parsed deck before any matrix is stamped,
// collecting every finding: malformed elements (ground-touching or
// non-positive resistors, ungrounded sources, bad capacitors), pad
// problems (none, non-positive voltage, disagreeing voltages), and
// connectivity (nodes with no resistive path to any pad, i.e. a
// singular reduced system). Returns nil when the deck is clean;
// otherwise a *DeckError listing all issues.
func ValidateNetlist(nl *spice.Netlist) error {
	var issues []DeckIssue
	add := func(code, element, node, detail string) {
		issues = append(issues, DeckIssue{Code: code, Element: element, Node: node, Detail: detail})
	}
	if len(nl.Elements) == 0 {
		add(IssueNoElements, "", "", "deck has no elements")
		return &DeckError{Issues: issues}
	}

	// Node interning over the well-formed subset, mirroring
	// FromNetlist but never bailing out.
	names := map[string]int{}
	var nodes []string
	intern := func(name string) int {
		if idx, ok := names[name]; ok {
			return idx
		}
		idx := len(nodes)
		names[name] = idx
		nodes = append(nodes, name)
		return idx
	}
	type edge struct{ a, b int }
	var edges []edge
	var padNodes []int
	var padVolts []float64

	for _, e := range nl.Elements {
		switch e.Type {
		case spice.Resistor:
			bad := false
			if e.NodeA == spice.Ground || e.NodeB == spice.Ground {
				add(IssueGroundResistor, e.Name, "", fmt.Sprintf("resistor %s touches ground", e.Name))
				bad = true
			}
			if e.Value <= 0 {
				add(IssueBadResistance, e.Name, "", fmt.Sprintf("resistor %s has non-positive value %g", e.Name, e.Value))
				bad = true
			}
			if bad {
				continue
			}
			a, b := intern(e.NodeA), intern(e.NodeB)
			if a != b {
				edges = append(edges, edge{a, b})
			}
		case spice.CurrentSource:
			if _, err := gndPartner(e); err != nil {
				add(IssueUngroundedSrc, e.Name, "", fmt.Sprintf("current source %s must connect one node to ground", e.Name))
				continue
			}
			node, _ := gndPartner(e)
			intern(node)
		case spice.VoltageSource:
			node, err := gndPartner(e)
			if err != nil {
				add(IssueUngroundedSrc, e.Name, "", fmt.Sprintf("voltage source %s must connect one node to ground", e.Name))
				continue
			}
			if e.Value <= 0 {
				add(IssueZeroPad, e.Name, node, fmt.Sprintf("pad %s at non-positive voltage %g", e.Name, e.Value))
				continue
			}
			padNodes = append(padNodes, intern(node))
			padVolts = append(padVolts, e.Value)
		case spice.Capacitor:
			if e.Value < 0 {
				add(IssueNegativeCap, e.Name, "", fmt.Sprintf("capacitor %s has negative value %g", e.Name, e.Value))
			}
			if e.NodeA == spice.Ground && e.NodeB == spice.Ground {
				add(IssueShortedCap, e.Name, "", fmt.Sprintf("capacitor %s shorted to ground", e.Name))
			}
		}
	}

	if len(padNodes) == 0 {
		add(IssueNoPads, "", "", "deck has no power pads (grounded voltage sources at positive voltage)")
	} else {
		vdd := padVolts[0]
		for i, v := range padVolts[1:] {
			if v != vdd { //irfusion:exact pads must be stamped with bit-identical supply voltages; any difference is a netlist authoring error
				add(IssuePadMismatch, "", nodes[padNodes[i+1]],
					fmt.Sprintf("pads at different voltages (%g vs %g)", v, vdd))
				break
			}
		}
		// Connectivity: BFS from the pads over well-formed resistors.
		// Unreached nodes make the reduced MNA system singular — the
		// failure that otherwise surfaces mid-solve as ErrIndefinite.
		adj := make([][]int, len(nodes))
		for _, ed := range edges {
			adj[ed.a] = append(adj[ed.a], ed.b)
			adj[ed.b] = append(adj[ed.b], ed.a)
		}
		visited := make([]bool, len(nodes))
		queue := make([]int, 0, len(nodes))
		for _, p := range padNodes {
			if !visited[p] {
				visited[p] = true
				queue = append(queue, p)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, o := range adj[v] {
				if !visited[o] {
					visited[o] = true
					queue = append(queue, o)
				}
			}
		}
		floating := 0
		for i := range nodes {
			if visited[i] {
				continue
			}
			floating++
			if floating <= maxFloatingReported {
				add(IssueFloatingNode, "", nodes[i],
					fmt.Sprintf("node %s has no resistive path to any pad", nodes[i]))
			}
		}
		if floating > maxFloatingReported {
			add(IssueFloatingNode, "", "",
				fmt.Sprintf("%d further nodes have no resistive path to any pad", floating-maxFloatingReported))
		}
	}

	if len(issues) == 0 {
		return nil
	}
	return &DeckError{Issues: issues}
}

// Codes returns the distinct issue codes in order of first
// appearance, a convenience for tests and log lines.
func (e *DeckError) Codes() []string {
	seen := map[string]bool{}
	var out []string
	for _, is := range e.Issues {
		if !seen[is.Code] {
			seen[is.Code] = true
			out = append(out, is.Code)
		}
	}
	return out
}

// Summary renders a compact one-line listing of the issue codes.
func (e *DeckError) Summary() string {
	return strings.Join(e.Codes(), ",")
}
