package serve

// Regression tests proving error identity survives the serve job
// layer's wrap chains: failureKind drives the structured error_kind
// (and therefore the HTTP status) purely via errors.Is, so a single
// %v wrap anywhere on the failure path silently turns structured
// 503/504 responses into bare 500s. Companion to
// internal/core/errwrap_test.go, which pins the ladder side.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"irfusion/internal/core"
	"irfusion/internal/solver"
)

func TestFailureKindSeesThroughWrapping(t *testing.T) {
	exhausted := fmt.Errorf("%w: numerical: last error: %w",
		core.ErrLadderExhausted,
		fmt.Errorf("rung amg: %w", solver.ErrBreakdown))
	deadline := fmt.Errorf("analyze: %w",
		fmt.Errorf("%w after 12 iterations: %w", solver.ErrCancelled, context.DeadlineExceeded))
	panicErr := fmt.Errorf("job 7: %w", fmt.Errorf("%w: index out of range", errWorkerPanic))

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"ladder-exhausted", exhausted, errKindExhausted},
		{"deadline", deadline, errKindTimeout},
		{"worker-panic", panicErr, errKindPanic},
		{"plain", errors.New("something else"), ""},
	}
	for _, tc := range cases {
		if kind, _ := failureKind(tc.err); kind != tc.want {
			t.Errorf("%s: failureKind = %q, want %q (err: %v)", tc.name, kind, tc.want, tc.err)
		}
	}

	// The exhausted chain must also keep its numerical root cause for
	// diagnostics: both sentinels visible through two %w levels.
	if !errors.Is(exhausted, solver.ErrBreakdown) {
		t.Error("ErrBreakdown lost through the exhaustion wrap")
	}
}

// TestCancelledWrapSurvivesFaultSleep pins the wrap at the serve
// worker's fault hook: a context error from an injected stall must
// classify as a cancellation (solver.ErrCancelled AND the ctx cause),
// which is what routes the job to 499-style cancelled handling rather
// than a generic failure.
func TestCancelledWrapSurvivesFaultSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fmt.Errorf("%w: %w", solver.ErrCancelled, ctx.Err())
	if !errors.Is(err, solver.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation identity lost: %v", err)
	}
	if kind, _ := failureKind(err); kind != "" {
		t.Errorf("explicit cancel must not classify as timeout/exhaustion, got %q", kind)
	}
}
