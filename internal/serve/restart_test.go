package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"irfusion/internal/obs"
)

// waitForCheckpointBlob polls the journal's blob directory until the
// first durable checkpoint lands on disk — the signal that a crash
// from this moment on is recoverable mid-solve.
func waitForCheckpointBlob(t *testing.T, journalDir string) {
	t.Helper()
	blobs := filepath.Join(journalDir, "checkpoints")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if ents, err := os.ReadDir(blobs); err == nil && len(ents) > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no checkpoint blob appeared before the deadline")
}

// TestServeCrashRestartResumesJob is the end-to-end durability check:
// an acknowledged async job survives a hard crash (no shutdown
// hooks, on-disk image only), is re-enqueued under its original id by
// the restarted process, resumes from its last durable checkpoint,
// and produces the same map a never-crashed solve produces, to the
// cache guard tolerance.
func TestServeCrashRestartResumesJob(t *testing.T) {
	body := pgenBody(31, 32, `"async": true, "include_map": true`)

	// Cold reference map from an undisturbed server — computed before
	// any fault is installed so it costs full price, no shortcuts.
	_, tsCold := newTestServer(t, Config{Workers: 1})
	code, b := post(t, tsCold, "/v1/analyze", pgenBody(31, 32, `"include_map": true`))
	if code != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", code, b)
	}
	coldView := decodeJob(t, b)
	if coldView.Result == nil || len(coldView.Result.Map) == 0 {
		t.Fatal("cold solve returned no map")
	}
	cold := coldView.Result

	// Each checkpoint store sleeps, stretching a millisecond solve into
	// a wide, deterministic crash window.
	withGlobalFaults(t, "checkpoint.save:latency:delay=25ms")

	dir := t.TempDir()
	recoveredBefore := obs.CounterValue("serve.recovered")

	// First incarnation: managed by hand, because the only way out of
	// this server is Crash() — the cleanup-path Close would flush state
	// a real crash never flushes.
	s1 := New(Config{Workers: 1, JournalDir: dir, CheckpointEvery: 2})
	ts1 := httptest.NewServer(s1.Handler())
	code, b = post(t, ts1, "/v1/analyze", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, b)
	}
	id := decodeJob(t, b).ID
	waitForCheckpointBlob(t, dir)
	s1.Crash()
	ts1.Close()

	// Second incarnation on the same journal directory: replay must
	// find the orphan and finish it.
	s2, ts2 := newTestServer(t, Config{Workers: 1, JournalDir: dir, CheckpointEvery: 2})
	if s2.replayStats.Records == 0 {
		t.Fatal("restarted server replayed no journal records")
	}
	if got := obs.CounterValue("serve.recovered") - recoveredBefore; got != 1 {
		t.Fatalf("serve.recovered advanced by %d, want 1", got)
	}

	v := waitStatus(t, ts2, id, func(st Status) bool { return st == StatusDone })
	if v.ID != id {
		t.Fatalf("recovered job kept id %q, want original %q", v.ID, id)
	}
	if v.Result == nil || v.Result.Manifest == nil {
		t.Fatalf("recovered job has no result/manifest: %+v", v)
	}
	mf := v.Result.Manifest
	if mf.Resume == nil {
		t.Fatal("recovered job's manifest has no resume section")
	}
	if mf.Resume.From != fromRestart {
		t.Errorf("resume provenance %q, want %q", mf.Resume.From, fromRestart)
	}
	if mf.Resume.Outcome != obs.ResumeAccepted || mf.Resume.Iter <= 0 {
		t.Errorf("resume section %+v, want an accepted mid-solve resume", mf.Resume)
	}

	if len(v.Result.Map) != len(cold.Map) {
		t.Fatalf("map length %d, want %d", len(v.Result.Map), len(cold.Map))
	}
	var maxDiff float64
	for i := range cold.Map {
		if d := math.Abs(v.Result.Map[i] - cold.Map[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("resumed map differs from cold map by %g (tol 1e-8)", maxDiff)
	}
}

// TestServeRestartSkipsFinishedJobs: a cleanly finished job must not
// be resurrected by a restart — its terminal record closes it out in
// the journal fold.
func TestServeRestartSkipsFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, JournalDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	code, b := post(t, ts1, "/v1/analyze", pgenBody(7, 24, ""))
	if code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", code, b)
	}
	ts1.Close()
	// A crash after completion: the finished record is already durable.
	s1.Crash()

	recoveredBefore := obs.CounterValue("serve.recovered")
	s2, _ := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	if s2.replayStats.Records == 0 {
		t.Fatal("restarted server replayed no journal records")
	}
	if got := obs.CounterValue("serve.recovered") - recoveredBefore; got != 0 {
		t.Fatalf("finished job resurrected: serve.recovered advanced by %d", got)
	}
}

// TestServeJournalDisabledByDefault: without a JournalDir the server
// runs exactly as before this subsystem existed — no directory, no
// replay state, healthz reports the journal off.
func TestServeJournalDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if s.journal != nil {
		t.Fatal("journal open without a JournalDir")
	}
	code, b := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Journal struct {
			Enabled bool `json:"enabled"`
		} `json:"journal"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Journal.Enabled {
		t.Error("healthz reports the journal enabled")
	}
}
