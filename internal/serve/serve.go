// Package serve is the long-lived analysis service of the repository:
// an HTTP JSON API (stdlib net/http only) that turns the one-shot
// analysis pipeline into a request-serving system. It exposes
//
//	POST   /v1/analyze    SPICE netlist or pgen-config body → IR-drop
//	                      map (numerical or fused mode), synchronous by
//	                      default, asynchronous with "async": true
//	GET    /v1/jobs/{id}  status/result of an async submission
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness + queue/worker occupancy
//	GET    /metricsz      obs global counters and serve gauges as JSON
//
// Requests are admitted into a bounded job queue executed by a fixed
// set of workers; the numerical kernels of every worker share the
// process-wide internal/parallel pool, so worker concurrency controls
// how many analyses are in flight while the pool controls how many
// CPUs each one uses. Each job runs under a context.Context carrying
// its own obs.Recorder: cancellation (client disconnect, DELETE, or
// per-request timeout) stops the PCG iteration loop mid-solve via
// solver.PCGCtx, and the per-request run manifest — including the
// partial residual history of a cancelled solve — is attached to the
// job result. Shutdown drains in-flight solves before returning.
package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"irfusion/internal/cache"
	"irfusion/internal/core"
	"irfusion/internal/journal"
	"irfusion/internal/obs"
	"irfusion/internal/parallel"
)

// Service-level counters, registered in the process-global obs
// registry so they surface in /metricsz, the expvar debug endpoint,
// and any session manifest.
var (
	cRequests  = obs.GlobalCounter("serve.http.requests")
	cSubmitted = obs.GlobalCounter("serve.jobs.submitted")
	cDone      = obs.GlobalCounter("serve.jobs.done")
	cFailed    = obs.GlobalCounter("serve.jobs.failed")
	cCancelled = obs.GlobalCounter("serve.jobs.cancelled")
	cRejected  = obs.GlobalCounter("serve.jobs.rejected")
	cPanics    = obs.GlobalCounter("serve.panics")
	// cRequeues counts jobs re-enqueued after a worker panic (one
	// retry per job before failing for real) and jobs re-enqueued by
	// journal replay after a restart.
	cRequeues = obs.GlobalCounter("serve.requeues")
	// cRecovered counts orphaned jobs re-enqueued from the journal at
	// startup.
	cRecovered = obs.GlobalCounter("serve.recovered")
	// cJournalErr counts journal appends that failed; the service
	// keeps running (availability over durability) but the counter
	// makes the loss visible.
	cJournalErr = obs.GlobalCounter("serve.journal.errors")
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// Name is the shard identity of this server in a cluster: it
	// prefixes every job id (so a gateway can route job lookups back
	// to the owning shard), and is reported by /healthz, /metricsz,
	// and every per-request run manifest. Empty means standalone — job
	// ids and reports are exactly as before clustering existed.
	Name string
	// Workers is the number of job-queue workers — the number of
	// analyses in flight at once. Each analysis additionally fans its
	// numerical kernels out on the shared internal/parallel pool.
	// Default 2.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 503. Default 16.
	QueueDepth int
	// MaxBodyBytes is the request-body admission limit enforced with
	// http.MaxBytesReader. Default 8 MiB.
	MaxBodyBytes int64
	// MaxDesignSize caps the die size (and raster resolution) a
	// request may ask for, bounding per-job memory and CPU. Default
	// 256.
	MaxDesignSize int
	// DefaultTimeout bounds each job's context when the request does
	// not set timeout_ms. Zero means no default timeout.
	DefaultTimeout time.Duration
	// MaxJobs bounds the job registry; the oldest finished jobs are
	// evicted beyond it. Default 256.
	MaxJobs int
	// Analyzer, when non-nil, enables "fused" mode with this trained
	// pipeline. The model instance is shared, so the ML inference
	// stage is serialized across jobs (the numerical stage is not).
	Analyzer *core.Analyzer
	// BreakerThreshold is the consecutive-failure count that opens a
	// solve backend's circuit breaker: an open breaker makes the
	// degradation ladder skip that rung without attempting it until
	// BreakerCooldown elapses (then a single probe decides). Breakers
	// are shared across all jobs of the server. Defaults 3 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Resilience overrides the retry/backoff policy of the analysis
	// degradation ladders. Zero-value fields take the core defaults;
	// the Breakers field is always replaced by the server's shared set.
	Resilience core.ResilienceOptions
	// CacheBytes bounds the per-process artifact cache shared by all
	// workers (ECO-loop requests hit it for warm starts and response
	// reuse). 0 takes cache.DefaultMaxBytes; set DisableCache to turn
	// caching off entirely.
	CacheBytes int64
	// CacheTTL bounds cached-artifact age. 0 takes cache.DefaultTTL.
	CacheTTL time.Duration
	// DisableCache turns the artifact cache off: every request runs
	// the full cold path.
	DisableCache bool
	// JournalDir enables the write-ahead job journal: every job
	// lifecycle transition is appended there, solver checkpoints are
	// persisted as blobs beside it, and a restarted server replays the
	// directory to re-enqueue orphaned jobs (resuming their solves from
	// the last checkpoint). Empty disables journaling.
	JournalDir string
	// JournalSync is the journal fsync policy (journal.SyncAlways,
	// SyncInterval, or SyncNone). Default SyncAlways.
	JournalSync string
	// CheckpointEvery is the solver checkpoint interval in PCG
	// iterations (mixed-precision refinement rounds): every N-th
	// iterate of a converged cached solve is snapshotted into the
	// artifact cache — and, when the journal is enabled, persisted as a
	// durable blob — so a crashed, panicked, or handed-off solve can
	// resume instead of restarting. Default 32; negative disables.
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxDesignSize <= 0 {
		c.MaxDesignSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 32
	}
	return c
}

// Server is the analysis service. Construct with New, mount Handler
// on an http.Server (or use httptest in tests), and stop with Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    chan *Job
	reg      *registry
	start    time.Time
	breakers *core.BreakerSet // per-rung breakers shared by all jobs
	cache    *cache.Cache     // per-process artifact cache; nil when disabled

	journal     *journal.Journal // write-ahead job journal; nil when disabled
	journalErr  string           // journal open failure; serving continues without durability
	replayStats journal.ReplayStats
	crashed     atomic.Bool // Crash() suppresses journal writes to simulate a hard kill

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mlMu sync.Mutex // serializes fused-model inference

	submitMu sync.Mutex // guards queue sends against Close
	draining bool

	inflight atomic.Int64
	workers  sync.WaitGroup
}

// New starts the worker goroutines and returns a ready service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		queue:      make(chan *Job, cfg.QueueDepth),
		reg:        newRegistry(cfg.MaxJobs, cfg.Name),
		start:      time.Now(),
		breakers:   core.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if !cfg.DisableCache {
		// One cache per server, shared by every worker: the whole point
		// is that worker B's ECO re-check warm-starts off worker A's
		// solve. Cached hierarchies are cloned per use (see amg.Clone),
		// so sharing is race-free.
		s.cache = cache.New(cfg.CacheBytes, cfg.CacheTTL)
	}
	if cfg.Analyzer != nil {
		// The fused pipeline's rough-solve ladder shares the server's
		// breakers: a backend that keeps failing across jobs is skipped
		// instead of re-attempted on every request.
		res := cfg.Resilience
		res.Breakers = s.breakers
		cfg.Analyzer.Resilience = res
	}
	s.routes()
	if cfg.JournalDir != "" {
		// Open (and replay) the journal before the workers start:
		// recovered orphans are re-enqueued here, so the workers' first
		// pulls already see them — ahead of any new submissions.
		s.openJournal()
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler tree of the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Name returns the configured shard identity ("" when standalone).
func (s *Server) Name() string { return s.cfg.Name }

// Workers returns the configured worker concurrency.
func (s *Server) Workers() int { return s.cfg.Workers }

// InFlight returns the number of jobs currently executing.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// CacheStats snapshots the per-process artifact cache (zero stats
// when caching is disabled).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// worker drains the job queue until Close closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// submit admits a job into the bounded queue. It returns false when
// the queue is full or the server is draining — the caller answers
// 503 in both cases.
func (s *Server) submit(j *Job) bool {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if s.draining {
		return false
	}
	select {
	case s.queue <- j:
		cSubmitted.Inc()
		return true
	default:
		return false
	}
}

// Close gracefully shuts the service down: new submissions are
// rejected immediately, queued and in-flight jobs are drained, and
// the call returns when every worker has exited. If ctx expires
// first, all remaining job contexts are cancelled — the solver loops
// notice within one iteration — and Close waits for the (now fast)
// drain to finish before returning ctx.Err().
func (s *Server) Close(ctx context.Context) error {
	s.submitMu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.submitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.baseCancel() // force-cancel in-flight solves
		<-done
		s.closeJournal()
		return ctx.Err()
	}
}

// closeJournal syncs and closes the journal after the workers have
// drained (so every terminal record has been appended first).
func (s *Server) closeJournal() {
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			cJournalErr.Inc()
		}
	}
}

// Crash simulates a hard process kill for restart testing: journal
// writes are suppressed first (a dying process never writes its
// terminal records — that asymmetry is exactly what replay recovers
// from), then every in-flight context is cancelled and the call
// returns once the workers have exited. The journal directory is left
// holding exactly what a kill -9 mid-solve would: accepted, started,
// and checkpoint records with no terminal record after them.
func (s *Server) Crash() {
	s.crashed.Store(true)
	s.submitMu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.submitMu.Unlock()
	s.baseCancel() // in-flight solvers notice within one iteration
	s.workers.Wait()
	if s.journal != nil {
		_ = s.journal.Close() // release the fd; appends were already suppressed
	}
}

// pool exposes the shared worker pool for /healthz reporting.
func (s *Server) poolInfo() (workers, minWork int) {
	p := parallel.Default()
	return p.Workers(), p.MinWork()
}
