package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"irfusion/internal/circuit"
	"irfusion/internal/core"
	"irfusion/internal/faults"
	"irfusion/internal/obs"
)

// withGlobalFaults installs a process-global fault injector for one
// test and restores the previous one (the suite may itself be running
// under an IRFUSION_FAULTS chaos profile).
func withGlobalFaults(t *testing.T, spec string) {
	t.Helper()
	prev := faults.Active()
	faults.SetActive(faults.MustParse(spec))
	t.Cleanup(func() { faults.SetActive(prev) })
}

// TestServeDegradesOnAMGSetupFault is the headline acceptance path: an
// injected AMG setup failure must not fail the request — the ladder
// falls to SSOR-PCG, the response is a 200, and the manifest records
// which rung served.
func TestServeDegradesOnAMGSetupFault(t *testing.T) {
	withGlobalFaults(t, "amg.setup:fail")
	_, ts := newTestServer(t, Config{Workers: 1})
	code, b := post(t, ts, "/v1/analyze", pgenBody(21, 24, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 despite AMG fault: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusDone {
		t.Fatalf("status %q, error %q", v.Status, v.Error)
	}
	m := v.Result.Manifest
	if m == nil {
		t.Fatal("no manifest")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if len(m.Degradations) != 1 {
		t.Fatalf("degradation records: %+v", m.Degradations)
	}
	deg := m.Degradations[0]
	if deg.Rung != core.RungSSOR || deg.RungIndex != 1 || deg.Exhausted {
		t.Errorf("served by %q (index %d, exhausted %v), want %q at index 1",
			deg.Rung, deg.RungIndex, deg.Exhausted, core.RungSSOR)
	}
	if !deg.Degraded() {
		t.Error("record does not report degradation")
	}
}

// TestServeLadderExhausted503: when every rung of the ladder fails the
// request must come back as a structured 503 with a Retry-After hint
// and the (exhausted) degradation trail in the manifest — never a
// panic, never a bare 500.
func TestServeLadderExhausted503(t *testing.T) {
	// precond=ssor with a budget gives the two-rung ladder
	// [numerical.ssor, numerical.randomwalk]; the labeled clauses kill
	// both (the walk honors only the "fail" action).
	withGlobalFaults(t,
		"solver.pcg:indefinite:label="+core.RungSSOR+
			";solver.pcg:fail:label="+core.RungRandomWalk)
	s, ts := newTestServer(t, Config{Workers: 1, BreakerCooldown: 7 * time.Second})
	code, b := post(t, ts, "/v1/analyze", pgenBody(22, 24, `"iters": 4, "precond": "ssor"`))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusFailed || v.ErrorKind != errKindExhausted {
		t.Fatalf("status %q kind %q, want failed/%s (error %q)", v.Status, v.ErrorKind, errKindExhausted, v.Error)
	}
	if v.Result == nil || v.Result.Manifest == nil {
		t.Fatal("exhausted job lost its manifest")
	}
	degs := v.Result.Manifest.Degradations
	if len(degs) != 1 || !degs[0].Exhausted {
		t.Fatalf("degradation records: %+v", degs)
	}
	_ = s
	// Retry-After must be set (from the breaker cooldown).
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(pgenBody(23, 24, `"iters": 4, "precond": "ssor"`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want %q", got, "7")
	}
}

// TestServeWorkerPanicRecovered: a panicking analysis earns exactly
// one requeue, so only a *repeated* panic costs the client a 500 —
// with the manifest attached, serve.panics bumped twice, and exactly
// one requeue recorded — and neither panic may kill the worker
// goroutine: the next request on the same single-worker server has to
// succeed.
func TestServeWorkerPanicRecovered(t *testing.T) {
	withGlobalFaults(t, "serve.worker:panic:times=2")
	_, ts := newTestServer(t, Config{Workers: 1})
	before := obs.GlobalCounters()["serve.panics"]
	beforeRq := obs.GlobalCounters()["serve.requeues"]

	code, b := post(t, ts, "/v1/analyze", pgenBody(24, 24, `"iters": 3, "precond": "ssor"`))
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusFailed || v.ErrorKind != errKindPanic {
		t.Fatalf("status %q kind %q (error %q)", v.Status, v.ErrorKind, v.Error)
	}
	if v.Result == nil || v.Result.Manifest == nil {
		t.Fatal("panicked job lost its manifest")
	}
	if got := obs.GlobalCounters()["serve.panics"]; got != before+2 {
		t.Errorf("serve.panics %d, want %d (first panic requeues, second fails)", got, before+2)
	}
	if got := obs.GlobalCounters()["serve.requeues"]; got != beforeRq+1 {
		t.Errorf("serve.requeues %d, want %d (exactly one retry per job)", got, beforeRq+1)
	}
	// times=2: the injector is spent; the lone worker must still be
	// alive to serve this.
	code, b = post(t, ts, "/v1/analyze", pgenBody(25, 24, `"iters": 3, "precond": "ssor"`))
	if code != http.StatusOK {
		t.Fatalf("post-panic request status %d, want 200: %s", code, b)
	}
}

// TestServeWorkerPanicRequeuedOnce: a single injected panic must be
// invisible to the client — the job is requeued, the retry (injector
// spent) succeeds, and the response is a 200 with serve.requeues
// incremented. This is the regression test for the requeue-once path.
func TestServeWorkerPanicRequeuedOnce(t *testing.T) {
	withGlobalFaults(t, "serve.worker:panic:times=1")
	_, ts := newTestServer(t, Config{Workers: 1})
	beforePanics := obs.GlobalCounters()["serve.panics"]
	beforeRq := obs.GlobalCounters()["serve.requeues"]

	code, b := post(t, ts, "/v1/analyze", pgenBody(26, 24, `"iters": 3, "precond": "ssor"`))
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (panic should have been retried): %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusDone {
		t.Fatalf("status %q, error %q", v.Status, v.Error)
	}
	if got := obs.GlobalCounters()["serve.panics"]; got != beforePanics+1 {
		t.Errorf("serve.panics %d, want %d", got, beforePanics+1)
	}
	if got := obs.GlobalCounters()["serve.requeues"]; got != beforeRq+1 {
		t.Errorf("serve.requeues %d, want %d", got, beforeRq+1)
	}
}

// TestServeBreakerSkipsFailingBackend: repeated AMG failures across
// jobs open the shared numerical.amg breaker; later jobs skip the rung
// without attempting it, and /healthz reports the open breaker.
func TestServeBreakerSkipsFailingBackend(t *testing.T) {
	withGlobalFaults(t, "amg.setup:fail")
	_, ts := newTestServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	var last JobView
	for i := 0; i < 3; i++ {
		code, b := post(t, ts, "/v1/analyze", pgenBody(int64(30+i), 24, ""))
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, b)
		}
		last = decodeJob(t, b)
	}
	degs := last.Result.Manifest.Degradations
	if len(degs) != 1 {
		t.Fatalf("degradations: %+v", degs)
	}
	first := degs[0].Attempts[0]
	if first.Rung != core.RungAMG || first.Skipped != "breaker-open" {
		t.Errorf("third job's AMG attempt = %+v, want a breaker-open skip", first)
	}
	code, b := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Breakers[core.RungAMG] != "open" {
		t.Errorf("healthz breakers = %v, want %s open", h.Breakers, core.RungAMG)
	}
}

// TestServeDeckValidation400 verifies the pre-solve deck linter: a
// deck with a grounded resistor and a detached island must bounce with
// a 400 carrying the full machine-readable issue list, not surface
// mid-solve as a 500.
func TestServeDeckValidation400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	deck := "* bad deck\n" +
		"v1 a 0 1.1\n" +
		"r1 a b 2\n" +
		"rbad b 0 1\n" +
		"rfloat p q 3\n" +
		"i1 b 0 0.01\n" +
		".end"
	code, b := post(t, ts, "/v1/analyze", `{"spice": `+mustJSON(deck)+`, "resolution": 24}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, b)
	}
	var body struct {
		Error  string              `json:"error"`
		Issues []circuit.DeckIssue `json:"issues"`
	}
	if err := json.Unmarshal(b, &body); err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{}
	for _, is := range body.Issues {
		codes[is.Code] = true
	}
	for _, want := range []string{circuit.IssueGroundResistor, circuit.IssueFloatingNode} {
		if !codes[want] {
			t.Errorf("missing issue %s in %+v", want, body.Issues)
		}
	}
}

// TestCancelCompletionRaceKeepsResult is the regression test for the
// DELETE vs in-flight-completion race: Cancel's queued-check and
// finalize used to happen outside one critical section, so a worker
// could pick the job up in between — it would then run to completion
// while Cancel finalized the job as "cancelled before start", dropping
// the worker's result and manifest. Run under -race.
func TestCancelCompletionRaceKeepsResult(t *testing.T) {
	for i := 0; i < 500; i++ {
		j := &Job{status: StatusQueued, done: make(chan struct{}), cancel: func() {}}
		var ran atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // the worker: markRunning then finalize with a result
			defer wg.Done()
			if j.markRunning() {
				ran.Store(true)
				j.finalize(StatusDone, "", &AnalyzeResult{Manifest: &obs.Manifest{Kind: "race"}})
			}
		}()
		go func() { // the DELETE handler
			defer wg.Done()
			j.Cancel()
		}()
		wg.Wait()
		v := j.Snapshot()
		if ran.Load() {
			if v.Result == nil || v.Result.Manifest == nil {
				t.Fatalf("iteration %d: worker ran but its result was dropped (status %q, error %q)",
					i, v.Status, v.Error)
			}
		} else if v.Status != StatusCancelled {
			t.Fatalf("iteration %d: job neither ran nor cancelled: %q", i, v.Status)
		}
	}
}

// mustJSON renders a string as a JSON literal.
func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}
