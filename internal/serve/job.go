package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"irfusion/internal/pgen"
)

// Status is the lifecycle state of a job.
type Status string

const (
	// StatusQueued: accepted into the bounded queue, not yet picked up
	// by a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is executing the analysis.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; Result is populated.
	StatusDone Status = "done"
	// StatusFailed: finished with an error (including timeouts).
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled by DELETE /v1/jobs/{id}, a client
	// disconnect on a synchronous request, or server shutdown before
	// the job completed.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job is one queued analysis. All exported accessors are safe for
// concurrent use; the JSON view is produced by Snapshot.
type Job struct {
	id          string
	req         AnalyzeRequest
	design      *pgen.Design
	fp          string // design fingerprint; set by runJob when caching is on
	handoffFrom string // shard this job failed over from; "" normally
	submitted   time.Time

	// resumeFrom is the provenance recorded when this job's solve
	// resumes from a checkpoint: "restart" (journal replay), "requeue"
	// (post-panic retry), or a shard name (gateway handoff header).
	// Written before (re-)submission; the queue handoff orders it
	// before the worker's read.
	resumeFrom string
	// ckptKey is the key of the job's latest durably persisted
	// checkpoint. Written by the checkpoint notify hook on the worker
	// goroutine running the solve and read on the same goroutine (or
	// across a queue handoff), so no lock is needed.
	ckptKey string
	// requeues counts post-panic retries; only the first panic earns
	// one.
	requeues atomic.Int32

	ctx       context.Context // job lifetime (timeout + server shutdown)
	cancel    context.CancelFunc
	done      chan struct{}
	cancelled atomic.Bool // requested via Cancel (vs timeout/failure)

	mu       sync.Mutex
	status   Status
	err      string
	errKind  string
	result   *AnalyzeResult
	started  time.Time
	finished time.Time
}

// Error kinds attached to failed jobs so clients (and the sync
// response path) can map failures to behaviour without parsing
// message text.
const (
	errKindExhausted = "ladder-exhausted" // every degradation rung failed
	errKindPanic     = "worker-panic"     // recovered panic in the worker
	errKindTimeout   = "timeout"          // job deadline expired
	errKindCancelled = "cancelled"        // cancelled via DELETE or disconnect
)

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal
// status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Cancel requests cancellation: a queued job is finalized immediately
// (the worker will skip it), a running job has its context cancelled
// and finalizes when the solver notices. Cancelling a terminal job is
// a no-op. It reports whether the cancellation request took effect.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled.Store(true)
	if j.status == StatusQueued {
		// Not yet started: finalize atomically with the queued check,
		// under the same mutex markRunning takes. Checking here and
		// finalizing after unlocking would race a worker picking the
		// job up in the window — the worker would then run (and
		// complete) a job this call already finalized as "cancelled
		// before start", silently dropping its result and manifest.
		j.finalizeLocked(StatusCancelled, "cancelled before start", errKindCancelled, nil)
		j.mu.Unlock()
		j.cancel()
		return true
	}
	j.mu.Unlock()
	j.cancel()
	return true
}

// requeueForRetry transitions running → queued for the one-shot retry
// after a worker panic. It returns false when the job is no longer
// running (cancelled or otherwise finalized during the run), in which
// case the caller must not resubmit it.
func (j *Job) requeueForRetry() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return false
	}
	j.status = StatusQueued
	return true
}

// markRunning transitions queued → running. It returns false when the
// job was cancelled while waiting in the queue.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// finalize moves the job to a terminal status exactly once and closes
// Done.
func (j *Job) finalize(status Status, errMsg string, result *AnalyzeResult) {
	j.finalizeKind(status, errMsg, "", result)
}

// finalizeKind is finalize carrying a machine-readable error kind.
func (j *Job) finalizeKind(status Status, errMsg, kind string, result *AnalyzeResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finalizeLocked(status, errMsg, kind, result)
}

// finalizeLocked is the terminal transition; j.mu must be held.
func (j *Job) finalizeLocked(status Status, errMsg, kind string, result *AnalyzeResult) {
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.err = errMsg
	j.errKind = kind
	j.result = result
	j.finished = time.Now()
	close(j.done)
}

// JobView is the JSON representation of a job returned by the API.
type JobView struct {
	ID          string         `json:"id"`
	Status      Status         `json:"status"`
	Error       string         `json:"error,omitempty"`
	ErrorKind   string         `json:"error_kind,omitempty"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Result      *AnalyzeResult `json:"result,omitempty"`
}

// Snapshot returns a consistent JSON view of the job.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Status:      j.status,
		Error:       j.err,
		ErrorKind:   j.errKind,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// registry tracks jobs by id with bounded retention: once more than
// cap jobs are held, the oldest terminal jobs are evicted (live jobs
// are never evicted, so a full registry of in-flight work simply grows
// until jobs finish).
type registry struct {
	mu     sync.Mutex
	next   int64
	cap    int
	prefix string // shard-name job-id prefix; "" when standalone
	jobs   map[string]*Job
	order  []string // insertion order for eviction
}

// newRegistry builds a registry whose ids carry the shard name when
// one is configured ("shard0-job-000001") so a cluster gateway can
// route job lookups to the owning shard by id alone. Standalone
// servers keep the bare "job-000001" form.
func newRegistry(capacity int, shard string) *registry {
	prefix := ""
	if shard != "" {
		prefix = shard + "-"
	}
	return &registry{cap: capacity, prefix: prefix, jobs: make(map[string]*Job)}
}

// add registers a new job under a fresh id.
func (r *registry) add(j *Job) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := fmt.Sprintf("%sjob-%06d", r.prefix, r.next)
	j.id = id
	r.jobs[id] = j
	r.order = append(r.order, id)
	r.evictLocked()
	return id
}

// addWithID registers a journal-recovered job under its original id
// (so clients polling a pre-crash job id find it again) and bumps the
// id counter past the recovered number so fresh ids never collide.
func (r *registry) addWithID(j *Job, id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.id = id
	r.jobs[id] = j
	r.order = append(r.order, id)
	if i := strings.LastIndex(id, "job-"); i >= 0 {
		if n, err := strconv.ParseInt(id[i+len("job-"):], 10, 64); err == nil && n > r.next {
			r.next = n
		}
	}
	r.evictLocked()
}

// get looks a job up by id.
func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// counts tallies jobs per status for /healthz.
func (r *registry) counts() map[Status]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Status]int, 5)
	for _, j := range r.jobs {
		out[j.Status()]++
	}
	return out
}

func (r *registry) evictLocked() {
	for len(r.order) > r.cap {
		evicted := false
		for i, id := range r.order {
			if j := r.jobs[id]; j != nil && j.Status().Terminal() {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is live
		}
	}
}
