package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"irfusion/internal/cache"
	"irfusion/internal/journal"
)

// Journal glue: the serving layer's half of crash durability. The
// journal package owns the on-disk write-ahead log; this file decides
// *what* gets journaled (one record per job lifecycle transition, one
// blob per solver checkpoint) and how a restarted process turns the
// replayed history back into queued jobs.

// Provenance values recorded in a manifest's resume section
// (obs.ResumeSection.From) by this layer. A gateway handoff carries a
// shard name in HeaderResumeFrom instead.
const (
	fromRestart = "restart" // re-enqueued by journal replay after a process restart
	fromRequeue = "requeue" // re-enqueued on the same process after a worker panic
)

// openJournal opens (and replays) the configured journal directory.
// Failure to open never prevents startup — the server runs without
// durability and reports the problem on /healthz — because a service
// that refuses to start over a damaged journal turns one crash into
// an outage.
func (s *Server) openJournal() {
	fold := journal.NewFold()
	jr, stats, err := journal.Open(s.cfg.JournalDir, journal.Options{Sync: s.cfg.JournalSync}, fold.Add)
	if err != nil {
		s.journalErr = err.Error()
		cJournalErr.Inc()
		return
	}
	s.journal = jr
	s.replayStats = stats
	s.recoverOrphans(fold)
}

// recoverOrphans re-enqueues every job whose journal history never
// reached a terminal record, under its original id, in acceptance
// order. A job with a checkpoint record first has its blob reloaded
// into the artifact cache so the resume rung continues the solve from
// where the crashed process left it. Replay is idempotent: finished,
// cancelled, and failed jobs are skipped by the fold, and a job this
// pass fails to recover gets a terminal record so the next restart
// skips it too.
func (s *Server) recoverOrphans(fold *journal.Fold) {
	for _, st := range fold.Orphans() {
		if len(st.Request) == 0 {
			continue // accepted record never made it; nothing to re-run
		}
		var req AnalyzeRequest
		if err := json.Unmarshal(st.Request, &req); err != nil {
			s.journalAppend(s.baseCtx, journal.Record{
				Type: journal.TypeFailed, JobID: st.JobID,
				Detail: fmt.Sprintf("recovery: undecodable request: %v", err),
			})
			continue
		}
		design, err := s.prepare(&req)
		if err != nil {
			s.journalAppend(s.baseCtx, journal.Record{
				Type: journal.TypeFailed, JobID: st.JobID,
				Detail: fmt.Sprintf("recovery: %v", err),
			})
			continue
		}
		if st.CheckpointKey != "" {
			s.restoreCheckpoint(st.CheckpointKey)
		}
		ctx, cancel := s.jobContext(req.TimeoutMS)
		j := &Job{
			req:        req,
			submitted:  time.Now(),
			cancel:     cancel,
			done:       make(chan struct{}),
			status:     StatusQueued,
			ctx:        ctx,
			design:     design,
			resumeFrom: fromRestart,
			ckptKey:    st.CheckpointKey,
		}
		s.reg.addWithID(j, st.JobID)
		if !s.submit(j) {
			cancel()
			j.finalizeKind(StatusFailed, "recovery: queue full", "", nil)
			s.journalAppend(s.baseCtx, journal.Record{
				Type: journal.TypeFailed, JobID: st.JobID, Detail: "recovery: queue full",
			})
			continue
		}
		cRecovered.Inc()
		cRequeues.Inc()
		s.journalAppend(s.baseCtx, journal.Record{
			Type: journal.TypeRequeued, JobID: st.JobID,
			CheckpointKey: st.CheckpointKey, Detail: fromRestart,
		})
	}
}

// restoreCheckpoint reloads a journaled checkpoint blob into the
// artifact cache so the resume rung (core.RungAMGResume) finds it when
// the recovered job re-runs. Any damage — missing blob, CRC mismatch,
// undecodable artifact — is counted and otherwise ignored: the job
// simply solves cold.
func (s *Server) restoreCheckpoint(key string) {
	if s.cache == nil {
		return
	}
	data, err := s.journal.LoadBlob(key)
	if err != nil {
		cJournalErr.Inc()
		return
	}
	art, err := cache.DecodeCheckpoint(data)
	if err != nil {
		cJournalErr.Inc()
		return
	}
	cache.StoreCheckpoint(s.baseCtx, s.cache, art)
}

// journalAppend writes one lifecycle record; ctx scopes fault
// injection (the journal.append site). Append failures are counted,
// not propagated: the serving path prefers availability over
// durability, and the loss is visible in serve.journal.errors.
func (s *Server) journalAppend(ctx context.Context, rec journal.Record) {
	if s.journal == nil || s.crashed.Load() {
		return
	}
	if err := s.journal.Append(ctx, rec); err != nil {
		cJournalErr.Inc()
	}
}

// journalAccepted records a job's admission, carrying the full request
// body so replay can re-enqueue the job after a crash.
func (s *Server) journalAccepted(j *Job) {
	if s.journal == nil {
		return
	}
	body, err := json.Marshal(&j.req)
	if err != nil {
		cJournalErr.Inc()
		return
	}
	s.journalAppend(j.ctx, journal.Record{
		Type: journal.TypeAccepted, JobID: j.id, Request: body,
	})
}

// journalTerminal records a job's terminal transition, carrying its
// last checkpoint key so an operator can correlate the blob.
func (s *Server) journalTerminal(j *Job, typ, detail string) {
	s.journalAppend(j.ctx, journal.Record{
		Type: typ, JobID: j.id, CheckpointKey: j.ckptKey, Detail: detail,
	})
}

// checkpointNotify returns the durable-persistence hook handed to the
// core analyzer: each solver checkpoint is saved as a blob, then
// recorded in the journal under its key. Nil when the journal is off —
// checkpoints then live only in the in-process cache (still enough for
// same-process requeue and shared-cache cluster handoff).
func (s *Server) checkpointNotify(j *Job) func(key string, encoded []byte) {
	if s.journal == nil {
		return nil
	}
	return func(key string, encoded []byte) {
		if s.crashed.Load() {
			return
		}
		if err := s.journal.SaveBlob(key, encoded); err != nil {
			cJournalErr.Inc()
			return
		}
		j.ckptKey = key
		s.journalAppend(j.ctx, journal.Record{
			Type: journal.TypeCheckpoint, JobID: j.id, CheckpointKey: key,
		})
	}
}
