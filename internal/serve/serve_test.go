package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer boots a service plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// pgenBody returns an analyze request for a small generated design.
func pgenBody(seed int64, size int, extra string) string {
	s := fmt.Sprintf(`{"pgen": {"class": "fake", "w": %d, "h": %d, "seed": %d}`, size, size, seed)
	if extra != "" {
		s += ", " + extra
	}
	return s + "}"
}

// post POSTs a JSON body to path and returns status plus decoded body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func del(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func decodeJob(t *testing.T, b []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decode job view: %v\nbody: %s", err, b)
	}
	return v
}

// waitStatus polls a job until pred accepts its status and returns
// that view. It fails fast — with the job's actual state and error —
// when the job reaches a terminal status the predicate rejects, since
// no amount of further polling can change a terminal job.
func waitStatus(t *testing.T, ts *httptest.Server, id string, pred func(Status) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, b := get(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, code, b)
		}
		v := decodeJob(t, b)
		if pred(v.Status) {
			return v
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s reached terminal status %q (error %q) before the wanted state", id, v.Status, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach wanted status in time", id)
	return JobView{}
}

func TestAnalyzeSyncNumerical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, b := post(t, ts, "/v1/analyze", pgenBody(1, 32, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusDone {
		t.Fatalf("status %q, error %q", v.Status, v.Error)
	}
	r := v.Result
	if r == nil {
		t.Fatal("no result")
	}
	if r.Mode != ModeNumerical || r.Resolution != 32 {
		t.Errorf("mode %q resolution %d, want numerical/32", r.Mode, r.Resolution)
	}
	if r.MaxDropVolts <= 0 || r.MeanDropVolts <= 0 || r.MeanDropVolts > r.MaxDropVolts {
		t.Errorf("implausible drop stats: max %g mean %g", r.MaxDropVolts, r.MeanDropVolts)
	}
	if r.Residual > 1e-9 {
		t.Errorf("converged solve residual %g", r.Residual)
	}
	if r.Map != nil {
		t.Errorf("map returned without include_map")
	}
	if r.Manifest == nil {
		t.Fatal("no manifest attached")
	}
	if err := r.Manifest.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
	// The solve ran on the degradation ladder: the manifest must carry
	// at least one numerical-rung solve and exactly one degradation
	// record naming the rung that served. (Deliberately tolerant of an
	// injected mid-ladder fault, so chaos runs of this suite pass.)
	if len(r.Manifest.Solves) == 0 {
		t.Fatal("no solves in manifest")
	}
	last := r.Manifest.Solves[len(r.Manifest.Solves)-1]
	if !strings.HasPrefix(last.Label, "numerical.") {
		t.Errorf("final solve label %q, want a numerical rung", last.Label)
	}
	if len(r.Manifest.Degradations) != 1 || r.Manifest.Degradations[0].Rung != last.Label {
		t.Errorf("degradation records = %+v, want one serving rung %q", r.Manifest.Degradations, last.Label)
	}
	if r.Manifest.Counters["serve.job"] != 1 {
		t.Errorf("serve.job counter = %d, want 1", r.Manifest.Counters["serve.job"])
	}
}

func TestAnalyzeSyncSpiceDeck(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	deck := genDeck(t, 24, 7)
	body, err := json.Marshal(AnalyzeRequest{Spice: deck, Iters: 4, Precond: "ssor", IncludeMap: true})
	if err != nil {
		t.Fatal(err)
	}
	code, b := post(t, ts, "/v1/analyze", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusDone {
		t.Fatalf("status %q, error %q", v.Status, v.Error)
	}
	if v.Result.Resolution != 24 {
		t.Errorf("inferred resolution %d, want 24", v.Result.Resolution)
	}
	if got := len(v.Result.Map); got != 24*24 {
		t.Errorf("map length %d, want %d", got, 24*24)
	}
	// A 4-iteration budgeted solve must report exactly 4 iterations.
	if n := v.Result.Manifest.Solves[0].Iterations; n != 4 {
		t.Errorf("budgeted solve ran %d iterations, want 4", n)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxDesignSize: 64})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"pgen": `},
		{"unknown field", `{"pgen": {"w": 24, "h": 24}, "bogus": 1}`},
		{"neither source", `{"mode": "numerical"}`},
		{"both sources", `{"spice": "r1 a 0 1\n.end", "pgen": {"w": 24, "h": 24}}`},
		{"bad mode", pgenBody(1, 24, `"mode": "quantum"`)},
		{"fused without model", pgenBody(1, 24, `"mode": "fused"`)},
		{"bad precond", pgenBody(1, 24, `"precond": "ilu"`)},
		{"negative iters", pgenBody(1, 24, `"iters": -1`)},
		{"huge iters", pgenBody(1, 24, fmt.Sprintf(`"iters": %d`, maxIters+1))},
		{"negative timeout", pgenBody(1, 24, `"timeout_ms": -5`)},
		{"die too large", pgenBody(1, 128, "")},
		{"resolution too large", pgenBody(1, 24, `"resolution": 1024`)},
		{"zero die", `{"pgen": {"w": 0, "h": 0}}`},
		{"bad spice", `{"spice": "r1 a\n"}`},
		{"empty spice deck", `{"spice": "* empty\n.end"}`},
		{"spice without coordinates", `{"spice": "rx a b 1\nv1 a 0 1\ni1 b 0 0.1\n.end"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := post(t, ts, "/v1/analyze", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", code, b)
			}
		})
	}
}

func TestAnalyzeBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	big := pgenBody(1, 24, `"spare": "`+strings.Repeat("x", 2048)+`"`)
	code, b := post(t, ts, "/v1/analyze", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", code, b)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, b := post(t, ts, "/v1/analyze", pgenBody(3, 24, `"async": true, "iters": 3, "precond": "ssor"`))
	if code != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.ID == "" {
		t.Fatal("no job id")
	}
	final := waitStatus(t, ts, v.ID, Status.Terminal)
	if final.Status != StatusDone {
		t.Fatalf("final status %q, error %q", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.MaxDropVolts <= 0 {
		t.Errorf("missing or empty result: %+v", final.Result)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("missing timestamps: %+v", final)
	}

	if code, _ := get(t, ts, "/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", code)
	}
	if code, _ := del(t, ts, "/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job delete status %d, want 404", code)
	}
}

// slowBody returns a request whose budgeted SSOR solve runs long
// enough (seconds of wall clock, thousands of iterations) to observe
// and then cancel. The 128×128 die is the lever: budgeted solves on
// miniature grids converge past machine precision in milliseconds, so
// only per-iteration cost — matrix size — buys a reliable window in
// which the job is observably running.
func slowBody(seed int64) string {
	return pgenBody(seed, 128, fmt.Sprintf(`"async": true, "iters": %d, "precond": "ssor"`, maxIters))
}

func TestCancelStopsSolveMidIteration(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, b := post(t, ts, "/v1/analyze", slowBody(5))
	if code != http.StatusAccepted {
		t.Fatalf("status %d: %s", code, b)
	}
	id := decodeJob(t, b).ID
	waitStatus(t, ts, id, func(s Status) bool { return s == StatusRunning })
	// Let the PCG loop accumulate iterations so the cancellation
	// demonstrably lands mid-solve, not before the loop starts. The
	// window must cover system assembly too ("running" flips before
	// it), which race-instrumented builds stretch considerably.
	time.Sleep(750 * time.Millisecond)

	code, b = del(t, ts, "/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", code, b)
	}
	final := waitStatus(t, ts, id, Status.Terminal)
	if final.Status != StatusCancelled {
		t.Fatalf("status %q, want cancelled (error %q)", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.Manifest == nil {
		t.Fatal("cancelled job has no manifest")
	}
	solves := final.Result.Manifest.Solves
	if len(solves) != 1 {
		t.Fatalf("manifest solves = %+v, want exactly one", solves)
	}
	// Early return: strictly fewer iterations than the budget, with a
	// partial residual history recorded up to the cancellation point.
	if solves[0].Iterations <= 0 || solves[0].Iterations >= maxIters {
		t.Errorf("cancelled solve ran %d iterations, want mid-solve stop", solves[0].Iterations)
	}
	h := solves[0].History
	if len(h) == 0 || len(h) > maxIters {
		t.Errorf("partial history length %d", len(h))
	}
	if !strings.Contains(final.Error, "cancelled") {
		t.Errorf("error %q does not mention cancellation", final.Error)
	}
}

func TestTimeoutFailsSolveWithPartialManifest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// The deadline must fall after assembly (which race-instrumented
	// builds stretch past 80ms) but well before the budgeted solve
	// finishes — the 128×128 die buys seconds of solve time.
	body := pgenBody(6, 128, fmt.Sprintf(`"iters": %d, "precond": "ssor", "timeout_ms": 400`, maxIters))
	code, b := post(t, ts, "/v1/analyze", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusFailed {
		t.Fatalf("status %q, want failed", v.Status)
	}
	if v.Result == nil || v.Result.Manifest == nil || len(v.Result.Manifest.Solves) != 1 {
		t.Fatalf("timed-out job missing partial manifest: %+v", v.Result)
	}
	if n := v.Result.Manifest.Solves[0].Iterations; n <= 0 || n >= maxIters {
		t.Errorf("timed-out solve ran %d iterations, want mid-solve stop", n)
	}
}

func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Fill the single worker...
	code, b := post(t, ts, "/v1/analyze", slowBody(7))
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", code, b)
	}
	id1 := decodeJob(t, b).ID
	waitStatus(t, ts, id1, func(s Status) bool { return s == StatusRunning })
	// ...then the single queue slot...
	code, b = post(t, ts, "/v1/analyze", slowBody(8))
	if code != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", code, b)
	}
	id2 := decodeJob(t, b).ID
	// ...and the next submission must bounce.
	code, b = post(t, ts, "/v1/analyze", slowBody(9))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("job 3: status %d, want 503: %s", code, b)
	}
	for _, id := range []string{id1, id2} {
		del(t, ts, "/v1/jobs/"+id)
		waitStatus(t, ts, id, Status.Terminal)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	code, b := post(t, ts, "/v1/analyze", slowBody(10))
	if code != http.StatusAccepted {
		t.Fatalf("status %d: %s", code, b)
	}
	id1 := decodeJob(t, b).ID
	waitStatus(t, ts, id1, func(s Status) bool { return s == StatusRunning })

	code, b = post(t, ts, "/v1/analyze", slowBody(11))
	if code != http.StatusAccepted {
		t.Fatalf("status %d: %s", code, b)
	}
	id2 := decodeJob(t, b).ID
	code, b = del(t, ts, "/v1/jobs/"+id2)
	if code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if v.Status != StatusCancelled {
		t.Fatalf("queued cancel status %q, want cancelled immediately", v.Status)
	}
	if v.StartedAt != nil {
		t.Errorf("cancelled-while-queued job reports a start time")
	}
	del(t, ts, "/v1/jobs/"+id1)
	waitStatus(t, ts, id1, Status.Terminal)
}

func TestHealthzAndMetricsz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 5})
	code, b := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", code, b)
	}
	var h map[string]any
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("healthz status %v", h["status"])
	}
	if h["workers"].(float64) != 3 || h["queue_cap"].(float64) != 5 {
		t.Errorf("healthz sizing wrong: %v", h)
	}

	// Run one job so serve counters are non-zero.
	if code, b := post(t, ts, "/v1/analyze", pgenBody(2, 24, `"iters": 2, "precond": "ssor"`)); code != http.StatusOK {
		t.Fatalf("analyze: %d: %s", code, b)
	}
	code, b = get(t, ts, "/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz status %d: %s", code, b)
	}
	var m struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["serve.jobs.submitted"] < 1 || m.Counters["serve.jobs.done"] < 1 {
		t.Errorf("serve counters missing: %v", m.Counters)
	}
	if m.Gauges["serve.workers"] != 3 {
		t.Errorf("serve.workers gauge = %v", m.Gauges["serve.workers"])
	}
	_ = s
}

func TestGracefulCloseDrainsInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, b := post(t, ts, "/v1/analyze", pgenBody(12, 24, `"async": true, "iters": 50, "precond": "ssor"`))
	if code != http.StatusAccepted {
		t.Fatalf("status %d: %s", code, b)
	}
	id := decodeJob(t, b).ID
	waitStatus(t, ts, id, func(st Status) bool { return st == StatusRunning || st.Terminal() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The in-flight job completed during the drain.
	j, ok := s.reg.get(id)
	if !ok {
		t.Fatal("job evicted during drain")
	}
	if got := j.Status(); got != StatusDone {
		t.Errorf("drained job status %q, want done", got)
	}
	// New submissions bounce and health reports draining.
	code, b = post(t, ts, "/v1/analyze", pgenBody(13, 24, ""))
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status %d, want 503: %s", code, b)
	}
	code, b = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz status %d, want 503: %s", code, b)
	}
	if !bytes.Contains(b, []byte("draining")) {
		t.Errorf("healthz body %s does not report draining", b)
	}
	// Closing again is idempotent.
	if err := s.Close(ctx); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestForcedCloseCancelsInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, b := post(t, ts, "/v1/analyze", slowBody(14))
	if code != http.StatusAccepted {
		t.Fatalf("status %d: %s", code, b)
	}
	id := decodeJob(t, b).ID
	waitStatus(t, ts, id, func(st Status) bool { return st == StatusRunning })

	// A context that is already expired forces immediate cancellation
	// of the in-flight solve; Close must still wait for the worker.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Close(ctx); err == nil {
		t.Fatal("forced Close returned nil, want context error")
	}
	j, _ := s.reg.get(id)
	if j == nil {
		t.Fatal("job missing")
	}
	st := j.Status()
	if !st.Terminal() {
		t.Fatalf("job still %q after forced close", st)
	}
	if st == StatusDone {
		t.Fatalf("slow job completed despite forced cancellation")
	}
}
