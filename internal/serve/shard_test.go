package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestShardIdentity pins the cluster-facing identity surface of one
// shard: a named server prefixes its job ids with the shard name (so
// a gateway can route job lookups by id), reports the name from
// /healthz and /metricsz, and stamps it into every run manifest.
func TestShardIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Name: "shard7"})
	if s.Name() != "shard7" {
		t.Fatalf("Name() = %q", s.Name())
	}

	code, b := post(t, ts, "/v1/analyze", pgenBody(1, 16, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if !strings.HasPrefix(v.ID, "shard7-job-") {
		t.Fatalf("job id %q lacks the shard prefix", v.ID)
	}
	if v.Result == nil || v.Result.Manifest == nil {
		t.Fatal("no manifest attached")
	}
	if v.Result.Manifest.Shard != "shard7" {
		t.Fatalf("manifest shard %q", v.Result.Manifest.Shard)
	}
	// Named jobs stay addressable under their prefixed id.
	code, _ = get(t, ts, "/v1/jobs/"+v.ID)
	if code != http.StatusOK {
		t.Fatalf("GET prefixed job id: status %d", code)
	}

	for _, path := range []string{"/healthz", "/metricsz"} {
		_, body := get(t, ts, path)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if m["shard"] != "shard7" {
			t.Fatalf("%s shard = %v", path, m["shard"])
		}
	}
}

// TestStandaloneJobIDsUnchanged guards backward compatibility: a
// server without a shard name keeps the pre-cluster bare id form.
func TestStandaloneJobIDsUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, b := post(t, ts, "/v1/analyze", pgenBody(1, 16, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	if v := decodeJob(t, b); !strings.HasPrefix(v.ID, "job-") {
		t.Fatalf("standalone job id %q changed form", v.ID)
	}
}

// TestHandoffRecorded pins the failover provenance trail: a request
// arriving with the gateway's handoff header yields a manifest whose
// serve.handoff counter and handoff_from config name the failed shard.
func TestHandoffRecorded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Name: "shard1"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze",
		strings.NewReader(pgenBody(2, 16, "")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderHandoffFrom, "shard0")
	req.Header.Set(HeaderRouteAttempt, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	m := v.Result.Manifest
	if m.Counters["serve.handoff"] != 1 {
		t.Fatalf("serve.handoff counter = %d", m.Counters["serve.handoff"])
	}
	cfg, ok := m.Config.(map[string]any)
	if !ok {
		t.Fatalf("manifest config has unexpected shape %T", m.Config)
	}
	if cfg["handoff_from"] != "shard0" {
		t.Fatalf("handoff_from = %v", cfg["handoff_from"])
	}
}
