package serve

import (
	"encoding/json"
	"testing"

	"irfusion/internal/obs"
)

// cacheOutcomes tallies the manifest's cache events at one stage.
func cacheOutcomes(t *testing.T, m *obs.Manifest, stage string) map[string]int {
	t.Helper()
	out := map[string]int{}
	if m == nil || m.Cache == nil {
		return out
	}
	for _, e := range m.Cache.Events {
		if e.Stage == stage {
			out[e.Outcome]++
		}
	}
	return out
}

// TestServeCacheResponseHit proves the per-process response cache: a
// repeated identical request is answered from the cached result of the
// first run, attributed in the fresh manifest, and visible in both
// /healthz and /metricsz.
func TestServeCacheResponseHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := pgenBody(4, 32, `"include_map": true`)

	code, b := post(t, ts, "/v1/analyze", body)
	if code != 200 {
		t.Fatalf("first request: status %d: %s", code, b)
	}
	first := decodeJob(t, b)
	if first.Result == nil || first.Result.Manifest == nil {
		t.Fatal("first request has no result manifest")
	}
	oc := cacheOutcomes(t, first.Result.Manifest, "serve.analyze")
	if oc[obs.CacheMiss] != 1 || oc[obs.CacheStore] != 1 {
		t.Fatalf("first request serve.analyze events = %v, want miss+store", oc)
	}

	code, b = post(t, ts, "/v1/analyze", body)
	if code != 200 {
		t.Fatalf("second request: status %d: %s", code, b)
	}
	second := decodeJob(t, b)
	oc = cacheOutcomes(t, second.Result.Manifest, "serve.analyze")
	if oc[obs.CacheHit] != 1 || oc[obs.CacheStore] != 0 {
		t.Fatalf("second request serve.analyze events = %v, want one hit and no store", oc)
	}
	r1, r2 := first.Result, second.Result
	if len(r2.Map) != len(r1.Map) {
		t.Fatalf("served map length %d != computed %d", len(r2.Map), len(r1.Map))
	}
	for i := range r1.Map {
		if r2.Map[i] != r1.Map[i] { //irfusion:exact a response-cache hit serves the stored bits
			t.Fatalf("served map differs from computed at %d", i)
		}
	}
	if st := s.CacheStats(); st.Hits < 1 || st.Stores < 1 || st.Entries < 1 {
		t.Fatalf("server cache stats = %+v, want hits/stores/entries >= 1", st)
	}

	// The cache is observable on both operational endpoints.
	code, hb := get(t, ts, "/healthz")
	if code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	var hz struct {
		CacheEnabled bool `json:"cache_enabled"`
		CacheEntries int  `json:"cache_entries"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.CacheEnabled || hz.CacheEntries < 1 {
		t.Fatalf("healthz cache view = %+v", hz)
	}
	_, mb := get(t, ts, "/metricsz")
	var mz struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Stores int64 `json:"stores"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(mb, &mz); err != nil {
		t.Fatal(err)
	}
	if mz.Cache.Hits < 1 || mz.Cache.Stores < 1 {
		t.Fatalf("metricsz cache stats = %+v", mz.Cache)
	}
}

// TestServeCacheKeyedByRequestShape proves the response key folds in
// every result-shaping field: the same design at a different iteration
// budget must not be served the converged result.
func TestServeCacheKeyedByRequestShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, b := post(t, ts, "/v1/analyze", pgenBody(4, 32, "")); code != 200 {
		t.Fatalf("prime request: status %d: %s", code, b)
	}
	code, b := post(t, ts, "/v1/analyze", pgenBody(4, 32, `"iters": 3, "precond": "ssor"`))
	if code != 200 {
		t.Fatalf("budgeted request: status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if oc := cacheOutcomes(t, v.Result.Manifest, "serve.analyze"); oc[obs.CacheHit] != 0 {
		t.Fatalf("budgeted request hit the converged entry: %v", oc)
	}
}

// TestServeCacheDisabled pins the opt-out: with DisableCache set the
// server runs every request cold, reports the cache as off, and
// records no response-layer cache events.
func TestServeCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DisableCache: true})
	body := pgenBody(4, 32, "")
	post(t, ts, "/v1/analyze", body)
	code, b := post(t, ts, "/v1/analyze", body)
	if code != 200 {
		t.Fatalf("status %d: %s", code, b)
	}
	v := decodeJob(t, b)
	if oc := cacheOutcomes(t, v.Result.Manifest, "serve.analyze"); len(oc) != 0 {
		t.Fatalf("disabled cache recorded response events: %v", oc)
	}
	st := s.CacheStats()
	if st.Entries != 0 || st.Stores != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache accumulated stats: %+v", st)
	}
	var hz struct {
		CacheEnabled bool `json:"cache_enabled"`
	}
	_, hb := get(t, ts, "/healthz")
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.CacheEnabled {
		t.Fatal("healthz reports the disabled cache as enabled")
	}
}
