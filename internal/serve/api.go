package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"irfusion/internal/cache"
	"irfusion/internal/circuit"
	"irfusion/internal/core"
	"irfusion/internal/dataset"
	"irfusion/internal/faults"
	"irfusion/internal/grid"
	"irfusion/internal/journal"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/sparse"
	"irfusion/internal/spice"
)

// Analysis modes accepted by POST /v1/analyze.
const (
	// ModeNumerical runs the pure AMG-PCG (or budgeted SSOR-PCG)
	// numerical analysis.
	ModeNumerical = "numerical"
	// ModeFused runs the fused numerical+ML pipeline; requires the
	// server to be configured with a trained Analyzer.
	ModeFused = "fused"
)

// maxIters bounds the per-request iteration budget (admission limit).
const maxIters = 100000

// Cluster routing headers, set by the internal/cluster gateway and
// read here. They are defined in serve (the lower layer) so the shard
// can record handoffs without importing the cluster package.
const (
	// HeaderShard is attached by the gateway to every proxied response:
	// the name of the shard that actually answered.
	HeaderShard = "X-Irfusion-Shard"
	// HeaderRouteAttempt counts the gateway's forward attempts for this
	// request, starting at 1; values above 1 mean ring handoff occurred.
	HeaderRouteAttempt = "X-Irfusion-Route-Attempt"
	// HeaderHandoffFrom names the shard a request was originally routed
	// to when it reaches a ring successor after a failure handoff. The
	// receiving shard records it in the job's run manifest (counter
	// serve.handoff, config key handoff_from).
	HeaderHandoffFrom = "X-Irfusion-Handoff-From"
	// HeaderResumeFrom names where a resumable checkpoint for this
	// request may have come from (the donor shard on a gateway handoff).
	// When the solve actually resumes from a checkpoint, the value is
	// recorded as the manifest resume section's "from" — proving whose
	// iterations the resumed solve inherited.
	HeaderResumeFrom = "X-Irfusion-Resume-From"
)

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one of
// Spice (a SPICE power-grid deck as text) and Pgen (a generator
// configuration) must be set.
type AnalyzeRequest struct {
	// Spice is a SPICE deck in the ICCAD-2023 contest format.
	Spice string `json:"spice,omitempty"`
	// Pgen generates a synthetic design server-side. Omitted fields
	// take the pgen defaults (the default layer stack in particular).
	Pgen *pgen.Config `json:"pgen,omitempty"`
	// Mode is "numerical" (default) or "fused".
	Mode string `json:"mode,omitempty"`
	// Iters is the PCG iteration budget; 0 means solve to
	// convergence (numerical mode) or the model's configured rough
	// budget (fused mode).
	Iters int `json:"iters,omitempty"`
	// Precond selects the budgeted-solve preconditioner: "amg"
	// (default) or "ssor". Ignored by fused mode.
	Precond string `json:"precond,omitempty"`
	// Precision selects the converged-solve arithmetic: "full"
	// (default) or "mixed" (float32 V-cycle inside float64 iterative
	// refinement; falls back to full precision on stagnation). Ignored
	// by budgeted solves (iters > 0) and by fused mode.
	Precision string `json:"precision,omitempty"`
	// Format selects the SpMV storage format: "auto" (default;
	// row-length-variance-driven), "csr", or "sell". A pure
	// performance knob — every format computes bitwise-identical
	// results.
	Format string `json:"format,omitempty"`
	// Resolution is the raster size of the returned map (numerical
	// mode; default: the design's die size). Fused mode always
	// rasters at the model's training resolution.
	Resolution int `json:"resolution,omitempty"`
	// Async makes the call return 202 with a job id immediately;
	// poll GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds the job's wall time; on expiry the solver
	// stops mid-iteration and the job fails with a partial manifest.
	// 0 uses the server's default timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeMap returns the full row-major drop map (resolution²
	// float64s) in the result, not just its summary statistics.
	IncludeMap bool `json:"include_map,omitempty"`
	// OmitManifest drops the per-request run manifest from the
	// result (manifests are attached by default).
	OmitManifest bool `json:"omit_manifest,omitempty"`
}

// AnalyzeResult is the payload of a finished job. A cancelled or
// timed-out job still carries the manifest (with the partial solver
// residual history); the map statistics are then absent.
type AnalyzeResult struct {
	Design         string        `json:"design,omitempty"`
	Mode           string        `json:"mode,omitempty"`
	Resolution     int           `json:"resolution,omitempty"`
	MaxDropVolts   float64       `json:"max_drop_volts,omitempty"`
	MeanDropVolts  float64       `json:"mean_drop_volts,omitempty"`
	HotspotYX      *[2]int       `json:"hotspot_yx,omitempty"`
	Residual       float64       `json:"residual,omitempty"`
	RuntimeSeconds float64       `json:"runtime_seconds,omitempty"`
	Map            []float64     `json:"map,omitempty"`
	Manifest       *obs.Manifest `json:"manifest,omitempty"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
}

// jobContext derives a job's context from the server base context: a
// timeout context when the request or the server default bounds the
// job, a plain cancel context otherwise. Built in a single step so
// exactly one cancel func exists per job — the old two-step form
// (WithCancel, then conditionally reassigning from WithTimeout)
// abandoned its first context, leaving it registered on baseCtx for
// the life of the server.
func (s *Server) jobContext(timeoutMS int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(s.baseCtx, timeout)
	}
	return context.WithCancel(s.baseCtx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req AnalyzeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			cRejected.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	design, err := s.prepare(&req)
	if err != nil {
		var de *circuit.DeckError
		if errors.As(err, &de) {
			// Deck-lint failures carry the full machine-readable issue
			// list, not just the first problem.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":  de.Error(),
				"issues": de.Issues,
			})
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.jobContext(req.TimeoutMS)
	j := &Job{
		req:         req,
		submitted:   time.Now(),
		cancel:      cancel,
		done:        make(chan struct{}),
		status:      StatusQueued,
		ctx:         ctx,
		design:      design,
		handoffFrom: r.Header.Get(HeaderHandoffFrom),
		resumeFrom:  r.Header.Get(HeaderResumeFrom),
	}
	s.reg.add(j)

	if !s.submit(j) {
		cancel()
		cRejected.Inc()
		j.finalize(StatusFailed, "queue full or server draining", nil)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "job queue full or server draining")
		return
	}
	// Journal the acceptance only after the submit succeeded — a
	// rejected submission needs no recovery — and before acknowledging
	// the client, so an acknowledged job is always replayable.
	s.journalAccepted(j)

	if req.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}

	// Synchronous: wait for the job, or cancel it when the client
	// goes away so the worker slot frees up promptly.
	select {
	case <-j.Done():
	case <-r.Context().Done():
		j.Cancel()
		<-j.Done()
		return // client is gone; nothing to write
	}
	v := j.Snapshot()
	switch v.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, v)
	case StatusCancelled:
		writeJSON(w, http.StatusConflict, v)
	default:
		code := http.StatusInternalServerError
		switch {
		case v.ErrorKind == errKindExhausted:
			// Every degradation rung failed (or was breaker-skipped):
			// the request was valid, the backends are unhealthy. Tell
			// the client when a retry has a chance — after the breaker
			// cooldown, when probes re-admit traffic.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			code = http.StatusServiceUnavailable
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, v)
	}
}

// retryAfterSeconds renders the breaker cooldown as a Retry-After
// value (at least 1 second).
func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.BreakerCooldown / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	j, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.submitMu.Lock()
	draining := s.draining
	s.submitMu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	pw, pm := s.poolInfo()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"shard":          s.cfg.Name,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.cfg.Workers,
		"in_flight":      s.InFlight(),
		"queue_len":      len(s.queue),
		"queue_cap":      s.cfg.QueueDepth,
		"pool_workers":   pw,
		"pool_min_work":  pm,
		"fused_model":    s.cfg.Analyzer != nil,
		"cache_enabled":  s.cache != nil,
		"cache_entries":  s.cache.Len(),
		"jobs":           s.reg.counts(),
		"breakers":       s.breakers.States(),
		"fault_spec":     faults.Active().Spec(),
		"journal": map[string]any{
			"enabled":         s.journal != nil,
			"error":           s.journalErr,
			"replay_segments": s.replayStats.Segments,
			"replay_records":  s.replayStats.Records,
			"torn_bytes":      s.replayStats.TornBytes,
			"corrupt":         s.replayStats.Corrupt,
		},
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shard":    s.cfg.Name,
		"counters": obs.GlobalCounters(),
		"gauges": map[string]float64{
			"serve.uptime_seconds": time.Since(s.start).Seconds(),
			"serve.queue_len":      float64(len(s.queue)),
			"serve.in_flight":      float64(s.InFlight()),
			"serve.workers":        float64(s.cfg.Workers),
		},
		"breakers": s.breakers.States(),
		"cache":    s.CacheStats(),
	})
}

// prepare validates a request and resolves its design. It runs on the
// request goroutine so malformed submissions fail with 400 before
// consuming a queue slot.
func (s *Server) prepare(req *AnalyzeRequest) (*pgen.Design, error) {
	switch req.Mode {
	case "":
		req.Mode = ModeNumerical
	case ModeNumerical:
	case ModeFused:
		if s.cfg.Analyzer == nil {
			return nil, errors.New("fused mode unavailable: no model loaded (start the server with -model-file)")
		}
	default:
		return nil, fmt.Errorf("unknown mode %q (want %q or %q)", req.Mode, ModeNumerical, ModeFused)
	}
	switch req.Precond {
	case "":
		req.Precond = "amg"
	case "amg", "ssor":
	default:
		return nil, fmt.Errorf("unknown precond %q (want amg or ssor)", req.Precond)
	}
	switch req.Precision {
	case "":
		req.Precision = "full"
	case "full", "mixed":
	default:
		return nil, fmt.Errorf("unknown precision %q (want full or mixed)", req.Precision)
	}
	switch req.Format {
	case "":
		req.Format = sparse.FormatAuto
	case sparse.FormatAuto, sparse.FormatCSR, sparse.FormatSELL:
	default:
		return nil, fmt.Errorf("unknown format %q (want auto, csr, or sell)", req.Format)
	}
	if req.Iters < 0 || req.Iters > maxIters {
		return nil, fmt.Errorf("iters %d out of range [0, %d]", req.Iters, maxIters)
	}
	if req.TimeoutMS < 0 {
		return nil, errors.New("timeout_ms must be non-negative")
	}
	if req.Resolution < 0 || req.Resolution > s.cfg.MaxDesignSize {
		return nil, fmt.Errorf("resolution %d out of range [0, %d]", req.Resolution, s.cfg.MaxDesignSize)
	}

	hasSpice, hasPgen := req.Spice != "", req.Pgen != nil
	if hasSpice == hasPgen {
		return nil, errors.New("exactly one of \"spice\" and \"pgen\" must be set")
	}
	if hasPgen {
		cfg := *req.Pgen
		if cfg.Name == "" {
			cfg.Name = "request"
		}
		if cfg.W <= 0 || cfg.H <= 0 {
			return nil, fmt.Errorf("pgen: die size %dx%d must be positive", cfg.W, cfg.H)
		}
		if cfg.W > s.cfg.MaxDesignSize || cfg.H > s.cfg.MaxDesignSize {
			return nil, fmt.Errorf("pgen: die size %dx%d exceeds limit %d", cfg.W, cfg.H, s.cfg.MaxDesignSize)
		}
		if cfg.VDD == 0 { //irfusion:exact an unset JSON field decodes to exactly zero, selecting the class default
			base := pgen.DefaultConfig(cfg.Name, cfg.Class, cfg.W, cfg.H, cfg.Seed)
			base.Name = cfg.Name
			if cfg.Layers != nil {
				base.Layers = cfg.Layers
			}
			cfg = base
		}
		d, err := pgen.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("pgen: %w", err)
		}
		return d, nil
	}

	nl, err := spice.ParseString(req.Spice)
	if err != nil {
		return nil, err
	}
	if len(nl.Elements) == 0 {
		return nil, errors.New("spice: deck has no elements")
	}
	// Lint the deck before admitting it: floating nodes, non-positive
	// resistances, missing or disagreeing pads. A bad deck costs a 400
	// here, not a mid-solve 500 from a worker.
	if err := circuit.ValidateNetlist(nl); err != nil {
		return nil, err
	}
	size := InferDieSize(nl)
	if size <= 0 {
		size = req.Resolution
	}
	if size <= 0 {
		return nil, errors.New("spice: cannot infer die size from node names; set \"resolution\"")
	}
	if size > s.cfg.MaxDesignSize {
		return nil, fmt.Errorf("spice: die size %d exceeds limit %d", size, s.cfg.MaxDesignSize)
	}
	return &pgen.Design{
		Name: "request", W: size, H: size,
		VDD:     PadVoltage(nl),
		Netlist: nl,
	}, nil
}

// InferDieSize derives the die extent (µm == pixels) from structured
// node names, mirroring the CLI's behaviour. Exported so the cluster
// gateway derives the same routing geometry for a SPICE deck that this
// shard will derive when analyzing it.
func InferDieSize(nl *spice.Netlist) int {
	max := -1
	for _, e := range nl.Elements {
		for _, name := range [2]string{e.NodeA, e.NodeB} {
			n, err := spice.ParseNode(name)
			if err != nil {
				continue
			}
			if n.X > max {
				max = n.X
			}
			if n.Y > max {
				max = n.Y
			}
		}
	}
	return max + 1
}

// PadVoltage returns the first V-card voltage (the VDD rail).
func PadVoltage(nl *spice.Netlist) float64 {
	for _, e := range nl.Elements {
		if e.Type == spice.VoltageSource {
			return e.Value
		}
	}
	return 0
}

// runJob executes one admitted job on a worker goroutine, with a
// per-job obs.Recorder bound into the job context so concurrent jobs
// produce isolated run manifests.
func (s *Server) runJob(j *Job) {
	if !j.markRunning() {
		// Cancelled while queued; already finalized under j.mu. Still a
		// terminal transition the journal must learn about, or replay
		// would resurrect the cancelled job.
		s.journalTerminal(j, journal.TypeCancelled, "cancelled before start")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	requeued := false
	defer func() {
		if !requeued {
			j.cancel() // release the context's timer resources
		}
	}()
	s.journalAppend(j.ctx, journal.Record{Type: journal.TypeStarted, JobID: j.id})

	rec := obs.NewRecorder()
	rec.Add("serve.job", 1)
	ctx := obs.WithRecorder(j.ctx, rec)
	cfgMap := map[string]any{
		"mode":      j.req.Mode,
		"iters":     j.req.Iters,
		"precond":   j.req.Precond,
		"precision": j.req.Precision,
		"format":    j.req.Format,
		"design":    j.design.Name,
	}
	if j.handoffFrom != "" {
		// This job reached us through a gateway handoff after another
		// shard failed it: record the provenance so the manifest proves
		// the failover happened and names the shard it came from.
		rec.Add("serve.handoff", 1)
		cfgMap["handoff_from"] = j.handoffFrom
	}
	if s.cache != nil {
		// Bind the per-process cache into the job context so the whole
		// pipeline underneath (core, dataset) resolves it with
		// cache.ActiveOr; record the content address in the manifest so
		// cached runs are attributable to their design.
		ctx = cache.WithCache(ctx, s.cache)
		j.fp = cache.DesignFingerprint(j.design)
		cfgMap["fingerprint"] = cache.ShortKey(j.fp)
	}

	result, err := s.executeProtected(ctx, j)

	// Requeue-once after a worker panic: the job goes back into the
	// queue (journaled with its last checkpoint key, so even a crash
	// between here and the retry keeps it recoverable) and the retry
	// resumes from the checkpoint instead of iteration 0. Only the
	// first panic earns a retry — a second one fails the job for real,
	// so a deterministically-crashing request cannot loop forever.
	if errors.Is(err, errWorkerPanic) && !j.cancelled.Load() && j.ctx.Err() == nil &&
		j.requeues.Add(1) == 1 && j.requeueForRetry() {
		j.resumeFrom = fromRequeue
		s.journalAppend(j.ctx, journal.Record{
			Type: journal.TypeRequeued, JobID: j.id,
			CheckpointKey: j.ckptKey, Detail: err.Error(),
		})
		if s.submit(j) {
			cRequeues.Inc()
			requeued = true
			return
		}
		// Queue full or draining: no retry slot; fail below as usual.
	}

	manifest := rec.Manifest("serve.analyze", cfgMap)
	manifest.Shard = s.cfg.Name
	if manifest.Resume != nil && manifest.Resume.From == "" {
		// The core layer records that a resume happened but cannot know
		// where the checkpoint came from; the serving layer can.
		manifest.Resume.From = j.resumeFrom
	}
	if !j.req.OmitManifest {
		if result == nil {
			result = &AnalyzeResult{Mode: j.req.Mode, Design: j.design.Name}
		}
		result.Manifest = manifest
	}

	switch {
	case err == nil:
		cDone.Inc()
		j.finalize(StatusDone, "", result)
		s.journalTerminal(j, journal.TypeFinished, "")
	case j.cancelled.Load():
		cCancelled.Inc()
		j.finalizeKind(StatusCancelled, err.Error(), errKindCancelled, result)
		s.journalTerminal(j, journal.TypeCancelled, err.Error())
	default:
		cFailed.Inc()
		kind, msg := failureKind(err)
		j.finalizeKind(StatusFailed, msg, kind, result)
		s.journalTerminal(j, journal.TypeFailed, kind)
	}
}

// failureKind maps a failed job's error onto its structured
// error_kind. The mapping is driven entirely by errors.Is, so every
// wrap site on the failure paths — PCGCtx's cancellation wraps, the
// ladder's exhaustion wrap, the worker panic barrier — must use %w
// (enforced by the errwrap lint rule; identity pinned by
// TestFailureKindSeesThroughWrapping).
func failureKind(err error) (kind, msg string) {
	msg = err.Error()
	switch {
	case errors.Is(err, errWorkerPanic):
		kind = errKindPanic
	case errors.Is(err, core.ErrLadderExhausted):
		kind = errKindExhausted
	case errors.Is(err, context.DeadlineExceeded):
		kind = errKindTimeout
		msg = fmt.Sprintf("deadline exceeded: %v", err)
	}
	return kind, msg
}

// errWorkerPanic marks an analysis that died by panic and was
// recovered on the worker goroutine.
var errWorkerPanic = errors.New("serve: worker panic")

// executeProtected runs execute with a panic barrier: a panicking
// analysis must cost one failed job (with its partial manifest), never
// the worker goroutine — losing a worker would silently shrink service
// capacity until the queue wedges. Recovered panics increment the
// serve.panics counter and surface as a 500 with errKindPanic.
func (s *Server) executeProtected(ctx context.Context, j *Job) (result *AnalyzeResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			cPanics.Inc()
			result, err = nil, fmt.Errorf("%w: %v", errWorkerPanic, r)
		}
	}()
	// Fault hook (faults.SiteServeWorker, labeled by mode): panic
	// exercises the recovery barrier above; latency/stall delay the
	// job cooperatively.
	if f := faults.ActiveOr(ctx).Fire(faults.SiteServeWorker, j.req.Mode); f != nil {
		if f.Action == faults.ActPanic {
			panic(f.Error())
		}
		if serr := f.Sleep(ctx); serr != nil {
			return nil, fmt.Errorf("%w: %w", solver.ErrCancelled, serr)
		}
	}
	return s.execute(ctx, j)
}

// execute runs the analysis of one job under ctx, consulting the
// response layer of the artifact cache first: an identical request
// (same design fingerprint, mode, budget, preconditioner, resolution,
// and map flag) is answered from the cached result of the original
// computation — every analysis mode here is deterministic in those
// inputs — with a fresh manifest recording the hit. On cancellation
// the returned error wraps solver.ErrCancelled and the result is nil
// (the caller still attaches the manifest with the partial history).
func (s *Server) execute(ctx context.Context, j *Job) (*AnalyzeResult, error) {
	key := responseKey(j)
	rec := obs.ActiveOr(ctx)
	if key != "" {
		lookupStart := time.Now()
		st := rec.StartStage("serve.cache.lookup")
		v, ok := s.cache.Get(key)
		st.End()
		if ok {
			if prev, ok := v.(*AnalyzeResult); ok {
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "serve.analyze", Outcome: obs.CacheHit, Key: cache.ShortKey(j.fp),
				})
				out := *prev // Map is never mutated after finalize, so sharing it is safe
				out.RuntimeSeconds = time.Since(lookupStart).Seconds()
				return &out, nil
			}
		}
		rec.RecordCacheEvent(obs.CacheEvent{
			Stage: "serve.analyze", Outcome: obs.CacheMiss, Key: cache.ShortKey(j.fp),
		})
	}
	out, err := s.executeUncached(ctx, j)
	if err == nil && out != nil && key != "" {
		stored := *out
		stored.Manifest = nil // manifests describe one run; never replay them
		s.cache.Put(key, &stored, int64(len(stored.Map))*8+512, "resp")
		rec.RecordCacheEvent(obs.CacheEvent{
			Stage: "serve.analyze", Outcome: obs.CacheStore, Key: cache.ShortKey(j.fp),
		})
	}
	return out, err
}

// responseKey is the response-layer cache key of a job: the design
// fingerprint qualified by every request field that shapes the
// result. Empty when response caching does not apply.
func responseKey(j *Job) string {
	if j.fp == "" {
		return ""
	}
	r := &j.req
	// Precision and Format qualify the key even though both paths
	// converge to the same answer: manifests differ (rung names,
	// fallback trails), and a format-forced run must not satisfy an
	// auto-format one.
	return fmt.Sprintf("resp|%s|mode=%s,iters=%d,precond=%s,prec=%s,fmt=%s,res=%d,map=%t",
		j.fp, r.Mode, r.Iters, r.Precond, r.Precision, r.Format, r.Resolution, r.IncludeMap)
}

// executeUncached dispatches the actual analysis of one job.
func (s *Server) executeUncached(ctx context.Context, j *Job) (*AnalyzeResult, error) {
	req, d := &j.req, j.design
	if req.Mode == ModeFused {
		return s.executeFused(ctx, req, d)
	}
	res := req.Resolution
	if res == 0 {
		res = d.W
	}
	na := &core.NumericalAnalyzer{
		Iters: req.Iters, Resolution: res, Precond: req.Precond,
		Precision: req.Precision, Format: req.Format,
		Resilience:      s.resilience(),
		CheckpointEvery: s.cfg.CheckpointEvery,
		OnCheckpoint:    s.checkpointNotify(j),
	}
	m, rt, resid, err := na.AnalyzeCtx(ctx, d)
	if err != nil {
		return nil, err
	}
	out := newResult(req, d, m, rt.Seconds())
	out.Residual = resid
	return out, nil
}

// executeFused runs the fused numerical+ML pipeline. The numerical
// stage runs concurrently across jobs; inference on the shared model
// instance is serialized by s.mlMu.
func (s *Server) executeFused(ctx context.Context, req *AnalyzeRequest, d *pgen.Design) (*AnalyzeResult, error) {
	al := s.cfg.Analyzer
	cfg := al.Config
	if req.Iters > 0 {
		cfg.RoughIters = req.Iters
	}
	opts := cfg.DatasetOptions()
	// The rough solve runs on the fused degradation ladder (budgeted
	// PCG → random walk → structure-only), sharing the server's
	// circuit breakers, at this request's iteration budget.
	opts.RoughSolver = al.RoughSolver(req.Iters)
	sample, err := dataset.BuildCtx(ctx, d, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w before inference: %w", solver.ErrCancelled, err)
	}
	start := time.Now()
	pred := s.predictLocked(ctx, sample)
	rt := sample.NumericalTime + time.Since(start)
	return newResult(req, d, pred, rt.Seconds()), nil
}

// predictLocked serializes inference on the shared model instance.
// The unlock is deferred so a panicking forward pass (recovered by
// executeProtected) cannot leave the mutex held and wedge every
// subsequent fused job.
func (s *Server) predictLocked(ctx context.Context, sample *dataset.Sample) *grid.Map {
	s.mlMu.Lock()
	defer s.mlMu.Unlock()
	//irfusion:lock-ok serializing inference is this mutex's entire purpose; the model instance is not reentrant and PredictCtx honors ctx cancellation
	return s.cfg.Analyzer.PredictCtx(ctx, sample)
}

// resilience returns the ladder policy for one job: the configured
// retry/backoff overrides plus the server's shared breaker set.
func (s *Server) resilience() core.ResilienceOptions {
	res := s.cfg.Resilience
	res.Breakers = s.breakers
	return res
}

// newResult summarizes a predicted map into the response payload.
func newResult(req *AnalyzeRequest, d *pgen.Design, m *grid.Map, seconds float64) *AnalyzeResult {
	y, x := m.ArgMax()
	out := &AnalyzeResult{
		Design:         d.Name,
		Mode:           req.Mode,
		Resolution:     m.W,
		MaxDropVolts:   m.Max(),
		MeanDropVolts:  m.Mean(),
		HotspotYX:      &[2]int{y, x},
		RuntimeSeconds: seconds,
	}
	if req.IncludeMap {
		out.Map = m.Data
	}
	return out
}
