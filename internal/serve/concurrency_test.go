package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"irfusion/internal/core"
	"irfusion/internal/pgen"
)

// genDeck generates a synthetic design and returns its SPICE text.
func genDeck(t *testing.T, size int, seed int64) string {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("deck", pgen.Fake, size, size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d.Netlist.String()
}

// TestConcurrentRequestsNoManifestCrossTalk hammers the handler with
// concurrent synchronous requests, each of which runs under its own
// obs.Recorder bound to the job context. Every response's manifest
// must contain exactly the records of its own analysis — one labeled
// solve, one run of each numerical stage — or recorders are leaking
// across requests.
func TestConcurrentRequestsNoManifestCrossTalk(t *testing.T) {
	const n = 16
	_, ts := newTestServer(t, Config{Workers: n, QueueDepth: 2 * n})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			iters := 2 + int(seed%5) // distinct budgets to tell runs apart
			body := pgenBody(seed, 32, fmt.Sprintf(`"iters": %d, "precond": "ssor"`, iters))
			code, b := post(t, ts, "/v1/analyze", body)
			if code != http.StatusOK {
				errs <- fmt.Errorf("seed %d: status %d: %s", seed, code, b)
				return
			}
			v := decodeJob(t, b)
			if v.Status != StatusDone {
				errs <- fmt.Errorf("seed %d: status %q: %s", seed, v.Status, v.Error)
				return
			}
			m := v.Result.Manifest
			if m == nil {
				errs <- fmt.Errorf("seed %d: no manifest", seed)
				return
			}
			if err := m.Validate(); err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			if len(m.Solves) != 1 || m.Solves[0].Label != core.RungSSOR {
				errs <- fmt.Errorf("seed %d: cross-talk: %d solves %+v", seed, len(m.Solves), m.Solves)
				return
			}
			if got := m.Solves[0].Iterations; got != iters {
				errs <- fmt.Errorf("seed %d: solve ran %d iterations, want its own budget %d", seed, got, iters)
				return
			}
			if m.Counters["serve.job"] != 1 {
				errs <- fmt.Errorf("seed %d: serve.job counter %d, want 1", seed, m.Counters["serve.job"])
				return
			}
			for _, st := range m.Stages {
				if st.Count != 1 {
					errs <- fmt.Errorf("seed %d: cross-talk: stage %s ran %d times", seed, st.Name, st.Count)
					return
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSixteenConcurrentInFlight verifies the service actually holds
// ≥16 analyses in flight at once: 16 workers each pick up a
// long-running budgeted solve, the test observes in-flight == 16,
// then cancels everything and checks each job stopped mid-solve.
func TestSixteenConcurrentInFlight(t *testing.T) {
	const n = 16
	s, ts := newTestServer(t, Config{Workers: n, QueueDepth: 2 * n})
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		// Same seed for every job: solve duration is strongly
		// seed-dependent, and this test needs all 16 still in flight
		// when the cancellations land. Job identity comes from the id,
		// not the design.
		code, b := post(t, ts, "/v1/analyze", slowBody(5))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d: %s", i, code, b)
		}
		ids = append(ids, decodeJob(t, b).ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs in flight", s.InFlight(), n)
		}
		time.Sleep(time.Millisecond)
	}
	// All n are executing concurrently; let the solves accumulate a
	// few iterations, then cancel the lot.
	time.Sleep(150 * time.Millisecond)
	for _, id := range ids {
		if code, b := del(t, ts, "/v1/jobs/"+id); code != http.StatusOK {
			t.Fatalf("cancel %s: status %d: %s", id, code, b)
		}
	}
	for _, id := range ids {
		v := waitStatus(t, ts, id, Status.Terminal)
		if v.Status != StatusCancelled {
			t.Errorf("%s: status %q, want cancelled (error %q)", id, v.Status, v.Error)
			continue
		}
		if v.Result == nil || v.Result.Manifest == nil || len(v.Result.Manifest.Solves) != 1 {
			t.Errorf("%s: missing partial manifest", id)
			continue
		}
		if it := v.Result.Manifest.Solves[0].Iterations; it >= maxIters {
			t.Errorf("%s: ran the full budget, cancellation did not stop the loop", id)
		}
	}
}
