package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"irfusion/internal/grid"
	"irfusion/internal/metrics"
	"irfusion/internal/pgen"
)

func buildSample(t *testing.T, class pgen.Class, seed int64, opts Options) *Sample {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("t", class, 48, 48, seed))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildSampleBasics(t *testing.T) {
	s := buildSample(t, pgen.Fake, 1, DefaultOptions(48, 48))
	if s.Golden.Max() <= 0 {
		t.Error("golden empty")
	}
	if s.Features.Channels() < 8 {
		t.Errorf("expected rich feature set, got %d channels", s.Features.Channels())
	}
	if s.RoughBottom == nil {
		t.Fatal("rough bottom map missing")
	}
	if s.NumericalTime <= 0 {
		t.Error("numerical time not recorded")
	}
	// Numerical channels present.
	hasNum := false
	for _, n := range s.Features.Names {
		if strings.HasPrefix(n, "num_drop_") {
			hasNum = true
		}
	}
	if !hasNum {
		t.Error("numerical features missing")
	}
}

func TestBuildWithoutNumerical(t *testing.T) {
	opts := DefaultOptions(48, 48)
	opts.IncludeNumerical = false
	s := buildSample(t, pgen.Fake, 1, opts)
	for _, n := range s.Features.Names {
		if strings.HasPrefix(n, "num_drop_") {
			t.Error("numerical features present despite ablation")
		}
	}
	if s.RoughBottom != nil {
		t.Error("rough bottom should be absent without numerical stage")
	}
}

func TestBuildCollapsedHierarchy(t *testing.T) {
	full := buildSample(t, pgen.Fake, 2, DefaultOptions(48, 48))
	opts := DefaultOptions(48, 48)
	opts.Hierarchical = false
	flat := buildSample(t, pgen.Fake, 2, opts)
	if flat.Features.Channels() >= full.Features.Channels() {
		t.Errorf("collapsed set (%d ch) should be smaller than hierarchical (%d ch)",
			flat.Features.Channels(), full.Features.Channels())
	}
	// Collapsed current map must conserve the summed allocation.
	sumOf := func(s *Sample, prefix string) float64 {
		total := 0.0
		for i, n := range s.Features.Names {
			if strings.HasPrefix(n, prefix) {
				for _, v := range s.Features.Maps[i].Data {
					total += v
				}
			}
		}
		return total
	}
	a := sumOf(full, "current")
	b := sumOf(flat, "current")
	if math.Abs(a-b) > 1e-9*math.Abs(a) {
		t.Errorf("collapse lost current: %v vs %v", a, b)
	}
}

func TestRoughBottomApproximatesGolden(t *testing.T) {
	opts := DefaultOptions(48, 48)
	opts.RoughIters = 10
	s := buildSample(t, pgen.Fake, 3, opts)
	mae := metrics.MAE(s.RoughBottom, s.Golden)
	if mae > 0.05*s.Golden.Max() {
		t.Errorf("10-iteration rough solve too far from golden: MAE %v vs max %v", mae, s.Golden.Max())
	}
}

func TestRotatePreservesMetricsStructure(t *testing.T) {
	s := buildSample(t, pgen.Fake, 4, DefaultOptions(48, 48))
	r := s.Rotate(1)
	if r.Golden.Max() != s.Golden.Max() {
		t.Error("rotation changed golden max")
	}
	if r.Features.Channels() != s.Features.Channels() {
		t.Error("rotation changed channels")
	}
	if r.Class != s.Class {
		t.Error("rotation changed class")
	}
	if !strings.Contains(r.Name, "rot90") {
		t.Errorf("rotated name %q", r.Name)
	}
	back := r.Rotate(3)
	for i := range back.Golden.Data {
		if back.Golden.Data[i] != s.Golden.Data[i] {
			t.Fatal("rot90 then rot270 must restore the map")
		}
	}
}

func TestAugmentQuadruples(t *testing.T) {
	s := buildSample(t, pgen.Fake, 5, DefaultOptions(48, 48))
	aug := Augment([]*Sample{s})
	if len(aug) != 4 {
		t.Fatalf("augmented to %d, want 4", len(aug))
	}
	seen := map[string]bool{}
	for _, a := range aug {
		seen[a.Name] = true
	}
	if len(seen) != 4 {
		t.Error("augmented names must be distinct")
	}
}

func TestOversample(t *testing.T) {
	f := &Sample{Class: pgen.Fake}
	r := &Sample{Class: pgen.Real}
	out := Oversample([]*Sample{f, r}, 2, 5)
	nf, nr := 0, 0
	for _, s := range out {
		if s.Class == pgen.Fake {
			nf++
		} else {
			nr++
		}
	}
	if nf != 2 || nr != 5 {
		t.Errorf("oversample fake=%d real=%d, want 2/5", nf, nr)
	}
}

func TestToTensors(t *testing.T) {
	s := buildSample(t, pgen.Fake, 6, DefaultOptions(48, 48))
	x, y := ToTensors([]*Sample{s, s.Rotate(2)})
	if x.Dim(0) != 2 || x.Dim(1) != s.Features.Channels() || x.Dim(2) != 48 || x.Dim(3) != 48 {
		t.Errorf("x shape %v", x.Shape)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 1 {
		t.Errorf("y shape %v", y.Shape)
	}
	// First sample's golden must be copied verbatim.
	for i := 0; i < 48*48; i++ {
		if y.Data[i] != s.Golden.Data[i] {
			t.Fatal("target copy wrong")
		}
	}
}

func TestNormalizer(t *testing.T) {
	s := buildSample(t, pgen.Fake, 7, DefaultOptions(48, 48))
	n := FitNormalizer([]*Sample{s})
	x, _ := ToTensors([]*Sample{s})
	n.Apply(x)
	// After max-abs scaling every channel is within [-1, 1] and at
	// least one channel touches 1.
	nb, c, h, w := x.Dims4()
	_ = nb
	touched := false
	for ci := 0; ci < c; ci++ {
		mx := 0.0
		for j := 0; j < h*w; j++ {
			v := math.Abs(x.Data[ci*h*w+j])
			if v > 1+1e-12 {
				t.Fatalf("channel %d exceeds 1 after normalization: %v", ci, v)
			}
			if v > mx {
				mx = v
			}
		}
		if mx > 0.999 {
			touched = true
		}
	}
	if !touched {
		t.Error("no channel reaches 1 — scales wrong")
	}
}

func TestCurriculumRampsIn(t *testing.T) {
	var samples []*Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, &Sample{Class: pgen.Fake})
	}
	for i := 0; i < 10; i++ {
		samples = append(samples, &Sample{Class: pgen.Real})
	}
	cur := Curriculum{Ramp: 0.5}
	rng := rand.New(rand.NewSource(1))
	countReal := func(ss []*Sample) int {
		n := 0
		for _, s := range ss {
			if s.Class == pgen.Real {
				n++
			}
		}
		return n
	}
	first := cur.Subset(samples, 0, 10, rng)
	if countReal(first) != 0 {
		t.Errorf("epoch 0 should hold no hard samples, got %d", countReal(first))
	}
	if len(first) != 10 {
		t.Errorf("epoch 0 should keep all easy samples, got %d", len(first))
	}
	mid := cur.Subset(samples, 2, 10, rng)
	nm := countReal(mid)
	if nm == 0 || nm == 10 {
		t.Errorf("mid-ramp should include part of the hard set, got %d", nm)
	}
	last := cur.Subset(samples, 9, 10, rng)
	if countReal(last) != 10 {
		t.Errorf("final epochs must include all hard samples, got %d", countReal(last))
	}
}

func TestGenerateSetMix(t *testing.T) {
	opts := DefaultOptions(48, 48)
	set, err := GenerateSet(2, 1, 48, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("got %d samples", len(set))
	}
	if set[0].Class != pgen.Fake || set[2].Class != pgen.Real {
		t.Error("class layout wrong")
	}
	// All share shapes so they can be batched together.
	ToTensors(set)
}

func TestCollapseHelperOnSyntheticNames(t *testing.T) {
	cases := map[string]int{
		"current_m1":    7,
		"num_drop_m9":   8,
		"eff_dist":      -1,
		"resistance":    -1,
		"current_mx":    -1,
		"sp_resistance": -1,
	}
	for name, want := range cases {
		if got := indexLayerSuffix(name); got != want {
			t.Errorf("indexLayerSuffix(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestGoldenHotspotMetricsComputable(t *testing.T) {
	s := buildSample(t, pgen.Real, 8, DefaultOptions(48, 48))
	rep := metrics.Evaluate(s.RoughBottom, s.Golden)
	if rep.MAE < 0 || rep.F1 < 0 || rep.F1 > 1 {
		t.Errorf("implausible report %+v", rep)
	}
	if grid.MAE(s.Golden, s.Golden) != 0 {
		t.Error("grid MAE self-check failed")
	}
}

func TestFilterFeatures(t *testing.T) {
	s := buildSample(t, pgen.Fake, 9, DefaultOptions(48, 48))
	basic := FilterFeatures([]*Sample{s}, func(n string) bool {
		return strings.HasPrefix(n, "current") || n == "eff_dist" || n == "pdn_density"
	})
	if basic[0].Features.Channels() >= s.Features.Channels() {
		t.Error("filter did not reduce channels")
	}
	if s.Features.Channels() < 8 {
		t.Error("original sample mutated")
	}
	for _, n := range basic[0].Features.Names {
		if strings.HasPrefix(n, "num_drop") || n == "resistance" {
			t.Errorf("unexpected channel %q", n)
		}
	}
}

func TestRoughTensor(t *testing.T) {
	s := buildSample(t, pgen.Fake, 10, DefaultOptions(48, 48))
	r := RoughTensor([]*Sample{s, s.Rotate(1)})
	if r.Dim(0) != 2 || r.Dim(1) != 1 || r.Dim(2) != 48 || r.Dim(3) != 48 {
		t.Fatalf("shape %v", r.Shape)
	}
	for i := 0; i < 48*48; i++ {
		if r.Data[i] != s.RoughBottom.Data[i] {
			t.Fatal("rough copy wrong")
		}
	}
	// Panics without a rough map.
	opts := DefaultOptions(48, 48)
	opts.IncludeNumerical = false
	bare := buildSample(t, pgen.Fake, 10, opts)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing rough map")
		}
	}()
	RoughTensor([]*Sample{bare})
}

func TestRoughTensorEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RoughTensor(nil)
}

func TestGenerateSetPropagatesErrors(t *testing.T) {
	opts := DefaultOptions(4, 4) // die too small -> generator error
	if _, err := GenerateSet(1, 0, 4, 1, opts); err == nil {
		t.Error("expected generator error for tiny die")
	}
}
