// Package dataset assembles training and evaluation data for the ML
// stage: it solves generated designs for golden labels, runs the
// budgeted rough solves that feed the hierarchical numerical features,
// applies the paper's augmentation (three clockwise rotations),
// oversampling (fake ×2, real ×5) and predefined curriculum learning
// (fake designs are "easier", real designs "harder").
package dataset

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"irfusion/internal/amg"
	"irfusion/internal/cache"
	"irfusion/internal/circuit"
	"irfusion/internal/faults"
	"irfusion/internal/features"
	"irfusion/internal/grid"
	"irfusion/internal/nn"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/sparse"
)

// Options controls sample construction.
type Options struct {
	// H, W is the raster resolution of feature maps and labels.
	H, W int
	// RoughIters is the solver iteration budget for the numerical
	// features (the paper's "few iterations").
	RoughIters int
	// RoughPrecond selects the budgeted-solve preconditioner: "ssor"
	// (default) emulates industrial-scale per-iteration AMG-PCG
	// progress on these miniature grids, "amg" uses the full K-cycle
	// hierarchy (which converges in a handful of iterations at this
	// scale — see DESIGN.md).
	RoughPrecond string
	// IncludeNumerical gates the hierarchical numerical features
	// (ablation: "w/o Num. Solu.").
	IncludeNumerical bool
	// Hierarchical gates per-layer feature maps; when false, per-layer
	// maps are collapsed into single aggregates (ablation: "w/o
	// hierarchical features").
	Hierarchical bool
	// GoldenTol is the relative residual for golden solves.
	GoldenTol float64
	// GoldenMaxIter caps golden solve iterations.
	GoldenMaxIter int
	// RoughSolver, when non-nil, replaces the built-in budgeted rough
	// solve: it must fill x (length sys.N()) with an approximate
	// solution of sys.G·x = sys.I, or return an error to fail the
	// build. The degradation ladder in internal/core uses this hook
	// to fall back to cheaper backends — including a structure-only
	// rung that leaves x zero, which flows through feature extraction
	// as all-zero numerical channels (the model's input shape never
	// changes).
	RoughSolver func(ctx context.Context, sys *circuit.System, x []float64) error
	// WarmDelta is the matrix-delta fraction below which a cached
	// neighbor solution may warm-start the golden solve when the
	// artifact cache is active: 0 uses cache.DefaultWarmDelta, a
	// negative value disables warm starts (exact hits still apply).
	WarmDelta float64
}

// DefaultOptions returns the pipeline defaults at the given raster
// resolution.
func DefaultOptions(h, w int) Options {
	return Options{
		H: h, W: w,
		RoughIters:       2,
		RoughPrecond:     "ssor",
		IncludeNumerical: true,
		Hierarchical:     true,
		GoldenTol:        1e-10,
		GoldenMaxIter:    2000,
	}
}

// Sample is one design prepared for the ML stage.
type Sample struct {
	Name     string
	Class    pgen.Class
	Features *features.Set
	Golden   *grid.Map
	// NumericalTime is the wall time of the rough solve plus feature
	// extraction, charged to the fusion pipeline's runtime.
	NumericalTime time.Duration
	// RoughBottom is the rasterized bottom-layer rough solution — the
	// zeroth-order prediction a pure numerical method would report.
	RoughBottom *grid.Map
}

// Build prepares a sample from a generated design: assemble, solve
// golden, rough-solve for numerical features, extract feature maps.
// Each step reports a stage timer to the active run recorder
// (dataset.assemble, dataset.golden_solve, dataset.features.structure,
// dataset.rough_solve, dataset.features.numerical), and the golden and
// rough solves contribute labeled convergence traces.
func Build(d *pgen.Design, opts Options) (*Sample, error) {
	return BuildCtx(context.Background(), d, opts)
}

// BuildCtx is Build with cooperative cancellation and per-context
// observability: the golden and rough solves run through solver.PCGCtx
// so a cancelled context stops them mid-iteration, and every stage
// timer and convergence trace reports to the recorder resolved from
// ctx (obs.ActiveOr), keeping concurrent builds isolated when each
// carries its own recorder.
//
// When an artifact cache is active (cache.ActiveOr), BuildCtx serves
// repeated designs from it: an exact fingerprint hit on a previously
// built sample short-circuits the whole build (RoughSolver must be
// nil, since hook output is not content-addressed), an exact hit on
// the system artifact reuses the converged golden solution after a
// one-SpMV residual guard, and a near-miss within Options.WarmDelta
// warm-starts the golden solve from the neighbor's solution with the
// neighbor's cloned AMG hierarchy as preconditioner — skipping AMG
// setup, the dominant cost. Every cache interaction lands in the run
// manifest's cache section; any guard failure, fault injection, or
// warm-start stall falls back to the cold path. Rough solves always
// run cold from zero: the paper's fusion semantics define the model's
// numerical input as k budgeted iterations from a zero guess, and a
// warm-started rough solve would shift that input distribution.
func BuildCtx(ctx context.Context, d *pgen.Design, opts Options) (*Sample, error) {
	rec := obs.ActiveOr(ctx)
	// Fault-injection hook (faults.SiteDatasetBuild): latency/stall
	// faults exercise the serving layer's timeout and cancellation
	// paths without touching the numerical code.
	if f := faults.ActiveOr(ctx).Fire(faults.SiteDatasetBuild, ""); f != nil {
		if err := f.Sleep(ctx); err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
		}
	}
	cc := cache.ActiveOr(ctx)
	var fp string
	if cc != nil {
		fp = cache.DesignFingerprint(d)
		if opts.RoughSolver == nil {
			lookupStart := time.Now()
			if v, ok := cc.Get(sampleKey(fp, opts)); ok {
				if prev, ok := v.(*Sample); ok {
					rec.RecordCacheEvent(obs.CacheEvent{
						Stage: "dataset.sample", Outcome: obs.CacheHit, Key: cache.ShortKey(fp),
					})
					out := cloneSample(prev)
					out.NumericalTime = time.Since(lookupStart)
					return out, nil
				}
			}
			rec.RecordCacheEvent(obs.CacheEvent{
				Stage: "dataset.sample", Outcome: obs.CacheMiss, Key: cache.ShortKey(fp),
			})
		}
	}
	st := rec.StartStage("dataset.assemble")
	nw, err := circuit.FromNetlist(d.Netlist)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
	}
	sys, err := nw.Assemble()
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
	}
	st.End()

	// Golden solve, consulting the artifact cache: exact hits reuse the
	// converged solution outright (after the residual guard), neighbor
	// hits warm-start PCG with the donor's cloned hierarchy, everything
	// else builds AMG and solves cold from zero.
	st = rec.StartStage("dataset.golden_solve")
	gx := make([]float64, sys.N())
	var h *amg.Hierarchy
	hFresh := false // h was built from sys.G, so it may be cached
	goldenDone := false
	warmGuess := false
	if cc != nil {
		if art := cache.LookupSystem(ctx, cc, fp); art != nil && art.N == sys.N() {
			if r := solver.RelResidual(sys.G, art.Golden, sys.I); r <= cache.GuardTol {
				copy(gx, art.Golden)
				h = art.Hier.Clone()
				goldenDone = true
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "dataset.golden_solve", Outcome: obs.CacheHit, Key: cache.ShortKey(fp),
				})
			} else {
				cc.Drop(cache.SystemKey(fp))
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "dataset.golden_solve", Outcome: obs.CacheStale, Key: cache.ShortKey(fp),
				})
			}
		}
		if !goldenDone && opts.WarmDelta >= 0 {
			nb, delta, werr := cache.FindWarmStart(ctx, cc, sys.G, opts.WarmDelta)
			if werr != nil {
				return nil, fmt.Errorf("dataset: %s: warm-start search: %w", d.Name, werr)
			}
			if nb != nil {
				copy(gx, nb.Golden)
				h = nb.Hier.Clone()
				warmGuess = true
				rec.RecordCacheEvent(obs.CacheEvent{
					Stage: "dataset.golden_solve", Outcome: obs.CacheWarm,
					Key: cache.ShortKey(nb.Fingerprint), Delta: delta,
				})
			}
		}
	}
	if !goldenDone {
		if h == nil {
			h, err = amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
			}
			hFresh = true
		}
		gopts := solver.Options{
			Tol: opts.GoldenTol, MaxIter: opts.GoldenMaxIter, Flexible: true, Record: true,
			Label: "golden",
		}
		gRes, gerr := solver.PCGCtx(ctx, sys.G, gx, sys.I, h, gopts)
		if warmGuess && ctx.Err() == nil && (gerr != nil || !gRes.Converged) {
			// The donated guess or foreign preconditioner did not carry
			// the solve home; degrade to the cold path.
			rec.RecordCacheEvent(obs.CacheEvent{
				Stage: "dataset.golden_solve", Outcome: obs.CacheStale, Key: cache.ShortKey(fp),
			})
			sparse.Zero(gx)
			h, err = amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
			}
			hFresh = true
			gRes, gerr = solver.PCGCtx(ctx, sys.G, gx, sys.I, h, gopts)
		}
		if gerr != nil {
			return nil, fmt.Errorf("dataset: %s: golden solve: %w", d.Name, gerr)
		}
		if !gRes.Converged {
			return nil, fmt.Errorf("dataset: %s: golden solve stalled at %g", d.Name, gRes.Residual)
		}
		if cc != nil && fp != "" {
			art := &cache.SystemArtifact{
				Fingerprint: fp, N: sys.N(), G: sys.G, I: sys.I,
				Golden: append([]float64(nil), gx...),
			}
			if hFresh {
				art.Hier = h
			}
			cache.StoreSystem(ctx, cc, "dataset.golden_solve", art)
		}
	}
	golden := features.GoldenMap(nw, sys.FullDrops(gx), opts.H, opts.W)
	st.End()

	s := &Sample{Name: d.Name, Class: d.Class, Golden: golden}

	start := time.Now()
	fs := &features.Set{}
	st = rec.StartStage("dataset.features.structure")
	struct_ := features.StructureFeatures(nw, opts.H, opts.W)
	if !opts.Hierarchical {
		struct_ = collapseLayers(struct_)
	}
	st.End()
	fs.Append(struct_)
	if opts.IncludeNumerical {
		st = rec.StartStage("dataset.rough_solve")
		rx := make([]float64, sys.N())
		if opts.RoughSolver != nil {
			if err := opts.RoughSolver(ctx, sys, rx); err != nil {
				return nil, fmt.Errorf("dataset: %s: rough solve: %w", d.Name, err)
			}
		} else {
			var pre solver.Preconditioner
			if opts.RoughPrecond == "amg" {
				if h == nil {
					// Exact-hit fast path skipped setup and the cached
					// artifact carried no hierarchy; build one now.
					h, err = amg.BuildCtx(ctx, sys.G, amg.DefaultOptions())
					if err != nil {
						return nil, fmt.Errorf("dataset: %s: %w", d.Name, err)
					}
				}
				pre = h
			} else {
				pre = solver.NewSSOR(sys.G, 2)
			}
			ropts := solver.RoughOptions(opts.RoughIters)
			ropts.Label = "rough"
			if _, err := solver.PCGCtx(ctx, sys.G, rx, sys.I, pre, ropts); err != nil {
				return nil, fmt.Errorf("dataset: %s: rough solve: %w", d.Name, err)
			}
		}
		st.End()
		st = rec.StartStage("dataset.features.numerical")
		full := sys.FullDrops(rx)
		num := features.NumericalFeatures(nw, full, opts.H, opts.W)
		if !opts.Hierarchical {
			num = collapseLayers(num)
		}
		fs.Append(num)
		s.RoughBottom = features.GoldenMap(nw, full, opts.H, opts.W)
		st.End()
	}
	s.NumericalTime = time.Since(start)
	s.Features = fs
	if cc != nil && fp != "" && opts.RoughSolver == nil {
		cc.Put(sampleKey(fp, opts), cloneSample(s), sampleSizeBytes(s), "sample")
		rec.RecordCacheEvent(obs.CacheEvent{
			Stage: "dataset.sample", Outcome: obs.CacheStore, Key: cache.ShortKey(fp),
		})
	}
	return s, nil
}

// sampleKey is the cache key of a finished sample: the design
// fingerprint qualified by every Options field that shapes the output,
// so ablation variants and resolution changes never collide.
func sampleKey(fp string, o Options) string {
	return fmt.Sprintf("sample|%s|h=%d,w=%d,ri=%d,rp=%s,num=%t,hier=%t,gt=%g,gmi=%d",
		fp, o.H, o.W, o.RoughIters, o.RoughPrecond,
		o.IncludeNumerical, o.Hierarchical, o.GoldenTol, o.GoldenMaxIter)
}

// cloneSample deep-copies a sample's maps so cached state and caller
// state can never alias (callers are free to mutate what they get).
func cloneSample(s *Sample) *Sample {
	out := *s
	if s.Features != nil {
		fs := &features.Set{}
		for i, m := range s.Features.Maps {
			fs.Add(s.Features.Names[i], m.Clone())
		}
		out.Features = fs
	}
	if s.Golden != nil {
		out.Golden = s.Golden.Clone()
	}
	if s.RoughBottom != nil {
		out.RoughBottom = s.RoughBottom.Clone()
	}
	return &out
}

// sampleSizeBytes estimates a sample's footprint for cache accounting.
func sampleSizeBytes(s *Sample) int64 {
	var sz int64 = 256
	if s.Golden != nil {
		sz += int64(len(s.Golden.Data)) * 8
	}
	if s.RoughBottom != nil {
		sz += int64(len(s.RoughBottom.Data)) * 8
	}
	if s.Features != nil {
		for _, m := range s.Features.Maps {
			sz += int64(len(m.Data)) * 8
		}
	}
	return sz
}

// collapseLayers merges per-layer maps (names with a _m<layer>
// suffix) into a single summed map per family, modelling the
// "PG as a whole map" view of prior work.
func collapseLayers(s *features.Set) *features.Set {
	out := &features.Set{}
	merged := map[string]*grid.Map{}
	var order []string
	for i, name := range s.Names {
		fam := name
		if idx := indexLayerSuffix(name); idx >= 0 {
			fam = name[:idx]
		}
		if m, ok := merged[fam]; ok {
			m.AddMap(s.Maps[i])
		} else {
			merged[fam] = s.Maps[i].Clone()
			order = append(order, fam)
		}
	}
	for _, fam := range order {
		out.Add(fam, merged[fam])
	}
	return out
}

// indexLayerSuffix returns the index of a trailing "_m<digits>" suffix
// or -1.
func indexLayerSuffix(name string) int {
	i := strings.LastIndex(name, "_m")
	if i < 0 || !isDigits(name[i+2:]) {
		return -1
	}
	return i
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Rotate returns a copy of the sample with every map rotated
// clockwise by 90°·quarter — the paper's augmentation treats each
// rotation as a new design.
func (s *Sample) Rotate(quarter int) *Sample {
	fs := &features.Set{}
	for i, m := range s.Features.Maps {
		fs.Add(s.Features.Names[i], m.Rotate90(quarter))
	}
	out := &Sample{
		Name:          fmt.Sprintf("%s_rot%d", s.Name, (quarter%4+4)%4*90),
		Class:         s.Class,
		Features:      fs,
		Golden:        s.Golden.Rotate90(quarter),
		NumericalTime: s.NumericalTime,
	}
	if s.RoughBottom != nil {
		out.RoughBottom = s.RoughBottom.Rotate90(quarter)
	}
	return out
}

// Augment expands samples with the three non-trivial clockwise
// rotations, quadrupling the set.
func Augment(samples []*Sample) []*Sample {
	out := make([]*Sample, 0, 4*len(samples))
	for _, s := range samples {
		out = append(out, s)
		for q := 1; q <= 3; q++ {
			out = append(out, s.Rotate(q))
		}
	}
	return out
}

// Oversample repeats fake samples fakeTimes and real samples
// realTimes (the contest-setup oversampling: fake ×2, real ×5).
func Oversample(samples []*Sample, fakeTimes, realTimes int) []*Sample {
	var out []*Sample
	for _, s := range samples {
		times := fakeTimes
		if s.Class == pgen.Real {
			times = realTimes
		}
		for i := 0; i < times; i++ {
			out = append(out, s)
		}
	}
	return out
}

// ToTensors stacks samples into an input tensor [N,C,H,W] and a
// target tensor [N,1,H,W]. All samples must share channel count and
// resolution.
func ToTensors(samples []*Sample) (*nn.Tensor, *nn.Tensor) {
	if len(samples) == 0 {
		panic("dataset: ToTensors with no samples")
	}
	c := samples[0].Features.Channels()
	h, w := samples[0].Golden.H, samples[0].Golden.W
	x := nn.NewTensor(len(samples), c, h, w)
	y := nn.NewTensor(len(samples), 1, h, w)
	hw := h * w
	for ni, s := range samples {
		if s.Features.Channels() != c || s.Golden.H != h || s.Golden.W != w {
			panic("dataset: inconsistent sample shapes")
		}
		for ci, m := range s.Features.Maps {
			copy(x.Data[(ni*c+ci)*hw:(ni*c+ci+1)*hw], m.Data)
		}
		copy(y.Data[ni*hw:(ni+1)*hw], s.Golden.Data)
	}
	return x, y
}

// Normalizer rescales feature channels to comparable magnitudes using
// per-channel max-abs statistics gathered from the training set.
type Normalizer struct {
	Names []string
	Scale []float64
}

// FitNormalizer computes per-channel 1/max|v| scales over samples.
func FitNormalizer(samples []*Sample) *Normalizer {
	if len(samples) == 0 {
		panic("dataset: FitNormalizer with no samples")
	}
	c := samples[0].Features.Channels()
	n := &Normalizer{
		Names: append([]string(nil), samples[0].Features.Names...),
		Scale: make([]float64, c),
	}
	maxAbs := make([]float64, c)
	for _, s := range samples {
		for ci, m := range s.Features.Maps {
			for _, v := range m.Data {
				if a := abs(v); a > maxAbs[ci] {
					maxAbs[ci] = a
				}
			}
		}
	}
	for ci, m := range maxAbs {
		if m > 0 {
			n.Scale[ci] = 1 / m
		} else {
			n.Scale[ci] = 1
		}
	}
	return n
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Apply scales an input tensor [N,C,H,W] in place and returns it.
func (n *Normalizer) Apply(x *nn.Tensor) *nn.Tensor {
	nb, c, h, w := x.Dims4()
	if c != len(n.Scale) {
		panic("dataset: normalizer channel mismatch")
	}
	hw := h * w
	for ni := 0; ni < nb; ni++ {
		for ci := 0; ci < c; ci++ {
			s := n.Scale[ci]
			base := (ni*c + ci) * hw
			for j := 0; j < hw; j++ {
				x.Data[base+j] *= s
			}
		}
	}
	return x
}

// Curriculum implements the paper's predefined curriculum: a
// difficulty measurer that ranks fake designs "easier" than real
// ones, and a continuous scheduler that mixes in the harder subset as
// epochs progress.
type Curriculum struct {
	// Ramp is the fraction of total epochs over which the hard subset
	// is linearly introduced (1.0 = fully ramped only at the end).
	Ramp float64
}

// Subset returns the training samples visible at the given epoch,
// shuffled with rng. Easy (fake) samples are always included; the
// fraction of hard (real) samples grows linearly until epoch ≥
// Ramp·total.
func (c Curriculum) Subset(samples []*Sample, epoch, totalEpochs int, rng *rand.Rand) []*Sample {
	ramp := c.Ramp
	if ramp <= 0 {
		ramp = 0.5
	}
	frac := 1.0
	if totalEpochs > 1 {
		progress := float64(epoch) / (ramp * float64(totalEpochs-1))
		if progress < 1 {
			frac = progress
		}
	}
	var easy, hard []*Sample
	for _, s := range samples {
		if s.Class == pgen.Real {
			hard = append(hard, s)
		} else {
			easy = append(easy, s)
		}
	}
	nHard := int(frac*float64(len(hard)) + 0.5)
	// Take a deterministic prefix of a shuffled copy so the subset
	// grows monotonically in expectation.
	hardCopy := append([]*Sample(nil), hard...)
	rng.Shuffle(len(hardCopy), func(i, j int) { hardCopy[i], hardCopy[j] = hardCopy[j], hardCopy[i] })
	out := append(append([]*Sample(nil), easy...), hardCopy[:nHard]...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// GenerateSet produces nFake fake and nReal real designs at the given
// die size and builds samples for each. Seeds derive from seedBase so
// the whole set is reproducible.
func GenerateSet(nFake, nReal, size int, seedBase int64, opts Options) ([]*Sample, error) {
	var out []*Sample
	for i := 0; i < nFake; i++ {
		d, err := pgen.Generate(pgen.DefaultConfig(fmt.Sprintf("fake%02d", i), pgen.Fake, size, size, seedBase+int64(i)))
		if err != nil {
			return nil, err
		}
		s, err := Build(d, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for i := 0; i < nReal; i++ {
		d, err := pgen.Generate(pgen.DefaultConfig(fmt.Sprintf("real%02d", i), pgen.Real, size, size, seedBase+1000+int64(i)))
		if err != nil {
			return nil, err
		}
		s, err := Build(d, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// FilterFeatures returns copies of the samples keeping only feature
// channels whose name satisfies keep — used to hand the Table-I
// baselines their original (non-hierarchical, non-numerical) input
// images while IR-Fusion consumes the full fused set.
func FilterFeatures(samples []*Sample, keep func(name string) bool) []*Sample {
	out := make([]*Sample, 0, len(samples))
	for _, s := range samples {
		c := *s
		c.Features = s.Features.Filter(keep)
		out = append(out, &c)
	}
	return out
}

// RoughTensor stacks the samples' rasterized rough solutions into a
// [N,1,H,W] tensor (for residual-mode training). Panics when any
// sample lacks a rough map (numerical stage disabled).
func RoughTensor(samples []*Sample) *nn.Tensor {
	if len(samples) == 0 {
		panic("dataset: RoughTensor with no samples")
	}
	h, w := samples[0].Golden.H, samples[0].Golden.W
	out := nn.NewTensor(len(samples), 1, h, w)
	hw := h * w
	for ni, s := range samples {
		if s.RoughBottom == nil {
			panic("dataset: sample " + s.Name + " has no rough solution")
		}
		copy(out.Data[ni*hw:(ni+1)*hw], s.RoughBottom.Data)
	}
	return out
}
