package dataset

import (
	"context"
	"math"
	"testing"

	"irfusion/internal/cache"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
)

func cacheTestDesign(t *testing.T) *pgen.Design {
	t.Helper()
	// 24 um is the smallest Real-class die that still synthesizes a
	// full strap grid (16 collapses to a trivial two-element deck).
	d, err := pgen.Generate(pgen.DefaultConfig("cacheds", pgen.Real, 24, 24, 19))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildCached runs one BuildCtx with c bound to the context and a
// fresh recorder, returning the sample and the recorded cache events.
func buildCached(t *testing.T, c *cache.Cache, d *pgen.Design, opts Options) (*Sample, []obs.CacheEvent) {
	t.Helper()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	if c != nil {
		ctx = cache.WithCache(ctx, c)
	}
	s, err := BuildCtx(ctx, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	mf := rec.Manifest("test", nil)
	if mf.Cache == nil {
		return s, nil
	}
	return s, mf.Cache.Events
}

func outcomes(evts []obs.CacheEvent, stage string) map[string]int {
	out := map[string]int{}
	for _, e := range evts {
		if stage == "" || e.Stage == stage {
			out[e.Outcome]++
		}
	}
	return out
}

// TestBuildCacheSampleHit proves sample-level memoization: an
// identical design under identical options short-circuits the whole
// build, and the served copy never aliases cached state.
func TestBuildCacheSampleHit(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	opts := DefaultOptions(16, 16)
	first, evts := buildCached(t, c, d, opts)
	oc := outcomes(evts, "dataset.sample")
	if oc[obs.CacheMiss] != 1 || oc[obs.CacheStore] != 1 {
		t.Fatalf("first build sample events = %v", oc)
	}
	second, evts := buildCached(t, c, d, opts)
	if oc := outcomes(evts, "dataset.sample"); oc[obs.CacheHit] != 1 {
		t.Fatalf("second build sample events = %v", oc)
	}
	for i := range first.Golden.Data {
		if second.Golden.Data[i] != first.Golden.Data[i] { //irfusion:exact a memoized sample is the stored bits
			t.Fatal("served sample's golden map differs from the built one")
		}
	}
	// Mutating the served copy must not poison the cache.
	second.Golden.Data[0] += 100
	third, _ := buildCached(t, c, d, opts)
	if third.Golden.Data[0] != first.Golden.Data[0] { //irfusion:exact clone isolation: caller writes never reach the cache
		t.Fatal("caller mutation leaked into the cached sample")
	}
}

// TestBuildCacheOptionsKeyed proves the sample key folds in the
// options: a different raster resolution must not collide.
func TestBuildCacheOptionsKeyed(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	buildCached(t, c, d, DefaultOptions(16, 16))
	s, evts := buildCached(t, c, d, DefaultOptions(8, 8))
	if oc := outcomes(evts, "dataset.sample"); oc[obs.CacheHit] != 0 {
		t.Fatalf("different options hit the cached sample: %v", oc)
	}
	if s.Golden.H != 8 || s.Golden.W != 8 {
		t.Fatalf("served sample has wrong geometry %dx%d", s.Golden.H, s.Golden.W)
	}
}

// TestBuildCacheWarmGolden proves the dataset-layer delta-solve: a
// perturbed design warm-starts its golden solve off the cached
// baseline and still produces the same sample a cold build does.
func TestBuildCacheWarmGolden(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	opts := DefaultOptions(16, 16)
	buildCached(t, c, d, opts)

	// 0.5% ECO on this die measures ~1.5% matrix delta — inside the
	// 2% default warm budget (1% ECO measures ~2.3% and goes cold).
	eco := pgen.Perturb(d, 0.005, 3)
	cold, _ := buildCached(t, nil, eco, opts)
	warm, evts := buildCached(t, c, eco, opts)
	if oc := outcomes(evts, "dataset.golden_solve"); oc[obs.CacheWarm] != 1 {
		t.Fatalf("golden-solve events = %v, want one warm start", oc)
	}
	for i := range cold.Golden.Data {
		if diff := math.Abs(cold.Golden.Data[i] - warm.Golden.Data[i]); diff > cache.GuardTol {
			t.Fatalf("warm golden map differs from cold by %g at %d", diff, i)
		}
	}
}

// TestBuildCacheWarmDisabled pins the opt-out: WarmDelta < 0 keeps
// exact hits but never warm-starts.
func TestBuildCacheWarmDisabled(t *testing.T) {
	d := cacheTestDesign(t)
	c := cache.New(0, 0)
	opts := DefaultOptions(16, 16)
	opts.WarmDelta = -1
	buildCached(t, c, d, opts)
	_, evts := buildCached(t, c, pgen.Perturb(d, 0.005, 3), opts)
	if oc := outcomes(evts, "dataset.golden_solve"); oc[obs.CacheWarm] != 0 {
		t.Fatalf("WarmDelta=-1 still warm-started: %v", oc)
	}
}

// TestBuildUncachedRecordsNothing pins the default: with no cache
// resolved, BuildCtx records no cache events and stores nothing.
func TestBuildUncachedRecordsNothing(t *testing.T) {
	d := cacheTestDesign(t)
	if _, evts := buildCached(t, nil, d, DefaultOptions(16, 16)); len(evts) != 0 {
		t.Fatalf("uncached build recorded cache events: %+v", evts)
	}
}
