package grid

import (
	"fmt"
	"strings"
)

// PPM renders the map as a plain-text PPM (P3) color image using a
// blue→cyan→green→yellow→red heatmap over the map's own range — the
// colormap style of the paper's Fig 6 IR-drop plates.
func (m *Map) PPM() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P3\n%d %d\n255\n", m.W, m.H)
	mn, mx := m.Min(), m.Max()
	scale := 0.0
	if mx > mn {
		scale = 1 / (mx - mn)
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r, g, bb := heatColor((m.At(y, x) - mn) * scale)
			if x > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d %d %d", r, g, bb)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// heatColor maps t ∈ [0,1] onto the jet-style ramp.
func heatColor(t float64) (int, int, int) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	var r, g, b float64
	switch {
	case t < 0.25: // blue -> cyan
		s := t / 0.25
		r, g, b = 0, s, 1
	case t < 0.5: // cyan -> green
		s := (t - 0.25) / 0.25
		r, g, b = 0, 1, 1-s
	case t < 0.75: // green -> yellow
		s := (t - 0.5) / 0.25
		r, g, b = s, 1, 0
	default: // yellow -> red
		s := (t - 0.75) / 0.25
		r, g, b = 1, 1-s, 0
	}
	return int(r*255 + 0.5), int(g*255 + 0.5), int(b*255 + 0.5)
}

// DiffMap returns |a − b| pixel-wise, the error plate shown beside
// prediction heatmaps.
func DiffMap(a, b *Map) *Map {
	if a.H != b.H || a.W != b.W {
		panic("grid: DiffMap shape mismatch")
	}
	out := New(a.H, a.W)
	for i := range out.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		out.Data[i] = d
	}
	return out
}
