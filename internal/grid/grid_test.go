package grid

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomMap(h, w int, rng *rand.Rand) *Map {
	m := New(h, w)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func mapsEqual(a, b *Map) bool {
	if a.H != b.H || a.W != b.W {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5)
}

func TestAtSetAdd(t *testing.T) {
	m := New(3, 4)
	m.Set(2, 3, 1.5)
	m.Add(2, 3, 0.5)
	if m.At(2, 3) != 2 {
		t.Errorf("At = %v, want 2", m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Error("untouched pixel should be zero")
	}
}

func TestStats(t *testing.T) {
	m := FromData(2, 2, []float64{1, -3, 5, 1})
	if m.Min() != -3 || m.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", m.Min(), m.Max())
	}
	if m.Mean() != 1 {
		t.Errorf("Mean = %v, want 1", m.Mean())
	}
	y, x := m.ArgMax()
	if y != 1 || x != 0 {
		t.Errorf("ArgMax = (%d,%d), want (1,0)", y, x)
	}
}

func TestPercentile(t *testing.T) {
	m := FromData(1, 10, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if m.Percentile(0) != 1 || m.Percentile(100) != 10 {
		t.Error("extreme percentiles wrong")
	}
	if got := m.Percentile(50); got != 5 {
		t.Errorf("P50 = %v, want 5", got)
	}
	if got := m.Percentile(90); got != 9 {
		t.Errorf("P90 = %v, want 9", got)
	}
}

func TestNormalize(t *testing.T) {
	m := FromData(1, 3, []float64{2, 4, 6})
	mn, mx := m.Normalize()
	if mn != 2 || mx != 6 {
		t.Errorf("Normalize returned (%v,%v)", mn, mx)
	}
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(m.Data[i]-want[i]) > 1e-15 {
			t.Errorf("Data[%d] = %v, want %v", i, m.Data[i], want[i])
		}
	}
	c := FromData(1, 2, []float64{7, 7})
	c.Normalize()
	if c.Data[0] != 0 || c.Data[1] != 0 {
		t.Error("constant map should normalize to zeros")
	}
}

func TestRotate90Composition(t *testing.T) {
	// Property: four quarter-turns are the identity; two quarter-turns
	// equal a half-turn.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMap(1+rng.Intn(8), 1+rng.Intn(8), rng)
		r4 := m.Rotate90(1).Rotate90(1).Rotate90(1).Rotate90(1)
		if !mapsEqual(m, r4) {
			return false
		}
		r2 := m.Rotate90(1).Rotate90(1)
		return mapsEqual(m.Rotate90(2), r2)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestRotate90Known(t *testing.T) {
	m := FromData(2, 3, []float64{
		1, 2, 3,
		4, 5, 6,
	})
	r := m.Rotate90(1)
	if r.H != 3 || r.W != 2 {
		t.Fatalf("rotated shape %dx%d, want 3x2", r.H, r.W)
	}
	want := []float64{
		4, 1,
		5, 2,
		6, 3,
	}
	for i := range want {
		if r.Data[i] != want[i] {
			t.Fatalf("rotated data %v, want %v", r.Data, want)
		}
	}
}

func TestRotateNegativeAndModulo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMap(5, 7, rng)
	if !mapsEqual(m.Rotate90(-1), m.Rotate90(3)) {
		t.Error("Rotate90(-1) != Rotate90(3)")
	}
	if !mapsEqual(m.Rotate90(5), m.Rotate90(1)) {
		t.Error("Rotate90(5) != Rotate90(1)")
	}
}

func TestFlipsAreInvolutions(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMap(1+rng.Intn(8), 1+rng.Intn(8), rng)
		return mapsEqual(m, m.FlipH().FlipH()) && mapsEqual(m, m.FlipV().FlipV())
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestFlipRotateRelation(t *testing.T) {
	// FlipH ∘ FlipV == half-turn rotation.
	rng := rand.New(rand.NewSource(10))
	m := randomMap(6, 4, rng)
	if !mapsEqual(m.FlipH().FlipV(), m.Rotate90(2)) {
		t.Error("FlipH∘FlipV != Rotate180")
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMap(7, 9, rng)
	r := m.Resize(7, 9)
	for i := range m.Data {
		if math.Abs(r.Data[i]-m.Data[i]) > 1e-12 {
			t.Fatal("identity resize changed data")
		}
	}
}

func TestResizePreservesConstant(t *testing.T) {
	m := New(5, 5)
	m.Fill(3.25)
	r := m.Resize(13, 7)
	for _, v := range r.Data {
		if math.Abs(v-3.25) > 1e-12 {
			t.Fatalf("constant not preserved: %v", v)
		}
	}
}

func TestResizeRangeBounded(t *testing.T) {
	// Bilinear interpolation can't overshoot the input range.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMap(2+rng.Intn(6), 2+rng.Intn(6), rng)
		r := m.Resize(1+rng.Intn(16), 1+rng.Intn(16))
		mn, mx := m.Min(), m.Max()
		for _, v := range r.Data {
			if v < mn-1e-12 || v > mx+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMAE(t *testing.T) {
	a := FromData(1, 4, []float64{0, 0, 0, 0})
	b := FromData(1, 4, []float64{1, -1, 2, 0})
	if got := MAE(a, b); got != 1 {
		t.Errorf("MAE = %v, want 1", got)
	}
}

func TestScaleAddMap(t *testing.T) {
	a := FromData(1, 2, []float64{1, 2})
	b := FromData(1, 2, []float64{10, 20})
	a.Scale(2).AddMap(b)
	if a.Data[0] != 12 || a.Data[1] != 24 {
		t.Errorf("got %v", a.Data)
	}
}

func TestPGMFormat(t *testing.T) {
	m := FromData(2, 2, []float64{0, 1, 2, 3})
	s := m.PGM()
	if !strings.HasPrefix(s, "P2\n2 2\n255\n") {
		t.Errorf("bad PGM header: %q", s[:20])
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
	if lines[3] != "0 85" || lines[4] != "170 255" {
		t.Errorf("pixel rows = %q, %q", lines[3], lines[4])
	}
}

func TestASCIIShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomMap(20, 100, rng)
	s := m.ASCII(40)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines[0]) != 40 {
		t.Errorf("ASCII width = %d, want 40", len(lines[0]))
	}
	small := randomMap(3, 5, rng)
	s2 := small.ASCII(40)
	if len(strings.Split(strings.TrimRight(s2, "\n"), "\n")) != 3 {
		t.Error("small maps should not be resized")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestPPMFormat(t *testing.T) {
	m := FromData(1, 3, []float64{0, 0.5, 1})
	s := m.PPM()
	if !strings.HasPrefix(s, "P3\n3 1\n255\n") {
		t.Errorf("bad PPM header: %q", s[:12])
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	px := strings.Fields(lines[3])
	if len(px) != 9 {
		t.Fatalf("expected 9 components, got %d", len(px))
	}
	// Min maps to blue, max to red.
	if px[0] != "0" || px[2] != "255" {
		t.Errorf("min pixel should be blue: %v", px[:3])
	}
	if px[6] != "255" || px[8] != "0" {
		t.Errorf("max pixel should be red: %v", px[6:9])
	}
}

func TestHeatColorEndpointsAndClamp(t *testing.T) {
	r, g, b := heatColor(-1)
	if r != 0 || g != 0 || b != 255 {
		t.Errorf("below-range should clamp to blue, got %d %d %d", r, g, b)
	}
	r, g, b = heatColor(2)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("above-range should clamp to red, got %d %d %d", r, g, b)
	}
	r, g, b = heatColor(0.5)
	if g != 255 {
		t.Errorf("midpoint should be green-dominant, got %d %d %d", r, g, b)
	}
}

func TestDiffMap(t *testing.T) {
	a := FromData(1, 3, []float64{1, 5, -2})
	b := FromData(1, 3, []float64{4, 5, 2})
	d := DiffMap(a, b)
	want := []float64{3, 0, 4}
	for i := range want {
		if d.Data[i] != want[i] {
			t.Fatalf("DiffMap = %v, want %v", d.Data, want)
		}
	}
}
