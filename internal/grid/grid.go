// Package grid provides dense 2-D float64 maps — the image-like
// representation that the ML stage of IR-Fusion consumes. It covers
// rasterization of per-node quantities onto a pixel grid, the
// geometric transforms used for data augmentation (right-angle
// rotations and flips), bilinear resampling, summary statistics, and
// PGM/ASCII rendering for the Fig-6 style visual comparisons.
package grid

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Map is a dense H×W raster stored row-major. The zero value is not
// usable; construct with New.
type Map struct {
	H, W int
	Data []float64
}

// New returns an H×W map initialized to zero.
func New(h, w int) *Map {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", h, w))
	}
	return &Map{H: h, W: w, Data: make([]float64, h*w)}
}

// FromData wraps an existing row-major slice (not copied).
func FromData(h, w int, data []float64) *Map {
	if len(data) != h*w {
		panic("grid: FromData length mismatch")
	}
	return &Map{H: h, W: w, Data: data}
}

// At returns the value at row y, column x.
func (m *Map) At(y, x int) float64 { return m.Data[y*m.W+x] }

// Set stores v at row y, column x.
func (m *Map) Set(y, x int, v float64) { m.Data[y*m.W+x] = v }

// Add accumulates v at row y, column x.
func (m *Map) Add(y, x int, v float64) { m.Data[y*m.W+x] += v }

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := New(m.H, m.W)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every pixel to v.
func (m *Map) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every pixel by s in place and returns m.
func (m *Map) Scale(s float64) *Map {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMap accumulates other into m pixel-wise (shapes must match).
func (m *Map) AddMap(other *Map) *Map {
	if m.H != other.H || m.W != other.W {
		panic("grid: AddMap shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
	return m
}

// Min returns the minimum pixel value.
func (m *Map) Min() float64 {
	mn := math.Inf(1)
	for _, v := range m.Data {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// Max returns the maximum pixel value.
func (m *Map) Max() float64 {
	mx := math.Inf(-1)
	for _, v := range m.Data {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// ArgMax returns the (y, x) coordinates of the maximum pixel. Ties
// resolve to the first in row-major order.
func (m *Map) ArgMax() (int, int) {
	best, by, bx := math.Inf(-1), 0, 0
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if v := m.At(y, x); v > best {
				best, by, bx = v, y, x
			}
		}
	}
	return by, bx
}

// Mean returns the average pixel value.
func (m *Map) Mean() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s / float64(len(m.Data))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy.
func (m *Map) Percentile(p float64) float64 {
	s := append([]float64(nil), m.Data...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Normalize rescales pixels to [0, 1] in place and returns the
// (min, max) that were used. A constant map becomes all zeros.
func (m *Map) Normalize() (float64, float64) {
	mn, mx := m.Min(), m.Max()
	if mx == mn { //irfusion:exact a constant map has exactly equal bounds; normalizing would divide by zero
		m.Fill(0)
		return mn, mx
	}
	inv := 1 / (mx - mn)
	for i, v := range m.Data {
		m.Data[i] = (v - mn) * inv
	}
	return mn, mx
}

// Rotate90 returns the map rotated clockwise by 90°·quarter (quarter
// taken modulo 4; negative values rotate counter-clockwise).
func (m *Map) Rotate90(quarter int) *Map {
	q := ((quarter % 4) + 4) % 4
	switch q {
	case 0:
		return m.Clone()
	case 2:
		out := New(m.H, m.W)
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				out.Set(m.H-1-y, m.W-1-x, m.At(y, x))
			}
		}
		return out
	case 1: // clockwise: (y,x) -> (x, H-1-y)
		out := New(m.W, m.H)
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				out.Set(x, m.H-1-y, m.At(y, x))
			}
		}
		return out
	default: // q == 3, counter-clockwise: (y,x) -> (W-1-x, y)
		out := New(m.W, m.H)
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				out.Set(m.W-1-x, y, m.At(y, x))
			}
		}
		return out
	}
}

// FlipH returns the map mirrored horizontally (left-right).
func (m *Map) FlipH() *Map {
	out := New(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(y, m.W-1-x, m.At(y, x))
		}
	}
	return out
}

// FlipV returns the map mirrored vertically (top-bottom).
func (m *Map) FlipV() *Map {
	out := New(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(m.H-1-y, x, m.At(y, x))
		}
	}
	return out
}

// Resize resamples the map to h×w with bilinear interpolation
// (align-corners convention when both target dims exceed 1).
func (m *Map) Resize(h, w int) *Map {
	out := New(h, w)
	sy := 0.0
	if h > 1 {
		sy = float64(m.H-1) / float64(h-1)
	}
	sx := 0.0
	if w > 1 {
		sx = float64(m.W-1) / float64(w-1)
	}
	for y := 0; y < h; y++ {
		fy := float64(y) * sy
		y0 := int(fy)
		y1 := y0 + 1
		if y1 >= m.H {
			y1 = m.H - 1
		}
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) * sx
			x0 := int(fx)
			x1 := x0 + 1
			if x1 >= m.W {
				x1 = m.W - 1
			}
			wx := fx - float64(x0)
			v := (1-wy)*((1-wx)*m.At(y0, x0)+wx*m.At(y0, x1)) +
				wy*((1-wx)*m.At(y1, x0)+wx*m.At(y1, x1))
			out.Set(y, x, v)
		}
	}
	return out
}

// MAE returns the mean absolute difference between two equally-shaped
// maps.
func MAE(a, b *Map) float64 {
	if a.H != b.H || a.W != b.W {
		panic("grid: MAE shape mismatch")
	}
	s := 0.0
	for i := range a.Data {
		s += math.Abs(a.Data[i] - b.Data[i])
	}
	return s / float64(len(a.Data))
}

// PGM renders the map as a binary-free plain-text PGM (P2) image with
// 255 gray levels, normalized to the map's own range. Suitable for the
// Fig-6 heatmap dumps.
func (m *Map) PGM() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", m.W, m.H)
	mn, mx := m.Min(), m.Max()
	scale := 0.0
	if mx > mn {
		scale = 255 / (mx - mn)
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", int((m.At(y, x)-mn)*scale+0.5))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders a coarse character heatmap (down-sampled to at most
// maxCols columns), dark-to-bright using a 10-step ramp. Handy for
// eyeballing predictions in a terminal.
func (m *Map) ASCII(maxCols int) string {
	ramp := []byte(" .:-=+*#%@")
	src := m
	if m.W > maxCols {
		scale := float64(maxCols) / float64(m.W)
		src = m.Resize(int(float64(m.H)*scale+0.5), maxCols)
	}
	mn, mx := src.Min(), src.Max()
	var b strings.Builder
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			idx := 0
			if mx > mn {
				idx = int((src.At(y, x) - mn) / (mx - mn) * float64(len(ramp)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
