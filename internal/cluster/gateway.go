// Package cluster is the fleet layer of the analysis service: a
// stateless gateway that fronts N internal/serve shard processes and
// routes every analysis request over a consistent-hash ring keyed by
// the design's routing fingerprint (cache.RoutingFingerprint). ECO
// neighbors — the same grid topology with edited element values —
// share a routing key, so the gateway keeps sending them to the shard
// whose artifact cache holds their warm-start donors; that cache
// affinity is the whole reason routing is content-addressed rather
// than round-robin.
//
// The gateway holds no job state of its own. Job ids carry the owning
// shard's name (serve.Config.Name), so GET/DELETE /v1/jobs/{id} is
// routed by parsing the id — any gateway replica can serve any
// follow-up request, and gateways can be scaled or restarted freely.
//
// Health is probe-driven: a background loop GETs every shard's
// /healthz on a fixed interval and feeds the results into a
// core.BreakerSet keyed by shard name. An open breaker takes the shard
// out of rotation (requests skip to the ring successor) until the
// cooldown elapses and a half-open probe closes it again. Forwarding
// failures — a dropped connection or an injected cluster.forward
// fault — also count against the breaker, and trigger a bounded
// handoff: the request is retried on the next distinct shard clockwise
// on the ring, with the origin shard's name attached in the
// serve.HeaderHandoffFrom header so the completing shard's run
// manifest records the failover. Analysis requests are deterministic
// and side-effect-free per shard, which is what makes blind re-send
// safe.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"irfusion/internal/cache"
	"irfusion/internal/core"
	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/serve"
	"irfusion/internal/spice"
)

// Gateway-level counters, in the process-global obs registry so they
// surface in /metricsz and GET /v1/cluster.
var (
	cRequests    = obs.GlobalCounter("cluster.http.requests")
	cForwards    = obs.GlobalCounter("cluster.forwards")
	cForwardFail = obs.GlobalCounter("cluster.forward.failures")
	cHandoffs    = obs.GlobalCounter("cluster.handoffs")
	cRejected    = obs.GlobalCounter("cluster.rejected")
	cProbes      = obs.GlobalCounter("cluster.probes")
	cProbeFail   = obs.GlobalCounter("cluster.probe.failures")
)

// ShardSpec names one shard and its base URL ("http://host:port").
type ShardSpec struct {
	Name string
	URL  string
}

// Config sizes the gateway. Zero values take the documented defaults.
type Config struct {
	// Shards is the fleet membership: unique names, reachable base
	// URLs. The ring is built once from these names; an unhealthy
	// shard is skipped by breaker state, never removed from the ring,
	// so key placement stays stable across incidents.
	Shards []ShardSpec
	// VNodes is the virtual-node count per shard (DefaultVNodes).
	VNodes int
	// MaxBodyBytes is the gateway's own admission limit, enforced
	// before any shard is contacted. Default 8 MiB (the serve
	// default); set it at or below the shards' limit so oversized
	// requests die at the edge.
	MaxBodyBytes int64
	// MaxHandoffs bounds how many ring successors a failed request may
	// be retried on. Default: all of them (len(Shards)-1).
	MaxHandoffs int
	// ProbeInterval is the health-probe period. 0 means the 1s
	// default; negative disables the background loop entirely (tests
	// drive probes synchronously with ProbeNow).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each shard health probe. Default 500ms.
	ProbeTimeout time.Duration
	// BreakerThreshold and BreakerCooldown configure the per-shard
	// circuit breakers (consecutive failures to open; time until a
	// half-open probe). Defaults 3 and 5s — the serve-layer defaults.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client overrides the forwarding HTTP client. The default has no
	// overall timeout: analysis requests legitimately run for minutes,
	// and the per-request context still propagates cancellation.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxHandoffs <= 0 || c.MaxHandoffs > len(c.Shards)-1 {
		c.MaxHandoffs = len(c.Shards) - 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// shardState is the gateway's live view of one shard.
type shardState struct {
	name string
	url  string

	mu        sync.Mutex
	healthy   bool
	lastErr   string
	lastProbe time.Time
}

func (s *shardState) setProbe(healthy bool, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthy = healthy
	s.lastErr = errMsg
	s.lastProbe = time.Now()
}

func (s *shardState) probeView() (healthy bool, errMsg string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy, s.lastErr, s.lastProbe
}

// Gateway is the cluster front end. Construct with New, mount Handler
// on an http.Server, stop with Close.
type Gateway struct {
	cfg      Config
	ring     *Ring
	shards   map[string]*shardState
	order    []string // shard names in config order, for status output
	breakers *core.BreakerSet
	mux      *http.ServeMux
	start    time.Time

	mu       sync.Mutex // guards draining against inflight.Add
	draining bool

	inflight   sync.WaitGroup
	stopProbes chan struct{}
	probes     sync.WaitGroup
}

// New validates the fleet spec, builds the ring, and starts the probe
// loop (unless ProbeInterval is negative).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(cfg.Shards))
	shards := make(map[string]*shardState, len(cfg.Shards))
	for _, sp := range cfg.Shards {
		if sp.Name == "" || sp.URL == "" {
			return nil, fmt.Errorf("cluster: shard spec %+v needs both name and url", sp)
		}
		if strings.Contains(sp.Name, "-job-") {
			// Job routing splits ids on the last "-job-"; a shard name
			// containing it would make ids ambiguous.
			return nil, fmt.Errorf("cluster: shard name %q must not contain %q", sp.Name, "-job-")
		}
		if _, dup := shards[sp.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sp.Name)
		}
		shards[sp.Name] = &shardState{name: sp.Name, url: strings.TrimRight(sp.URL, "/")}
		names = append(names, sp.Name)
	}
	g := &Gateway{
		cfg:        cfg,
		ring:       NewRing(names, cfg.VNodes),
		shards:     shards,
		order:      names,
		breakers:   core.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		stopProbes: make(chan struct{}),
	}
	g.routes()
	if cfg.ProbeInterval > 0 {
		g.probes.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Ring exposes the routing ring (for status output and tests).
func (g *Gateway) Ring() *Ring { return g.ring }

// Breakers exposes the per-shard breaker set (for status and tests).
func (g *Gateway) Breakers() *core.BreakerSet { return g.breakers }

func (g *Gateway) routes() {
	g.mux.HandleFunc("POST /v1/analyze", g.track(g.handleAnalyze))
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.track(g.handleJobProxy))
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.track(g.handleJobProxy))
	// Status endpoints stay reachable while draining: operators watch
	// them to decide when shutdown is safe.
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metricsz", g.handleMetricsz)
	g.mux.HandleFunc("GET /v1/cluster", g.handleCluster)
}

// track wraps proxied endpoints with drain admission and in-flight
// accounting: the WaitGroup add happens under the same mutex Close
// takes, so a request is either rejected as draining or fully counted.
func (g *Gateway) track(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		if g.draining {
			g.mu.Unlock()
			cRejected.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "gateway draining")
			return
		}
		g.inflight.Add(1)
		g.mu.Unlock()
		defer g.inflight.Done()
		h(w, r)
	}
}

// Close drains the gateway: new proxied requests are rejected with
// 503, the probe loop stops, and the call returns when every in-flight
// forward has completed or ctx expires. In-flight requests are not
// force-cancelled — their own client contexts govern them.
func (g *Gateway) Close(ctx context.Context) error {
	g.mu.Lock()
	already := g.draining
	g.draining = true
	if !already {
		close(g.stopProbes)
	}
	g.mu.Unlock()
	g.probes.Wait()

	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleAnalyze admission-checks the request at the edge, derives its
// routing key, and forwards it along the ring with bounded handoff.
func (g *Gateway) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Oversized requests die here, at the edge — no shard sees
			// a byte of them.
			cRejected.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", g.cfg.MaxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req serve.AnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	key, err := routingKey(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.forward(w, r, key, body)
}

// routingKey derives the consistent-hash key of an analysis request.
// SPICE decks key on cache.RoutingFingerprint — geometry plus
// value-free topology — so an ECO value edit keeps its key and its
// shard. Pgen requests key on the generator configuration, which fully
// determines the design.
func routingKey(req *serve.AnalyzeRequest) (string, error) {
	hasSpice, hasPgen := req.Spice != "", req.Pgen != nil
	if hasSpice == hasPgen {
		return "", errors.New("exactly one of \"spice\" and \"pgen\" must be set")
	}
	if hasPgen {
		c := req.Pgen
		sum := sha256.Sum256(fmt.Appendf(nil, "pgen|class=%s|%dx%d|seed=%d|vdd=%s|layers=%d",
			c.Class, c.W, c.H, c.Seed, spice.FormatValue(c.VDD), len(c.Layers)))
		return hex.EncodeToString(sum[:]), nil
	}
	nl, err := spice.ParseString(req.Spice)
	if err != nil {
		return "", fmt.Errorf("spice: %w", err)
	}
	size := serve.InferDieSize(nl)
	if size <= 0 {
		size = req.Resolution
	}
	return cache.RoutingFingerprint(&pgen.Design{
		W: size, H: size,
		VDD:     serve.PadVoltage(nl),
		Netlist: nl,
	}), nil
}

// forward walks the ring successors of key, skipping shards with open
// breakers, and retries on the next distinct shard after a transport
// failure or a 503 — up to MaxHandoffs handoffs. The first shard to
// produce any other response wins.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	maxAttempts := g.cfg.MaxHandoffs + 1
	attempts := 0
	prev := "" // shard whose failure the next attempt inherits
	var tried []string
	for _, name := range g.ring.Successors(key) {
		if attempts >= maxAttempts {
			break
		}
		sh := g.shards[name]
		br := g.breakers.Get(name)
		if !br.Allow() {
			continue // breaker open: out of rotation until cooldown
		}
		attempts++
		if attempts > 1 {
			cHandoffs.Inc()
		}
		cForwards.Inc()
		resp, err := g.send(r, sh, body, attempts, prev)
		if err != nil {
			// Transport-level failure: the shard is unreachable or the
			// connection died mid-request. Penalize its breaker and hand
			// the request to the ring successor.
			br.Record(false)
			cForwardFail.Inc()
			prev = name
			tried = append(tried, name)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The shard is alive but shedding load (queue full,
			// draining, or its solve ladder is exhausted). Hand off
			// without a breaker penalty — liveness probes own that
			// signal, and a saturated queue recovers on its own.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			prev = name
			tried = append(tried, name)
			continue
		}
		br.Record(true)
		g.relay(w, resp, name, attempts)
		return
	}
	cRejected.Inc()
	w.Header().Set("Retry-After", g.retryAfterSeconds())
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": "no shard available for this key",
		"tried": tried,
	})
}

// send issues one forward attempt. The cluster.forward fault site
// fires first (labeled with the shard name): ActFail simulates a
// dropped connection without touching the network.
func (g *Gateway) send(r *http.Request, sh *shardState, body []byte, attempt int, prev string) (*http.Response, error) {
	ctx := r.Context()
	if f := faults.ActiveOr(ctx).Fire(faults.SiteClusterForward, sh.name); f != nil {
		switch f.Action {
		case faults.ActFail:
			return nil, f.Error()
		case faults.ActLatency, faults.ActStall:
			if err := f.Sleep(ctx); err != nil {
				return nil, err
			}
		}
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, sh.url+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: build forward request: %w", err)
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(serve.HeaderRouteAttempt, strconv.Itoa(attempt))
	if prev != "" {
		req.Header.Set(serve.HeaderHandoffFrom, prev)
		// When the fleet shares a checkpoint-bearing cache, the successor
		// may resume the donor's partial solve; name the donor so the
		// resumed manifest records whose iterations it inherited.
		req.Header.Set(serve.HeaderResumeFrom, prev)
	}
	return g.cfg.Client.Do(req)
}

// relay copies a shard response to the client, stamping which shard
// answered and how many attempts it took.
func (g *Gateway) relay(w http.ResponseWriter, resp *http.Response, shardName string, attempts int) {
	defer resp.Body.Close()
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(serve.HeaderShard, shardName)
	w.Header().Set(serve.HeaderRouteAttempt, strconv.Itoa(attempts))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body) // client gone is the only failure
}

// handleJobProxy routes job lookups and cancellations to the owning
// shard, parsed from the id's shard-name prefix. Job state lives on
// exactly one shard, so there is no handoff here: an unreachable owner
// is a 502.
func (g *Gateway) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	id := r.PathValue("id")
	name, ok := shardOfJob(id)
	if !ok {
		httpError(w, http.StatusNotFound, "job id %q carries no shard prefix", id)
		return
	}
	sh, ok := g.shards[name]
	if !ok {
		httpError(w, http.StatusNotFound, "job id %q names unknown shard %q", id, name)
		return
	}
	resp, err := g.send(r, sh, nil, 1, "")
	if err != nil {
		cForwardFail.Inc()
		httpError(w, http.StatusBadGateway, "shard %s unreachable: %v", name, err)
		return
	}
	g.relay(w, resp, name, 1)
}

// shardOfJob extracts the shard name from a prefixed job id
// ("shard2-job-000123" → "shard2").
func shardOfJob(id string) (string, bool) {
	idx := strings.LastIndex(id, "-job-")
	if idx <= 0 {
		return "", false
	}
	return id[:idx], true
}

// probeLoop drives periodic health probes until Close.
func (g *Gateway) probeLoop() {
	defer g.probes.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopProbes:
			return
		case <-t.C:
			g.ProbeNow(context.Background())
		}
	}
}

// ProbeNow probes every shard's /healthz once, synchronously, feeding
// the results into the breaker set. The background loop calls it on
// its interval; tests call it directly for deterministic state.
func (g *Gateway) ProbeNow(ctx context.Context) {
	for _, name := range g.order {
		g.probeShard(ctx, g.shards[name])
	}
}

func (g *Gateway) probeShard(ctx context.Context, sh *shardState) {
	cProbes.Inc()
	healthy, errMsg := g.probeOnce(ctx, sh)
	if !healthy {
		cProbeFail.Inc()
	}
	// Probes feed the breaker directly, without the Allow gate: a
	// failed probe counts toward opening it, and a successful probe is
	// authoritative liveness evidence that closes it immediately
	// (Reset) instead of waiting out the cooldown for a half-open
	// admission.
	br := g.breakers.Get(sh.name)
	if healthy {
		br.Reset()
	} else {
		br.Record(false)
	}
	sh.setProbe(healthy, errMsg)
}

// probeOnce performs one health probe. The cluster.probe fault site
// fires first (labeled with the shard name): ActFail fails the probe
// outright, and ActLatency sleeps — a delay at or past ProbeTimeout
// counts as a probe timeout, simulating a wedged shard without a slow
// test server.
func (g *Gateway) probeOnce(ctx context.Context, sh *shardState) (bool, string) {
	if f := faults.ActiveOr(ctx).Fire(faults.SiteClusterProbe, sh.name); f != nil {
		switch f.Action {
		case faults.ActFail:
			return false, f.Error().Error()
		case faults.ActLatency, faults.ActStall:
			if err := f.Sleep(ctx); err != nil {
				return false, err.Error()
			}
			if f.Delay >= g.cfg.ProbeTimeout {
				return false, fmt.Sprintf("probe exceeded %v budget (injected %v delay)", g.cfg.ProbeTimeout, f.Delay)
			}
		}
	}
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	if resp.StatusCode != http.StatusOK {
		// A draining shard answers 503: reachable, but it must leave
		// rotation, so the probe counts as unhealthy.
		return false, fmt.Sprintf("healthz status %d", resp.StatusCode)
	}
	return true, ""
}

// handleHealthz reports the gateway's own liveness plus a one-line
// fleet summary.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	healthy := 0
	for _, name := range g.order {
		if h, _, _ := g.shards[name].probeView(); h {
			healthy++
		}
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"role":           "gateway",
		"uptime_seconds": time.Since(g.start).Seconds(),
		"shards":         len(g.order),
		"shards_healthy": healthy,
		"breakers":       g.breakers.States(),
	})
}

// handleMetricsz reports the gateway's cluster.* counters and breaker
// states. Shard metrics are aggregated by GET /v1/cluster, not here —
// this endpoint describes the gateway process itself.
func (g *Gateway) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	counters := map[string]int64{}
	for name, v := range obs.GlobalCounters() {
		if strings.HasPrefix(name, "cluster.") {
			counters[name] = v
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role":     "gateway",
		"counters": counters,
		"gauges": map[string]float64{
			"cluster.uptime_seconds": time.Since(g.start).Seconds(),
			"cluster.shards":         float64(len(g.order)),
		},
		"breakers": g.breakers.States(),
	})
}

// ShardStatus is one shard's entry in the GET /v1/cluster response.
type ShardStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
	// LastProbeError is the most recent probe failure ("" when the
	// last probe succeeded).
	LastProbeError string `json:"last_probe_error,omitempty"`
	// LastProbeAgeSeconds is the age of the newest probe result; -1
	// before the first probe.
	LastProbeAgeSeconds float64 `json:"last_probe_age_seconds"`
	// Healthz and Metricsz are the shard's own status documents,
	// fetched live for this response; absent when the fetch failed.
	Healthz  json.RawMessage `json:"healthz,omitempty"`
	Metricsz json.RawMessage `json:"metricsz,omitempty"`
	// FetchError reports a failed live status fetch.
	FetchError string `json:"fetch_error,omitempty"`
}

// handleCluster aggregates the fleet: ring membership, per-shard
// breaker state and probe history, and each shard's live /healthz and
// /metricsz documents.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	states := g.breakers.States()
	shards := make([]ShardStatus, 0, len(g.order))
	for _, name := range g.order {
		sh := g.shards[name]
		healthy, lastErr, at := sh.probeView()
		st := ShardStatus{
			Name:                name,
			URL:                 sh.url,
			Healthy:             healthy,
			Breaker:             states[name],
			LastProbeError:      lastErr,
			LastProbeAgeSeconds: -1,
		}
		if !at.IsZero() {
			st.LastProbeAgeSeconds = time.Since(at).Seconds()
		}
		if hz, err := g.fetchJSON(r.Context(), sh, "/healthz"); err == nil {
			st.Healthz = hz
		} else {
			st.FetchError = err.Error()
		}
		if mz, err := g.fetchJSON(r.Context(), sh, "/metricsz"); err == nil {
			st.Metricsz = mz
		}
		shards = append(shards, st)
	}
	counters := map[string]int64{}
	for name, v := range obs.GlobalCounters() {
		if strings.HasPrefix(name, "cluster.") {
			counters[name] = v
		}
	}
	ringShards := g.ring.Shards()
	sort.Strings(ringShards)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(g.start).Seconds(),
		"ring": map[string]any{
			"vnodes": g.cfg.VNodes,
			"shards": ringShards,
		},
		"counters": counters,
		"shards":   shards,
	})
}

// fetchJSON retrieves one shard status document under the probe
// timeout. A shard answering 503 (draining) still returns its body —
// that state is exactly what the operator wants to see.
func (g *Gateway) fetchJSON(ctx context.Context, sh *shardState, path string) (json.RawMessage, error) {
	fctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, sh.url+path, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: build status request: %w", err)
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: read %s: %w", path, err)
	}
	if !json.Valid(b) {
		return nil, fmt.Errorf("cluster: %s returned invalid JSON", path)
	}
	return json.RawMessage(b), nil
}

// retryAfterSeconds renders the breaker cooldown as a Retry-After
// value (at least 1 second) — the soonest a rejected request could
// find a half-open shard.
func (g *Gateway) retryAfterSeconds() string {
	secs := int(g.cfg.BreakerCooldown / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
