package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/pgen"
	"irfusion/internal/serve"
)

// fleetShard is one real serve.Server instance behind the gateway,
// with a middleware counter so tests can prove which shards were (or
// were not) touched by analysis traffic.
type fleetShard struct {
	name        string
	svc         *serve.Server
	ts          *httptest.Server
	analyzeHits atomic.Int64
	killed      atomic.Bool
}

// fleet is the in-process N-shard rehearsal harness of the tentpole:
// real serve instances, a real gateway, all in one binary so the whole
// topology runs under -race.
type fleet struct {
	t      *testing.T
	gw     *Gateway
	gwTS   *httptest.Server
	shards []*fleetShard
}

// newFleet boots n shards named shard0..shard{n-1} plus a gateway.
// The background probe loop is disabled — tests drive ProbeNow for
// deterministic breaker state — and one initial sweep marks every
// shard healthy.
func newFleet(t *testing.T, n int, scfg serve.Config, gcfg Config) *fleet {
	t.Helper()
	f := &fleet{t: t}
	specs := make([]ShardSpec, 0, n)
	for i := 0; i < n; i++ {
		cfg := scfg
		cfg.Name = fmt.Sprintf("shard%d", i)
		sh := &fleetShard{name: cfg.Name, svc: serve.New(cfg)}
		inner := sh.svc.Handler()
		sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/analyze" {
				sh.analyzeHits.Add(1)
			}
			inner.ServeHTTP(w, r)
		}))
		f.shards = append(f.shards, sh)
		specs = append(specs, ShardSpec{Name: cfg.Name, URL: sh.ts.URL})
	}
	gcfg.Shards = specs
	if gcfg.ProbeInterval == 0 {
		gcfg.ProbeInterval = -1 // manual ProbeNow only
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	f.gwTS = httptest.NewServer(gw.Handler())
	gw.ProbeNow(context.Background())
	t.Cleanup(func() {
		f.gwTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := gw.Close(ctx); err != nil {
			t.Errorf("gateway Close: %v", err)
		}
		for _, sh := range f.shards {
			if sh.killed.Load() {
				continue
			}
			sh.ts.Close()
			if err := sh.svc.Close(ctx); err != nil {
				t.Errorf("shard %s Close: %v", sh.name, err)
			}
		}
	})
	return f
}

// kill takes a shard down hard, mid-whatever-it-is-doing: live
// connections are severed (in-flight forwards fail at the gateway),
// running jobs are force-cancelled, and the listener closes so every
// later probe or forward gets connection-refused.
func (f *fleet) kill(name string) {
	f.t.Helper()
	for _, sh := range f.shards {
		if sh.name != name {
			continue
		}
		sh.killed.Store(true)
		sh.ts.CloseClientConnections()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired context = force-cancel all in-flight jobs
		_ = sh.svc.Close(ctx)
		sh.ts.Close()
		return
	}
	f.t.Fatalf("no shard named %q", name)
}

func (f *fleet) shard(name string) *fleetShard {
	f.t.Helper()
	for _, sh := range f.shards {
		if sh.name == name {
			return sh
		}
	}
	f.t.Fatalf("no shard named %q", name)
	return nil
}

// postAnalyze POSTs req through the gateway and returns the full
// response with its body read.
func (f *fleet) postAnalyze(req *serve.AnalyzeRequest) (*http.Response, []byte) {
	f.t.Helper()
	resp, body, err := f.tryPostAnalyze(req)
	if err != nil {
		f.t.Fatal(err)
	}
	return resp, body
}

func (f *fleet) tryPostAnalyze(req *serve.AnalyzeRequest) (*http.Response, []byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(f.gwTS.URL+"/v1/analyze", "application/json", strings.NewReader(string(b)))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

func decodeView(t *testing.T, body []byte) serve.JobView {
	t.Helper()
	var v serve.JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode job view: %v\nbody: %s", err, body)
	}
	return v
}

// mustKey computes the gateway's routing key for a request.
func mustKey(t *testing.T, req *serve.AnalyzeRequest) string {
	t.Helper()
	key, err := routingKey(req)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// ecoPair generates a baseline design and an ECO neighbor within the
// warm-delta budget (0.5% of resistors perturbed — comfortably inside
// the 2% DefaultWarmDelta even on a miniature 24×24 die), both as
// SPICE deck text the way a real client would submit them.
func ecoPair(t *testing.T, seed int64) (base, eco string) {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("fleet", pgen.Real, 24, 24, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d.Netlist.String(), pgen.Perturb(d, 0.005, seed+100).Netlist.String()
}

// TestFleetWarmAffinity is the first half of the acceptance scenario:
// two decks within the warm-delta budget share a routing key, land on
// the same shard, and the second request warm-starts off the first's
// cached artifacts — the cache affinity the ring exists to preserve.
func TestFleetWarmAffinity(t *testing.T) {
	f := newFleet(t, 3, serve.Config{Workers: 1}, Config{})
	base, eco := ecoPair(t, 21)

	baseReq := &serve.AnalyzeRequest{Spice: base}
	ecoReq := &serve.AnalyzeRequest{Spice: eco}
	key := mustKey(t, baseReq)
	if mustKey(t, ecoReq) != key {
		t.Fatal("ECO neighbor has a different routing key")
	}
	owner := f.gw.Ring().Shard(key)

	resp, body := f.postAnalyze(baseReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.HeaderShard); got != owner {
		t.Fatalf("baseline landed on %q, ring owner is %q", got, owner)
	}
	v := decodeView(t, body)
	m := v.Result.Manifest
	if m.Shard != owner {
		t.Fatalf("baseline manifest shard %q != %q", m.Shard, owner)
	}
	if m.Cache == nil || m.Cache.Stores == 0 {
		t.Fatalf("baseline run stored no artifacts: %+v", m.Cache)
	}

	resp, body = f.postAnalyze(ecoReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eco: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.HeaderShard); got != owner {
		t.Fatalf("eco request landed on %q, want cache-affine shard %q", got, owner)
	}
	m = decodeView(t, body).Result.Manifest
	if m.Cache == nil || m.Cache.WarmStarts+m.Cache.Hits == 0 {
		t.Fatalf("eco request did not reuse the shard's cache: %+v", m.Cache)
	}

	// Affinity is exclusive: no other shard saw a single analyze call.
	for _, sh := range f.shards {
		hits := sh.analyzeHits.Load()
		if sh.name == owner && hits != 2 {
			t.Errorf("owner %s served %d analyze calls, want 2", sh.name, hits)
		}
		if sh.name != owner && hits != 0 {
			t.Errorf("shard %s saw %d analyze calls, want 0", sh.name, hits)
		}
	}
}

// TestFleetFailoverMidJob is the second half of the acceptance
// scenario: the owning shard is killed mid-solve, the gateway retries
// on the ring successor, the job completes there with the handoff
// recorded in its manifest, and — after one probe sweep opens the dead
// shard's breaker — its keys are remapped to the successor without
// another failed attempt.
func TestFleetFailoverMidJob(t *testing.T) {
	f := newFleet(t, 3, serve.Config{Workers: 1},
		Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	base, eco := ecoPair(t, 33)
	req := &serve.AnalyzeRequest{Spice: base}
	succ := f.gw.Ring().Successors(mustKey(t, req))
	owner, backup := succ[0], succ[1]

	// Stretch the first executed job with an injected worker delay so
	// the kill lands mid-run; the retried job on the successor is not
	// delayed (times=1).
	prevInj := faults.Active()
	faults.SetActive(faults.MustParse("serve.worker:latency:delay=750ms,times=1"))
	defer faults.SetActive(prevInj)

	type outcome struct {
		resp *http.Response
		body []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, body, err := f.tryPostAnalyze(req)
		ch <- outcome{resp, body, err}
	}()
	time.Sleep(250 * time.Millisecond) // let the job reach the owner and start
	f.kill(owner)

	out := <-ch
	if out.err != nil {
		t.Fatalf("failover request: %v", out.err)
	}
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", out.resp.StatusCode, out.body)
	}
	if got := out.resp.Header.Get(serve.HeaderShard); got != backup {
		t.Fatalf("retried job completed on %q, want ring successor %q", got, backup)
	}
	if got := out.resp.Header.Get(serve.HeaderRouteAttempt); got != "2" {
		t.Fatalf("route attempts = %s, want 2 (one handoff)", got)
	}
	m := decodeView(t, out.body).Result.Manifest
	if m.Shard != backup {
		t.Fatalf("manifest shard %q, want %q", m.Shard, backup)
	}
	if m.Counters["serve.handoff"] != 1 {
		t.Fatalf("manifest did not record the handoff: counters %v", m.Counters)
	}
	cfg, ok := m.Config.(map[string]any)
	if !ok || cfg["handoff_from"] != owner {
		t.Fatalf("manifest handoff_from = %v, want %q", cfg, owner)
	}

	// One probe sweep notices the corpse (threshold 1 → breaker opens)
	// and remaps the dead shard's keys: the ECO neighbor now routes
	// straight to the successor, first attempt, no failed forward —
	// and warm-starts off the failed-over job's artifacts.
	f.gw.ProbeNow(context.Background())
	if state := f.gw.Breakers().States()[owner]; state != "open" {
		t.Fatalf("dead shard's breaker is %q, want open", state)
	}
	resp, body := f.postAnalyze(&serve.AnalyzeRequest{Spice: eco})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remapped request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.HeaderShard); got != backup {
		t.Fatalf("remapped request landed on %q, want %q", got, backup)
	}
	if got := resp.Header.Get(serve.HeaderRouteAttempt); got != "1" {
		t.Fatalf("remapped request took %s attempts, want 1 (breaker skip, not handoff)", got)
	}
	m = decodeView(t, body).Result.Manifest
	if m.Cache == nil || m.Cache.WarmStarts+m.Cache.Hits == 0 {
		t.Fatalf("remapped ECO request found no warm artifacts on the successor: %+v", m.Cache)
	}
}

// TestFleetJobProxy covers the proxy-able job API: async submission
// through the gateway yields a shard-prefixed job id that any gateway
// can route for polling and cancellation.
func TestFleetJobProxy(t *testing.T) {
	f := newFleet(t, 2, serve.Config{Workers: 1}, Config{})
	req := &serve.AnalyzeRequest{
		Pgen:  &pgen.Config{Class: pgen.Fake, W: 16, H: 16, Seed: 4},
		Async: true,
	}
	owner := f.gw.Ring().Shard(mustKey(t, req))
	resp, body := f.postAnalyze(req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if !strings.HasPrefix(v.ID, owner+"-job-") {
		t.Fatalf("job id %q lacks owner prefix %q", v.ID, owner)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location %q", loc)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(f.gwTS.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", r.StatusCode, b)
		}
		if got := r.Header.Get(serve.HeaderShard); got != owner {
			t.Fatalf("poll proxied to %q, want %q", got, owner)
		}
		pv := decodeView(t, b)
		if pv.Status.Terminal() {
			if pv.Status != serve.StatusDone {
				t.Fatalf("job ended %q: %s", pv.Status, pv.Error)
			}
			if pv.Result.Manifest.Shard != owner {
				t.Fatalf("manifest shard %q", pv.Result.Manifest.Shard)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(2 * time.Millisecond)
	}

	for _, id := range []string{"nonsense", "ghost-job-000001"} {
		r, err := http.Get(f.gwTS.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("job id %q: status %d, want 404", id, r.StatusCode)
		}
	}
}

// TestFleetDrain covers graceful gateway shutdown: an in-flight
// request completes, new requests are refused with 503, and status
// endpoints stay reachable reporting the draining state.
func TestFleetDrain(t *testing.T) {
	f := newFleet(t, 2, serve.Config{Workers: 1}, Config{})

	prevInj := faults.Active()
	faults.SetActive(faults.MustParse("serve.worker:latency:delay=300ms,times=1"))
	defer faults.SetActive(prevInj)

	req := &serve.AnalyzeRequest{Pgen: &pgen.Config{Class: pgen.Fake, W: 16, H: 16, Seed: 9}}
	type outcome struct {
		resp *http.Response
		body []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, body, err := f.tryPostAnalyze(req)
		ch <- outcome{resp, body, err}
	}()
	time.Sleep(100 * time.Millisecond) // in flight before the drain starts

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.gw.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", out.resp.StatusCode, out.body)
	}

	resp, body, err := f.tryPostAnalyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain 503 lacks Retry-After")
	}

	hr, err := http.Get(f.gwTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "draining" {
		t.Fatalf("healthz status %v during drain", hz["status"])
	}
}

// TestFleetClusterStatus exercises the GET /v1/cluster aggregation
// surface: ring membership, per-shard breaker state, and each shard's
// live healthz/metricsz documents with their shard identities.
func TestFleetClusterStatus(t *testing.T) {
	f := newFleet(t, 3, serve.Config{Workers: 1}, Config{})
	resp, err := http.Get(f.gwTS.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var view struct {
		Status string `json:"status"`
		Ring   struct {
			VNodes int      `json:"vnodes"`
			Shards []string `json:"shards"`
		} `json:"ring"`
		Counters map[string]int64 `json:"counters"`
		Shards   []ShardStatus    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Status != "ok" || view.Ring.VNodes != DefaultVNodes || len(view.Ring.Shards) != 3 {
		t.Fatalf("cluster view header wrong: %+v", view)
	}
	if view.Counters["cluster.probes"] == 0 {
		t.Error("cluster.probes counter missing from the aggregate view")
	}
	for _, st := range view.Shards {
		if !st.Healthy || st.Breaker != "closed" {
			t.Errorf("shard %s: healthy=%v breaker=%q", st.Name, st.Healthy, st.Breaker)
		}
		var hz map[string]any
		if err := json.Unmarshal(st.Healthz, &hz); err != nil {
			t.Errorf("shard %s healthz: %v", st.Name, err)
			continue
		}
		if hz["shard"] != st.Name {
			t.Errorf("shard %s healthz reports identity %v", st.Name, hz["shard"])
		}
		var mz map[string]any
		if err := json.Unmarshal(st.Metricsz, &mz); err != nil {
			t.Errorf("shard %s metricsz: %v", st.Name, err)
			continue
		}
		if mz["shard"] != st.Name {
			t.Errorf("shard %s metricsz reports identity %v", st.Name, mz["shard"])
		}
	}
}
