package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the number of virtual nodes each shard contributes
// to the ring. 64 points per shard keeps the key-space split within a
// few percent of even for small fleets while the ring stays tiny
// (N×64 points, binary-searched per request).
const DefaultVNodes = 64

// Ring is a consistent-hash ring over named shards. Keys and shard
// positions hash through SHA-256, so placement is deterministic across
// processes, platforms, and releases — a pinned (deck, ring) pair maps
// to a pinned shard forever, which the routing-stability regression
// test relies on. The ring is immutable after New; membership changes
// are handled by breaker state at the gateway, not by ring mutation,
// so routing stays stable while a shard is merely unhealthy.
type Ring struct {
	points []ringPoint
	shards []string
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// NewRing places each shard at vnodes positions (DefaultVNodes when
// vnodes <= 0). Shard names must be unique; order does not matter —
// placement depends only on the name strings.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, name := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashPoint(name + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hashPoint maps a string to a ring position: the first 8 bytes of its
// SHA-256, big-endian. FNV would be cheaper, but routing runs once per
// request (not per iteration) and SHA-256 keeps the whole fingerprint
// family on one primitive.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Shards returns the member names in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Shard returns the owner of key: the shard whose ring point is the
// first at or clockwise of the key's hash. Empty ring returns "".
func (r *Ring) Shard(key string) string {
	succ := r.Successors(key)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// Successors returns every shard in ring order starting at key's
// owner, deduplicated — the gateway's failover order. The first entry
// is the primary; each later entry is the next distinct shard
// clockwise, so handoff after a shard failure walks this list.
func (r *Ring) Successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.shards))
	out := make([]string, 0, len(r.shards))
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}
