package cluster

import (
	"fmt"
	"testing"

	"irfusion/internal/pgen"
	"irfusion/internal/serve"
)

// TestRingDeterminism pins that placement depends only on the shard
// name strings — never on construction order or process state.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"s0", "s1", "s2"}, 64)
	b := NewRing([]string{"s2", "s0", "s1"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("key %q: placement depends on construction order", key)
		}
	}
}

// TestRingSuccessors checks the failover order: every shard exactly
// once, primary first.
func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"s0", "s1", "s2"}, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.Successors(key)
		if len(succ) != 3 {
			t.Fatalf("key %q: %d successors, want 3", key, len(succ))
		}
		if succ[0] != r.Shard(key) {
			t.Fatalf("key %q: first successor %q != owner %q", key, succ[0], r.Shard(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q", key, s)
			}
			seen[s] = true
		}
	}
	if NewRing(nil, 4).Shard("x") != "" {
		t.Fatal("empty ring must return no owner")
	}
}

// TestRingBalanceAndRemap checks the two consistent-hashing virtues:
// keys spread across shards within a sane band, and growing the fleet
// by one shard moves only a minority of keys (ideally ~1/N).
func TestRingBalanceAndRemap(t *testing.T) {
	const keys = 2000
	three := NewRing([]string{"s0", "s1", "s2"}, 64)
	four := NewRing([]string{"s0", "s1", "s2", "s3"}, 64)
	counts := map[string]int{}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("design-%d", i)
		owner := three.Shard(key)
		counts[owner]++
		next := four.Shard(key)
		if next != owner {
			if next != "s3" {
				t.Fatalf("key %q moved %s → %s: growth must only move keys to the new shard", key, owner, next)
			}
			moved++
		}
	}
	for shard, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %s owns %.0f%% of keys — ring is badly unbalanced", shard, 100*frac)
		}
	}
	movedFrac := float64(moved) / keys
	if movedFrac == 0 || movedFrac > 0.5 {
		t.Fatalf("adding one shard moved %.0f%% of keys (want ~25%%, certainly <50%%)", 100*movedFrac)
	}
}

// TestRoutingStabilityPinned is the routing-stability regression of
// the satellite checklist: a pinned deck on a pinned ring must map to
// a pinned shard forever. The expected values are frozen literals; if
// this test fails, a hash, canonicalizer, or ring change silently
// reshuffled every deployed fleet's cache affinity and needs a
// deliberate migration story, not a baseline bump.
func TestRoutingStabilityPinned(t *testing.T) {
	r := NewRing([]string{"shard0", "shard1", "shard2"}, 64)

	// Pinned generator request: class fake, 16×16, seed 1.
	pgKey, err := routingKey(&serve.AnalyzeRequest{
		Pgen: &pgen.Config{Class: pgen.Fake, W: 16, H: 16, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "480d1043ea9bdbe6d54ba718af3de7a8bce305be6842bf12efbdf0b0f13ebdfd"; pgKey != want {
		t.Errorf("pgen routing key drifted: %s", pgKey)
	}
	if got := r.Shard(pgKey); got != "shard2" {
		t.Errorf("pinned pgen deck moved to %q (want shard2)", got)
	}

	// Pinned SPICE deck: the generated real-class 24×24 seed-17 design,
	// round-tripped through deck text like a real client submission.
	d, err := pgen.Generate(pgen.DefaultConfig("pin", pgen.Real, 24, 24, 17))
	if err != nil {
		t.Fatal(err)
	}
	spKey, err := routingKey(&serve.AnalyzeRequest{Spice: d.Netlist.String()})
	if err != nil {
		t.Fatal(err)
	}
	if want := "9fba19c71aeac1dd110898e0e118bed07aae20ce8a7001aca3f201d8d322797b"; spKey != want {
		t.Errorf("spice routing key drifted: %s", spKey)
	}
	if got := r.Shard(spKey); got != "shard0" {
		t.Errorf("pinned spice deck moved to %q (want shard0)", got)
	}

	// Its ECO neighbor must share key and shard — the cache-affinity
	// invariant the gateway exists for.
	eco := pgen.Perturb(d, 0.005, 3)
	ecoKey, err := routingKey(&serve.AnalyzeRequest{Spice: eco.Netlist.String()})
	if err != nil {
		t.Fatal(err)
	}
	if ecoKey != spKey {
		t.Error("ECO neighbor routed on a different key than its baseline")
	}
}
