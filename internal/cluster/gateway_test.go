package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/pgen"
	"irfusion/internal/serve"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{},
		{Shards: []ShardSpec{{Name: "", URL: "http://x"}}},
		{Shards: []ShardSpec{{Name: "a", URL: ""}}},
		{Shards: []ShardSpec{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}},
		{Shards: []ShardSpec{{Name: "bad-job-name", URL: "http://x"}}},
	}
	for i, cfg := range cases {
		cfg.ProbeInterval = -1
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

// TestGatewayAdmission413 pins the edge-admission contract: a request
// past the gateway's body limit dies at the gateway with 413 — no
// shard sees a byte of it.
func TestGatewayAdmission413(t *testing.T) {
	f := newFleet(t, 2, serve.Config{Workers: 1}, Config{MaxBodyBytes: 1024})
	big := `{"spice": "` + strings.Repeat("* padding\\n", 200) + `"}`
	resp, err := http.Post(f.gwTS.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	for _, sh := range f.shards {
		if n := sh.analyzeHits.Load(); n != 0 {
			t.Errorf("shard %s saw %d analyze calls for an oversized request", sh.name, n)
		}
	}
}

// TestGatewayBadRequests covers edge admission of malformed bodies.
func TestGatewayBadRequests(t *testing.T) {
	f := newFleet(t, 1, serve.Config{Workers: 1}, Config{})
	for _, body := range []string{
		"{not json",
		"{}",                               // neither spice nor pgen
		`{"spice": "x", "pgen": {"w": 8}}`, // both
		`{"spice": "R1 broken"}`,           // unparsable deck
	} {
		resp, err := http.Post(f.gwTS.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := f.shards[0].analyzeHits.Load(); n != 0 {
		t.Errorf("shard saw %d analyze calls for malformed requests", n)
	}
}

// TestGatewayAllBreakersOpen pins the no-capacity behaviour: when
// every shard's breaker is open the gateway answers 503 with a
// Retry-After hinting at the breaker cooldown — without attempting a
// single doomed forward.
func TestGatewayAllBreakersOpen(t *testing.T) {
	// Two shards that were never alive: closed ports, probe once to
	// open both breakers (threshold 1).
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // the address is now guaranteed-refused
	gw, err := New(Config{
		Shards: []ShardSpec{
			{Name: "s0", URL: dead.URL},
			{Name: "s1", URL: dead.URL},
		},
		ProbeInterval:    -1,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  7 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gw.Close(ctx)
	}()
	gw.ProbeNow(context.Background())
	for name, state := range gw.Breakers().States() {
		if state != "open" {
			t.Fatalf("breaker %s is %q after failed probe, want open", name, state)
		}
	}

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	body, _ := json.Marshal(&serve.AnalyzeRequest{
		Pgen: &pgen.Config{Class: pgen.Fake, W: 8, H: 8, Seed: 1},
	})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the 7s breaker cooldown", got)
	}
}

// TestGatewayRoutingDeterminism: the same deck, submitted repeatedly,
// must keep landing on the same shard.
func TestGatewayRoutingDeterminism(t *testing.T) {
	f := newFleet(t, 3, serve.Config{Workers: 1}, Config{})
	req := &serve.AnalyzeRequest{Pgen: &pgen.Config{Class: pgen.Fake, W: 16, H: 16, Seed: 7}}
	want := ""
	for i := 0; i < 3; i++ {
		resp, body := f.postAnalyze(req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		got := resp.Header.Get(serve.HeaderShard)
		if want == "" {
			want = got
		}
		if got != want {
			t.Fatalf("submission %d landed on %q, earlier ones on %q", i, got, want)
		}
	}
}

// TestGatewayProbeFaultSites drives the new cluster.probe fault site:
// an injected probe failure opens the target shard's breaker without
// touching the network, and an injected delay past the probe budget
// counts as a probe timeout.
func TestGatewayProbeFaultSites(t *testing.T) {
	f := newFleet(t, 2, serve.Config{Workers: 1},
		Config{BreakerThreshold: 1, BreakerCooldown: time.Hour, ProbeTimeout: 5 * time.Millisecond})

	ctx := faults.WithInjector(context.Background(),
		faults.MustParse("cluster.probe:fail:label=shard0;cluster.probe:latency:delay=10ms,label=shard1"))
	f.gw.ProbeNow(ctx)
	states := f.gw.Breakers().States()
	if states["shard0"] != "open" {
		t.Errorf("shard0 breaker %q after injected probe failure, want open", states["shard0"])
	}
	if states["shard1"] != "open" {
		t.Errorf("shard1 breaker %q after injected probe timeout, want open", states["shard1"])
	}

	// A clean sweep (no injector) heals both immediately: a healthy
	// probe is authoritative and closes the breaker (Reset) without
	// waiting out the hour-long cooldown.
	f.gw.ProbeNow(context.Background())
	states = f.gw.Breakers().States()
	for name, st := range states {
		if st != "closed" {
			t.Errorf("breaker %s stuck %q after healthy probe", name, st)
		}
	}
}

// TestGatewayForwardFaultSite drives the new cluster.forward fault
// site: the first forward attempt dies as if the connection dropped,
// and the gateway hands off to the ring successor transparently.
func TestGatewayForwardFaultSite(t *testing.T) {
	f := newFleet(t, 2, serve.Config{Workers: 1}, Config{BreakerThreshold: 3})
	req := &serve.AnalyzeRequest{Pgen: &pgen.Config{Class: pgen.Fake, W: 16, H: 16, Seed: 11}}
	succ := f.gw.Ring().Successors(mustKey(t, req))

	prevInj := faults.Active()
	faults.SetActive(faults.MustParse("cluster.forward:fail:label=" + succ[0] + ",times=1"))
	defer faults.SetActive(prevInj)

	resp, body := f.postAnalyze(req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.HeaderShard); got != succ[1] {
		t.Fatalf("answered by %q, want successor %q after injected forward failure", got, succ[1])
	}
	if got := resp.Header.Get(serve.HeaderRouteAttempt); got != "2" {
		t.Fatalf("attempts %q, want 2", got)
	}
	m := decodeView(t, body).Result.Manifest
	if m.Counters["serve.handoff"] != 1 {
		t.Fatalf("handoff not recorded in manifest counters: %v", m.Counters)
	}
}
