package cache

import (
	"context"
	"testing"

	"irfusion/internal/amg"
	"irfusion/internal/circuit"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/sparse"
)

// warmFixture assembles a pinned golden design, its converged
// solution, and its AMG hierarchy — the donor artifact of every
// warm-start test.
type warmFixture struct {
	design *pgen.Design
	sys    *circuit.System
	golden []float64
	hier   *amg.Hierarchy
}

func buildWarmFixture(t *testing.T) *warmFixture {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("warm", pgen.Real, 24, 24, 13))
	if err != nil {
		t.Fatal(err)
	}
	sys := assemble(t, d)
	h, err := amg.Build(sys.G, amg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, sys.N())
	res, err := solver.PCG(sys.G, x, sys.I, h, solver.DefaultOptions())
	if err != nil || !res.Converged {
		t.Fatalf("golden solve: err=%v converged=%v", err, res.Converged)
	}
	return &warmFixture{design: d, sys: sys, golden: x, hier: h}
}

func assemble(t *testing.T, d *pgen.Design) *circuit.System {
	t.Helper()
	nw, err := circuit.FromNetlist(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// coldSolve solves sys from zero with the named preconditioner,
// building fresh setup — the reference each warm start must match.
func coldSolve(t *testing.T, sys *circuit.System, precond string) []float64 {
	t.Helper()
	var pre solver.Preconditioner
	switch precond {
	case "amg":
		h, err := amg.Build(sys.G, amg.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pre = h
	case "ssor":
		pre = solver.NewSSOR(sys.G, 2)
	default:
		t.Fatalf("unknown preconditioner %q", precond)
	}
	x := make([]float64, sys.N())
	res, err := solver.PCG(sys.G, x, sys.I, pre, solver.DefaultOptions())
	if err != nil || !res.Converged {
		t.Fatalf("cold %s solve: err=%v converged=%v", precond, err, res.Converged)
	}
	return x
}

// TestWarmStartEquivalence is the correctness contract of the
// delta-solve path: for the pinned golden design and ECO-style
// perturbed variants on both PCG backends, a solve warm-started from
// the cached donor (initial guess = donor golden; for AMG, donor
// hierarchy clone as preconditioner) must agree with a cold
// from-scratch solve to GuardTol. The donor hierarchy is a foreign
// preconditioner on a perturbed matrix — flexible PCG tolerates that,
// and the preconditioner only shapes the iteration path, never the
// fixed point.
func TestWarmStartEquivalence(t *testing.T) {
	f := buildWarmFixture(t)
	cases := []struct {
		name    string
		perturb float64
		seed    int64
	}{
		{"identical", 0, 0},
		{"eco-small", 0.005, 21},
		{"eco-at-budget", 0.02, 22},
	}
	for _, precond := range []string{"amg", "ssor"} {
		for _, tc := range cases {
			t.Run(precond+"/"+tc.name, func(t *testing.T) {
				d := f.design
				if tc.perturb > 0 {
					d = pgen.Perturb(f.design, tc.perturb, tc.seed)
				}
				sys := assemble(t, d)
				cold := coldSolve(t, sys, precond)

				// Warm start: donor golden as initial guess, donor
				// hierarchy (cloned) as the AMG preconditioner.
				warm := append([]float64(nil), f.golden...)
				var pre solver.Preconditioner
				if precond == "amg" {
					pre = f.hier.Clone()
				} else {
					pre = solver.NewSSOR(sys.G, 2)
				}
				res, err := solver.PCG(sys.G, warm, sys.I, pre, solver.DefaultOptions())
				if err != nil || !res.Converged {
					t.Fatalf("warm solve: err=%v converged=%v", err, res.Converged)
				}
				if diff := solver.MaxAbsDiff(warm, cold); diff > GuardTol {
					t.Fatalf("warm and cold disagree by %g (tol %g)", diff, GuardTol)
				}
			})
		}
	}
}

// TestFindWarmStartThresholds pins the donor-qualification semantics:
// a neighbor qualifies when its measured matrix delta is at or below
// the budget and is rejected above it, and the identical design is
// always the preferred (delta-0) donor.
func TestFindWarmStartThresholds(t *testing.T) {
	f := buildWarmFixture(t)
	c := New(0, 0)
	ctx := context.Background()
	StoreSystem(ctx, c, "test", &SystemArtifact{
		Fingerprint: DesignFingerprint(f.design),
		N:           f.sys.N(), G: f.sys.G, I: f.sys.I,
		Golden: f.golden, Hier: f.hier,
	})

	eco := pgen.Perturb(f.design, 0.01, 31)
	ecoSys := assemble(t, eco)
	d := Delta(ecoSys.G, f.sys.G)
	if d <= 0 || d >= 1 {
		t.Fatalf("perturbed delta = %g, want a real fractional change", d)
	}

	// Below budget: measured delta within the default budget qualifies.
	if d <= DefaultWarmDelta {
		nb, got, err := FindWarmStart(ctx, c, ecoSys.G, 0)
		if err != nil || nb == nil {
			t.Fatalf("below-budget neighbor not found: nb=%v err=%v", nb, err)
		}
		if got != d { //irfusion:exact FindWarmStart reports the Delta it measured; same computation, same bits
			t.Fatalf("reported delta %g != measured %g", got, d)
		}
	}
	// At budget: maxDelta exactly equal to the measured delta qualifies.
	if nb, _, err := FindWarmStart(ctx, c, ecoSys.G, d); err != nil || nb == nil {
		t.Fatalf("at-budget neighbor rejected: nb=%v err=%v", nb, err)
	}
	// Above budget: a budget below the measured delta forces cold.
	if nb, _, _ := FindWarmStart(ctx, c, ecoSys.G, d/2); nb != nil {
		t.Fatal("above-budget neighbor qualified; want the cold path")
	}
	// Identical matrix: delta 0, always qualifies.
	nb, got, err := FindWarmStart(ctx, c, f.sys.G, 0)
	if err != nil || nb == nil || got != 0 {
		t.Fatalf("identical design: nb=%v delta=%g err=%v", nb, got, err)
	}

	// Donors without a hierarchy (warm-chain artifacts) never donate.
	c2 := New(0, 0)
	StoreSystem(ctx, c2, "test", &SystemArtifact{
		Fingerprint: "x", N: f.sys.N(), G: f.sys.G, I: f.sys.I, Golden: f.golden,
	})
	if nb, _, _ := FindWarmStart(ctx, c2, f.sys.G, 0); nb != nil {
		t.Fatal("hierarchy-less artifact donated a warm start")
	}
}

// TestDelta pins the merge-walk distance measure itself.
func TestDelta(t *testing.T) {
	f := buildWarmFixture(t)
	if d := Delta(f.sys.G, f.sys.G); d != 0 { //irfusion:exact identical operand must be distance zero
		t.Fatalf("Delta(G, G) = %g", d)
	}
	if d := Delta(f.sys.G, nil); d != 1 { //irfusion:exact nil operand is maximally distant by contract
		t.Fatalf("Delta(G, nil) = %g", d)
	}
	tr := sparse.NewTriplet(2, 2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	small := tr.ToCSR()
	if d := Delta(f.sys.G, small); d != 1 { //irfusion:exact shape mismatch is maximally distant by contract
		t.Fatalf("Delta shape mismatch = %g", d)
	}
	// Monotonic in perturbation strength on real assemblies.
	d1 := Delta(assemble(t, pgen.Perturb(f.design, 0.01, 7)).G, f.sys.G)
	d2 := Delta(assemble(t, pgen.Perturb(f.design, 0.3, 7)).G, f.sys.G)
	if !(d1 > 0 && d2 > d1) {
		t.Fatalf("delta not monotonic: d(1%%)=%g d(30%%)=%g", d1, d2)
	}
}

// TestLookupSystemGuard exercises the store/lookup round trip and the
// poisoned-entry path: a stale golden vector must fail the residual
// guard that every consumer runs before reuse.
func TestLookupSystemGuard(t *testing.T) {
	f := buildWarmFixture(t)
	c := New(0, 0)
	ctx := context.Background()
	fp := DesignFingerprint(f.design)
	StoreSystem(ctx, c, "test", &SystemArtifact{
		Fingerprint: fp, N: f.sys.N(), G: f.sys.G, I: f.sys.I,
		Golden: f.golden, Hier: f.hier,
	})
	art := LookupSystem(ctx, c, fp)
	if art == nil {
		t.Fatal("stored artifact not found")
	}
	if r := solver.RelResidual(f.sys.G, art.Golden, f.sys.I); r > GuardTol {
		t.Fatalf("healthy artifact fails the guard: %g", r)
	}
	// A corrupted golden vector must fail the same guard.
	bad := append([]float64(nil), art.Golden...)
	bad[len(bad)/2] += 1
	if r := solver.RelResidual(f.sys.G, bad, f.sys.I); r <= GuardTol {
		t.Fatalf("poisoned artifact passes the guard: %g", r)
	}
	if LookupSystem(ctx, c, "no-such-fp") != nil {
		t.Fatal("miss returned an artifact")
	}
	if LookupSystem(ctx, nil, fp) != nil {
		t.Fatal("nil cache returned an artifact")
	}
}
