package cache

import (
	"context"
	"testing"

	"irfusion/internal/amg"
	"irfusion/internal/obs"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
)

// TestWarmStartAcrossPrecisions pins the cross-precision donation
// contract: system artifacts always carry the float64 hierarchy and a
// float64 golden (a mixed-precision solve converges to the same
// float64 fixed point — enforced by the Cholesky golden oracle), so
// warm-start donation is deliberately precision-agnostic. A donor
// produced by the mixed path is ACCEPTED by a full-precision consumer
// and vice versa, and in both directions the warm solve must agree
// with a cold solve of the same precision to GuardTol. If donation is
// ever made precision-aware, this test is the contract to renegotiate.
func TestWarmStartAcrossPrecisions(t *testing.T) {
	f := buildWarmFixture(t)
	ctx := context.Background()

	// The mixed-precision golden of the same pinned design: same
	// system, solved through the float32 V-cycle refinement path.
	mpGolden := make([]float64, f.sys.N())
	res, err := solver.MPPCGCtx(ctx, f.sys.G, mpGolden, f.sys.I,
		amg.NewHierarchy32(f.hier), solver.DefaultOptions())
	if err != nil || !res.Converged {
		t.Fatalf("mixed golden solve: err=%v converged=%v", err, res.Converged)
	}

	eco := pgen.Perturb(f.design, 0.01, 41)
	ecoSys := assemble(t, eco)
	// Budget the search at the measured distance: donation policy
	// (thresholds) is TestFindWarmStartThresholds' business — this
	// test pins only that precision never factors into it.
	budget := Delta(ecoSys.G, f.sys.G)
	if budget <= 0 || budget >= 1 {
		t.Fatalf("perturbed delta = %g, want a real fractional change", budget)
	}

	t.Run("mixed-donor-full-consumer", func(t *testing.T) {
		c := New(0, 0)
		StoreSystem(ctx, c, "test", &SystemArtifact{
			Fingerprint: DesignFingerprint(f.design),
			N:           f.sys.N(), G: f.sys.G, I: f.sys.I,
			Golden:    mpGolden,
			Hier:      f.hier,
			Precision: obs.PrecisionMixed,
		})
		nb, _, err := FindWarmStart(ctx, c, ecoSys.G, budget)
		if err != nil || nb == nil {
			t.Fatalf("mixed-produced donor refused: nb=%v err=%v", nb, err)
		}
		if nb.Precision != obs.PrecisionMixed {
			t.Fatalf("donor precision tag %q, want %q", nb.Precision, obs.PrecisionMixed)
		}
		cold := coldSolve(t, ecoSys, "amg")
		warm := append([]float64(nil), nb.Golden...)
		res, err := solver.PCG(ecoSys.G, warm, ecoSys.I, nb.Hier.Clone(), solver.DefaultOptions())
		if err != nil || !res.Converged {
			t.Fatalf("warm full-precision solve: err=%v converged=%v", err, res.Converged)
		}
		if diff := solver.MaxAbsDiff(warm, cold); diff > GuardTol {
			t.Fatalf("warm (mixed donor) and cold full solve disagree by %g (tol %g)", diff, GuardTol)
		}
	})

	t.Run("full-donor-mixed-consumer", func(t *testing.T) {
		c := New(0, 0)
		StoreSystem(ctx, c, "test", &SystemArtifact{
			Fingerprint: DesignFingerprint(f.design),
			N:           f.sys.N(), G: f.sys.G, I: f.sys.I,
			Golden:    f.golden,
			Hier:      f.hier,
			Precision: obs.PrecisionFull,
		})
		nb, _, err := FindWarmStart(ctx, c, ecoSys.G, budget)
		if err != nil || nb == nil {
			t.Fatalf("full-produced donor refused by mixed consumer: nb=%v err=%v", nb, err)
		}

		// Cold mixed solve of the perturbed system: fresh hierarchy,
		// zero guess.
		coldHier, err := amg.Build(ecoSys.G, amg.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cold := make([]float64, ecoSys.N())
		cres, err := solver.MPPCGCtx(ctx, ecoSys.G, cold, ecoSys.I,
			amg.NewHierarchy32(coldHier), solver.DefaultOptions())
		if err != nil || !cres.Converged {
			t.Fatalf("cold mixed solve: err=%v converged=%v", err, cres.Converged)
		}

		// Warm mixed solve: donor golden as guess, the float32 shadow
		// of the donor's (cloned, foreign) hierarchy as preconditioner.
		warm := append([]float64(nil), nb.Golden...)
		wres, err := solver.MPPCGCtx(ctx, ecoSys.G, warm, ecoSys.I,
			amg.NewHierarchy32(nb.Hier.Clone()), solver.DefaultOptions())
		if err != nil || !wres.Converged {
			t.Fatalf("warm mixed solve: err=%v converged=%v", err, wres.Converged)
		}
		if diff := solver.MaxAbsDiff(warm, cold); diff > GuardTol {
			t.Fatalf("warm (full donor) and cold mixed solve disagree by %g (tol %g)", diff, GuardTol)
		}
	})
}
