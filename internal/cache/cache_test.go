package cache

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestCache(maxBytes int64, ttl time.Duration) (*Cache, *fakeClock) {
	c := New(maxBytes, ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.now
	return c, clk
}

func TestCachePutGet(t *testing.T) {
	c, _ := newTestCache(1024, time.Minute)
	c.Put("a", 1, 10, "t")
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Bytes != 10 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheReplaceAccountsBytes(t *testing.T) {
	c, _ := newTestCache(1024, time.Minute)
	c.Put("a", 1, 100, "t")
	c.Put("a", 2, 30, "t")
	if st := c.Stats(); st.Bytes != 30 || st.Entries != 1 {
		t.Fatalf("after replace: %+v", st)
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replace did not take: %v", v)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := newTestCache(100, time.Minute)
	c.Put("a", "a", 40, "t")
	c.Put("b", "b", 40, "t")
	c.Get("a") // refresh a: b is now the LRU victim
	c.Put("c", "c", 40, "t")
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignores Get refresh")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it live", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 80 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheOversizeEntryAdmitted(t *testing.T) {
	c, _ := newTestCache(100, time.Minute)
	c.Put("small", 1, 10, "t")
	c.Put("huge", 2, 500, "t") // larger than the whole bound
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversize entry rejected; want admitted (it evicts the rest)")
	}
	if _, ok := c.Get("small"); ok {
		t.Fatal("small survived an over-budget admission")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c, clk := newTestCache(1024, time.Minute)
	c.Put("a", 1, 10, "t")
	clk.advance(59 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestCacheDrop(t *testing.T) {
	c, _ := newTestCache(1024, time.Minute)
	c.Put("a", 1, 10, "t")
	c.Drop("a")
	c.Drop("a") // idempotent
	if _, ok := c.Get("a"); ok {
		t.Fatal("dropped entry still served")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheScanTag(t *testing.T) {
	c, clk := newTestCache(1024, time.Minute)
	c.Put("a", 1, 10, "x")
	c.Put("b", 2, 10, "y")
	c.Put("c", 3, 10, "x")
	c.Put("d", 4, 10, "x")

	var keys []string
	c.ScanTag("x", 0, func(k string, _ any) bool {
		keys = append(keys, k)
		return true
	})
	// MRU order: most recent Put first, tag "y" skipped.
	if fmt.Sprint(keys) != "[d c a]" {
		t.Fatalf("ScanTag order = %v, want [d c a]", keys)
	}

	keys = nil
	c.ScanTag("x", 2, func(k string, _ any) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 {
		t.Fatalf("ScanTag limit=2 visited %v", keys)
	}

	keys = nil
	c.ScanTag("x", 0, func(k string, _ any) bool {
		keys = append(keys, k)
		return false
	})
	if len(keys) != 1 {
		t.Fatalf("ScanTag early-stop visited %v", keys)
	}

	// Expired entries are collected during the scan, not visited.
	clk.advance(2 * time.Minute)
	visited := 0
	c.ScanTag("x", 0, func(string, any) bool { visited++; return true })
	if visited != 0 || c.Len() != 1 { // only the "y" entry remains un-collected
		t.Fatalf("after expiry: visited=%d len=%d", visited, c.Len())
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	c.Put("a", 1, 10, "t")
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	c.Drop("a")
	c.ScanTag("t", 0, func(string, any) bool { t.Fatal("nil cache scanned"); return false })
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
}

func TestCacheResolution(t *testing.T) {
	prev := SetActive(nil)
	defer SetActive(prev)

	if got := ActiveOr(context.Background()); got != nil {
		t.Fatalf("ActiveOr with no cache = %v, want nil", got)
	}
	global := New(0, 0)
	SetActive(global)
	if got := ActiveOr(context.Background()); got != global {
		t.Fatal("ActiveOr did not fall back to the global cache")
	}
	bound := New(0, 0)
	ctx := WithCache(context.Background(), bound)
	if got := ActiveOr(ctx); got != bound {
		t.Fatal("context-bound cache did not win over the global")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v", got)
	}
}

func TestNewFromEnv(t *testing.T) {
	t.Setenv("IRFUSION_CACHE_BYTES", "4096")
	t.Setenv("IRFUSION_CACHE_TTL", "90s")
	c := NewFromEnv()
	if c.maxBytes != 4096 || c.ttl != 90*time.Second {
		t.Fatalf("NewFromEnv: maxBytes=%d ttl=%v", c.maxBytes, c.ttl)
	}
	t.Setenv("IRFUSION_CACHE_BYTES", "not-a-number")
	t.Setenv("IRFUSION_CACHE_TTL", "")
	c = NewFromEnv()
	if c.maxBytes != DefaultMaxBytes || c.ttl != DefaultTTL {
		t.Fatalf("NewFromEnv fallback: maxBytes=%d ttl=%v", c.maxBytes, c.ttl)
	}
}

// TestCacheConcurrentChurn hammers one small cache from many
// goroutines mixing every operation; run under -race (the Makefile's
// race target does) it proves the locking discipline, and the final
// invariant check proves byte accounting survives concurrent
// eviction.
func TestCacheConcurrentChurn(t *testing.T) {
	c, _ := newTestCache(512, time.Minute)
	const workers = 8
	const opsPer = 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k%d", (w*opsPer+i)%13)
				switch i % 5 {
				case 0, 1:
					c.Put(key, i, int64(32+i%64), "churn")
				case 2:
					c.Get(key)
				case 3:
					c.ScanTag("churn", 4, func(string, any) bool { return true })
				case 4:
					if i%17 == 0 {
						c.Drop(key)
					} else {
						c.Stats()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > 512 {
		t.Fatalf("byte accounting broken after churn: %+v", st)
	}
	if st.Entries != c.Len() {
		t.Fatalf("entries mismatch: stats %d vs Len %d", st.Entries, c.Len())
	}
	// Recompute bytes from a full scan and compare with the account.
	var total int64
	c.mu.Lock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		total += el.Value.(*entry).bytes
	}
	c.mu.Unlock()
	if total != st.Bytes {
		t.Fatalf("accounted bytes %d != summed bytes %d", st.Bytes, total)
	}
}
