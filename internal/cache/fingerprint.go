package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

// Canonical renders a netlist in canonical form: one line per element,
// `<type> <nodeA> <nodeB> <value>`, sorted lexicographically. The
// rendering deliberately drops everything electrically irrelevant —
// the deck title, element names, original line order, whitespace, and
// engineering-suffix spellings (values are normalized through
// spice.FormatValue, and suffixes were already resolved by
// spice.ParseValue) — and orders the node pair of symmetric two-pin
// elements (R and C) lexicographically, so any two decks that describe
// the same network canonicalize identically. This is the single shared
// canonicalizer of the repository: fingerprinting, dataset caching,
// and the serving layer all key off it.
func Canonical(nl *spice.Netlist) string {
	if nl == nil {
		return ""
	}
	lines := make([]string, 0, len(nl.Elements))
	for _, e := range nl.Elements {
		a, b := e.NodeA, e.NodeB
		// R and C cards are undirected; I and V cards are polarized,
		// so their node order is meaning-bearing and preserved.
		if (e.Type == spice.Resistor || e.Type == spice.Capacitor) && b < a {
			a, b = b, a
		}
		lines = append(lines, e.Type.String()+" "+a+" "+b+" "+spice.FormatValue(e.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Fingerprint returns the content address of a netlist: the SHA-256 of
// its canonical form, in lower-case hex. Decks differing only in
// element order, naming, whitespace, or value spelling share a
// fingerprint; any electrical change produces a new one.
func Fingerprint(nl *spice.Netlist) string {
	sum := sha256.Sum256([]byte(Canonical(nl)))
	return hex.EncodeToString(sum[:])
}

// DesignFingerprint extends Fingerprint with the generator metadata
// that shapes downstream artifacts but lives outside the deck: the
// grid dimensions (which set feature-map geometry) and the nominal
// supply voltage (which sets the drop reference). Two designs with the
// same electrical network but different rasterization targets must not
// share cached feature maps.
func DesignFingerprint(d *pgen.Design) string {
	if d == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "design w=%d h=%d vdd=%s\n", d.W, d.H, spice.FormatValue(d.VDD))
	io.WriteString(h, Canonical(d.Netlist))
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalTopology renders a netlist in the value-free variant of the
// canonical form: one line per element, `<type> <nodeA> <nodeB>`,
// sorted lexicographically, with every element value dropped. Two
// decks that describe the same network shape — the same elements
// between the same nodes — canonicalize identically even when their
// component values differ. This is exactly the equivalence class of an
// ECO value edit: pgen.Perturb (and a real engineering-change resize)
// touches only resistor values, so a design and all of its ECO
// neighbors share one topology while their DesignFingerprints diverge.
func CanonicalTopology(nl *spice.Netlist) string {
	if nl == nil {
		return ""
	}
	lines := make([]string, 0, len(nl.Elements))
	for _, e := range nl.Elements {
		a, b := e.NodeA, e.NodeB
		// Same node-pair normalization as Canonical: R and C are
		// undirected, I and V are polarized.
		if (e.Type == spice.Resistor || e.Type == spice.Capacitor) && b < a {
			a, b = b, a
		}
		lines = append(lines, e.Type.String()+" "+a+" "+b)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// RoutingFingerprint is the cluster-routing companion of
// DesignFingerprint: the SHA-256 of the design's geometry plus its
// value-free canonical topology. The gateway consistent-hashes this
// key so that a design and its ECO neighbors — identical topology,
// edited values, distinct DesignFingerprints — land on the same shard,
// the one whose artifact cache holds their warm-start donors. Any
// topology change (an added strap, a moved pad, a different die size)
// produces a new routing key and may move the design to another shard,
// which is correct: a topology edit is outside the warm-start delta
// budget anyway.
func RoutingFingerprint(d *pgen.Design) string {
	if d == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "route w=%d h=%d vdd=%s\n", d.W, d.H, spice.FormatValue(d.VDD))
	io.WriteString(h, CanonicalTopology(d.Netlist))
	return hex.EncodeToString(h.Sum(nil))
}

// ShortKey abbreviates a fingerprint for logs and manifest events,
// where the full 64-hex digest is noise.
func ShortKey(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
