package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

// Canonical renders a netlist in canonical form: one line per element,
// `<type> <nodeA> <nodeB> <value>`, sorted lexicographically. The
// rendering deliberately drops everything electrically irrelevant —
// the deck title, element names, original line order, whitespace, and
// engineering-suffix spellings (values are normalized through
// spice.FormatValue, and suffixes were already resolved by
// spice.ParseValue) — and orders the node pair of symmetric two-pin
// elements (R and C) lexicographically, so any two decks that describe
// the same network canonicalize identically. This is the single shared
// canonicalizer of the repository: fingerprinting, dataset caching,
// and the serving layer all key off it.
func Canonical(nl *spice.Netlist) string {
	if nl == nil {
		return ""
	}
	lines := make([]string, 0, len(nl.Elements))
	for _, e := range nl.Elements {
		a, b := e.NodeA, e.NodeB
		// R and C cards are undirected; I and V cards are polarized,
		// so their node order is meaning-bearing and preserved.
		if (e.Type == spice.Resistor || e.Type == spice.Capacitor) && b < a {
			a, b = b, a
		}
		lines = append(lines, e.Type.String()+" "+a+" "+b+" "+spice.FormatValue(e.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Fingerprint returns the content address of a netlist: the SHA-256 of
// its canonical form, in lower-case hex. Decks differing only in
// element order, naming, whitespace, or value spelling share a
// fingerprint; any electrical change produces a new one.
func Fingerprint(nl *spice.Netlist) string {
	sum := sha256.Sum256([]byte(Canonical(nl)))
	return hex.EncodeToString(sum[:])
}

// DesignFingerprint extends Fingerprint with the generator metadata
// that shapes downstream artifacts but lives outside the deck: the
// grid dimensions (which set feature-map geometry) and the nominal
// supply voltage (which sets the drop reference). Two designs with the
// same electrical network but different rasterization targets must not
// share cached feature maps.
func DesignFingerprint(d *pgen.Design) string {
	if d == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "design w=%d h=%d vdd=%s\n", d.W, d.H, spice.FormatValue(d.VDD))
	io.WriteString(h, Canonical(d.Netlist))
	return hex.EncodeToString(h.Sum(nil))
}

// ShortKey abbreviates a fingerprint for logs and manifest events,
// where the full 64-hex digest is noise.
func ShortKey(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
