package cache

import (
	"math/rand"
	"testing"

	"irfusion/internal/pgen"
	"irfusion/internal/spice"
)

// TestFingerprintStability is the canonicalizer's regression contract:
// decks that describe the same electrical network — however they are
// ordered, named, spaced, or value-spelled — must hash identically,
// and any electrical edit must change the hash.
func TestFingerprintStability(t *testing.T) {
	base := `* base deck
R1 n1_m1_0_0 n1_m1_0_1 0.5
R2 n1_m1_0_1 n1_m1_0_2 2k
I1 n1_m1_0_2 0 1m
V1 n1_vsrc 0 1.1
Rv n1_vsrc n1_m1_0_0 0.01
.end`
	same := []struct {
		name string
		deck string
	}{
		{"shuffled element order", `* reordered
I1 n1_m1_0_2 0 1m
Rv n1_vsrc n1_m1_0_0 0.01
V1 n1_vsrc 0 1.1
R2 n1_m1_0_1 n1_m1_0_2 2k
R1 n1_m1_0_0 n1_m1_0_1 0.5
.end`},
		{"renamed elements and extra whitespace", `* renamed
Rzz9   n1_m1_0_0	n1_m1_0_1   0.5
Rother n1_m1_0_1 n1_m1_0_2 2K
Iload  n1_m1_0_2 0 1m
Vdd    n1_vsrc 0 1.1
Rtap   n1_vsrc n1_m1_0_0 0.01
.end`},
		{"swapped resistor node order", `* swapped
R1 n1_m1_0_1 n1_m1_0_0 0.5
R2 n1_m1_0_2 n1_m1_0_1 2000
I1 n1_m1_0_2 0 1m
V1 n1_vsrc 0 1.1
Rv n1_m1_0_0 n1_vsrc 0.01
.end`},
		{"value suffix spelling", `* suffixes
R1 n1_m1_0_0 n1_m1_0_1 500m
R2 n1_m1_0_1 n1_m1_0_2 2000
I1 n1_m1_0_2 0 0.001
V1 n1_vsrc 0 1.1
Rv n1_vsrc n1_m1_0_0 10m
.end`},
	}
	want := parseFP(t, base)
	for _, tc := range same {
		if got := parseFP(t, tc.deck); got != want {
			t.Errorf("%s: fingerprint %s != base %s", tc.name, ShortKey(got), ShortKey(want))
		}
	}

	different := []struct {
		name string
		deck string
	}{
		{"changed resistor value", `* edit
R1 n1_m1_0_0 n1_m1_0_1 0.6
R2 n1_m1_0_1 n1_m1_0_2 2k
I1 n1_m1_0_2 0 1m
V1 n1_vsrc 0 1.1
Rv n1_vsrc n1_m1_0_0 0.01
.end`},
		{"removed element", `* edit
R1 n1_m1_0_0 n1_m1_0_1 0.5
R2 n1_m1_0_1 n1_m1_0_2 2k
I1 n1_m1_0_2 0 1m
V1 n1_vsrc 0 1.1
.end`},
		{"swapped polarized source nodes", `* edit
R1 n1_m1_0_0 n1_m1_0_1 0.5
R2 n1_m1_0_1 n1_m1_0_2 2k
I1 0 n1_m1_0_2 1m
V1 n1_vsrc 0 1.1
Rv n1_vsrc n1_m1_0_0 0.01
.end`},
	}
	for _, tc := range different {
		if got := parseFP(t, tc.deck); got == want {
			t.Errorf("%s: fingerprint unchanged; an electrical edit must re-key", tc.name)
		}
	}
}

func parseFP(t *testing.T, deck string) string {
	t.Helper()
	nl, err := spice.ParseString(deck)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Fingerprint(nl)
}

// TestFingerprintGeneratedShuffle shuffles a realistic generated deck
// many times: every permutation must canonicalize to the same string.
func TestFingerprintGeneratedShuffle(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("fp", pgen.Real, 16, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := Fingerprint(d.Netlist)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		shuffled := &spice.Netlist{
			Title:    "shuffled",
			Elements: append([]spice.Element(nil), d.Netlist.Elements...),
		}
		rng.Shuffle(len(shuffled.Elements), func(i, j int) {
			shuffled.Elements[i], shuffled.Elements[j] = shuffled.Elements[j], shuffled.Elements[i]
		})
		if got := Fingerprint(shuffled); got != want {
			t.Fatalf("trial %d: shuffle changed fingerprint", trial)
		}
	}
}

func TestDesignFingerprintMetadata(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("fp", pgen.Real, 16, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	base := DesignFingerprint(d)
	if base == "" || DesignFingerprint(nil) != "" {
		t.Fatal("DesignFingerprint zero-value handling broken")
	}
	wider := *d
	wider.W = d.W * 2
	if DesignFingerprint(&wider) == base {
		t.Fatal("raster geometry change did not re-key the design")
	}
	renamed := *d
	renamed.Name = "other-name"
	if DesignFingerprint(&renamed) != base {
		t.Fatal("design name leaked into the fingerprint")
	}
	if DesignFingerprint(pgen.Perturb(d, 1, 3)) == base {
		t.Fatal("perturbed netlist kept the baseline fingerprint")
	}
}

// TestRoutingFingerprintECOInvariance pins the cluster-routing
// contract: an ECO value edit (pgen.Perturb touches only resistor
// values) must keep the routing key — so the gateway keeps sending the
// design to the shard holding its warm-start artifacts — while the
// exact DesignFingerprint diverges; any topology or geometry change
// must re-key.
func TestRoutingFingerprintECOInvariance(t *testing.T) {
	d, err := pgen.Generate(pgen.DefaultConfig("route", pgen.Real, 24, 24, 17))
	if err != nil {
		t.Fatal(err)
	}
	base := RoutingFingerprint(d)
	if base == "" || RoutingFingerprint(nil) != "" {
		t.Fatal("RoutingFingerprint zero-value handling broken")
	}
	for _, seed := range []int64{3, 4, 5} {
		eco := pgen.Perturb(d, 0.05, seed)
		if RoutingFingerprint(eco) != base {
			t.Fatalf("seed %d: ECO perturbation changed the routing key", seed)
		}
		if DesignFingerprint(eco) == DesignFingerprint(d) {
			t.Fatalf("seed %d: ECO perturbation left the exact fingerprint unchanged", seed)
		}
	}
	wider := *d
	wider.W = d.W * 2
	if RoutingFingerprint(&wider) == base {
		t.Fatal("geometry change did not re-key routing")
	}
	// Drop one element: a topology edit must move the key.
	trimmed := *d
	trimmed.Netlist = &spice.Netlist{
		Title:    d.Netlist.Title,
		Elements: append([]spice.Element(nil), d.Netlist.Elements[1:]...),
	}
	if RoutingFingerprint(&trimmed) == base {
		t.Fatal("topology edit did not re-key routing")
	}
	renamed := *d
	renamed.Name = "other"
	if RoutingFingerprint(&renamed) != base {
		t.Fatal("design name leaked into the routing key")
	}
}
