package cache

import (
	"context"
	"strconv"

	"irfusion/internal/amg"
	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/sparse"
)

// GuardTol is the relative-residual bound an exact-hit golden solution
// must satisfy against the freshly assembled system before it is
// reused. Golden solves converge to 1e-10, and reassembly of an
// identical deck is deterministic, so a healthy entry passes with two
// orders of margin; a stale or corrupted one fails the single SpMV
// check and is dropped.
const GuardTol = 1e-8

// DefaultWarmDelta is the matrix-delta fraction below which a cached
// neighbor qualifies as a warm-start donor: at most 2% of conductance
// entries may differ, the regime of an ECO strap edit.
const DefaultWarmDelta = 0.02

// warmScanLimit bounds how many same-shape candidates a neighbor
// search will delta-check; each check is an O(nnz) merge walk.
const warmScanLimit = 8

// SystemArtifact caches the reusable numerical products of one
// design's analysis: the assembled system, its converged ("golden")
// solution, and — when it was built against exactly this matrix — the
// AMG hierarchy. All fields are treated as immutable once stored;
// consumers copy Golden before solving on it and never use Hier
// directly (always Hierarchy.Clone, which shares setup but not
// workspace).
type SystemArtifact struct {
	Fingerprint string
	N           int            // reduced system dimension
	G           *sparse.CSR    // conductance matrix
	I           []float64      // current vector (right-hand side)
	Golden      []float64      // converged solution, reduced indexing
	Hier        *amg.Hierarchy // nil when the solve warm-started off a neighbor
	// Precision tags the arithmetic path of the solve that produced
	// Golden (obs.PrecisionFull / obs.PrecisionMixed; empty on
	// artifacts stored before the tag existed). Hier is ALWAYS the
	// float64 hierarchy — mixed-precision solves derive their float32
	// shadow per solve (amg.NewHierarchy32) and never store it — so
	// warm-start donation is deliberately precision-agnostic: the
	// float64 residual guard and the converged-or-degrade rung
	// mechanics hold regardless of which path produced the donor or
	// runs the consumer. Pinned by TestWarmStartAcrossPrecisions.
	Precision string
}

// SizeBytes estimates the artifact's memory footprint for the cache's
// byte accounting: matrix storage, the dense vectors, and the
// hierarchy's operator chain (approximated via operator complexity).
func (a *SystemArtifact) SizeBytes() int64 {
	if a == nil {
		return 0
	}
	var sz int64 = 256 // struct + key overhead
	if a.G != nil {
		sz += int64(a.G.NNZ())*12 + int64(a.G.Rows())*8
	}
	sz += int64(len(a.I)+len(a.Golden)) * 8
	if a.Hier != nil && a.G != nil {
		sz += int64(float64(a.G.NNZ()) * 12 * a.Hier.OperatorComplexity())
	}
	return sz
}

// SystemKey is the cache key of the system artifact for fingerprint
// fp.
func SystemKey(fp string) string { return "sys|" + fp }

// SystemTag groups system artifacts of the same reduced dimension, so
// a neighbor search only delta-checks matrices that could possibly be
// close.
func SystemTag(n int) string { return "sys|n=" + strconv.Itoa(n) }

// Delta returns the fraction of matrix entries at which a and b
// differ — structurally (an entry stored in one but not the other) or
// numerically — relative to the larger entry count. Matrices of
// different shape are maximally distant (1). Both operands must have
// sorted column indices per row, which every CSR built by this
// repository satisfies.
func Delta(a, b *sparse.CSR) float64 {
	if a == nil || b == nil || a.RowsN != b.RowsN || a.ColsN != b.ColsN {
		return 1
	}
	maxNNZ := a.NNZ()
	if n := b.NNZ(); n > maxNNZ {
		maxNNZ = n
	}
	if maxNNZ == 0 {
		return 0
	}
	diff := 0
	for i := 0; i < a.RowsN; i++ {
		pa, pb := a.RowPtr[i], b.RowPtr[i]
		ea, eb := a.RowPtr[i+1], b.RowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.ColInd[pa] < b.ColInd[pb]):
				diff++
				pa++
			case pa >= ea || b.ColInd[pb] < a.ColInd[pa]:
				diff++
				pb++
			default:
				if a.Val[pa] != b.Val[pb] { //irfusion:exact reassembling an unchanged element stamps the bit-identical value; any difference marks a real edit
					diff++
				}
				pa++
				pb++
			}
		}
	}
	return float64(diff) / float64(maxNNZ)
}

// StoreSystem stores art under its fingerprint key and records a
// store event (attributed to stage) on the context's recorder.
func StoreSystem(ctx context.Context, c *Cache, stage string, art *SystemArtifact) {
	if c == nil || art == nil || art.Fingerprint == "" {
		return
	}
	c.Put(SystemKey(art.Fingerprint), art, art.SizeBytes(), SystemTag(art.N))
	obs.ActiveOr(ctx).RecordCacheEvent(obs.CacheEvent{
		Stage: stage, Outcome: obs.CacheStore, Key: ShortKey(art.Fingerprint),
	})
}

// LookupSystem returns the system artifact stored under fingerprint
// fp, or nil on a miss. The faults site cache.lookup fires on every
// lookup that found an entry: ActEvict drops the entry mid-lookup (as
// if eviction won the race) and reports a miss, ActFail reports a
// miss without touching the entry, and ActStale returns a copy whose
// golden solution is poisoned — the caller's residual guard must
// catch it, which is exactly what the chaos CI job verifies.
func LookupSystem(ctx context.Context, c *Cache, fp string) *SystemArtifact {
	if c == nil || fp == "" {
		return nil
	}
	v, ok := c.Get(SystemKey(fp))
	if !ok {
		return nil
	}
	art, ok := v.(*SystemArtifact)
	if !ok {
		return nil
	}
	if f := faults.ActiveOr(ctx).Fire(faults.SiteCacheLookup, ""); f != nil {
		switch f.Action {
		case faults.ActEvict:
			c.Drop(SystemKey(fp))
			return nil
		case faults.ActFail:
			return nil
		case faults.ActStale:
			stale := *art
			stale.Golden = append([]float64(nil), art.Golden...)
			for i := range stale.Golden {
				stale.Golden[i] += 1 + float64(i%3)
			}
			return &stale
		}
	}
	return art
}

// FindWarmStart scans cached artifacts of g's shape for the closest
// neighbor whose matrix delta is at most maxDelta (<= 0 means
// DefaultWarmDelta) and which carries both a golden solution and a
// matching hierarchy. It returns the best donor with its delta, or
// (nil, 0, nil) when no candidate qualifies — the cold path. The
// faults site cache.delta fires once per search: latency/stall faults
// sleep cooperatively (a cancelled context surfaces as the returned
// error), and ActFail abandons the search, forcing the cold path.
func FindWarmStart(ctx context.Context, c *Cache, g *sparse.CSR, maxDelta float64) (*SystemArtifact, float64, error) {
	if c == nil || g == nil {
		return nil, 0, nil
	}
	if maxDelta <= 0 {
		maxDelta = DefaultWarmDelta
	}
	if f := faults.ActiveOr(ctx).Fire(faults.SiteCacheDelta, ""); f != nil {
		if f.Action == faults.ActFail {
			return nil, 0, nil
		}
		if err := f.Sleep(ctx); err != nil {
			return nil, 0, err
		}
	}
	// Snapshot candidates under the cache lock, delta-check outside it:
	// the merge walks are O(nnz) each and must not serialize workers.
	var cands []*SystemArtifact
	c.ScanTag(SystemTag(g.Rows()), warmScanLimit, func(_ string, v any) bool {
		if art, ok := v.(*SystemArtifact); ok && art.Hier != nil && len(art.Golden) > 0 {
			cands = append(cands, art)
		}
		return true
	})
	var best *SystemArtifact
	bestDelta := maxDelta
	for _, art := range cands {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		d := Delta(g, art.G)
		if d <= bestDelta {
			best, bestDelta = art, d
		}
	}
	if best == nil {
		return nil, 0, nil
	}
	return best, bestDelta, nil
}
