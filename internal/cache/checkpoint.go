package cache

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/solver"
)

// Checkpoint artifacts: mid-solve snapshots keyed by design
// fingerprint ⊕ request shape, living in the same byte-bounded
// artifact cache as system artifacts. They power two recovery paths:
// a restarted serving process reloads journaled checkpoint blobs into
// its cache, and a cluster ring-successor picks up the donor shard's
// checkpoint when the fleet shares a cache — either way the resume
// rung (core.RungAMGResume) finds the snapshot by key, validates it
// with a residual guard, and continues the solve from Iter instead of
// iteration 0.

// CheckpointGuardFactor relaxes the resume residual guard relative to
// the checkpoint's own recorded residual: a mid-solve iterate is far
// from converged by construction, so the guard cannot demand GuardTol
// — instead the recomputed residual must land within this factor of
// what the snapshot claims (plus float slack). A corrupt or foreign
// iterate recomputes orders of magnitude off and is rejected.
const CheckpointGuardFactor = 2.0

// CheckpointArtifact is one cached solver snapshot plus the identity
// needed to match it to a future request.
type CheckpointArtifact struct {
	Fingerprint string // design fingerprint the solve belongs to
	Shape       string // request shape (see CheckpointShape)
	N           int    // iterate length (reduced system dimension)
	State       solver.Checkpoint
}

// SizeBytes estimates the artifact's cache footprint.
func (a *CheckpointArtifact) SizeBytes() int64 {
	if a == nil {
		return 0
	}
	return 256 + int64(len(a.State.X)+len(a.State.HistoryTail))*8
}

// CheckpointKey is the cache key of the checkpoint for fingerprint fp
// under request shape.
func CheckpointKey(fp, shape string) string { return "ckpt|" + fp + "|" + shape }

// CheckpointTag groups checkpoint artifacts of one dimension.
func CheckpointTag(n int) string { return "ckpt|n=" + fmt.Sprint(n) }

// CheckpointShape canonicalizes the request fields that decide
// whether a checkpoint is resumable by a solve: the preconditioner
// family, the arithmetic precision, the storage format, and the
// iteration budget. Two requests with the same fingerprint and shape
// run the same solve, so one may resume the other's checkpoint.
func CheckpointShape(precond, precision, format string, iters int) string {
	if precond == "" {
		precond = "amg"
	}
	if precision == "" {
		precision = obs.PrecisionFull
	}
	if format == "" {
		format = "auto"
	}
	return fmt.Sprintf("precond=%s,prec=%s,fmt=%s,iters=%d", precond, precision, format, iters)
}

// StoreCheckpoint stores art under its fingerprint⊕shape key. The
// faults site checkpoint.save fires on every store: latency faults
// sleep cooperatively (simulating slow durable media — a cancelled
// context abandons the store), ActFail drops the snapshot silently
// (the solve must still complete; it just loses resumability).
func StoreCheckpoint(ctx context.Context, c *Cache, art *CheckpointArtifact) {
	if c == nil || art == nil || art.Fingerprint == "" {
		return
	}
	if f := faults.ActiveOr(ctx).Fire(faults.SiteCheckpointSave, art.State.Label); f != nil {
		if f.Action == faults.ActFail {
			return
		}
		if err := f.Sleep(ctx); err != nil {
			return
		}
	}
	c.Put(CheckpointKey(art.Fingerprint, art.Shape), art, art.SizeBytes(), CheckpointTag(art.N))
}

// LookupCheckpoint returns the checkpoint cached for fp under shape,
// or nil. The faults site checkpoint.restore fires on every lookup
// that found an entry: ActFail reports a miss, ActCorrupt returns a
// copy whose iterate is poisoned — the resume rung's residual guard
// must reject it and fall through to the cold ladder.
func LookupCheckpoint(ctx context.Context, c *Cache, fp, shape string) *CheckpointArtifact {
	if c == nil || fp == "" {
		return nil
	}
	v, ok := c.Get(CheckpointKey(fp, shape))
	if !ok {
		return nil
	}
	art, ok := v.(*CheckpointArtifact)
	if !ok {
		return nil
	}
	if f := faults.ActiveOr(ctx).Fire(faults.SiteCheckpointRestore, art.State.Label); f != nil {
		switch f.Action {
		case faults.ActFail:
			return nil
		case faults.ActCorrupt:
			// Same poisoning scheme as LookupSystem's stale fault: shift
			// the iterate so the recomputed residual explodes past the
			// guard while every value stays finite.
			bad := *art
			bad.State.X = append([]float64(nil), art.State.X...)
			for i := range bad.State.X {
				bad.State.X[i] += 1 + float64(i%3)
			}
			return &bad
		}
	}
	return art
}

// DropCheckpoint removes the checkpoint cached for fp under shape —
// called after the solve it belonged to completes, so a finished
// job's snapshot cannot shadow a later identical request.
func DropCheckpoint(c *Cache, fp, shape string) {
	if c == nil || fp == "" {
		return
	}
	c.Drop(CheckpointKey(fp, shape))
}

// Durable encoding: a hand-rolled little-endian binary format rather
// than gob, because EncodeCheckpoint sits on the solve's checkpoint
// cadence — the snapshot copy plus this encode is the entire
// per-interval overhead, and gob's reflection walk was the dominant
// term (BenchmarkCheckpointOverhead gates the total at <5% of the
// solve). The journal's blob store holds the bytes opaquely; cache
// stays the single owner of the artifact schema.
//
//	"IRCK" 0x01 | fingerprint | shape | u64 N
//	| X | u64 iter | f64 residual | historyTail
//	| f64 tol | u64 maxIter | u8 flexible | label | format | precision
//
// where strings are u64 length + bytes and float slices are u64
// element count + IEEE 754 bits, all little-endian.
var ckptMagic = []byte{'I', 'R', 'C', 'K', 1}

const ckptMaxField = 1 << 30 // sanity bound on any decoded length

// EncodeCheckpoint serializes art for durable storage.
func EncodeCheckpoint(art *CheckpointArtifact) ([]byte, error) {
	if art == nil {
		return nil, fmt.Errorf("cache: encode checkpoint: nil artifact")
	}
	st := &art.State
	size := len(ckptMagic) + 8*8 + 1 + // fixed fields, lengths folded below
		len(art.Fingerprint) + len(art.Shape) + len(st.Label) + len(st.Format) + len(st.Precision) +
		8*(len(st.X)+len(st.HistoryTail)) + 6*8
	buf := make([]byte, 0, size)
	buf = append(buf, ckptMagic...)
	buf = appendString(buf, art.Fingerprint)
	buf = appendString(buf, art.Shape)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(art.N))
	buf = appendFloats(buf, st.X)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Iter))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Residual))
	buf = appendFloats(buf, st.HistoryTail)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Tol))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.MaxIter))
	if st.Flexible {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, st.Label)
	buf = appendString(buf, st.Format)
	buf = appendString(buf, st.Precision)
	return buf, nil
}

// DecodeCheckpoint is the inverse of EncodeCheckpoint. Arbitrary or
// damaged bytes return an error, never a panic — restart recovery
// feeds journaled blobs straight in.
func DecodeCheckpoint(data []byte) (*CheckpointArtifact, error) {
	d := &ckptDecoder{buf: data}
	magic := d.bytes(len(ckptMagic))
	if d.err == nil && !bytes.Equal(magic, ckptMagic) {
		d.err = fmt.Errorf("bad magic")
	}
	art := &CheckpointArtifact{}
	art.Fingerprint = d.string()
	art.Shape = d.string()
	art.N = int(d.uint64())
	st := &art.State
	st.X = d.floats()
	st.Iter = int(d.uint64())
	st.Residual = d.float64()
	st.HistoryTail = d.floats()
	st.Tol = d.float64()
	st.MaxIter = int(d.uint64())
	st.Flexible = d.byte() != 0
	st.Label = d.string()
	st.Format = d.string()
	st.Precision = d.string()
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%d trailing bytes", len(d.buf))
	}
	if d.err != nil {
		return nil, fmt.Errorf("cache: decode checkpoint: %w", d.err)
	}
	return art, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloats(buf []byte, v []float64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
	for _, f := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// ckptDecoder consumes the encoded buffer front to back; the first
// failure sticks and every later read returns zero values.
type ckptDecoder struct {
	buf []byte
	err error
}

func (d *ckptDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > ckptMaxField || n > len(d.buf) {
		d.err = fmt.Errorf("truncated (want %d bytes, have %d)", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *ckptDecoder) uint64() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *ckptDecoder) byte() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *ckptDecoder) float64() float64 { return math.Float64frombits(d.uint64()) }

func (d *ckptDecoder) string() string {
	n := d.uint64()
	if d.err == nil && n > ckptMaxField {
		d.err = fmt.Errorf("absurd string length %d", n)
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *ckptDecoder) floats() []float64 {
	n := d.uint64()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > ckptMaxField/8 || int(n)*8 > len(d.buf) {
		d.err = fmt.Errorf("absurd float count %d for %d remaining bytes", n, len(d.buf))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.float64()
	}
	return out
}

// CheckpointWriter adapts the cache to solver.CheckpointSink: each
// snapshot the solver hands over is stored under Fingerprint⊕Shape
// (replacing the previous one — only the newest snapshot matters) and
// optionally forwarded to Notify, which the serving layer uses to
// persist the snapshot durably (journal blob + checkpoint record).
type CheckpointWriter struct {
	Ctx         context.Context // faults/obs resolution context of the solve
	Cache       *Cache
	Fingerprint string
	Shape       string
	// Notify, when non-nil, receives the cache key and the encoded
	// artifact after each store — the durable-persistence hook.
	Notify func(key string, encoded []byte)
}

// SaveCheckpoint implements solver.CheckpointSink.
func (w *CheckpointWriter) SaveCheckpoint(cp solver.Checkpoint) {
	if w == nil || w.Fingerprint == "" {
		return
	}
	ctx := w.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	art := &CheckpointArtifact{
		Fingerprint: w.Fingerprint,
		Shape:       w.Shape,
		N:           len(cp.X),
		State:       cp,
	}
	StoreCheckpoint(ctx, w.Cache, art)
	if w.Notify != nil {
		encoded, err := EncodeCheckpoint(art)
		if err != nil {
			return // never let persistence trouble touch the solve
		}
		w.Notify(CheckpointKey(w.Fingerprint, w.Shape), encoded)
	}
}
