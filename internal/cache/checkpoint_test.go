package cache

import (
	"context"
	"testing"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/solver"
)

func testCheckpointArtifact(fp string) *CheckpointArtifact {
	return &CheckpointArtifact{
		Fingerprint: fp,
		Shape:       CheckpointShape("amg", obs.PrecisionFull, "auto", 0),
		N:           4,
		State: solver.Checkpoint{
			X:           []float64{1, 2, 3, 4},
			Iter:        32,
			Residual:    1e-4,
			HistoryTail: []float64{1e-2, 1e-3, 1e-4},
			Tol:         1e-8,
			MaxIter:     500,
			Label:       "numerical.amg",
			Precision:   obs.PrecisionFull,
		},
	}
}

// TestCheckpointStoreLookupDrop: the store/lookup/drop lifecycle under
// fingerprint⊕shape keys, including shape isolation (a different
// request shape must not see the checkpoint).
func TestCheckpointStoreLookupDrop(t *testing.T) {
	c := New(0, 0)
	ctx := context.Background()
	art := testCheckpointArtifact("fp-1")
	StoreCheckpoint(ctx, c, art)

	got := LookupCheckpoint(ctx, c, "fp-1", art.Shape)
	if got == nil || got.State.Iter != 32 || len(got.State.X) != 4 {
		t.Fatalf("lookup: %+v", got)
	}
	if LookupCheckpoint(ctx, c, "fp-other", art.Shape) != nil {
		t.Error("foreign fingerprint found the checkpoint")
	}
	otherShape := CheckpointShape("ssor", obs.PrecisionFull, "auto", 0)
	if LookupCheckpoint(ctx, c, "fp-1", otherShape) != nil {
		t.Error("foreign request shape found the checkpoint")
	}

	DropCheckpoint(c, "fp-1", art.Shape)
	if LookupCheckpoint(ctx, c, "fp-1", art.Shape) != nil {
		t.Error("checkpoint survived DropCheckpoint")
	}
	// Nil-safety of every helper.
	StoreCheckpoint(ctx, nil, art)
	DropCheckpoint(nil, "fp-1", art.Shape)
	if LookupCheckpoint(ctx, nil, "fp-1", art.Shape) != nil {
		t.Error("nil cache produced a checkpoint")
	}
}

// TestCheckpointShapeDefaults: empty request fields canonicalize to
// the documented defaults so "amg, full, auto" spelled explicitly and
// implicitly share one checkpoint.
func TestCheckpointShapeDefaults(t *testing.T) {
	if got, want := CheckpointShape("", "", "", 0), CheckpointShape("amg", obs.PrecisionFull, "auto", 0); got != want {
		t.Errorf("defaulted shape %q != explicit %q", got, want)
	}
	if CheckpointShape("amg", "full", "auto", 0) == CheckpointShape("amg", "full", "auto", 7) {
		t.Error("iteration budget does not qualify the shape")
	}
}

// TestCheckpointFaults: checkpoint.save:fail drops the store
// silently; checkpoint.restore:fail hides the entry;
// checkpoint.restore:corrupt returns a poisoned copy without touching
// the cached original.
func TestCheckpointFaults(t *testing.T) {
	art := testCheckpointArtifact("fp-f")

	c := New(0, 0)
	ctx := faults.WithInjector(context.Background(), faults.MustParse("checkpoint.save:fail"))
	StoreCheckpoint(ctx, c, art)
	if c.Len() != 0 {
		t.Fatal("ActFail store still cached the checkpoint")
	}

	c = New(0, 0)
	StoreCheckpoint(context.Background(), c, art)
	ctx = faults.WithInjector(context.Background(), faults.MustParse("checkpoint.restore:fail"))
	if LookupCheckpoint(ctx, c, "fp-f", art.Shape) != nil {
		t.Error("ActFail lookup still returned the checkpoint")
	}

	ctx = faults.WithInjector(context.Background(), faults.MustParse("checkpoint.restore:corrupt"))
	bad := LookupCheckpoint(ctx, c, "fp-f", art.Shape)
	if bad == nil {
		t.Fatal("ActCorrupt lookup returned nothing")
	}
	poisoned := false
	for i := range bad.State.X {
		if bad.State.X[i] != art.State.X[i] { //irfusion:exact poisoning must have moved at least one coordinate
			poisoned = true
		}
	}
	if !poisoned {
		t.Error("ActCorrupt returned an unpoisoned iterate")
	}
	clean := LookupCheckpoint(context.Background(), c, "fp-f", art.Shape)
	for i := range clean.State.X {
		if clean.State.X[i] != art.State.X[i] { //irfusion:exact the cached original must be untouched by the poisoned copy
			t.Fatal("poisoning mutated the cached artifact")
		}
	}
}

// TestCheckpointEncodeDecode: the gob round trip used by the durable
// blob path preserves every field.
func TestCheckpointEncodeDecode(t *testing.T) {
	art := testCheckpointArtifact("fp-enc")
	data, err := EncodeCheckpoint(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != art.Fingerprint || back.Shape != art.Shape || back.N != art.N {
		t.Fatalf("identity lost: %+v", back)
	}
	if back.State.Iter != art.State.Iter || back.State.Residual != art.State.Residual { //irfusion:exact gob must reproduce the snapshot bits
		t.Fatalf("state lost: %+v", back.State)
	}
	for i := range art.State.X {
		if back.State.X[i] != art.State.X[i] { //irfusion:exact gob must reproduce the snapshot bits
			t.Fatalf("iterate lost at %d", i)
		}
	}
	if _, err := DecodeCheckpoint([]byte("junk")); err == nil {
		t.Error("junk decoded without error")
	}
}

// TestCheckpointWriterNotify: the solver-facing sink stores into the
// cache and forwards the encoded artifact (with its key) to the
// durable-persistence hook.
func TestCheckpointWriterNotify(t *testing.T) {
	c := New(0, 0)
	var gotKey string
	var gotBytes []byte
	w := &CheckpointWriter{
		Cache:       c,
		Fingerprint: "fp-w",
		Shape:       CheckpointShape("amg", "full", "auto", 0),
		Notify:      func(key string, encoded []byte) { gotKey, gotBytes = key, encoded },
	}
	w.SaveCheckpoint(testCheckpointArtifact("ignored").State)

	if got := LookupCheckpoint(context.Background(), c, "fp-w", w.Shape); got == nil {
		t.Fatal("sink did not store into the cache")
	}
	if gotKey != CheckpointKey("fp-w", w.Shape) {
		t.Errorf("notify key %q", gotKey)
	}
	back, err := DecodeCheckpoint(gotBytes)
	if err != nil {
		t.Fatalf("notify payload does not decode: %v", err)
	}
	if back.Fingerprint != "fp-w" || back.State.Iter != 32 {
		t.Errorf("notify payload %+v", back)
	}
	// A writer without a fingerprint is inert (budgeted solves).
	inert := &CheckpointWriter{Cache: c}
	inert.SaveCheckpoint(solver.Checkpoint{X: []float64{1}})
}
