// Package cache is the content-addressed artifact cache of the
// analysis pipeline: the piece that turns ECO-loop traffic — the same
// power grid re-analyzed after a strap edit — from full re-solves into
// warm starts. It is stdlib-only and concurrency-safe.
//
// Artifacts are keyed by a canonical fingerprint of the design
// (fingerprint.go): the SPICE deck is canonicalized — elements sorted,
// names and whitespace dropped, values normalized, symmetric node
// pairs ordered — and hashed, so two decks that describe the same
// electrical network map to the same key regardless of element order
// or formatting. On top of exact hits, artifact.go implements the
// delta-solve path: a cached neighbor whose conductance matrix differs
// in less than a configured fraction of entries donates its converged
// solution (as a PCG warm start) and its AMG hierarchy (as a
// preconditioner), skipping the dominant setup cost.
//
// The cache itself is a byte-bounded LRU with per-entry TTL. Every
// operation is safe on a nil *Cache (a nil cache is simply "caching
// off"), and the package follows the same context-or-global resolution
// pattern as internal/obs and internal/faults: context-aware code
// resolves the cache with ActiveOr(ctx), serving processes bind a
// per-process cache with WithCache, and the CLI opts in by installing
// a process-global cache with SetActive. The default global is nil, so
// nothing is cached unless a caller asks for it.
package cache

import (
	"container/list"
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"irfusion/internal/obs"
)

// Process-wide cache counters, registered in the obs global registry
// so they surface in run manifests (as per-run deltas), /metricsz, and
// the expvar debug endpoint.
var (
	cHit   = obs.GlobalCounter("cache.hit")
	cMiss  = obs.GlobalCounter("cache.miss")
	cStore = obs.GlobalCounter("cache.store")
	cEvict = obs.GlobalCounter("cache.evict")
)

// Default sizing used by NewFromEnv when the environment does not say
// otherwise.
const (
	DefaultMaxBytes = 256 << 20 // 256 MiB
	DefaultTTL      = time.Hour
)

// Cache is a size-bounded LRU + TTL store of content-addressed
// artifacts, shared by every worker of a serving process. All methods
// are safe for concurrent use and safe on a nil receiver (a nil cache
// never hits and never stores).
type Cache struct {
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // injectable clock for TTL tests

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	bytes   int64

	hits, misses, stores, evicts, expired atomic.Int64
}

// entry is one cached artifact.
type entry struct {
	key    string
	tag    string
	value  any
	bytes  int64
	stored time.Time
}

// New returns a cache bounded to maxBytes of accounted artifact size
// (<= 0 means DefaultMaxBytes) whose entries expire ttl after their
// store (<= 0 means DefaultTTL).
func New(maxBytes int64, ttl time.Duration) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
	}
}

// NewFromEnv builds a cache sized by the IRFUSION_CACHE_BYTES and
// IRFUSION_CACHE_TTL environment variables (bytes and a Go duration),
// falling back to the package defaults when unset or malformed.
func NewFromEnv() *Cache {
	maxBytes := int64(0)
	if s := os.Getenv("IRFUSION_CACHE_BYTES"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			maxBytes = v
		}
	}
	ttl := time.Duration(0)
	if s := os.Getenv("IRFUSION_CACHE_TTL"); s != "" {
		if v, err := time.ParseDuration(s); err == nil && v > 0 {
			ttl = v
		}
	}
	return New(maxBytes, ttl)
}

// Get returns the live value stored under key, refreshing its LRU
// position. Expired entries are removed and count as misses.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		cMiss.Inc()
		return nil, false
	}
	e := el.Value.(*entry)
	if c.expiredLocked(e) {
		c.removeLocked(el)
		c.expired.Add(1)
		c.misses.Add(1)
		cMiss.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	cHit.Inc()
	return e.value, true
}

// Put stores value under key, accounting bytes toward the size bound
// and evicting least-recently-used entries until the cache fits. The
// tag groups comparable entries for ScanTag (neighbor search). A
// value larger than the whole bound is still admitted — it simply
// evicts everything else and will be the next victim.
func (c *Cache) Put(key string, value any, bytes int64, tag string) {
	if c == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	e := &entry{key: key, tag: tag, value: value, bytes: bytes, stored: c.now()}
	c.entries[key] = c.ll.PushFront(e)
	c.bytes += bytes
	c.stores.Add(1)
	cStore.Inc()
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		victim := c.ll.Back()
		c.removeLocked(victim)
		c.evicts.Add(1)
		cEvict.Inc()
	}
}

// Drop removes the entry stored under key, if any — the reaction to a
// guard check exposing a stale or corrupted artifact.
func (c *Cache) Drop(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
		c.evicts.Add(1)
		cEvict.Inc()
	}
}

// ScanTag visits live entries carrying tag in most-recently-used
// order, calling fn until it returns false or limit matches were
// seen (limit <= 0 means unlimited). The callback runs under the
// cache lock, so it must be cheap and must not call back into the
// cache; copy what you need and compute outside.
func (c *Cache) ScanTag(tag string, limit int, fn func(key string, value any) bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.tag == tag {
			if c.expiredLocked(e) {
				c.removeLocked(el)
				c.expired.Add(1)
			} else {
				seen++
				if !fn(e.key, e.value) {
					return
				}
				if limit > 0 && seen >= limit {
					return
				}
			}
		}
		el = next
	}
}

// Stats is a point-in-time snapshot of cache occupancy and traffic,
// rendered on /metricsz by the serving layer.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`
}

// Stats snapshots the cache. A nil cache reports the zero value.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evicts.Load(),
		Expired:   c.expired.Load(),
	}
}

// Len returns the number of live entries (including not-yet-collected
// expired ones).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// expiredLocked reports whether e is past its TTL. Caller holds c.mu.
func (c *Cache) expiredLocked(e *entry) bool {
	return c.now().Sub(e.stored) > c.ttl
}

// removeLocked unlinks el from the list, index, and byte account.
// Caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// activeCache is the process-global cache, nil by default: nothing is
// cached unless a front end opts in with SetActive or a server binds
// a cache into its job contexts with WithCache.
var activeCache atomic.Pointer[Cache]

// Active returns the process-global cache, or nil when caching is
// off. Context-holding code must use ActiveOr instead (enforced by
// the hooksafe lint rule) so a context-bound cache is not ignored.
func Active() *Cache { return activeCache.Load() }

// SetActive installs c (which may be nil) as the process-global cache
// and returns the previous one, enabling save/restore in tests and
// CLI runs:
//
//	prev := cache.SetActive(cache.NewFromEnv())
//	defer cache.SetActive(prev)
func SetActive(c *Cache) *Cache {
	prev := activeCache.Load()
	activeCache.Store(c)
	return prev
}

// ctxKey is the private context key for a bound Cache.
type ctxKey struct{}

// WithCache returns a copy of ctx carrying c — how a serving process
// shares one per-process cache across all worker jobs while keeping
// the process-global slot untouched.
func WithCache(ctx context.Context, c *Cache) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the cache bound to ctx, or nil when none is
// bound (or ctx is nil).
func FromContext(ctx context.Context) *Cache {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Cache)
	return c
}

// ActiveOr resolves the cache for a context-aware call: the
// context-bound cache when present, otherwise the process-global
// Active() one (which is usually nil — caching is opt-in).
func ActiveOr(ctx context.Context) *Cache {
	if c := FromContext(ctx); c != nil {
		return c
	}
	return Active()
}
