package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{File: "internal/serve/api.go", Line: 190, Rule: "ctxleak", Message: "cancel overwritten"},
		{File: "internal/journal/journal.go", Line: 358, Rule: "locksafe", Message: "lock across fsync"},
		{File: "weird.go", Line: 0, Rule: "neverheardofit", Message: "future rule"},
	}
	var sb strings.Builder
	if err := WriteSARIF(&sb, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "irfusionlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	// All eleven known rules plus the on-the-fly one.
	if got, want := len(run.Tool.Driver.Rules), len(sarifRules)+1; got != want {
		t.Errorf("rule count %d, want %d", got, want)
	}
	if len(run.Results) != 3 {
		t.Fatalf("result count %d, want 3", len(run.Results))
	}
	for i, res := range run.Results {
		if res.RuleID != diags[i].Rule {
			t.Errorf("result %d ruleId %q, want %q", i, res.RuleID, diags[i].Rule)
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result %d ruleIndex %d does not point at %q", i, res.RuleIndex, res.RuleID)
		}
		if got := res.Locations[0].Physical.Artifact.URI; got != diags[i].File {
			t.Errorf("result %d uri %q, want %q", i, got, diags[i].File)
		}
	}
	// Line 0 must be clamped: SARIF startLine is 1-based.
	if got := run.Results[2].Locations[0].Physical.Region.StartLine; got != 1 {
		t.Errorf("zero line rendered as startLine %d, want 1", got)
	}
}

func TestWriteSARIFEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteSARIF(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"results": []`) {
		t.Errorf("empty run must carry an explicit empty results array:\n%s", sb.String())
	}
}
