package lint

// atomicmix: module-wide atomic-access discipline. A variable or
// struct field whose address is ever passed to a sync/atomic function
// (atomic.AddInt64(&x, ...), atomic.LoadUint32(&f.n), ...) may not be
// read or written directly anywhere else in the module — a single
// plain access next to atomic ones is a data race the race detector
// only catches when the schedule cooperates, and on weakly ordered
// hardware a torn or stale read even when it never trips.
//
// The rule is two-phase: every package's syntax is scanned for
// legacy-style atomic calls first (collectAtomic), recording the
// target objects and sanctioning the idents inside the atomic call's
// address argument; then every package is re-scanned (checkAtomicMix)
// and any other use of a recorded object is a finding. Declarations
// are not uses — `var next int64` followed by only-atomic access is
// the sanctioned pattern (see parallel.Pool's chunk cursors).
//
// The new-style wrapper types (atomic.Int64 and friends) make mixing
// unrepresentable and are the recommended fix; their method calls are
// ignored here by construction (they take no address argument).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collectAtomic records objects accessed through sync/atomic in p.
func (r *Runner) collectAtomic(p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := calleeFunc(p.Info, call)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods of the wrapper types: mixing is impossible.
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedVar(p.Info, addr.X); obj != nil {
				if _, seen := r.atomicObjs[obj]; !seen {
					r.atomicObjs[obj] = call.Pos()
				}
			}
			// Every ident inside the address argument is part of the
			// atomic access itself, not a plain one.
			ast.Inspect(addr, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					r.atomicOK[id] = true
				}
				return true
			})
			return true
		})
	}
}

// checkAtomicMix reports plain uses of atomically accessed objects.
// Runs after collectAtomic has seen every package.
func (r *Runner) checkAtomicMix(p *Package) {
	if len(r.atomicObjs) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || r.atomicOK[id] {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			atomicAt, tracked := r.atomicObjs[obj]
			if !tracked {
				return true
			}
			at := r.loader.Fset.Position(atomicAt)
			r.report(id.Pos(), "atomicmix", "%s is accessed via sync/atomic (%s:%d) but read or written directly here; use sync/atomic for every access, or switch to the atomic.Int64-style wrapper types",
				obj.Name(), r.relFile(at.Filename), at.Line)
			return true
		})
	}
}

// addressedVar resolves the operand of an & expression to the
// variable or field object it names, nil when it is not an
// ident/field chain (array elements and map values are not tracked).
func addressedVar(info *types.Info, e ast.Expr) types.Object {
	var obj types.Object
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[e.Sel]
		}
	default:
		return nil
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}
