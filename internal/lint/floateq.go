package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatEq flags == and != between floating-point operands unless
// the comparison carries an //irfusion:exact directive (same line or
// the line before) stating why exact equality is intended. In
// numerical code almost every float equality is either a bug (values
// that differ by rounding) or a deliberate exact-zero sentinel test —
// the directive forces the distinction into the source.
func (r *Runner) checkFloatEq(p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, be.X) && !isFloat(p, be.Y) {
				return true
			}
			if waived(r.loader.Fset, r.exact, be.Pos()) {
				return true
			}
			r.report(be.Pos(), "floateq",
				"float %s comparison; use a tolerance, or annotate //irfusion:exact <why> if exact equality is intended", be.Op)
			return true
		})
	}
}

func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
