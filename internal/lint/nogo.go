package lint

import "go/ast"

// goroutinePackages are the only packages allowed to contain bare go
// statements: the worker pool owns compute concurrency, and the serve
// layer owns request/job lifecycle. Everywhere else a goroutine is an
// unmanaged lifetime — no join, no panic barrier, no cancellation.
var goroutinePackages = map[string]bool{
	"irfusion/internal/parallel": true,
	"irfusion/internal/serve":    true,
}

// checkNoGo flags go statements outside the packages that own
// goroutine lifecycles. Code that needs concurrency routes it through
// parallel.Pool (compute) or the serve job queue (requests).
func (r *Runner) checkNoGo(p *Package) {
	if goroutinePackages[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				r.report(g.Pos(), "nogo",
					"go statement outside internal/parallel and internal/serve; route concurrency through the worker pool or the job queue")
			}
			return true
		})
	}
}
