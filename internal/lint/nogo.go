package lint

import "go/ast"

// goroutinePackages are the only packages allowed to contain bare go
// statements: the worker pool owns compute concurrency, the serve
// layer owns request/job lifecycle, and the cluster gateway owns its
// probe-loop and drain lifecycle. Everywhere else a goroutine is an
// unmanaged lifetime — no join, no panic barrier, no cancellation.
var goroutinePackages = map[string]bool{
	"irfusion/internal/parallel": true,
	"irfusion/internal/serve":    true,
	"irfusion/internal/cluster":  true,
}

// checkNoGo flags go statements outside the packages that own
// goroutine lifecycles. Code that needs concurrency routes it through
// parallel.Pool (compute) or the serve job queue (requests).
func (r *Runner) checkNoGo(p *Package) {
	if goroutinePackages[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				r.report(g.Pos(), "nogo",
					"go statement outside internal/parallel, internal/serve, and internal/cluster; route concurrency through the worker pool or the job queue")
			}
			return true
		})
	}
}
