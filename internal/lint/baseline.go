package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is a multiset of accepted findings, keyed by
// Diagnostic.Key (file|rule|message — line numbers excluded so edits
// elsewhere in a file don't invalidate entries). It lets the linter
// land with teeth on a tree that has a known, reviewed long tail
// (e.g. floateq in pre-existing feature code) while still failing on
// anything new.
type Baseline struct {
	counts map[string]int
}

// LoadBaseline reads a baseline file: one Key per line, '#' comments
// and blank lines ignored. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.counts[line]++
	}
	return b, sc.Err()
}

// Filter returns the diagnostics not covered by the baseline. Each
// baseline entry absorbs at most as many findings as it was recorded
// with, so a baselined finding that multiplies still fails the build.
func (b *Baseline) Filter(diags []Diagnostic) []Diagnostic {
	remaining := map[string]int{}
	for k, v := range b.counts {
		remaining[k] = v
	}
	var out []Diagnostic
	for _, d := range diags {
		if remaining[d.Key()] > 0 {
			remaining[d.Key()]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaseline writes the findings as a baseline file, sorted and
// with a header explaining the contract.
func WriteBaseline(path string, diags []Diagnostic) error {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, d.Key())
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# irfusionlint baseline: accepted pre-existing findings.\n")
	sb.WriteString("# One `file|rule|message` key per line; duplicate keys absorb that\n")
	sb.WriteString("# many findings. Remove lines as the findings are fixed — never add\n")
	sb.WriteString("# lines to silence a new finding without review.\n")
	for _, k := range keys {
		fmt.Fprintln(&sb, k)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
