package lint

// SARIF 2.1.0 output for code-scanning upload: CI writes the
// post-baseline findings as a SARIF log so they surface as annotations
// on the PR diff instead of only as a failed job log. Only the subset
// of the format GitHub's upload action consumes is emitted — tool
// driver with per-rule metadata, and one result per diagnostic with a
// physical location relative to the source root.

import (
	"encoding/json"
	"io"
)

// ruleMeta is the SARIF-facing description of one lint rule.
type ruleMeta struct {
	id    string
	short string
}

// sarifRules lists every rule the runner can emit, in stable order.
// The "directive" pseudo-rule covers malformed //irfusion: comments.
var sarifRules = []ruleMeta{
	{"hotpath", "//irfusion:hotpath functions must not allocate and may only call hotpath or waived functions"},
	{"ctxcheck", "exported ...Ctx functions must observe their context in loops and must not drop it"},
	{"hooksafe", "observability and fault hooks must be resolved via their nil-safe resolvers"},
	{"errwrap", "fmt.Errorf with an error argument must wrap with %w"},
	{"floateq", "float ==/!= requires an //irfusion:exact rationale"},
	{"nogo", "goroutines are spawned only in the packages that own lifecycle management"},
	{"locksafe", "locks are released on every path and never held across blocking operations"},
	{"ctxleak", "context cancel funcs are called on every path, deferred, or handed off"},
	{"atomicmix", "a variable accessed via sync/atomic is never read or written directly"},
	{"sitedrift", "fault-site, counter, and manifest-gate literals match their declaring registries"},
	{"directive", "//irfusion: directives must be known and carry a rationale"},
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// WriteSARIF writes diags as a single-run SARIF 2.1.0 log. Diagnostic
// file paths are already module-relative with forward slashes, which
// is exactly the uri form SARIF wants against %SRCROOT%.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	index := map[string]int{}
	rules := make([]sarifRule, 0, len(sarifRules))
	for i, rm := range sarifRules {
		index[rm.id] = i
		rules = append(rules, sarifRule{ID: rm.id, ShortDescription: sarifMessage{Text: rm.short}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ri, ok := index[d.Rule]
		if !ok {
			// A rule this table does not know about yet: register it on
			// the fly so the log stays self-describing.
			ri = len(rules)
			index[d.Rule] = ri
			rules = append(rules, sarifRule{ID: d.Rule, ShortDescription: sarifMessage{Text: d.Rule}})
		}
		line := d.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: d.File, URIBaseID: "%SRCROOT%"},
				Region:   sarifRegion{StartLine: line},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "irfusionlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
