package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// checkErrwrap flags fmt.Errorf calls that receive an error-typed
// argument but whose (constant) format string contains no %w verb.
// Such a wrap flattens the cause to text: errors.Is/As stop seeing it,
// which breaks the retry classification in core.RunLadder and the
// error_kind mapping in the serve layer. %v on non-error values (a
// recovered panic payload, say) is fine and not flagged.
func (r *Runner) checkErrwrap(p *Package) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			obj, isConv := callee(p.Info, call)
			if isConv {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic format string; nothing to prove
			}
			format := constant.StringVal(tv.Value)
			if strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				at, ok := p.Info.Types[arg]
				if !ok {
					continue
				}
				if types.AssignableTo(at.Type, errType) {
					r.report(call.Pos(), "errwrap",
						"fmt.Errorf receives an error but the format has no %%w; the cause becomes invisible to errors.Is/As")
					break
				}
			}
			return true
		})
	}
}
