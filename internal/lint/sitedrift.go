package lint

// sitedrift: cross-registry drift checking for the module's three
// string-keyed registries. Each registry has a single declaring home;
// every literal that *uses* a key must match a declaration, and
// declarations must not go dead:
//
//   - fault sites: the faults package's Site* constants are the
//     registry. Every (*Injector).Fire call must pass one of them (a
//     typo'd site silently never fires — the bug class that motivated
//     making faults.Parse validate sites against knownSites); every
//     declared site must be fired somewhere in non-test code (a dead
//     site is a chaos spec that tests nothing); and the knownSites
//     map must list exactly the Site* constants, in both directions.
//   - obs counters: obs.GlobalCounter(name) registrations are the
//     registry; obs.CounterValue(name) reads of an unregistered name
//     return a permanent zero, so they are findings. (The reverse
//     direction is deliberately unchecked: counters surface through
//     the manifest and /metricsz generically, so "registered but
//     never read by name" is the normal case, not drift.)
//   - manifestcheck gates: a package that declares a gateSpec type
//     and gates table (cmd/manifestcheck) is checked two ways — every
//     gate's section must be a top-level JSON key of obs.Manifest,
//     and every flag registered with a constant name must appear in
//     the table. Renaming a manifest field or adding an undeclared
//     gate flag fails lint instead of silently gating nothing.
//
// Detection keys on package *names* ("faults", "obs") and type names
// (Injector, Manifest, gateSpec) rather than hard-coded import paths,
// so the fixture self-tests can stand up miniature registries under
// testdata without touching the real ones.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// litUse is one constant-string use site.
type litUse struct {
	val string
	pos token.Pos
}

// collectSiteDrift gathers p's registry uses: Fire sites (checked
// against the callee package's Site* constants inline), counter
// registrations, and counter reads. Runs for every package before
// reportSiteDrift draws the module-wide conclusions.
func (r *Runner) collectSiteDrift(p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := calleeFunc(p.Info, call)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Name() == "Fire" && fn.Pkg().Name() == "faults" && recvTypeName(fn) == "Injector":
				decl := fn.Pkg()
				site, ok := constString(p.Info, call.Args[0])
				if !ok {
					r.report(call.Args[0].Pos(), "sitedrift", "fault site must be a faults.Site* constant, not a computed value, so drift checking can see it")
					return true
				}
				if fired := r.siteFired[decl]; fired == nil {
					r.siteFired[decl] = map[string]bool{site: true}
				} else {
					fired[site] = true
				}
				if _, known := declaredSites(decl)[site]; !known {
					r.report(call.Args[0].Pos(), "sitedrift", "unknown fault site %q: no Site* constant in package %s declares it — a typo'd site never fires", site, decl.Name())
				}
			case fn.Name() == "GlobalCounter" && fn.Pkg().Name() == "obs" && recvTypeName(fn) == "":
				name, ok := constString(p.Info, call.Args[0])
				if !ok {
					r.report(call.Args[0].Pos(), "sitedrift", "counter name must be a constant string so drift checking can see it")
					return true
				}
				r.counterRegs[name] = true
			case fn.Name() == "CounterValue" && fn.Pkg().Name() == "obs" && recvTypeName(fn) == "":
				name, ok := constString(p.Info, call.Args[0])
				if !ok {
					r.report(call.Args[0].Pos(), "sitedrift", "counter name must be a constant string so drift checking can see it")
					return true
				}
				r.counterReads = append(r.counterReads, litUse{val: name, pos: call.Args[0].Pos()})
			}
			return true
		})
	}
}

// reportSiteDrift draws the module-wide conclusions after every
// package has been collected: dead fault sites, knownSites drift, and
// counter reads with no registration.
func (r *Runner) reportSiteDrift() {
	for _, p := range r.pkgs {
		if p.Pkg.Name() == "faults" {
			r.checkFaultsRegistry(p)
		}
	}
	for _, use := range r.counterReads {
		if !r.counterRegs[use.val] {
			r.report(use.pos, "sitedrift", "counter %q is read via obs.CounterValue but never registered with obs.GlobalCounter — a typo here reads a permanent zero", use.val)
		}
	}
}

// checkFaultsRegistry enforces the registry-side contracts of a
// faults package in the analyzed set: no dead sites, and a knownSites
// map that lists exactly the Site* constants.
func (r *Runner) checkFaultsRegistry(p *Package) {
	decls := declaredSites(p.Pkg)
	if len(decls) == 0 {
		return
	}
	fired := r.siteFired[p.Pkg]
	names := make([]string, 0, len(decls))
	byName := map[string]string{}
	for val, name := range decls {
		names = append(names, name)
		byName[name] = val
	}
	sort.Strings(names)

	for _, name := range names {
		val := byName[name]
		if !fired[val] {
			r.report(p.Pkg.Scope().Lookup(name).Pos(), "sitedrift", "fault site %s (%q) is declared but never fired; delete it or wire its Fire call", name, val)
		}
	}

	lit, litPos := knownSitesLiteral(p)
	if lit == nil {
		r.report(p.Files[0].Name.Pos(), "sitedrift", "package %s declares Site* constants but no knownSites map literal; Parse cannot validate spec sites against the registry", p.Pkg.Name())
		return
	}
	inMap := map[string]token.Pos{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if val, ok := constString(p.Info, kv.Key); ok {
			inMap[val] = kv.Key.Pos()
		}
	}
	for _, name := range names {
		val := byName[name]
		if _, ok := inMap[val]; !ok {
			r.report(litPos, "sitedrift", "fault site %s (%q) is missing from knownSites — Parse would reject chaos specs that name it", name, val)
		}
	}
	extras := make([]string, 0)
	for val := range inMap {
		if _, ok := decls[val]; !ok {
			extras = append(extras, val)
		}
	}
	sort.Strings(extras)
	for _, val := range extras {
		r.report(inMap[val], "sitedrift", "knownSites entry %q matches no Site* constant; remove it or declare the site", val)
	}
}

// checkManifestGates runs on packages that declare a gateSpec type
// and gates table (cmd/manifestcheck and its fixtures): sections must
// be JSON keys of the imported obs.Manifest, and constant-named flag
// registrations must appear in the table.
func (r *Runner) checkManifestGates(p *Package) {
	specObj, ok := p.Pkg.Scope().Lookup("gateSpec").(*types.TypeName)
	if !ok {
		return
	}
	spec, ok := specObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	lit := packageVarLiteral(p, "gates")
	if lit == nil {
		return
	}
	tags := manifestJSONKeys(p.Pkg)
	flags := map[string]bool{}
	for _, elt := range lit.Elts {
		entry, ok := unparen(elt.(ast.Expr)).(*ast.CompositeLit)
		if !ok {
			continue
		}
		fields := structLitFields(spec, entry)
		if flagVal, ok := constString(p.Info, fields["flag"]); ok {
			flags[flagVal] = true
		}
		section, ok := constString(p.Info, fields["section"])
		if !ok {
			continue
		}
		if tags != nil && !tags[section] {
			flagName, _ := constString(p.Info, fields["flag"])
			r.report(entry.Pos(), "sitedrift", "gate -%s inspects manifest section %q, which matches no top-level JSON key of obs.Manifest", flagName, section)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := calleeFunc(p.Info, call)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "flag" || recvTypeName(fn) != "" {
				return true
			}
			switch fn.Name() {
			case "Bool", "String", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
			default:
				return true
			}
			name, ok := constString(p.Info, call.Args[0])
			if !ok {
				return true // table-driven registration; the table is the check
			}
			if !flags[name] {
				r.report(call.Args[0].Pos(), "sitedrift", "flag -%s has no entry in the gates table; declare which manifest section it inspects", name)
			}
			return true
		})
	}
}

// declaredSites scans a package scope for exported Site* string
// constants, returning value -> constant name. Cached per package.
var siteDeclCache = map[*types.Package]map[string]string{}

func declaredSites(pkg *types.Package) map[string]string {
	if m, ok := siteDeclCache[pkg]; ok {
		return m
	}
	m := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Site") || name == "Site" {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		m[constant.StringVal(c.Val())] = name
	}
	siteDeclCache[pkg] = m
	return m
}

// knownSitesLiteral finds the composite literal initializing the
// package-level knownSites var.
func knownSitesLiteral(p *Package) (*ast.CompositeLit, token.Pos) {
	lit := packageVarLiteral(p, "knownSites")
	if lit == nil {
		return nil, token.NoPos
	}
	return lit, lit.Pos()
}

// packageVarLiteral finds the composite literal a package-level var
// is initialized with, nil when absent or not a literal.
func packageVarLiteral(p *Package, name string) *ast.CompositeLit {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					if lit, ok := unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return lit
					}
				}
			}
		}
	}
	return nil
}

// structLitFields maps a composite literal's elements to the struct's
// field names, handling both keyed and positional forms.
func structLitFields(st *types.Struct, lit *ast.CompositeLit) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			out[st.Field(i).Name()] = elt.(ast.Expr)
		}
	}
	return out
}

// manifestJSONKeys collects the top-level JSON keys of the Manifest
// struct from the directly imported package named "obs"; nil when no
// such import exists (then the section check is skipped).
func manifestJSONKeys(pkg *types.Package) map[string]bool {
	for _, imp := range pkg.Imports() {
		if imp.Name() != "obs" {
			continue
		}
		tn, ok := imp.Scope().Lookup("Manifest").(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		keys := map[string]bool{}
		for i := 0; i < st.NumFields(); i++ {
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if name == "" {
				name = st.Field(i).Name()
			}
			if name != "-" {
				keys[name] = true
			}
		}
		return keys
	}
	return nil
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
