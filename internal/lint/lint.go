// Package lint implements irfusionlint, the project's own static
// analysis pass. It type-checks the whole module from source (stdlib
// go/parser + go/types only — no third-party analysis framework) and
// enforces the cross-cutting invariants the test suite can only probe
// pointwise:
//
//   - hotpath: functions marked //irfusion:hotpath may not allocate
//     and may only call other hotpath (or explicitly waived) functions.
//     The AllocsPerRun guards prove representative call sites are
//     clean; this rule proves the whole annotated call graph is.
//   - ctxcheck: exported ...Ctx functions must observe their context
//     inside loops, and context-holding code may not silently drop a
//     context by calling the non-Ctx variant of a function.
//   - hooksafe: observability and fault hooks must be resolved through
//     their nil-safe resolvers (ActiveOr), never via FromContext or by
//     hand-rolled construction.
//   - errwrap: fmt.Errorf with an error argument must wrap with %w so
//     errors.Is/As-driven classification keeps working.
//   - floateq: float ==/!= needs an //irfusion:exact annotation with a
//     rationale; unannotated exact comparison is almost always a bug
//     in numerical code.
//   - nogo: goroutines are spawned only inside internal/parallel and
//     internal/serve, the two packages that own lifecycle management.
//
// Four flow-sensitive rules run on an intraprocedural CFG (cfg.go)
// with a forward dataflow solver:
//
//   - locksafe: every sync.Mutex/RWMutex Lock is released on all paths
//     out of the function, and no lock is held across a blocking
//     operation (channel op, select without default, Wait, a ...Ctx
//     solver call, fsync-class I/O) unless annotated.
//   - ctxleak: cancel funcs from context.WithCancel/WithTimeout/... are
//     called on every path, deferred, or handed off; discarding or
//     overwriting a pending cancel is a finding.
//   - atomicmix: a variable accessed via sync/atomic anywhere may not
//     be read or written directly anywhere else in the module.
//   - sitedrift: fault-site, obs-counter, and manifestcheck-gate string
//     literals must round-trip against their declaring registries —
//     typos, dead sites, and gates matching no manifest field are
//     findings (see sitedrift.go).
//
// Directives are ordinary comments: //irfusion:hotpath and
// //irfusion:hotpath-allow <rationale> in a function's doc comment;
// //irfusion:exact <rationale>, //irfusion:ctx-ok <rationale>, and
// //irfusion:lock-ok <rationale> on (or on the line before) the
// statement they waive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. File is module-relative with forward
// slashes so baselines and CI output are machine-independent.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Rule, d.Message)
}

// Key is the baseline identity of a finding. It deliberately excludes
// the line number so unrelated edits above a baselined finding don't
// invalidate the baseline.
func (d Diagnostic) Key() string {
	return d.File + "|" + d.Rule + "|" + d.Message
}

// funcClass is the hotpath classification of a function, attached via
// doc-comment directives.
type funcClass int

const (
	classNone funcClass = iota
	// classHotpath: body is fully checked — no allocation, calls only
	// into hotpath/allowed functions.
	classHotpath
	// classHotpathAllow: callable from hotpath code without being
	// checked itself; the directive's rationale documents why (e.g.
	// "allocates only on the parallel dispatch path").
	classHotpathAllow
)

// Runner holds the cross-package state the rules share: the directive
// maps and the loaded packages. Rules are methods on it.
type Runner struct {
	loader *Loader
	pkgs   []*Package

	class  map[types.Object]funcClass // function directive classes, all packages
	exact  map[string]map[int]bool    // file -> lines waived by //irfusion:exact
	ctxOK  map[string]map[int]bool    // file -> lines waived by //irfusion:ctx-ok
	lockOK map[string]map[int]bool    // file -> lines waived by //irfusion:lock-ok

	// atomicmix cross-package state (collectAtomic fills, checkAtomicMix
	// reads).
	atomicObjs map[types.Object]token.Pos // first atomic access per object
	atomicOK   map[*ast.Ident]bool        // idents inside atomic calls

	// sitedrift cross-package state (collectSiteDrift fills,
	// reportSiteDrift reads).
	siteFired    map[*types.Package]map[string]bool // registry pkg -> fired sites
	counterRegs  map[string]bool                    // obs.GlobalCounter names
	counterReads []litUse                           // obs.CounterValue call sites

	diags []Diagnostic
}

// Analyze runs every rule over pkgs (directives are collected from all
// of them first, so cross-package hotpath calls resolve) and returns
// the findings sorted by file, line, rule.
func Analyze(l *Loader, pkgs []*Package) []Diagnostic {
	r := &Runner{
		loader:      l,
		pkgs:        pkgs,
		class:       map[types.Object]funcClass{},
		exact:       map[string]map[int]bool{},
		ctxOK:       map[string]map[int]bool{},
		lockOK:      map[string]map[int]bool{},
		atomicObjs:  map[types.Object]token.Pos{},
		atomicOK:    map[*ast.Ident]bool{},
		siteFired:   map[*types.Package]map[string]bool{},
		counterRegs: map[string]bool{},
	}
	// Collection phases first: directives and the module-wide registries
	// (atomic objects, fired fault sites, counter names) must be complete
	// before any package is checked.
	for _, p := range pkgs {
		r.collectDirectives(p)
	}
	for _, p := range pkgs {
		r.collectAtomic(p)
		r.collectSiteDrift(p)
	}
	for _, p := range pkgs {
		r.checkHotpath(p)
		r.checkCtx(p)
		r.checkHooksafe(p)
		r.checkErrwrap(p)
		r.checkFloatEq(p)
		r.checkNoGo(p)
		r.checkLocksafe(p)
		r.checkCtxleak(p)
		r.checkAtomicMix(p)
		r.checkManifestGates(p)
	}
	r.reportSiteDrift()
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return r.diags
}

// Run is the one-call entry point used by cmd/irfusionlint: load the
// module tree rooted at modRoot and analyze it.
func Run(modRoot string) ([]Diagnostic, error) {
	l, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadTree()
	if err != nil {
		return nil, err
	}
	return Analyze(l, pkgs), nil
}

// report records a finding at pos.
func (r *Runner) report(pos token.Pos, rule, format string, args ...any) {
	p := r.loader.Fset.Position(pos)
	r.diags = append(r.diags, Diagnostic{
		File:    r.relFile(p.Filename),
		Line:    p.Line,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// relFile rewrites an absolute filename as module-relative.
func (r *Runner) relFile(name string) string {
	if rel, err := filepath.Rel(r.loader.ModRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// collectDirectives extracts every //irfusion: directive in p: function
// classes from doc comments into r.class (keyed by the *types.Func so
// call sites in other packages resolve), and line waivers for exact and
// ctx-ok. Malformed directives are findings themselves (rule
// "directive") — a waiver without a rationale is indistinguishable
// from a silenced check.
func (r *Runner) collectDirectives(p *Package) {
	for _, f := range p.Files {
		fname := r.loader.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//irfusion:")
				if !ok {
					continue
				}
				name, rationale, _ := strings.Cut(rest, " ")
				rationale = strings.TrimSpace(rationale)
				switch name {
				case "hotpath":
					// Rationale optional: the contract is the directive.
				case "hotpath-allow", "exact", "ctx-ok", "lock-ok":
					if rationale == "" {
						r.report(c.Pos(), "directive", "//irfusion:%s requires a rationale", name)
					}
				default:
					r.report(c.Pos(), "directive", "unknown directive //irfusion:%s", name)
					continue
				}
				if name == "exact" || name == "ctx-ok" || name == "lock-ok" {
					// The waiver covers its own line (inline comment)
					// and the next line (directive on the preceding
					// line).
					line := r.loader.Fset.Position(c.Pos()).Line
					m := r.exact
					switch name {
					case "ctx-ok":
						m = r.ctxOK
					case "lock-ok":
						m = r.lockOK
					}
					if m[fname] == nil {
						m[fname] = map[int]bool{}
					}
					m[fname][line] = true
					m[fname][line+1] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			cls := classNone
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, "//irfusion:")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(rest, " ")
				switch name {
				case "hotpath":
					cls = classHotpath
				case "hotpath-allow":
					cls = classHotpathAllow
				}
			}
			if cls == classNone {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				r.class[obj] = cls
			}
		}
	}
}

// waived reports whether the statement at pos carries the given
// line-waiver directive (same line or the line before).
func waived(fset *token.FileSet, m map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	return m[p.Filename][p.Line]
}

// callee resolves the object a call expression invokes: a *types.Func
// for static calls and method calls, a *types.Var for calls through
// function values, a *types.Builtin for builtins, nil when the callee
// is a computed expression. isConv reports a type conversion.
func callee(info *types.Info, call *ast.CallExpr) (obj types.Object, isConv bool) {
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil, true
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun], false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj(), false
		}
		// Package-qualified reference (obs.ActiveOr): no Selection
		// entry, the Sel ident resolves directly.
		return info.Uses[fun.Sel], false
	case *ast.IndexExpr:
		return callee(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return callee(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil, false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isModulePath reports whether path belongs to the module under
// analysis.
func (r *Runner) isModulePath(path string) bool {
	return path == r.loader.ModPath || strings.HasPrefix(path, r.loader.ModPath+"/")
}

// funcName renders obj for messages: pkg.Func or (pkg.Recv).Method.
func funcName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return obj.Name()
}
