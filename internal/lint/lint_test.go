package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// modRoot is the module root relative to this package's directory,
// where go test runs us.
const modRoot = "../.."

// loadFixture type-checks one seeded package under testdata/src (the
// tree walk skips testdata, so these only ever load here) and runs
// the full rule set over it.
func loadFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	l, err := NewLoader(modRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return Analyze(l, []*Package{p})
}

// requireFinding asserts at least one diagnostic of the given rule
// whose message contains substr.
func requireFinding(t *testing.T, diags []Diagnostic, rule, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule == rule && strings.Contains(d.Message, substr) {
			if d.Line <= 0 || d.File == "" {
				t.Errorf("finding %v lacks a position", d)
			}
			return
		}
	}
	t.Errorf("no %s finding containing %q; got %v", rule, substr, diags)
}

// forbidRule asserts no diagnostic of the given rule is present.
func forbidRule(t *testing.T, diags []Diagnostic, rule string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule == rule {
			t.Errorf("unexpected %s finding: %v", rule, d)
		}
	}
}

func TestHotpathFixture(t *testing.T) {
	diags := loadFixture(t, "hotpathfix")
	requireFinding(t, diags, "hotpath", "make allocates")
	requireFinding(t, diags, "hotpath", "neither //irfusion:hotpath nor //irfusion:hotpath-allow")
	requireFinding(t, diags, "hotpath", "function literal allocates a closure")
	requireFinding(t, diags, "hotpath", "call through function value")
}

func TestCtxFixture(t *testing.T) {
	diags := loadFixture(t, "ctxfix")
	requireFinding(t, diags, "ctxcheck", "loop calls into the module without observing ctx")
	requireFinding(t, diags, "ctxcheck", "receives a context but calls")
}

func TestHooksafeFixture(t *testing.T) {
	diags := loadFixture(t, "hooksafefix")
	requireFinding(t, diags, "hooksafe", "FromContext may return nil")
	requireFinding(t, diags, "hooksafe", "reads the global obs.Active()")
	requireFinding(t, diags, "hooksafe", "construct obs.Recorder through its package constructor")
}

func TestErrwrapFixture(t *testing.T) {
	diags := loadFixture(t, "errwrapfix")
	requireFinding(t, diags, "errwrap", "format has no %w")
	// Exactly one: the %v on a plain value in Describe must not count.
	n := 0
	for _, d := range diags {
		if d.Rule == "errwrap" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 errwrap finding, got %d: %v", n, diags)
	}
}

func TestFloatEqFixture(t *testing.T) {
	diags := loadFixture(t, "floateqfix")
	requireFinding(t, diags, "floateq", "float == comparison")
	n := 0
	for _, d := range diags {
		if d.Rule == "floateq" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("annotated comparison was flagged too: %v", diags)
	}
}

func TestNoGoFixture(t *testing.T) {
	diags := loadFixture(t, "nogofix")
	requireFinding(t, diags, "nogo", "go statement outside")
}

func TestDirectiveRationaleRequired(t *testing.T) {
	diags := loadFixture(t, "directivefix")
	requireFinding(t, diags, "directive", "requires a rationale")
	// The (malformed) waiver still suppresses the floateq finding: the
	// author's intent is recorded, just incompletely.
	forbidRule(t, diags, "floateq")
}

func TestLocksafeFixture(t *testing.T) {
	diags := loadFixture(t, "locksafefix")
	requireFinding(t, diags, "locksafe", "not released on every path")
	requireFinding(t, diags, "locksafe", "held across a channel send")
	requireFinding(t, diags, "locksafe", "held across sync.WaitGroup.Wait")
	// LoopLeak: the labeled break leaves the lock held at exit — at
	// least two exit-path findings total (LeakOnError and LoopLeak).
	n := 0
	for _, d := range diags {
		if d.Rule == "locksafe" && strings.Contains(d.Message, "not released on every path") {
			n++
		}
	}
	if n != 2 {
		t.Errorf("want 2 exit-path locksafe findings, got %d: %v", n, diags)
	}
}

func TestLocksafeCleanFixture(t *testing.T) {
	forbidRule(t, loadFixture(t, "locksafeclean"), "locksafe")
}

func TestCtxleakFixture(t *testing.T) {
	diags := loadFixture(t, "ctxleakfix")
	requireFinding(t, diags, "ctxleak", "overwritten before being called")
	requireFinding(t, diags, "ctxleak", "not called on every path")
	requireFinding(t, diags, "ctxleak", "discarded")
}

func TestCtxleakCleanFixture(t *testing.T) {
	forbidRule(t, loadFixture(t, "ctxleakclean"), "ctxleak")
}

func TestAtomicMixFixture(t *testing.T) {
	diags := loadFixture(t, "atomicmixfix")
	requireFinding(t, diags, "atomicmix", "accessed via sync/atomic")
	n := 0
	for _, d := range diags {
		if d.Rule == "atomicmix" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 atomicmix finding (the atomic call itself must not count), got %d: %v", n, diags)
	}
}

func TestAtomicMixCleanFixture(t *testing.T) {
	forbidRule(t, loadFixture(t, "atomicmixclean"), "atomicmix")
}

func TestSiteDriftFixture(t *testing.T) {
	diags := loadFixture(t, "sitedriftfix")
	requireFinding(t, diags, "sitedrift", `unknown fault site "fix.typo"`)
	requireFinding(t, diags, "sitedrift", "SiteDead")
	requireFinding(t, diags, "sitedrift", "SiteUnlisted")
	requireFinding(t, diags, "sitedrift", `knownSites entry "fix.ghost"`)
	requireFinding(t, diags, "sitedrift", `counter "fix.no.such.counter"`)
	requireFinding(t, diags, "sitedrift", `manifest section "no_such_section"`)
	requireFinding(t, diags, "sitedrift", "flag -orphan has no entry")
}

func TestSiteDriftCleanFixture(t *testing.T) {
	forbidRule(t, loadFixture(t, "sitedriftclean"), "sitedrift")
}

func TestCleanFixture(t *testing.T) {
	diags := loadFixture(t, "cleanfix")
	if len(diags) != 0 {
		t.Errorf("clean fixture produced findings: %v", diags)
	}
}

// TestRepoIsLintClean is the in-suite mirror of `make lint`: the real
// module tree, filtered through the committed baseline, must be
// finding-free. This makes `go test ./...` catch lint regressions
// even where CI's lint job is skipped.
func TestRepoIsLintClean(t *testing.T) {
	diags, err := Run(modRoot)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := LoadBaseline(filepath.Join(modRoot, "lint.baseline"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	for _, d := range b.Filter(diags) {
		t.Errorf("unbaselined finding: %v", d)
	}
}

func TestBaselineFilter(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Rule: "nogo", Message: "m"},
		{File: "a.go", Line: 9, Rule: "nogo", Message: "m"},
		{File: "b.go", Line: 1, Rule: "floateq", Message: "x"},
	}
	path := filepath.Join(t.TempDir(), "base")
	// Baseline only one of the two identical a.go findings: the second
	// occurrence must survive filtering (multiset semantics).
	if err := WriteBaseline(path, diags[:1]); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	got := b.Filter(diags)
	if len(got) != 2 {
		t.Fatalf("Filter kept %d findings, want 2: %v", len(got), got)
	}
	if got[0].Line != 9 || got[1].File != "b.go" {
		t.Errorf("wrong survivors: %v", got)
	}
	// Full round trip: baselining everything filters everything.
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err = LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if got := b.Filter(diags); len(got) != 0 {
		t.Errorf("full baseline left findings: %v", got)
	}
	// A missing baseline file is an empty baseline, not an error.
	b, err = LoadBaseline(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatalf("LoadBaseline(absent): %v", err)
	}
	if got := b.Filter(diags); len(got) != 3 {
		t.Errorf("missing baseline should filter nothing, kept %d", len(got))
	}
}
