package lint

import (
	"go/ast"
	"go/types"
)

// hookPackages are the packages whose process/context hooks must be
// resolved through their nil-safe resolvers. Maps package path to the
// hook type names constructed there.
var hookPackages = map[string][]string{
	"irfusion/internal/obs":    {"Recorder"},
	"irfusion/internal/faults": {"Injector"},
	"irfusion/internal/cache":  {"Cache"},
}

// checkHooksafe enforces the hook-resolution discipline for the
// observability recorder and the fault injector:
//
//  1. obs.FromContext / faults.FromContext may only be called inside
//     their own packages — callers must use ActiveOr, which folds in
//     the process-global fallback; raw FromContext invites "recorder
//     bound but global ignored" split-brain behavior.
//  2. obs.Active / faults.Active may not be called from a function
//     that receives a context: the context may carry a bound hook
//     (serving isolation), and reading the global silently ignores
//     it. This is exactly the manifest cross-talk bug class; use
//     ActiveOr(ctx). Waivable with //irfusion:ctx-ok.
//  3. The hook structs (obs.Recorder, faults.Injector) may not be
//     composite-literal-constructed outside their home packages —
//     the constructors establish the nil-safety invariants.
func (r *Runner) checkHooksafe(p *Package) {
	if _, isHome := hookPackages[p.Path]; isHome {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := contextParam(p, fd) != nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					r.hooksafeCall(p, fd, n, hasCtx)
				case *ast.CompositeLit:
					r.hooksafeLit(p, n)
				}
				return true
			})
		}
	}
}

func (r *Runner) hooksafeCall(p *Package, fd *ast.FuncDecl, call *ast.CallExpr, hasCtx bool) {
	obj, isConv := callee(p.Info, call)
	if isConv {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if _, isHook := hookPackages[fn.Pkg().Path()]; !isHook {
		return
	}
	switch fn.Name() {
	case "FromContext":
		r.report(call.Pos(), "hooksafe",
			"%s: %s.FromContext may return nil and skips the global fallback; resolve hooks with %s.ActiveOr",
			fd.Name.Name, fn.Pkg().Name(), fn.Pkg().Name())
	case "Active":
		if hasCtx && !waived(r.loader.Fset, r.ctxOK, call.Pos()) {
			r.report(call.Pos(), "hooksafe",
				"%s receives a context but reads the global %s.Active(); use %s.ActiveOr(ctx) so context-bound hooks are honored (or waive with //irfusion:ctx-ok <why>)",
				fd.Name.Name, fn.Pkg().Name(), fn.Pkg().Name())
		}
	}
}

func (r *Runner) hooksafeLit(p *Package, lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	typeNames, isHook := hookPackages[named.Obj().Pkg().Path()]
	if !isHook {
		return
	}
	for _, name := range typeNames {
		if named.Obj().Name() == name {
			r.report(lit.Pos(), "hooksafe",
				"construct %s.%s through its package constructor, not a composite literal",
				named.Obj().Pkg().Name(), name)
		}
	}
}
