package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkCtx enforces the module's cancellation contract:
//
//  1. In an exported ...Ctx function, every top-level loop that calls
//     back into the module must observe its context — reference
//     ctx.Err(), pass ctx onward, or carry an //irfusion:ctx-ok
//     waiver with a rationale. A ...Ctx function whose long loops
//     ignore ctx advertises cancellation it doesn't deliver.
//  2. A function that receives a context may not call the non-Ctx
//     variant of a function whose package also defines a FooCtx
//     sibling: that silently drops cancellation and recorder
//     isolation. Waivable per line with //irfusion:ctx-ok.
func (r *Runner) checkCtx(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(p, fd)
			if ctxParam == nil {
				continue
			}
			if fd.Name.IsExported() && strings.HasSuffix(fd.Name.Name, "Ctx") {
				r.checkCtxLoops(p, fd, ctxParam)
			}
			r.checkCtxDropped(p, fd)
		}
	}
}

// contextParam returns the object of fd's context.Context parameter,
// or nil when fd doesn't take one.
func contextParam(p *Package, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxLoops walks the outermost loops of an exported ...Ctx
// function body. Nested loops are not separately checked: observing
// ctx once per outer iteration is the granularity the runtime
// promises.
func (r *Runner) checkCtxLoops(p *Package, fd *ast.FuncDecl, ctxParam types.Object) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		case *ast.FuncLit:
			return false // its loops belong to the closure's own contract
		default:
			return true
		}
		if !r.loopCallsModule(p, body) {
			return false // pure arithmetic loop; kernels handle these
		}
		if r.referencesObject(p, body, ctxParam) {
			return false
		}
		if waived(r.loader.Fset, r.ctxOK, n.Pos()) {
			return false
		}
		r.report(n.Pos(), "ctxcheck",
			"%s: loop calls into the module without observing ctx; check ctx.Err(), pass ctx onward, or waive with //irfusion:ctx-ok <why>",
			fd.Name.Name)
		return false
	}
	ast.Inspect(fd.Body, walk)
}

// loopCallsModule reports whether body contains a call to a
// module-internal function.
func (r *Runner) loopCallsModule(p *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, isConv := callee(p.Info, call)
		if isConv || obj == nil {
			return true
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && r.isModulePath(fn.Pkg().Path()) {
			found = true
		}
		return true
	})
	return found
}

// referencesObject reports whether any identifier under n resolves to
// obj.
func (r *Runner) referencesObject(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxDropped flags calls to Foo from context-holding code when
// Foo's own package defines FooCtx.
func (r *Runner) checkCtxDropped(p *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, isConv := callee(p.Info, call)
		if isConv {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || !r.isModulePath(fn.Pkg().Path()) {
			return true
		}
		if strings.HasSuffix(fn.Name(), "Ctx") {
			return true
		}
		if !r.hasCtxSibling(fn) {
			return true
		}
		if waived(r.loader.Fset, r.ctxOK, call.Pos()) {
			return true
		}
		r.report(call.Pos(), "ctxcheck",
			"%s receives a context but calls %s; call %sCtx (or waive with //irfusion:ctx-ok <why>)",
			fd.Name.Name, funcName(fn), fn.Name())
		return true
	})
}

// hasCtxSibling reports whether fn's package (or receiver type)
// defines a fn.Name()+"Ctx" variant.
func (r *Runner) hasCtxSibling(fn *types.Func) bool {
	want := fn.Name() + "Ctx"
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, fn.Pkg(), want)
		_, ok := obj.(*types.Func)
		return ok
	}
	_, ok := fn.Pkg().Scope().Lookup(want).(*types.Func)
	return ok
}
