package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathStdlib is the set of external packages hotpath code may call
// into: pure-math and lock-free primitives that never allocate.
var hotpathStdlib = map[string]bool{
	"math":        true,
	"sync/atomic": true,
}

// checkHotpath enforces the zero-allocation contract on every function
// marked //irfusion:hotpath:
//
//   - no make/new/append, no slice/map composite literals, no &T{...}
//   - no function literals, except as direct arguments to an
//     //irfusion:hotpath-allow callee (the parallel-dispatch idiom:
//     the closure is only evaluated on the parallel branch); such
//     closure bodies are still held to the call discipline
//   - no string concatenation and no implicit interface boxing at call
//     arguments — except inside panic(...) arguments, where the
//     allocation happens once on the way down
//   - no defer, no go, no conversions that allocate (to string or to
//     an interface)
//   - every callee must be a builtin, another hotpath function, a
//     hotpath-allow function, or live in an allowlisted stdlib package
//
// Bodies of hotpath-allow functions are intentionally not checked —
// the directive's rationale is the review record for them — and the
// AllocsPerRun regression tests provide the runtime counterpart for
// representative entry points.
func (r *Runner) checkHotpath(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil || r.class[obj] != classHotpath {
				continue
			}
			w := &hotpathWalker{r: r, p: p, fn: funcName(obj)}
			w.stmtList(fd.Body.List)
		}
	}
}

// hotpathWalker walks one hotpath function body. relaxed is true
// inside a dispatch closure passed to a hotpath-allow callee (alloc
// checks off, call discipline still on); inPanic is true inside
// panic(...) arguments.
type hotpathWalker struct {
	r       *Runner
	p       *Package
	fn      string
	relaxed bool
	inPanic bool
}

func (w *hotpathWalker) report(pos token.Pos, format string, args ...any) {
	w.r.report(pos, "hotpath", "%s: "+format, append([]any{w.fn}, args...)...)
}

func (w *hotpathWalker) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *hotpathWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmtList(s.Body.List)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.stmtList(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmtList(s.Body.List)
	case *ast.BlockStmt:
		w.stmtList(s.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			w.stmtList(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		// A type switch on a value the function already holds doesn't
		// allocate, but hotpath kernels shouldn't be doing dynamic
		// dispatch at all.
		w.report(s.Pos(), "type switch (dynamic dispatch) in hot path")
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.GoStmt:
		w.report(s.Pos(), "go statement allocates a goroutine")
	case *ast.DeferStmt:
		w.report(s.Pos(), "defer allocates a deferred frame")
	case *ast.SendStmt:
		w.report(s.Pos(), "channel send (synchronization) in hot path")
	case *ast.SelectStmt:
		w.report(s.Pos(), "select statement in hot path")
	case *ast.BranchStmt, *ast.EmptyStmt:
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		// Anything exotic (e.g. fallthrough holders) has no expression
		// payload worth checking.
	}
}

func (w *hotpathWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		// A function literal reached outside a hotpath-allow dispatch
		// argument: the closure itself allocates.
		if !w.relaxed {
			w.report(e.Pos(), "function literal allocates a closure")
		}
		w.stmtList(e.Body.List)
	case *ast.CompositeLit:
		if !w.relaxed && !w.inPanic {
			if t, ok := w.p.Info.Types[e]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.report(e.Pos(), "slice/map literal allocates")
				}
			}
		}
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := unparen(e.X).(*ast.CompositeLit); ok && !w.relaxed && !w.inPanic {
				w.report(e.Pos(), "address of composite literal escapes to the heap")
			}
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !w.inPanic {
			if t, ok := w.p.Info.Types[e]; ok {
				if basic, ok := t.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					w.report(e.Pos(), "string concatenation allocates")
				}
			}
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.TypeAssertExpr:
		w.report(e.Pos(), "type assertion (dynamic dispatch) in hot path")
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	default:
		// Ident, BasicLit, type expressions: nothing to check.
	}
}

// call checks one call expression: allocation via builtins and
// conversions, implicit interface boxing at the arguments, and the
// call discipline (who hotpath code may call).
func (w *hotpathWalker) call(call *ast.CallExpr) {
	obj, isConv := callee(w.p.Info, call)

	if isConv {
		w.checkConversion(call)
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}

	// Walk the callee expression itself (a receiver chain like
	// parallel.Default().SerialFor contains a nested call to check).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}

	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			w.report(call.Pos(), "%s allocates", b.Name())
		case "append":
			w.report(call.Pos(), "append may grow and allocate")
		case "panic":
			// panic unwinds the fast path anyway; its argument may box
			// and concatenate freely.
			prev := w.inPanic
			w.inPanic = true
			for _, a := range call.Args {
				w.expr(a)
			}
			w.inPanic = prev
			return
		}
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}

	allowedDispatch := false
	switch obj := obj.(type) {
	case *types.Func:
		allowedDispatch = w.checkCallee(call, obj)
	case *types.Var:
		w.report(call.Pos(), "call through function value %q cannot be verified; hoist it to a named //irfusion:hotpath function", obj.Name())
	case nil:
		w.report(call.Pos(), "computed call target cannot be verified")
	}

	w.checkBoxing(call, obj)

	for _, a := range call.Args {
		if fl, ok := unparen(a).(*ast.FuncLit); ok && allowedDispatch {
			// The dispatch-closure idiom: the hotpath-allow callee's
			// rationale covers the closure allocation (it is only
			// evaluated on the parallel branch), but the body still may
			// not call out of the hotpath call graph.
			prevRelaxed, prevPanic := w.relaxed, w.inPanic
			w.relaxed, w.inPanic = true, false
			w.stmtList(fl.Body.List)
			w.relaxed, w.inPanic = prevRelaxed, prevPanic
			continue
		}
		w.expr(a)
	}
}

// checkCallee enforces the call discipline for a resolved static
// callee and reports whether it is a hotpath-allow function (whose
// function-literal arguments are the sanctioned dispatch closures).
func (w *hotpathWalker) checkCallee(call *ast.CallExpr, fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			w.report(call.Pos(), "dynamic interface call %s.%s cannot be verified", sig.Recv().Type(), fn.Name())
			return false
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		// Universe-scope methods (error.Error) are dynamic.
		w.report(call.Pos(), "dynamic call %s cannot be verified", fn.Name())
		return false
	}
	if w.r.isModulePath(pkg.Path()) {
		switch w.r.class[fn] {
		case classHotpath:
			return false
		case classHotpathAllow:
			return true
		default:
			w.report(call.Pos(), "calls %s, which is neither //irfusion:hotpath nor //irfusion:hotpath-allow", funcName(fn))
			return false
		}
	}
	if !hotpathStdlib[pkg.Path()] {
		w.report(call.Pos(), "calls %s.%s from non-allowlisted package %s", pkg.Name(), fn.Name(), pkg.Path())
	}
	return false
}

// checkConversion flags conversions that allocate: to string (from
// []byte/[]rune) and to any interface type.
func (w *hotpathWalker) checkConversion(call *ast.CallExpr) {
	tv, ok := w.p.Info.Types[unparen(call.Fun)]
	if !ok || w.inPanic {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsString != 0 && len(call.Args) == 1 {
			if at, ok := w.p.Info.Types[call.Args[0]]; ok {
				if _, isSlice := at.Type.Underlying().(*types.Slice); isSlice {
					w.report(call.Pos(), "string conversion copies and allocates")
				}
			}
		}
	case *types.Interface:
		w.report(call.Pos(), "conversion to interface %s boxes its operand", tv.Type)
	}
}

// checkBoxing flags implicit concrete→interface conversions at call
// arguments — each one heap-allocates the boxed value.
func (w *hotpathWalker) checkBoxing(call *ast.CallExpr, obj types.Object) {
	if w.inPanic || obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := w.p.Info.Types[arg]
		if !ok || at.Type == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := at.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if !types.IsInterface(at.Type) {
			w.report(arg.Pos(), "argument boxes %s into interface %s", at.Type, pt)
		}
	}
}
