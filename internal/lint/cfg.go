package lint

// Intraprocedural control-flow graphs over go/ast, plus the forward
// dataflow solver the flow-sensitive rules (locksafe, ctxleak) run on.
//
// A CFG is built per function body (FuncDecl and FuncLit bodies each
// get their own graph — rules never look through a function literal).
// Blocks hold the simple statements and condition expressions they
// evaluate, in source order; control constructs contribute edges:
//
//   - if/else and loop conditions are decomposed through && || ! so
//     short-circuit evaluation gets real branch edges — a Lock() in
//     the right operand of && is conditional, and the solver sees it
//     that way;
//   - for/range loops get back edges, break/continue (labeled or
//     not) and goto resolve to their targets;
//   - switch/type-switch clauses fan out from the head, fallthrough
//     edges into the next clause body;
//   - select heads carry the *ast.SelectStmt itself as a marker node
//     (rules check for a default clause); each comm clause body is a
//     successor block;
//   - return statements, panic calls, and process-terminating calls
//     (os.Exit, log.Fatal*) edge to the synthetic exit block;
//   - defer statements are recorded on the graph (and left in their
//     block as marker nodes), so exit-state checks can apply deferred
//     releases, which also covers the panic edges.
//
// The graph is deliberately approximate where precision buys nothing
// for the rules built on it: case expressions are attributed to their
// clause block rather than the head, and channel operands of a select
// are not modeled as evaluated at entry.

import (
	"go/ast"
	"go/token"
)

// block is one basic block: nodes evaluated in order, then a branch
// to one of succs (empty succs means the function cannot continue —
// the exit block, or an infinite loop with no break).
type block struct {
	index int
	nodes []ast.Node
	succs []*block
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *block
	exit   *block // target of every return/panic/fall-off edge
	blocks []*block
	defers []*ast.CallExpr // deferred calls, in registration order
}

// buildCFG constructs the graph for body. isTerminal reports whether
// an expression statement never returns (panic, os.Exit, log.Fatal*);
// nil means nothing terminates.
func buildCFG(body *ast.BlockStmt, isTerminal func(*ast.ExprStmt) bool) *cfg {
	b := &cfgBuilder{
		c:          &cfg{},
		isTerminal: isTerminal,
		labels:     map[string]*block{},
	}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	b.cur = b.c.entry
	for _, s := range body.List {
		b.stmt(s)
	}
	b.edge(b.c.exit) // fall off the end
	return b.c
}

// branchTarget is one entry of the break/continue stack: a labeled or
// unlabeled for/range/switch/select in scope.
type branchTarget struct {
	label string
	brk   *block
	cont  *block // nil for switch/select
}

type cfgBuilder struct {
	c          *cfg
	cur        *block
	isTerminal func(*ast.ExprStmt) bool
	targets    []branchTarget
	labels     map[string]*block // label name -> its block (goto targets)
	nextLabel  string            // pending label for the next loop/switch
	fallTo     *block            // fallthrough target inside a switch clause
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(to *block) {
	b.cur.succs = append(b.cur.succs, to)
}

// dead parks the builder on a fresh unreachable block after a
// terminating statement; anything appended there never gets facts.
func (b *cfgBuilder) dead() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.nodes = append(b.cur.nodes, n)
}

// takeLabel consumes the pending statement label.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos resolve.
func (b *cfgBuilder) labelBlock(name string) *block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) push(label string, brk, cont *block) {
	b.targets = append(b.targets, branchTarget{label: label, brk: brk, cont: cont})
}

func (b *cfgBuilder) pop() {
	b.targets = b.targets[:len(b.targets)-1]
}

// findTarget resolves a break/continue: the innermost matching target
// (continue needs a loop), or the one carrying the label.
func (b *cfgBuilder) findTarget(label string, needCont bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		after := b.newBlock()
		els := after
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmt(s.Body)
		b.edge(after)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.edge(after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(head)
		body := b.newBlock()
		after := b.newBlock()
		cont := head
		var post *block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.edge(body)
		}
		b.push(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.edge(cont)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(head)
		}
		b.pop()
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(head)
		body := b.newBlock()
		after := b.newBlock()
		b.cur = head
		b.add(s) // marker: rules look at s.X / key-value binding only
		b.edge(body)
		b.edge(after)
		b.push(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(head)
		b.pop()
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // marker: rules check for a default clause
		head := b.cur
		after := b.newBlock()
		b.push(label, after, nil)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.succs = append(head.succs, blk)
			b.cur = blk
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(after)
		}
		b.pop()
		b.cur = after
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(lb)
		b.cur = lb
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(label, false); t != nil {
				b.edge(t.brk)
			}
			b.dead()
		case token.CONTINUE:
			if t := b.findTarget(label, true); t != nil {
				b.edge(t.cont)
			}
			b.dead()
		case token.GOTO:
			b.edge(b.labelBlock(label))
			b.dead()
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.edge(b.fallTo)
			}
			b.dead()
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.c.exit)
		b.dead()
	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, s.Call)
		b.add(s) // marker: ctxleak resolves deferred cancels here
	case *ast.ExprStmt:
		b.add(s)
		if b.isTerminal != nil && b.isTerminal(s) {
			b.edge(b.c.exit)
			b.dead()
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Send, IncDec, Decl, Go: straight-line effects.
		b.add(s)
	}
}

// caseClauses builds the shared fan-out of switch and type-switch
// bodies. allowFall enables fallthrough edges (plain switch only).
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, allowFall bool) {
	head := b.cur
	after := b.newBlock()
	b.push(label, after, nil)
	entries := make([]*block, len(clauses))
	for i := range clauses {
		entries[i] = b.newBlock()
	}
	hasDefault := false
	savedFall := b.fallTo
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head.succs = append(head.succs, entries[i])
		b.cur = entries[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallTo = nil
		if allowFall && i+1 < len(clauses) {
			b.fallTo = entries[i+1]
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(after)
	}
	b.fallTo = savedFall
	if !hasDefault {
		head.succs = append(head.succs, after)
	}
	b.pop()
	b.cur = after
}

// cond decomposes a branch condition through short-circuit operators,
// wiring e's leaves so evaluation order and conditionality are edges
// the solver sees. Leaves the builder on a fresh dead block.
func (b *cfgBuilder) cond(e ast.Expr, t, f *block) {
	switch e := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	}
	b.add(e)
	b.edge(t)
	b.edge(f)
	b.dead()
}

// forwardSolve runs a forward dataflow analysis over c to fixpoint
// and returns the fact at entry of every reached block. transfer maps
// a block-entry fact to the block-exit fact; join merges facts at
// control-flow merges; equal detects the fixpoint.
//
// Termination requires the usual lattice conditions: join monotone
// and the fact height finite (both rules use small maps whose keys
// are drawn from the function's syntax, so height is bounded by the
// function size).
func forwardSolve[F any](c *cfg, entry F, join func(F, F) F, equal func(F, F) bool, transfer func(F, *block) F) map[*block]F {
	in := map[*block]F{c.entry: entry}
	work := []*block{c.entry}
	queued := map[*block]bool{c.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(in[blk], blk)
		for _, s := range blk.succs {
			old, ok := in[s]
			merged := out
			if ok {
				merged = join(old, out)
			}
			if !ok || !equal(old, merged) {
				in[s] = merged
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// funcBodies invokes fn for every function body in file — FuncDecl
// bodies and every function literal, each analyzed as its own CFG.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}
