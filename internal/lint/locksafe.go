package lint

// locksafe: flow-sensitive lock discipline over the CFG. Two
// contracts, both scoped to one function at a time:
//
//  1. Every sync.Mutex/RWMutex Lock (or RLock) must be released on
//     every path out of the function — by an Unlock on each exit or
//     by a deferred Unlock (which also covers the panic edges).
//  2. No lock may be held across an operation that can block
//     indefinitely: a channel send/receive, a select with no default,
//     a range over a channel, (*sync.WaitGroup).Wait / (*sync.Cond).Wait,
//     time.Sleep, an fsync ((*os.File).Sync), an outbound net/http
//     client call, or a module-internal context-aware ...Ctx call
//     (those run whole solves). Reviewed-and-intentional cases —
//     e.g. the journal serializing fsync under its mutex — carry
//     //irfusion:lock-ok <rationale> on (or on the line before) the
//     blocking call, or on the Lock() line for exit-path waivers.
//
// Locks are identified by the object path of the receiver expression
// ("j.mu", "globalMu"); receivers that aren't ident/field chains
// (map elements, call results) are not tracked. Non-blocking channel
// operations — close(), and a select that has a default clause — are
// deliberately not in the blocking set, so patterns like serve's
// submit (a guarded non-blocking enqueue under submitMu) stay clean.
// Helpers that run with a caller-held lock (the *Locked naming
// convention) are a known intraprocedural blind spot; the convention
// itself is the documentation there.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockFact maps a held lock's key to where it was acquired. The "/R"
// suffix distinguishes read locks so RLock pairs with RUnlock.
type lockFact map[string]token.Pos

func joinLocks(a, b lockFact) lockFact {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(lockFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

func equalLocks(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (r *Runner) checkLocksafe(p *Package) {
	term := terminalChecker(p.Info)
	for _, f := range p.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			r.locksafeBody(p, body, term)
		})
	}
}

func (r *Runner) locksafeBody(p *Package, body *ast.BlockStmt, term func(*ast.ExprStmt) bool) {
	if !usesSyncLocks(p.Info, body) {
		return
	}
	c := buildCFG(body, term)
	transfer := func(fact lockFact, blk *block) lockFact {
		for _, n := range blk.nodes {
			fact = r.lockTransfer(p, fact, n, false)
		}
		return fact
	}
	in := forwardSolve(c, lockFact{}, joinLocks, equalLocks, transfer)

	// Reporting pass: deterministic single replay of every reached
	// block, now with diagnostics enabled.
	for _, blk := range c.blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.nodes {
			fact = r.lockTransfer(p, fact, n, true)
		}
	}

	exit, reached := in[c.exit]
	if !reached || len(exit) == 0 {
		return
	}
	released := deferredUnlocks(p.Info, c)
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pos := exit[k]
		if released[k] || waived(r.loader.Fset, r.lockOK, pos) {
			continue
		}
		r.report(pos, "locksafe", "%s is not released on every path out of the function; unlock on each exit or defer the unlock", lockCallName(k))
	}
}

// lockTransfer applies one CFG node's lock effects to fact, reporting
// blocking-under-lock violations when report is set. fact is treated
// as immutable (copy-on-write) because the solver may join it into
// other blocks.
func (r *Runner) lockTransfer(p *Package, fact lockFact, n ast.Node, report bool) lockFact {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred calls run at exit; deferredUnlocks accounts for them.
		return fact
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			r.lockBlocked(fact, n.Pos(), "a select with no default clause", report)
		}
		return fact
	case *ast.RangeStmt:
		if tv, ok := p.Info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				r.lockBlocked(fact, n.Pos(), "a range over a channel", report)
			}
		}
		return r.lockWalk(p, fact, n.X, report)
	}
	return r.lockWalk(p, fact, n, report)
}

// lockWalk scans one simple statement or expression for lock
// operations and blocking operations, in pre-order (a good-enough
// approximation of evaluation order for these effects).
func (r *Runner) lockWalk(p *Package, fact lockFact, n ast.Node, report bool) lockFact {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A literal's body is its own CFG; its effects happen when
			// it runs, not here.
			return false
		case *ast.SendStmt:
			r.lockBlocked(fact, x.Arrow, "a channel send", report)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				r.lockBlocked(fact, x.OpPos, "a channel receive", report)
			}
		case *ast.CallExpr:
			if op, key, ok := syncLockOp(p.Info, x); ok {
				switch op {
				case lockAcquire:
					nf := make(lockFact, len(fact)+1)
					for k, v := range fact {
						nf[k] = v
					}
					nf[key] = x.Pos()
					fact = nf
				case lockRelease:
					if _, held := fact[key]; held {
						nf := make(lockFact, len(fact))
						for k, v := range fact {
							if k != key {
								nf[k] = v
							}
						}
						fact = nf
					}
				}
				return false
			}
			if desc := r.blockingCallDesc(p.Info, x); desc != "" {
				r.lockBlocked(fact, x.Pos(), desc, report)
			}
		}
		return true
	})
	return fact
}

// lockBlocked reports a blocking operation reached with locks held,
// unless waived by //irfusion:lock-ok at the operation's line.
func (r *Runner) lockBlocked(fact lockFact, pos token.Pos, what string, report bool) {
	if !report || len(fact) == 0 || waived(r.loader.Fset, r.lockOK, pos) {
		return
	}
	keys := make([]string, 0, len(fact))
	for k := range fact {
		keys = append(keys, lockDisplayName(k))
	}
	sort.Strings(keys)
	r.report(pos, "locksafe", "%s held across %s; release first, restructure, or annotate //irfusion:lock-ok <why>",
		strings.Join(keys, ", "), what)
}

type lockOp int

const (
	lockAcquire lockOp = iota
	lockRelease
)

// syncLockOp classifies a call as a sync package lock/unlock on a
// trackable receiver. TryLock variants return a bool the caller must
// branch on and are deliberately not tracked.
func syncLockOp(info *types.Info, call *ast.CallExpr) (lockOp, string, bool) {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, "", false
	}
	var op lockOp
	read := false
	switch fn.Name() {
	case "Lock":
		op = lockAcquire
	case "RLock":
		op, read = lockAcquire, true
	case "Unlock":
		op = lockRelease
	case "RUnlock":
		op, read = lockRelease, true
	default:
		return 0, "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	key, ok := objPath(info, sel.X)
	if !ok {
		return 0, "", false
	}
	if read {
		key += "/R"
	}
	return op, key, true
}

// objPath renders an ident/field chain as a stable key ("j.mu",
// "s.reg.mu"); ok is false for anything else (indexing, calls).
func objPath(info *types.Info, e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if info.Uses[e] != nil || info.Defs[e] != nil {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		base, ok := objPath(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// lockDisplayName turns a fact key back into the receiver expression.
func lockDisplayName(key string) string {
	return strings.TrimSuffix(key, "/R")
}

// lockCallName renders the acquiring call for messages: "j.mu.Lock()"
// or "j.mu.RLock()".
func lockCallName(key string) string {
	if base, ok := strings.CutSuffix(key, "/R"); ok {
		return base + ".RLock()"
	}
	return key + ".Lock()"
}

// blockingCallDesc describes why a call can block indefinitely, or ""
// when it cannot (as far as this rule models).
func (r *Runner) blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" {
			return fmt.Sprintf("sync.%s.Wait", recvTypeName(fn))
		}
	case "time":
		if name == "Sleep" && fn.Type().(*types.Signature).Recv() == nil {
			return "time.Sleep"
		}
	case "os":
		if name == "Sync" && recvTypeName(fn) == "File" {
			return "(*os.File).Sync (fsync)"
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Head", "Post", "PostForm":
			return "an outbound net/http " + name + " call"
		}
	}
	if r.isModulePath(fn.Pkg().Path()) && strings.HasSuffix(name, "Ctx") {
		return funcName(fn) + " (a context-aware call that can run a whole solve)"
	}
	return ""
}

// deferredUnlocks collects the lock keys the function's deferred
// calls release — direct defers and defers of function literals whose
// bodies unlock.
func deferredUnlocks(info *types.Info, c *cfg) map[string]bool {
	out := map[string]bool{}
	for _, call := range c.defers {
		if op, key, ok := syncLockOp(info, call); ok && op == lockRelease {
			out[key] = true
			continue
		}
		if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if inner, ok := x.(*ast.CallExpr); ok {
					if op, key, ok := syncLockOp(info, inner); ok && op == lockRelease {
						out[key] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// usesSyncLocks is the cheap pre-filter: only bodies that mention a
// sync lock method by name get a CFG built.
func usesSyncLocks(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if _, _, ok := syncLockOp(info, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeFunc resolves a call to its *types.Func, false for builtins,
// conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	obj, isConv := callee(info, call)
	if isConv {
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// recvTypeName names a method's receiver type ("WaitGroup", "File"),
// or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// terminalChecker recognizes statements that never return: panic,
// os.Exit, runtime.Goexit, and the log.Fatal family. The CFG routes
// them to the exit block so deferred releases still apply.
func terminalChecker(info *types.Info) func(*ast.ExprStmt) bool {
	return func(s *ast.ExprStmt) bool {
		call, ok := unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		obj, isConv := callee(info, call)
		if isConv {
			return false
		}
		switch obj := obj.(type) {
		case *types.Builtin:
			return obj.Name() == "panic"
		case *types.Func:
			if obj.Pkg() == nil {
				return false
			}
			switch obj.Pkg().Path() {
			case "os":
				return obj.Name() == "Exit"
			case "runtime":
				return obj.Name() == "Goexit"
			case "log":
				return strings.HasPrefix(obj.Name(), "Fatal")
			}
		}
		return false
	}
}
