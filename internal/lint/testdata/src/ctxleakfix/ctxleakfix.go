// Package ctxleakfix seeds ctxleak violations: the cancel overwritten
// by a second WithX call (the serve bug shape), a path that drops a
// pending cancel, and an outright discarded cancel.
package ctxleakfix

import (
	"context"
	"time"
)

// Overwrite abandons the WithCancel context when a timeout replaces
// it; the deferred cancel only covers the second context.
func Overwrite(timeout time.Duration) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	defer cancel()
	return ctx
}

// DropOnPath never cancels on the failure path.
func DropOnPath(fail bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if fail {
		return ctx.Err()
	}
	cancel()
	return nil
}

// Discard throws the cancel func away at the binding.
func Discard() context.Context {
	ctx, _ := context.WithCancel(context.Background())
	return ctx
}
