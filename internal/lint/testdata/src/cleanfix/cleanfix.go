// Package cleanfix is a fixture that must produce zero findings: an
// in-place hotpath kernel, a ...Ctx function observing its context,
// and a proper %w wrap.
package cleanfix

import (
	"context"
	"fmt"
)

// Scale rescales xs in place.
//
//irfusion:hotpath
func Scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}

// SumCtx accumulates xs, observing ctx each iteration.
func SumCtx(ctx context.Context, xs []float64) (float64, error) {
	total := 0.0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("sum cancelled: %w", err)
		}
		total += x
	}
	return total, nil
}
