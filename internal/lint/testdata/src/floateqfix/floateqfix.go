// Package floateqfix seeds a floateq violation: an unannotated exact
// float comparison. The annotated one must NOT be flagged.
package floateqfix

// Equal compares floats exactly without a rationale.
func Equal(a, b float64) bool { return a == b }

// ZeroGuard is the sanctioned form.
func ZeroGuard(x float64) bool {
	return x == 0 //irfusion:exact sentinel test for an explicitly unset value
}
