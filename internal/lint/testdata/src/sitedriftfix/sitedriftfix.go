// Package faults (fixture) is a miniature fault registry seeding
// sitedrift violations: a typo'd Fire site, a dead declared site, a
// constant missing from knownSites, a ghost knownSites entry, an
// unregistered counter read, a gate naming a nonexistent manifest
// section, and a flag registered outside the gates table. The package
// is deliberately named faults — the sitedrift rule keys its registry
// checks on that name, which is what lets this fixture exist without
// touching the real internal/faults.
package faults

import (
	"flag"

	"irfusion/internal/obs"
)

const (
	SiteGood     = "fix.good"
	SiteDead     = "fix.dead"     // declared, never fired
	SiteUnlisted = "fix.unlisted" // fired, but missing from knownSites
)

var knownSites = map[string]bool{
	SiteGood:    true,
	"fix.ghost": true, // matches no Site* constant
}

type Injector struct{}

func (in *Injector) Fire(site, label string) {}

func use() int64 {
	in := &Injector{}
	in.Fire(SiteGood, "")
	in.Fire(SiteUnlisted, "")
	in.Fire("fix.typo", "") // no such Site* constant
	return obs.CounterValue("fix.no.such.counter")
}

type gateSpec struct {
	flag    string
	section string
	usage   string
}

var gates = []gateSpec{
	{"good", "cache", "inspects a real manifest section"},
	{"drifty", "no_such_section", "inspects a section Manifest does not have"},
}

func registerFlags() {
	for _, g := range gates {
		_ = flag.Bool(g.flag, false, g.usage)
	}
	_ = flag.Bool("orphan", false, "registered outside the gates table")
}
