// Package locksafefix seeds locksafe violations: a lock leaked on an
// early return, locks held across blocking operations, and a labeled
// break that exits a loop with the lock still held.
package locksafefix

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type Box struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

// LeakOnError leaks b.mu on the error path.
func (b *Box) LeakOnError(fail bool) error {
	b.mu.Lock()
	if fail {
		return errFail
	}
	b.n++
	b.mu.Unlock()
	return nil
}

// SendUnderLock holds b.mu across a channel send.
func (b *Box) SendUnderLock(ch chan int) {
	b.mu.Lock()
	ch <- b.n
	b.mu.Unlock()
}

// WaitUnderLock holds b.mu across a WaitGroup wait.
func (b *Box) WaitUnderLock() {
	b.mu.Lock()
	b.wg.Wait()
	b.mu.Unlock()
}

// LoopLeak exercises the labeled-break CFG edges: breaking out of the
// outer loop skips the unlock.
func (b *Box) LoopLeak(xs []int) {
outer:
	for range xs {
		b.mu.Lock()
		for _, x := range xs {
			if x < 0 {
				break outer
			}
		}
		b.mu.Unlock()
	}
}
