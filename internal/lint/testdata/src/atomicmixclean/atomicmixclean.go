// Package atomicmixclean seeds the sanctioned atomic patterns: the
// wrapper types (mixing unrepresentable) and a legacy field that is
// only ever touched through sync/atomic.
package atomicmixclean

import "sync/atomic"

type Counter struct {
	n atomic.Int64
}

func (c *Counter) Inc()        { c.n.Add(1) }
func (c *Counter) Read() int64 { return c.n.Load() }

type legacy struct {
	v int64
}

func (l *legacy) Inc()       { atomic.AddInt64(&l.v, 1) }
func (l *legacy) Get() int64 { return atomic.LoadInt64(&l.v) }
