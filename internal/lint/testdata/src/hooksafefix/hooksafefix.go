// Package hooksafefix seeds hooksafe violations: raw FromContext use,
// the global Active() read inside a context-holding function, and
// hand-rolled hook construction.
package hooksafefix

import (
	"context"

	"irfusion/internal/obs"
)

// Observe resolves its recorder the two forbidden ways.
func Observe(ctx context.Context) int64 {
	r := obs.FromContext(ctx)
	g := obs.Active()
	if r != nil || g != nil {
		return 1
	}
	return 0
}

// makeRecorder builds a Recorder by hand instead of the constructor.
func makeRecorder() *obs.Recorder {
	r := obs.Recorder{}
	return &r
}

var _ = makeRecorder
