// Package atomicmixfix seeds an atomicmix violation: a field written
// through sync/atomic in one method and read directly in another.
package atomicmixfix

import "sync/atomic"

type Counter struct {
	n int64
}

// Inc is atomic.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read races with Inc: a plain load of an atomically written field.
func (c *Counter) Read() int64 {
	return c.n
}
