// Package errwrapfix seeds an errwrap violation: an error flattened
// to text with %v. The %v on a non-error value must NOT be flagged.
package errwrapfix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Wrap loses the cause to errors.Is/As.
func Wrap(id int) error {
	return fmt.Errorf("job %d failed: %v", id, errBase)
}

// Describe formats a plain value; this is fine.
func Describe(v any) error {
	return fmt.Errorf("unexpected payload: %v", v)
}
