// Package nogofix seeds a nogo violation: a bare goroutine outside
// the packages that own concurrency lifecycles.
package nogofix

// Spawn leaks an unmanaged goroutine.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}
