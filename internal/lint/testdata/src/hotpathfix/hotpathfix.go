// Package hotpathfix seeds hotpath violations for the linter
// self-test: an allocation, a call out of the hotpath call graph, a
// closure, and a call through a function value.
package hotpathfix

// helper is deliberately unannotated.
func helper(x float64) float64 { return x * 2 }

// Sum is annotated hotpath but breaks every part of the contract.
//
//irfusion:hotpath
func Sum(xs []float64) float64 {
	buf := make([]float64, len(xs))
	total := 0.0
	for i, x := range xs {
		buf[i] = helper(x)
		total += buf[i]
	}
	f := func() float64 { return total }
	return f()
}
