// Package ctxleakclean seeds the sanctioned cancel-func patterns the
// ctxleak rule must accept: defer, per-path calls, storage handoff,
// and capture by a function literal.
package ctxleakclean

import (
	"context"
	"time"
)

// Deferred is the canonical pattern.
func Deferred() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return work(ctx)
}

// AllPaths calls cancel on each exit explicitly.
func AllPaths(fail bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	if fail {
		cancel()
		return context.Canceled
	}
	err := work(ctx)
	cancel()
	return err
}

// Stopper owns a stored cancel; storing it is a handoff that ends
// intraprocedural tracking.
type Stopper struct {
	cancel context.CancelFunc
}

// Handoff stores the cancel for a later shutdown.
func Handoff() (*Stopper, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	return &Stopper{cancel: cancel}, ctx
}

// Captured hands the cancel to a deferred function literal.
func Captured() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel() }()
	return work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }
