// Package ctxfix seeds ctxcheck violations: an exported ...Ctx
// function whose loop never observes its context, and a
// context-holding function that calls the non-Ctx variant of a
// function with a Ctx sibling.
package ctxfix

import "context"

func step(i int) int { return i + 1 }

// RunCtx loops over module-internal work without ever looking at ctx.
func RunCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total = step(total)
	}
	return total
}

// Process receives a context but silently drops it by calling Run.
func Process(ctx context.Context, n int) int {
	return Run(n)
}

// Run is the context-free variant of RunCtx.
func Run(n int) int { return RunCtx(context.Background(), n) }
