// Package locksafeclean seeds the sanctioned locking patterns the
// locksafe rule must accept: deferred unlocks, per-branch unlocks, a
// non-blocking select and a close under a lock, and an annotated hold
// across a receive.
package locksafeclean

import "sync"

type Store struct {
	mu sync.RWMutex
	q  chan int
	m  map[string]int
}

// Deferred is the canonical pattern, with the read-side lock.
func (s *Store) Deferred(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// BothPaths unlocks on each branch explicitly.
func (s *Store) BothPaths(k string, v int, ok bool) {
	s.mu.Lock()
	if ok {
		s.m[k] = v
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// NonBlockingSend: a select with a default case never blocks, so
// holding the lock across it is fine (the serve.submit pattern).
func (s *Store) NonBlockingSend(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.q <- v:
		return true
	default:
		return false
	}
}

// CloseUnderLock: close is not a blocking operation.
func (s *Store) CloseUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	close(s.q)
}

// Annotated documents a reviewed hold across a receive.
func (s *Store) Annotated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	//irfusion:lock-ok fixture: the queue is drained by a dedicated goroutine, the receive cannot deadlock against this mutex
	return <-s.q
}
