// Package faults (fixture) is a miniature fault registry that is
// fully consistent: every declared site is fired and listed in
// knownSites, the counter read is registered, and every gate names a
// real manifest section and a table-declared flag.
package faults

import (
	"flag"

	"irfusion/internal/obs"
)

const (
	SiteAlpha = "clean.alpha"
	SiteBeta  = "clean.beta"
)

var knownSites = map[string]bool{
	SiteAlpha: true,
	SiteBeta:  true,
}

type Injector struct{}

func (in *Injector) Fire(site, label string) {}

func use() int64 {
	in := &Injector{}
	in.Fire(SiteAlpha, "")
	in.Fire(SiteBeta, "x")
	obs.GlobalCounter("clean.counter").Inc()
	return obs.CounterValue("clean.counter")
}

type gateSpec struct {
	flag    string
	section string
	usage   string
}

var gates = []gateSpec{
	{"degraded", "degradation", "requires a degradation record"},
	{"shard", "shard", "requires the shard identity"},
}

func registerFlags() {
	for _, g := range gates {
		_ = flag.Bool(g.flag, false, g.usage)
	}
}
