// Package directivefix seeds a malformed directive: a waiver without
// a rationale, which is indistinguishable from a silenced check.
package directivefix

// Bad waives the comparison but gives no reason.
func Bad(x float64) bool {
	return x == 0 //irfusion:exact
}
