package lint

// ctxleak: flow-sensitive tracking of the cancel funcs returned by
// context.WithCancel / WithTimeout / WithDeadline (and their *Cause
// variants). A cancel func that is not called on every path out of
// the function, not deferred, and not handed off (stored, passed,
// returned, or captured) leaks its context: the child stays
// registered on the parent until the parent itself ends — for a
// server's base context, that is a per-request memory leak.
//
// Three findings:
//
//   - the cancel func is discarded outright (`ctx, _ := ...`);
//   - the variable holding a still-pending cancel is overwritten by a
//     new WithX call (the exact shape of the serve bug this rule was
//     built to catch: WithCancel assigned, then conditionally
//     replaced by WithTimeout, abandoning the first context);
//   - a pending cancel survives to function exit on some path.
//
// Any other use of the variable — passed as an argument, stored in a
// struct, returned, captured by a function literal — counts as a
// handoff and ends tracking: responsibility moved somewhere this
// intraprocedural rule cannot see. Reviewed exceptions use the
// existing //irfusion:ctx-ok <rationale> line waiver.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

type cancelState int

const (
	cancelPending cancelState = iota + 1
	cancelResolved
)

type cancelInfo struct {
	state cancelState
	pos   token.Pos // the WithX call that produced the func
	fn    string    // "WithCancel", "WithTimeout", ...
}

// ctxFact maps each tracked cancel variable to its state.
type ctxFact map[types.Object]cancelInfo

func joinCancels(a, b ctxFact) ctxFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(ctxFact, len(a)+len(b))
	for o, v := range a {
		out[o] = v
	}
	for o, v := range b {
		old, ok := out[o]
		if !ok {
			out[o] = v
			continue
		}
		// Must-resolve semantics: pending on either path wins the merge.
		merged := old
		if v.state == cancelPending && old.state != cancelPending {
			merged = v
		}
		if v.state == merged.state && v.pos < merged.pos {
			merged = v
		}
		out[o] = merged
	}
	return out
}

func equalCancels(a, b ctxFact) bool {
	if len(a) != len(b) {
		return false
	}
	for o, v := range a {
		if w, ok := b[o]; !ok || v != w {
			return false
		}
	}
	return true
}

func (r *Runner) checkCtxleak(p *Package) {
	term := terminalChecker(p.Info)
	for _, f := range p.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			r.ctxleakBody(p, body, term)
		})
	}
}

func (r *Runner) ctxleakBody(p *Package, body *ast.BlockStmt, term func(*ast.ExprStmt) bool) {
	if !usesContextWith(p.Info, body) {
		return
	}
	c := buildCFG(body, term)
	transfer := func(fact ctxFact, blk *block) ctxFact {
		for _, n := range blk.nodes {
			fact = r.cancelTransfer(p, fact, n, false)
		}
		return fact
	}
	in := forwardSolve(c, ctxFact{}, joinCancels, equalCancels, transfer)

	for _, blk := range c.blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.nodes {
			fact = r.cancelTransfer(p, fact, n, true)
		}
	}

	exit, reached := in[c.exit]
	if !reached {
		return
	}
	pending := make([]cancelInfo, 0, len(exit))
	for _, v := range exit {
		if v.state == cancelPending {
			pending = append(pending, v)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].pos < pending[j].pos })
	for _, v := range pending {
		if waived(r.loader.Fset, r.ctxOK, v.pos) {
			continue
		}
		r.report(v.pos, "ctxleak", "the cancel func returned by context.%s is not called on every path; call it on each exit or defer it", v.fn)
	}
}

// cancelTransfer applies one CFG node's effects to fact. fact is
// copy-on-write: the solver may have joined it into other blocks.
func (r *Runner) cancelTransfer(p *Package, fact ctxFact, n ast.Node, report bool) ctxFact {
	switch n := n.(type) {
	case *ast.SelectStmt:
		// Comm statements are not CFG nodes; scan them here for uses
		// (`case out <- cancel:` is a handoff).
		for _, cl := range n.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				fact = resolveCancelUses(p.Info, fact, comm.Comm)
			}
		}
		return fact
	case *ast.RangeStmt:
		return resolveCancelUses(p.Info, fact, n.X)
	case *ast.DeferStmt:
		// defer cancel(), defer func(){ cancel() }(), or any deferred
		// call mentioning the variable: resolved from this point on.
		return resolveCancelUses(p.Info, fact, n.Call)
	case *ast.AssignStmt:
		if nf, handled := r.cancelBind(p, fact, n, report); handled {
			return nf
		}
	}
	return resolveCancelUses(p.Info, fact, n)
}

// cancelBind handles `ctx, cancel := context.WithX(...)` (and `=`).
// handled is false when the assignment is not a WithX binding, in
// which case the caller falls through to generic use-scanning.
func (r *Runner) cancelBind(p *Package, fact ctxFact, as *ast.AssignStmt, report bool) (ctxFact, bool) {
	if len(as.Rhs) != 1 {
		return fact, false
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return fact, false
	}
	withName := contextWithFunc(p.Info, call)
	if withName == "" {
		return fact, false
	}
	// The call's arguments may use previously tracked cancels.
	fact = resolveCancelUses(p.Info, fact, call)
	if len(as.Lhs) != 2 {
		return fact, true
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return fact, true
	}
	if id.Name == "_" {
		if report && !waived(r.loader.Fset, r.ctxOK, call.Pos()) {
			r.report(call.Pos(), "ctxleak", "the cancel func returned by context.%s is discarded; assign it and call or defer it", withName)
		}
		return fact, true
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return fact, true
	}
	if old, held := fact[obj]; held && old.state == cancelPending && report &&
		!waived(r.loader.Fset, r.ctxOK, call.Pos()) {
		r.report(call.Pos(), "ctxleak", "cancel func from context.%s (line %d) is overwritten before being called; the abandoned context stays alive until its parent ends",
			old.fn, r.loader.Fset.Position(old.pos).Line)
	}
	nf := make(ctxFact, len(fact)+1)
	for o, v := range fact {
		nf[o] = v
	}
	nf[obj] = cancelInfo{state: cancelPending, pos: call.Pos(), fn: withName}
	return nf, true
}

// resolveCancelUses marks every tracked cancel variable mentioned
// anywhere under n (including inside function literals — a capture is
// a handoff) as resolved.
func resolveCancelUses(info *types.Info, fact ctxFact, n ast.Node) ctxFact {
	if len(fact) == 0 || n == nil {
		return fact
	}
	var copied bool
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if v, tracked := fact[obj]; tracked && v.state == cancelPending {
			if !copied {
				nf := make(ctxFact, len(fact))
				for o, w := range fact {
					nf[o] = w
				}
				fact, copied = nf, true
			}
			v.state = cancelResolved
			fact[obj] = v
		}
		return true
	})
	return fact
}

// contextWithFunc names the context constructor a call invokes
// ("WithCancel", ...), or "" for anything else.
func contextWithFunc(info *types.Info, call *ast.CallExpr) string {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline",
		"WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return fn.Name()
	}
	return ""
}

// usesContextWith is the cheap pre-filter for ctxleak.
func usesContextWith(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && contextWithFunc(info, call) != "" {
			found = true
			return false
		}
		return true
	})
	return found
}
