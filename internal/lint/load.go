package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis,
// carrying everything a rule needs: the parsed syntax, the type-checked
// package object, and the full types.Info side tables.
type Package struct {
	// Path is the import path ("irfusion/internal/sparse"). Fixture
	// packages under testdata get a synthetic path derived the same
	// way; nothing imports them, so the path only has to be unique.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source and
// satisfies every external (standard library) import through the
// compiler's export data, which is orders of magnitude faster than
// source-checking the stdlib and needs no third-party machinery.
//
// Object identity is the load-bearing property: a *types.Func obtained
// from a call site in package A resolves to the same object as the
// definition in package B, as long as both were checked by the same
// Loader. The directive maps and all cross-package rule checks depend
// on this, which is why one Loader must load the whole tree.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the absolute path of the module root (the directory
	// holding go.mod); ModPath is the module path declared there.
	ModRoot string
	ModPath string

	pkgs    map[string]*Package // loaded module packages by import path
	std     types.Importer      // export-data importer for non-module imports
	loading map[string]bool     // import-cycle detection
}

// NewLoader creates a loader rooted at modRoot, which must contain a
// go.mod file.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root %s: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: abs,
		ModPath: modPath,
		pkgs:    map[string]*Package{},
		std:     importer.Default(),
		loading: map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-internal paths are loaded
// from source (so rules get syntax and directives for them too), and
// everything else is delegated to the export-data importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// moduleDir maps a module-internal import path to its source
// directory; ok is false for external imports.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir loads the package in dir (absolute or relative to the
// process working directory), deriving its import path from its
// position under the module root. This is how the fixture self-tests
// load testdata packages that the tree walk deliberately skips.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", abs, l.ModRoot)
	}
	return l.load(l.ModPath+"/"+filepath.ToSlash(rel), abs)
}

// LoadTree loads every package of the module except testdata, vendor,
// and hidden/underscore directories, returning them sorted by import
// path.
func (l *Loader) LoadTree() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		p, err := l.LoadDir(path)
		if err != nil {
			if isNoGo(err) {
				return nil
			}
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// load parses and type-checks one module package, caching the result.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// go/build applies the default build constraints (GOOS, GOARCH,
	// tag gating like internal/race's //go:build race split), so the
	// file set matches what `go build` would compile.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// isNoGo reports whether err means "directory holds no buildable Go
// files", which the tree walk treats as "not a package" rather than a
// failure.
func isNoGo(err error) bool {
	var noGo *build.NoGoError
	return errors.As(err, &noGo)
}
