package pgen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"irfusion/internal/amg"
	"irfusion/internal/circuit"
	"irfusion/internal/solver"
	"irfusion/internal/spice"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig("d0", Fake, 48, 48, 7)
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Netlist.String() != d2.Netlist.String() {
		t.Error("same config must generate identical netlists")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(DefaultConfig("a", Fake, 48, 48, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig("b", Fake, 48, 48, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Netlist.String() == b.Netlist.String() {
		t.Error("different seeds should differ (current blobs move)")
	}
}

func TestGeneratedDesignSolves(t *testing.T) {
	for _, class := range []Class{Fake, Real} {
		for seed := int64(0); seed < 3; seed++ {
			d, err := Generate(DefaultConfig("t", class, 48, 48, seed))
			if err != nil {
				t.Fatalf("%v seed %d: %v", class, seed, err)
			}
			nw, err := circuit.FromNetlist(d.Netlist)
			if err != nil {
				t.Fatalf("%v seed %d: %v", class, seed, err)
			}
			sys, err := nw.Assemble()
			if err != nil {
				t.Fatalf("%v seed %d: assemble: %v", class, seed, err)
			}
			if sys.N() < 100 {
				t.Fatalf("%v seed %d: suspiciously small system (%d unknowns)", class, seed, sys.N())
			}
			h, err := amg.Build(sys.G, amg.DefaultOptions())
			if err != nil {
				t.Fatalf("%v seed %d: amg: %v", class, seed, err)
			}
			x := make([]float64, sys.N())
			res, err := solver.PCG(sys.G, x, sys.I, h, solver.DefaultOptions())
			if err != nil {
				t.Fatalf("%v seed %d: pcg: %v", class, seed, err)
			}
			if !res.Converged {
				t.Fatalf("%v seed %d: did not converge (rel %v)", class, seed, res.Residual)
			}
			// Physical sanity: drops non-negative and below VDD.
			maxDrop := 0.0
			for _, v := range x {
				if v < -1e-9 {
					t.Fatalf("%v seed %d: negative drop %v", class, seed, v)
				}
				if v > maxDrop {
					maxDrop = v
				}
			}
			if maxDrop <= 0 || maxDrop >= d.VDD {
				t.Fatalf("%v seed %d: implausible max drop %v", class, seed, maxDrop)
			}
		}
	}
}

func TestGeneratedNetlistStructure(t *testing.T) {
	d, err := Generate(DefaultConfig("s", Fake, 64, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	nr, ni, nv := d.Netlist.Counts()
	if nr == 0 || ni == 0 || nv == 0 {
		t.Fatalf("missing element kinds: R=%d I=%d V=%d", nr, ni, nv)
	}
	if nv != 4 {
		t.Errorf("expected 4 pads, got %d", nv)
	}
	// All node names parse and stay inside the die.
	for _, e := range d.Netlist.Elements {
		for _, name := range []string{e.NodeA, e.NodeB} {
			if name == spice.Ground {
				continue
			}
			n, err := spice.ParseNode(name)
			if err != nil {
				t.Fatalf("unparseable node %q: %v", name, err)
			}
			if n.X < 0 || n.X >= 64 || n.Y < 0 || n.Y >= 64 {
				t.Fatalf("node %q outside die", name)
			}
		}
	}
}

func TestMultiLayerStack(t *testing.T) {
	d, err := Generate(DefaultConfig("m", Fake, 64, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := circuit.FromNetlist(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	layers := nw.Layers()
	if len(layers) != 5 {
		t.Fatalf("Layers = %v, want the 5-layer default stack", layers)
	}
	// Vias present.
	vias := 0
	for _, r := range nw.Resistors {
		if r.IsVia {
			vias++
		}
	}
	if vias == 0 {
		t.Error("no vias generated")
	}
}

func TestRealDesignsHaveIrregularities(t *testing.T) {
	fake, err := Generate(DefaultConfig("f", Fake, 64, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	real_, err := Generate(DefaultConfig("r", Real, 64, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	fr, _, _ := fake.Netlist.Counts()
	rr, _, _ := real_.Netlist.Counts()
	if rr >= fr {
		t.Errorf("real design (%d R) should be sparser than fake (%d R) due to blockages/thinning", rr, fr)
	}
	if len(real_.CurrentBlobs) <= len(fake.CurrentBlobs) {
		t.Errorf("real designs should have more hotspots (%d vs %d)",
			len(real_.CurrentBlobs), len(fake.CurrentBlobs))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultConfig("tiny", Fake, 4, 4, 0)); err == nil {
		t.Error("expected error for tiny die")
	}
	cfg := DefaultConfig("x", Fake, 32, 32, 0)
	cfg.Layers = []LayerSpec{{Layer: 1, Dir: Horizontal, Pitch: 2, RPerUm: 1, ViaOhms: 1}}
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for single-layer stack")
	}
	cfg = DefaultConfig("y", Fake, 32, 32, 0)
	cfg.NumPads = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for zero pads")
	}
	cfg = DefaultConfig("z", Fake, 32, 32, 0)
	cfg.Layers[1].Dir = Horizontal // same as layer below
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for parallel adjacent layers")
	}
}

func TestClassString(t *testing.T) {
	if Fake.String() != "fake" || Real.String() != "real" {
		t.Error("Class strings wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, err := Generate(DefaultConfig("rt", Real, 48, 48, 6))
	if err != nil {
		t.Fatal(err)
	}
	back, err := spice.ParseString(d.Netlist.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Elements) != len(d.Netlist.Elements) {
		t.Errorf("round trip: %d vs %d elements", len(back.Elements), len(d.Netlist.Elements))
	}
	// The re-parsed deck must still assemble.
	nw, err := circuit.FromNetlist(back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Assemble(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig("json", Real, 48, 48, 11)
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(back)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Netlist.String() != d2.Netlist.String() {
		t.Error("JSON round-tripped config generates a different design")
	}
}

func TestConfigJSONErrors(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader(`{"class":"weird"}`)); err == nil {
		t.Error("expected unknown-class error")
	}
	if _, err := ReadConfig(strings.NewReader(`{"layers":[{"dir":"diagonal"}]}`)); err == nil {
		t.Error("expected unknown-direction error")
	}
	if _, err := ReadConfig(strings.NewReader(`not json`)); err == nil {
		t.Error("expected parse error")
	}
}

func TestDualRail(t *testing.T) {
	d, err := Generate(DefaultConfig("dr", Fake, 48, 48, 13))
	if err != nil {
		t.Fatal(err)
	}
	dual := d.DualRail()
	if len(dual.Elements) != 2*len(d.Netlist.Elements) {
		t.Fatalf("dual deck has %d elements, want %d", len(dual.Elements), 2*len(d.Netlist.Elements))
	}
	systems, skipped, err := circuit.AnalyzeNets(dual)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(systems) != 2 {
		t.Fatalf("systems=%d skipped=%v", len(systems), skipped)
	}
	// Identical geometry -> identical system sizes and total load.
	if systems[1].N() != systems[2].N() {
		t.Errorf("net sizes differ: %d vs %d", systems[1].N(), systems[2].N())
	}
	if systems[1].TotalLoad() != systems[2].TotalLoad() {
		t.Errorf("loads differ: %v vs %v", systems[1].TotalLoad(), systems[2].TotalLoad())
	}
	// VSS pads at 0 V.
	if systems[2].VDD != 0 {
		t.Errorf("VSS pad voltage %v, want 0", systems[2].VDD)
	}
	// Ground bounce equals IR drop for the mirrored geometry.
	solve := func(sys *circuit.System) float64 {
		x := make([]float64, sys.N())
		if _, err := solver.CG(sys.G, x, sys.I, solver.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		mx := 0.0
		for _, v := range x {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	if a, b := solve(systems[1]), solve(systems[2]); math.Abs(a-b) > 1e-9*a {
		t.Errorf("mirror symmetry broken: %v vs %v", a, b)
	}
}
