// Package pgen synthesizes power-grid designs that stand in for the
// ICCAD-2023 static IR-drop contest dataset (which mixes 100 BeGAN-
// generated "fake" designs with 20 real ones). A design is a SPICE
// deck: multi-layer strap networks joined by vias, per-cell current
// loads on the bottom layer, and VDD pads on the top layer.
//
// Two regimes mirror the contest's difficulty split used by the
// paper's curriculum learning:
//
//   - Fake: regular strap pitches, uniform via population, pads on a
//     regular grid, smooth current with a couple of hotspot blobs.
//   - Real: jittered/deleted straps, sparser vias, irregular pad
//     placement, macro blockages that carve holes in the lower
//     layers, and more numerous, sharper current hotspots.
//
// All geometry is in integer micrometres; one µm is one pixel in the
// image representation, matching the contest's 1µm×1µm tiles.
package pgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"irfusion/internal/spice"
)

// Class labels the design difficulty regime.
type Class int

const (
	// Fake designs are regular, artificially generated grids
	// (the "easier" curriculum bucket).
	Fake Class = iota
	// Real designs are irregular grids with blockages and skewed pads
	// (the "harder" curriculum bucket).
	Real
)

func (c Class) String() string {
	if c == Fake {
		return "fake"
	}
	return "real"
}

// Direction of the straps on a metal layer.
type Direction int

const (
	// Horizontal straps run along x at fixed y.
	Horizontal Direction = iota
	// Vertical straps run along y at fixed x.
	Vertical
)

// LayerSpec describes one metal layer of the PG stack.
type LayerSpec struct {
	Layer    int       // metal layer number (m1, m4, ...)
	Dir      Direction // strap direction
	Pitch    int       // strap pitch in µm
	RPerUm   float64   // wire resistance in Ω/µm
	ViaOhms  float64   // resistance of a via up to the next layer
	ViaEvery int       // populate every k-th crossing with a via (≥1)
}

// Config parameterizes generation.
type Config struct {
	Name  string
	Class Class
	Seed  int64
	// W, H are the die dimensions in µm (== pixels).
	W, H int
	// VDD is the pad voltage.
	VDD float64
	// Layers is the stack, bottom first. If nil, DefaultStack is used.
	Layers []LayerSpec
	// NumPads is the number of VDD pads on the top layer.
	NumPads int
	// CellPitch is the load attachment pitch along m1 straps (µm).
	CellPitch int
	// BackgroundAmps is the per-cell background current draw.
	BackgroundAmps float64
	// Hotspots is the number of Gaussian current blobs.
	Hotspots int
	// HotspotAmps is the peak extra per-cell current inside a blob.
	HotspotAmps float64
	// Blockages is the number of macro cut-outs (Real designs).
	Blockages int
}

// DefaultStack returns a five-layer stack patterned after the contest
// designs (m1 cell rails up to a coarse m9 mesh).
func DefaultStack() []LayerSpec {
	return []LayerSpec{
		{Layer: 1, Dir: Horizontal, Pitch: 2, RPerUm: 0.8, ViaOhms: 2.0, ViaEvery: 1},
		{Layer: 4, Dir: Vertical, Pitch: 4, RPerUm: 0.4, ViaOhms: 1.0, ViaEvery: 1},
		{Layer: 7, Dir: Horizontal, Pitch: 8, RPerUm: 0.2, ViaOhms: 0.5, ViaEvery: 1},
		{Layer: 8, Dir: Vertical, Pitch: 12, RPerUm: 0.1, ViaOhms: 0.25, ViaEvery: 1},
		{Layer: 9, Dir: Horizontal, Pitch: 16, RPerUm: 0.05, ViaOhms: 0.25, ViaEvery: 1},
	}
}

// DefaultConfig returns a ready-to-generate configuration for a
// w×h-µm design of the given class.
func DefaultConfig(name string, class Class, w, h int, seed int64) Config {
	cfg := Config{
		Name:           name,
		Class:          class,
		Seed:           seed,
		W:              w,
		H:              h,
		VDD:            1.05,
		Layers:         DefaultStack(),
		NumPads:        4,
		CellPitch:      2,
		BackgroundAmps: 5e-5,
		Hotspots:       2,
		HotspotAmps:    4e-4,
	}
	if class == Real {
		cfg.Hotspots = 4
		cfg.HotspotAmps = 6e-4
		cfg.Blockages = 2
	}
	return cfg
}

// Design is a generated power grid.
type Design struct {
	Name    string
	Class   Class
	W, H    int // pixels (µm)
	VDD     float64
	Netlist *spice.Netlist
	// CurrentBlobs records the hotspot centers (for tests/inspection).
	CurrentBlobs [][2]int
}

// Perturb returns an ECO-edited copy of d: each resistor value is
// rescaled by up to ±5% with probability frac (seeded, so a given
// (design, frac, seed) triple always yields the same edit). Topology,
// current loads, and pads are untouched, which models a strap-width
// engineering change: the perturbed design's conductance matrix
// differs from the original's only in the entries stamped by the
// edited resistors, making the pair a controlled fixture for the
// artifact cache's delta-solve path.
func Perturb(d *Design, frac float64, seed int64) *Design {
	rng := rand.New(rand.NewSource(seed))
	nl := &spice.Netlist{
		Title:    d.Netlist.Title,
		Elements: append([]spice.Element(nil), d.Netlist.Elements...),
	}
	changed := 0
	for i := range nl.Elements {
		e := &nl.Elements[i]
		if e.Type != spice.Resistor || rng.Float64() >= frac {
			continue
		}
		e.Value *= 1 + 0.1*(rng.Float64()-0.5)
		changed++
	}
	out := *d
	out.Name = fmt.Sprintf("%s_eco_s%d_n%d", d.Name, seed, changed)
	out.Netlist = nl
	return &out
}

// rect is a closed axis-aligned region.
type rect struct{ x0, y0, x1, y1 int }

func (r rect) contains(x, y int) bool {
	return x >= r.x0 && x <= r.x1 && y >= r.y0 && y <= r.y1
}

// Generate synthesizes a design from the configuration. It is
// deterministic for a fixed Config (including Seed).
func Generate(cfg Config) (*Design, error) {
	if cfg.W < 8 || cfg.H < 8 {
		return nil, fmt.Errorf("pgen: die %dx%d too small", cfg.W, cfg.H)
	}
	if cfg.Layers == nil {
		cfg.Layers = DefaultStack()
	}
	if len(cfg.Layers) < 2 {
		return nil, fmt.Errorf("pgen: need at least 2 layers, got %d", len(cfg.Layers))
	}
	if cfg.NumPads < 1 {
		return nil, fmt.Errorf("pgen: need at least one pad")
	}
	if cfg.CellPitch < 1 {
		cfg.CellPitch = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Macro blockages (lower half of the stack only).
	var blocks []rect
	if cfg.Class == Real {
		for b := 0; b < cfg.Blockages; b++ {
			bw := cfg.W/6 + rng.Intn(cfg.W/6+1)
			bh := cfg.H/6 + rng.Intn(cfg.H/6+1)
			x0 := rng.Intn(cfg.W - bw)
			y0 := rng.Intn(cfg.H - bh)
			blocks = append(blocks, rect{x0, y0, x0 + bw, y0 + bh})
		}
	}
	blockedLow := func(x, y int) bool {
		for _, r := range blocks {
			if r.contains(x, y) {
				return true
			}
		}
		return false
	}

	// Strap coordinates per layer.
	coords := make([][]int, len(cfg.Layers))
	for li, ls := range cfg.Layers {
		if ls.Pitch < 1 {
			return nil, fmt.Errorf("pgen: layer m%d has pitch %d", ls.Layer, ls.Pitch)
		}
		limit := cfg.H
		if ls.Dir == Vertical {
			limit = cfg.W
		}
		offset := ls.Pitch / 2
		for c := offset; c < limit; c += ls.Pitch {
			cc := c
			if cfg.Class == Real && li < len(cfg.Layers)-1 {
				// Jitter strap positions and occasionally delete one.
				if rng.Float64() < 0.08 {
					continue
				}
				cc += rng.Intn(3) - 1
				if cc < 0 || cc >= limit {
					cc = c
				}
			}
			coords[li] = append(coords[li], cc)
		}
		if len(coords[li]) == 0 {
			return nil, fmt.Errorf("pgen: layer m%d has no straps (pitch %d vs die %dx%d)",
				ls.Layer, ls.Pitch, cfg.W, cfg.H)
		}
		coords[li] = dedupeSorted(coords[li])
	}

	// nodesOnLayer[li] collects the x/y positions of nodes per strap.
	// key: strap coordinate; values: sorted positions along the strap.
	type strapKey struct{ li, coord int }
	strapNodes := make(map[strapKey]map[int]bool)
	addNode := func(li, coord, pos int) {
		k := strapKey{li, coord}
		if strapNodes[k] == nil {
			strapNodes[k] = make(map[int]bool)
		}
		strapNodes[k][pos] = true
	}
	nodeName := func(li, x, y int) string {
		return spice.Node{Net: 1, Layer: cfg.Layers[li].Layer, X: x, Y: y}.String()
	}

	nl := &spice.Netlist{Title: fmt.Sprintf("%s (%s, %dx%d um)", cfg.Name, cfg.Class, cfg.W, cfg.H)}
	elemID := 0
	addR := func(a, b string, ohms float64) {
		elemID++
		nl.Elements = append(nl.Elements, spice.Element{
			Type: spice.Resistor, Name: fmt.Sprintf("R%d", elemID),
			NodeA: a, NodeB: b, Value: ohms,
		})
	}
	addI := func(a string, amps float64) {
		elemID++
		nl.Elements = append(nl.Elements, spice.Element{
			Type: spice.CurrentSource, Name: fmt.Sprintf("I%d", elemID),
			NodeA: a, NodeB: spice.Ground, Value: amps,
		})
	}
	addV := func(a string) {
		elemID++
		nl.Elements = append(nl.Elements, spice.Element{
			Type: spice.VoltageSource, Name: fmt.Sprintf("V%d", elemID),
			NodeA: a, NodeB: spice.Ground, Value: cfg.VDD,
		})
	}

	// Vias between adjacent layers: nodes at crossings.
	lowHalf := func(li int) bool { return li < (len(cfg.Layers)+1)/2 }
	for li := 0; li+1 < len(cfg.Layers); li++ {
		lo, hi := cfg.Layers[li], cfg.Layers[li+1]
		if lo.Dir == hi.Dir {
			return nil, fmt.Errorf("pgen: adjacent layers m%d/m%d share direction", lo.Layer, hi.Layer)
		}
		viaEvery := lo.ViaEvery
		if viaEvery < 1 {
			viaEvery = 1
		}
		k := 0
		for _, cl := range coords[li] {
			for _, ch := range coords[li+1] {
				var x, y int
				if lo.Dir == Horizontal { // lo at y=cl, hi vertical at x=ch
					x, y = ch, cl
				} else { // lo vertical at x=cl, hi horizontal at y=ch
					x, y = cl, ch
				}
				k++
				if k%viaEvery != 0 {
					continue
				}
				if cfg.Class == Real {
					// Thin out vias on lower layers outside pads.
					if lowHalf(li) && rng.Float64() < 0.1 {
						continue
					}
					if lowHalf(li) && blockedLow(x, y) {
						continue
					}
				}
				addNode(li, cl, posAlong(lo.Dir, x, y))
				addNode(li+1, ch, posAlong(hi.Dir, x, y))
				addR(nodeName(li, x, y), nodeName(li+1, x, y), lo.ViaOhms)
			}
		}
	}

	// Current loads along the bottom layer straps.
	bot := cfg.Layers[0]
	current := newCurrentField(cfg, rng)
	var blobCenters [][2]int
	for _, b := range current.blobs {
		blobCenters = append(blobCenters, [2]int{b.cx, b.cy})
	}
	for _, c := range coords[0] {
		limit := cfg.W
		if bot.Dir == Vertical {
			limit = cfg.H
		}
		for p := cfg.CellPitch / 2; p < limit; p += cfg.CellPitch {
			var x, y int
			if bot.Dir == Horizontal {
				x, y = p, c
			} else {
				x, y = c, p
			}
			if cfg.Class == Real && blockedLow(x, y) {
				continue
			}
			amps := current.at(float64(x), float64(y))
			if amps <= 0 {
				continue
			}
			addNode(0, c, posAlong(bot.Dir, x, y))
			addI(nodeName(0, x, y), amps)
		}
	}

	// Pads on the top layer: choose existing via nodes.
	topLi := len(cfg.Layers) - 1
	var topNodes [][2]int // (coord, pos)
	for _, c := range coords[topLi] {
		for p := range strapNodes[strapKey{topLi, c}] {
			topNodes = append(topNodes, [2]int{c, p})
		}
	}
	if len(topNodes) == 0 {
		return nil, fmt.Errorf("pgen: top layer has no via nodes to attach pads")
	}
	// Sort for determinism (map iteration order is random).
	sortPairs(topNodes)
	padIdx := choosePads(cfg, rng, topNodes)
	for _, pi := range padIdx {
		c, p := topNodes[pi][0], topNodes[pi][1]
		x, y := xyFrom(cfg.Layers[topLi].Dir, c, p)
		addV(nodeName(topLi, x, y))
	}

	// Wire segments: connect consecutive nodes along each strap.
	for li, ls := range cfg.Layers {
		for _, c := range coords[li] {
			nodes := strapNodes[strapKey{li, c}]
			if len(nodes) < 2 {
				continue
			}
			ps := make([]int, 0, len(nodes))
			for p := range nodes {
				ps = append(ps, p)
			}
			sortInts(ps)
			for i := 0; i+1 < len(ps); i++ {
				x0, y0 := xyFrom(ls.Dir, c, ps[i])
				x1, y1 := xyFrom(ls.Dir, c, ps[i+1])
				dist := float64(ps[i+1] - ps[i])
				if cfg.Class == Real && lowHalf(li) {
					// Segments crossing a blockage are cut.
					mx, my := (x0+x1)/2, (y0+y1)/2
					if blockedLow(mx, my) {
						continue
					}
				}
				addR(nodeName(li, x0, y0), nodeName(li, x1, y1), ls.RPerUm*dist)
			}
		}
	}

	pruneFloating(nl)

	return &Design{
		Name:         cfg.Name,
		Class:        cfg.Class,
		W:            cfg.W,
		H:            cfg.H,
		VDD:          cfg.VDD,
		Netlist:      nl,
		CurrentBlobs: blobCenters,
	}, nil
}

// pruneFloating removes elements attached to nodes without a resistive
// path to any pad. The Real-design strap/via thinning and blockage
// cuts can orphan small islands of the bottom layers; dropping their
// loads (a macro's internal grid is not modeled anyway) keeps the MNA
// system non-singular.
func pruneFloating(nl *spice.Netlist) {
	idx := map[string]int{}
	intern := func(s string) int {
		if i, ok := idx[s]; ok {
			return i
		}
		i := len(idx)
		idx[s] = i
		return i
	}
	type edge struct{ a, b int }
	var edges []edge
	var seeds []int
	for _, e := range nl.Elements {
		switch e.Type {
		case spice.Resistor:
			edges = append(edges, edge{intern(e.NodeA), intern(e.NodeB)})
		case spice.VoltageSource:
			n := e.NodeA
			if n == spice.Ground {
				n = e.NodeB
			}
			seeds = append(seeds, intern(n))
		}
	}
	adj := make([][]int, len(idx))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	reached := make([]bool, len(idx))
	queue := []int{}
	for _, s := range seeds {
		if !reached[s] {
			reached[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, o := range adj[v] {
			if !reached[o] {
				reached[o] = true
				queue = append(queue, o)
			}
		}
	}
	ok := func(name string) bool {
		if name == spice.Ground {
			return true
		}
		i, exists := idx[name]
		return exists && reached[i]
	}
	kept := nl.Elements[:0]
	for _, e := range nl.Elements {
		if ok(e.NodeA) && ok(e.NodeB) {
			kept = append(kept, e)
		}
	}
	nl.Elements = kept
}

// dedupeSorted sorts v ascending and removes duplicates in place.
func dedupeSorted(v []int) []int {
	sortInts(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// posAlong returns the coordinate that varies along a strap.
func posAlong(d Direction, x, y int) int {
	if d == Horizontal {
		return x
	}
	return y
}

// xyFrom reconstructs (x, y) from a strap coordinate and position.
func xyFrom(d Direction, coord, pos int) (int, int) {
	if d == Horizontal {
		return pos, coord
	}
	return coord, pos
}

func sortInts(v []int) { sort.Ints(v) }

func sortPairs(v [][2]int) {
	sort.Slice(v, func(i, j int) bool {
		if v[i][0] != v[j][0] {
			return v[i][0] < v[j][0]
		}
		return v[i][1] < v[j][1]
	})
}

// choosePads selects pad node indices: a regular spread for Fake
// designs, an edge-biased irregular pick for Real ones.
func choosePads(cfg Config, rng *rand.Rand, top [][2]int) []int {
	n := cfg.NumPads
	if n > len(top) {
		n = len(top)
	}
	idx := make([]int, 0, n)
	if cfg.Class == Fake {
		for i := 0; i < n; i++ {
			idx = append(idx, i*(len(top)-1)/max(1, n-1))
		}
	} else {
		seen := map[int]bool{}
		for len(idx) < n {
			i := rng.Intn(len(top))
			if !seen[i] {
				seen[i] = true
				idx = append(idx, i)
			}
		}
	}
	// Deduplicate (regular spread can repeat when n > distinct slots).
	seen := map[int]bool{}
	out := idx[:0]
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// currentField is a background + Gaussian blob current density model.
type currentField struct {
	background float64
	blobs      []blob
}

type blob struct {
	cx, cy int
	amp    float64
	sigma  float64
}

func newCurrentField(cfg Config, rng *rand.Rand) *currentField {
	f := &currentField{background: cfg.BackgroundAmps}
	for i := 0; i < cfg.Hotspots; i++ {
		sigma := float64(min(cfg.W, cfg.H)) * (0.06 + 0.10*rng.Float64())
		if cfg.Class == Real {
			sigma *= 0.7 // sharper hotspots
		}
		f.blobs = append(f.blobs, blob{
			cx:    rng.Intn(cfg.W),
			cy:    rng.Intn(cfg.H),
			amp:   cfg.HotspotAmps * (0.5 + rng.Float64()),
			sigma: sigma,
		})
	}
	return f
}

func (f *currentField) at(x, y float64) float64 {
	v := f.background
	for _, b := range f.blobs {
		dx, dy := x-float64(b.cx), y-float64(b.cy)
		v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
	}
	return v
}

// DualRail returns a deck containing the design's VDD net (net 1)
// plus a mirrored VSS return net (net 2) with identical geometry:
// pads at 0 V and the same per-cell currents flowing back into the
// ground rail. Together with circuit.AnalyzeNets this enables
// simultaneous IR-drop and ground-bounce analysis.
func (d *Design) DualRail() *spice.Netlist {
	out := &spice.Netlist{Title: d.Netlist.Title + " (dual rail)"}
	out.Elements = append(out.Elements, d.Netlist.Elements...)
	mirror := func(name string) string {
		if name == spice.Ground {
			return name
		}
		n, err := spice.ParseNode(name)
		if err != nil {
			return name
		}
		n.Net = 2
		return n.String()
	}
	for _, e := range d.Netlist.Elements {
		m := e
		m.Name = e.Name + "v"
		m.NodeA = mirror(e.NodeA)
		m.NodeB = mirror(e.NodeB)
		if m.Type == spice.VoltageSource {
			m.Value = 0 // VSS pads
		}
		out.Elements = append(out.Elements, m)
	}
	return out
}
