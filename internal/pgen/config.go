package pgen

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialization of generator configurations, so experiment
// setups can be versioned and shared as plain files
// (irfusion gen -config stack.json).

// configJSON mirrors Config with string enums for readability.
type configJSON struct {
	Name           string          `json:"name"`
	Class          string          `json:"class"`
	Seed           int64           `json:"seed"`
	W              int             `json:"w"`
	H              int             `json:"h"`
	VDD            float64         `json:"vdd"`
	Layers         []layerSpecJSON `json:"layers,omitempty"`
	NumPads        int             `json:"num_pads"`
	CellPitch      int             `json:"cell_pitch"`
	BackgroundAmps float64         `json:"background_amps"`
	Hotspots       int             `json:"hotspots"`
	HotspotAmps    float64         `json:"hotspot_amps"`
	Blockages      int             `json:"blockages"`
}

type layerSpecJSON struct {
	Layer    int     `json:"layer"`
	Dir      string  `json:"dir"`
	Pitch    int     `json:"pitch"`
	RPerUm   float64 `json:"r_per_um"`
	ViaOhms  float64 `json:"via_ohms"`
	ViaEvery int     `json:"via_every"`
}

// MarshalJSON implements json.Marshaler for Config.
func (c Config) MarshalJSON() ([]byte, error) {
	out := configJSON{
		Name: c.Name, Class: c.Class.String(), Seed: c.Seed,
		W: c.W, H: c.H, VDD: c.VDD,
		NumPads: c.NumPads, CellPitch: c.CellPitch,
		BackgroundAmps: c.BackgroundAmps, Hotspots: c.Hotspots,
		HotspotAmps: c.HotspotAmps, Blockages: c.Blockages,
	}
	for _, l := range c.Layers {
		dir := "horizontal"
		if l.Dir == Vertical {
			dir = "vertical"
		}
		out.Layers = append(out.Layers, layerSpecJSON{
			Layer: l.Layer, Dir: dir, Pitch: l.Pitch,
			RPerUm: l.RPerUm, ViaOhms: l.ViaOhms, ViaEvery: l.ViaEvery,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Config.
func (c *Config) UnmarshalJSON(data []byte) error {
	var in configJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	c.Name, c.Seed = in.Name, in.Seed
	c.W, c.H, c.VDD = in.W, in.H, in.VDD
	c.NumPads, c.CellPitch = in.NumPads, in.CellPitch
	c.BackgroundAmps, c.Hotspots = in.BackgroundAmps, in.Hotspots
	c.HotspotAmps, c.Blockages = in.HotspotAmps, in.Blockages
	switch in.Class {
	case "fake", "":
		c.Class = Fake
	case "real":
		c.Class = Real
	default:
		return fmt.Errorf("pgen: unknown class %q", in.Class)
	}
	c.Layers = nil
	for _, l := range in.Layers {
		var dir Direction
		switch l.Dir {
		case "horizontal", "h", "":
			dir = Horizontal
		case "vertical", "v":
			dir = Vertical
		default:
			return fmt.Errorf("pgen: unknown direction %q", l.Dir)
		}
		c.Layers = append(c.Layers, LayerSpec{
			Layer: l.Layer, Dir: dir, Pitch: l.Pitch,
			RPerUm: l.RPerUm, ViaOhms: l.ViaOhms, ViaEvery: l.ViaEvery,
		})
	}
	return nil
}

// WriteConfig serializes a generator configuration as indented JSON.
func WriteConfig(w io.Writer, c Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadConfig parses a generator configuration from JSON.
func ReadConfig(r io.Reader) (Config, error) {
	var c Config
	err := json.NewDecoder(r).Decode(&c)
	return c, err
}
