package pgen

import (
	"testing"

	"irfusion/internal/spice"
)

// TestPerturbDeterministic pins the ECO generator's contract: the same
// (design, frac, seed) triple always yields the same edit, and a
// different seed yields a different one.
func TestPerturbDeterministic(t *testing.T) {
	d, err := Generate(DefaultConfig("eco", Real, 24, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	a := Perturb(d, 0.05, 9)
	b := Perturb(d, 0.05, 9)
	if a.Name != b.Name || len(a.Netlist.Elements) != len(b.Netlist.Elements) {
		t.Fatalf("repeat perturb diverged: %s vs %s", a.Name, b.Name)
	}
	for i := range a.Netlist.Elements {
		if a.Netlist.Elements[i] != b.Netlist.Elements[i] { //irfusion:exact same seeded RNG stream stamps the same bits
			t.Fatalf("repeat perturb diverged at element %d", i)
		}
	}
	c := Perturb(d, 0.5, 10)
	same := true
	for i := range a.Netlist.Elements {
		if c.Netlist.Elements[i] != a.Netlist.Elements[i] { //irfusion:exact comparing for any difference at all
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seed and frac produced an identical edit")
	}
}

// TestPerturbTouchesOnlyResistorValues proves the ECO model: topology,
// element order, names, nodes, loads, and pads are untouched — only
// resistor values move, and each by at most ±5%.
func TestPerturbTouchesOnlyResistorValues(t *testing.T) {
	d, err := Generate(DefaultConfig("eco", Real, 24, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := Perturb(d, 1, 3) // frac=1: every resistor is edited
	if len(p.Netlist.Elements) != len(d.Netlist.Elements) {
		t.Fatal("perturb changed the element count")
	}
	edited := 0
	for i := range d.Netlist.Elements {
		orig, got := d.Netlist.Elements[i], p.Netlist.Elements[i]
		if got.Type != orig.Type || got.Name != orig.Name || got.NodeA != orig.NodeA || got.NodeB != orig.NodeB {
			t.Fatalf("element %d identity changed: %+v -> %+v", i, orig, got)
		}
		if orig.Type != spice.Resistor {
			if got.Value != orig.Value { //irfusion:exact non-resistors must be byte-identical copies
				t.Fatalf("non-resistor %s value changed", orig.Name)
			}
			continue
		}
		ratio := got.Value / orig.Value
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("resistor %s rescaled by %g, want within ±5%%", orig.Name, ratio)
		}
		if got.Value != orig.Value { //irfusion:exact counting elements the RNG actually touched
			edited++
		}
	}
	if edited == 0 {
		t.Fatal("frac=1 edited no resistors")
	}
	// The original design is never mutated in place.
	if d.Name == p.Name {
		t.Fatal("perturbed design kept the original name")
	}
}

// TestPerturbZeroFracIsElectricalNoop pins the frac=0 edge: no element
// changes, so the netlist is an identical (but independent) copy.
func TestPerturbZeroFracIsElectricalNoop(t *testing.T) {
	d, err := Generate(DefaultConfig("eco", Real, 24, 24, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := Perturb(d, 0, 4)
	for i := range d.Netlist.Elements {
		if p.Netlist.Elements[i] != d.Netlist.Elements[i] { //irfusion:exact frac=0 must copy every element untouched
			t.Fatalf("frac=0 changed element %d", i)
		}
	}
	// The copy is deep enough that editing it cannot alias the source.
	p.Netlist.Elements[0].Value += 1
	if d.Netlist.Elements[0].Value == p.Netlist.Elements[0].Value { //irfusion:exact aliasing check: the write must not reach d
		t.Fatal("perturbed netlist aliases the source elements")
	}
}
