package journal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the replay path as a
// segment file and checks the recovery invariants:
//
//  1. Open never panics and never fails on corruption (only real I/O
//     errors may surface, and a byte-slice segment cannot produce one).
//  2. The clean prefix replays: every record delivered decoded from a
//     CRC-validated frame.
//  3. Truncation is idempotent: after one Open, a second Open of the
//     same directory reports zero torn bytes and zero corruption —
//     whatever damage the bytes contained was cut off the tail the
//     first time (mid-file damage would stop replay at the same clean
//     prefix both times, also reporting consistently).
//  4. The journal stays appendable after recovery: a fresh record
//     written post-Open replays on the next Open.
func FuzzJournalReplay(f *testing.F) {
	// Seed corpus: a valid two-record log, its torn truncations, a
	// bit-flipped variant, pathological lengths, and junk.
	valid := append(
		encodeFrame([]byte(`{"type":"accepted","job_id":"job-000001","request":{"mode":"numerical"}}`)),
		encodeFrame([]byte(`{"type":"checkpoint","job_id":"job-000001","checkpoint_key":"ckpt|a|b"}`))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])  // torn tail
	f.Add(valid[:frameHeader-2]) // torn header
	flipped := append([]byte(nil), valid...)
	flipped[frameHeader+5] ^= 0x20
	f.Add(flipped)                                    // CRC mismatch
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length field
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})             // zero length field
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, fmt.Sprintf("journal-%06d.wal", 1))
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var first []Record
		j, stats1, err := Open(dir, Options{}, func(r Record) { first = append(first, r) })
		if err != nil {
			t.Fatalf("Open failed on corrupt input (must recover, not refuse): %v", err)
		}
		if stats1.Records != len(first) {
			t.Fatalf("stats.Records %d != %d records delivered", stats1.Records, len(first))
		}
		// The journal must accept appends after any recovery.
		if err := j.Append(context.Background(), Record{Type: TypeStarted, JobID: "post-recovery"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Close()

		var second []Record
		j2, stats2, err := Open(dir, Options{}, func(r Record) { second = append(second, r) })
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		j2.Close()
		if stats2.TornBytes != 0 {
			t.Fatalf("second open still sees %d torn bytes — truncation was not idempotent", stats2.TornBytes)
		}
		if len(second) != len(first)+1 {
			t.Fatalf("second replay got %d records, want clean prefix (%d) + the appended one",
				len(second), len(first))
		}
		if got := second[len(second)-1]; got.JobID != "post-recovery" {
			t.Fatalf("appended record lost after recovery: %+v", got)
		}
		for i := range first {
			if second[i].Type != first[i].Type || second[i].JobID != first[i].JobID {
				t.Fatalf("replay not deterministic at record %d: %+v vs %+v", i, first[i], second[i])
			}
		}
	})
}
