package journal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"irfusion/internal/faults"
)

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(context.Background(), rec); err != nil {
		t.Fatalf("append %+v: %v", rec, err)
	}
}

func replayAll(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	j, stats, err := Open(dir, Options{}, func(r Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	j.Close()
	return recs, stats
}

// TestJournalRoundTrip: appended records come back in order on replay,
// with every field intact.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, stats, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh journal stats: %+v", stats)
	}
	want := []Record{
		{Type: TypeAccepted, JobID: "job-000001", Request: []byte(`{"mode":"numerical"}`)},
		{Type: TypeStarted, JobID: "job-000001"},
		{Type: TypeCheckpoint, JobID: "job-000001", CheckpointKey: "ckpt|abc|shape"},
		{Type: TypeFinished, JobID: "job-000001"},
	}
	for _, r := range want {
		mustAppend(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(context.Background(), Record{Type: TypeStarted}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	recs, stats := replayAll(t, dir)
	if stats.Records != len(want) || stats.TornBytes != 0 || stats.Corrupt != 0 {
		t.Fatalf("replay stats: %+v", stats)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || r.JobID != want[i].JobID ||
			r.CheckpointKey != want[i].CheckpointKey || string(r.Request) != string(want[i].Request) {
			t.Errorf("record %d: %+v, want %+v", i, r, want[i])
		}
		if r.Time.IsZero() {
			t.Errorf("record %d: append never stamped a time", i)
		}
	}
}

// TestJournalSegmentRotation: appends beyond SegmentBytes rotate to new
// segment files, and replay stitches all of them back together.
func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, j, Record{Type: TypeStarted, JobID: fmt.Sprintf("job-%06d", i)})
	}
	j.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("got %d segments, want rotation to have produced several", len(segs))
	}
	recs, stats := replayAll(t, dir)
	if len(recs) != n {
		t.Fatalf("replayed %d records across %d segments, want %d", len(recs), stats.Segments, n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("job-%06d", i); r.JobID != want {
			t.Fatalf("record %d out of order: %q, want %q", i, r.JobID, want)
		}
	}
}

// TestJournalTornTailTruncated: a torn final frame (simulating a crash
// mid-write) is truncated on open, the clean prefix replays, and a
// second open sees no damage at all — truncation is idempotent.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Type: TypeAccepted, JobID: "job-000001"})
	mustAppend(t, j, Record{Type: TypeStarted, JobID: "job-000001"})
	j.Close()

	// Tear the tail: append half a frame by hand.
	seg := filepath.Join(dir, "journal-000001.wal")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame([]byte(`{"type":"finished","job_id":"job-000001"}`))
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, stats := replayAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 clean ones", len(recs))
	}
	if stats.TornBytes == 0 {
		t.Error("torn tail not reported")
	}

	// Idempotence: the truncation happened on disk, so a second open
	// finds a clean journal.
	recs, stats = replayAll(t, dir)
	if len(recs) != 2 || stats.TornBytes != 0 || stats.Corrupt != 0 {
		t.Fatalf("second open after truncation: %d records, stats %+v", len(recs), stats)
	}
}

// TestJournalMidSegmentCorruption: a flipped bit in an *earlier*
// segment ends that segment's replay at the last clean frame but must
// not stop later segments from replaying — and must not truncate the
// damaged (non-final) segment.
func TestJournalMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		mustAppend(t, j, Record{Type: TypeStarted, JobID: fmt.Sprintf("job-%06d", i)})
	}
	j.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}

	// Flip a payload byte in the first segment.
	first := filepath.Join(dir, segs[0].name)
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+2] ^= 0xff
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sizeBefore := int64(len(raw))

	recs, stats := replayAll(t, dir)
	if stats.Corrupt == 0 {
		t.Error("corruption not reported")
	}
	if len(recs) >= n {
		t.Fatalf("replayed %d records despite corruption", len(recs))
	}
	// Later segments' records must be present.
	lastID := recs[len(recs)-1].JobID
	if want := fmt.Sprintf("job-%06d", n-1); lastID != want {
		t.Errorf("last replayed record %q, want %q (later segments must still replay)", lastID, want)
	}
	fi, err := os.Stat(first)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != sizeBefore {
		t.Errorf("non-final segment was truncated (%d → %d bytes)", sizeBefore, fi.Size())
	}
}

// TestJournalSyncPolicies: every policy accepts appends; Sync flushes
// on demand; an unknown policy string falls back to fsync-per-append
// behaviour via withDefaults validation at the serve layer (here we
// just pin that the three named policies work).
func TestJournalSyncPolicies(t *testing.T) {
	for _, policy := range []string{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			j, _, err := Open(dir, Options{Sync: policy, SyncEvery: time.Hour}, nil)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, j, Record{Type: TypeAccepted, JobID: "job-000001"})
			mustAppend(t, j, Record{Type: TypeFinished, JobID: "job-000001"})
			if err := j.Sync(); err != nil {
				t.Fatalf("explicit sync: %v", err)
			}
			j.Close()
			recs, _ := replayAll(t, dir)
			if len(recs) != 2 {
				t.Fatalf("replayed %d records, want 2", len(recs))
			}
		})
	}
}

// TestJournalAppendFaults: the journal.append fault site must fail the
// append (ActFail writes nothing) and tear frames (ActTorn leaves half
// a frame that the next open truncates).
func TestJournalAppendFaults(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Type: TypeAccepted, JobID: "job-000001"})

	ctx := faults.WithInjector(context.Background(), faults.MustParse("journal.append:fail:times=1"))
	if err := j.Append(ctx, Record{Type: TypeStarted, JobID: "job-000001"}); err == nil {
		t.Fatal("ActFail append did not error")
	}

	ctx = faults.WithInjector(context.Background(), faults.MustParse("journal.append:torn:times=1"))
	if err := j.Append(ctx, Record{Type: TypeFinished, JobID: "job-000001"}); err == nil {
		t.Fatal("ActTorn append did not error")
	}
	j.Close()

	recs, stats := replayAll(t, dir)
	if len(recs) != 1 || recs[0].Type != TypeAccepted {
		t.Fatalf("replayed %d records (%+v), want only the clean accepted one", len(recs), recs)
	}
	if stats.TornBytes == 0 {
		t.Error("torn frame not truncated/reported")
	}
}

// TestFoldOrphans: the fold keeps acceptance order, marks terminal
// jobs, and carries requests plus the latest checkpoint key forward.
func TestFoldOrphans(t *testing.T) {
	f := NewFold()
	add := func(typ, id, key string, req string) {
		r := Record{Type: typ, JobID: id, CheckpointKey: key}
		if req != "" {
			r.Request = []byte(req)
		}
		f.Add(r)
	}
	add(TypeAccepted, "job-1", "", `{"a":1}`)
	add(TypeAccepted, "job-2", "", `{"b":2}`)
	add(TypeAccepted, "job-3", "", `{"c":3}`)
	add(TypeStarted, "job-1", "", "")
	add(TypeCheckpoint, "job-1", "ckpt-old", "")
	add(TypeCheckpoint, "job-1", "ckpt-new", "")
	add(TypeStarted, "job-2", "", "")
	add(TypeFinished, "job-2", "", "")
	add(TypeRequeued, "job-3", "", "")
	f.Add(Record{Type: TypeStarted}) // no job id: ignored

	if f.Len() != 3 {
		t.Fatalf("folded %d jobs, want 3", f.Len())
	}
	orphans := f.Orphans()
	if len(orphans) != 2 {
		t.Fatalf("orphans: %+v, want job-1 and job-3", orphans)
	}
	if orphans[0].JobID != "job-1" || orphans[1].JobID != "job-3" {
		t.Fatalf("orphan order: %q, %q", orphans[0].JobID, orphans[1].JobID)
	}
	if orphans[0].CheckpointKey != "ckpt-new" {
		t.Errorf("job-1 checkpoint key %q, want the latest (ckpt-new)", orphans[0].CheckpointKey)
	}
	if string(orphans[0].Request) != `{"a":1}` {
		t.Errorf("job-1 request %q", orphans[0].Request)
	}
	if orphans[1].LastType != TypeRequeued {
		t.Errorf("job-3 last type %q", orphans[1].LastType)
	}
}

// TestBlobRoundTrip: blobs survive save/load, replace on re-save, and
// report missing and corrupt states distinctly.
func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const key = "ckpt|fingerprint|precond=amg"
	if _, err := j.LoadBlob(key); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("missing blob: %v, want ErrNoBlob", err)
	}
	if err := j.SaveBlob(key, []byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := j.SaveBlob(key, []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	got, err := j.LoadBlob(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-v2" {
		t.Fatalf("blob %q, want the re-saved state-v2", got)
	}

	// Bit rot must be detected by the CRC.
	raw, err := os.ReadFile(j.blobPath(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(j.blobPath(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.LoadBlob(key); !errors.Is(err, ErrBlobCorrupt) {
		t.Fatalf("corrupt blob: %v, want ErrBlobCorrupt", err)
	}

	if err := j.SaveBlob(key, []byte("state-v3")); err != nil {
		t.Fatal(err)
	}
	if err := j.DropBlob(key); err != nil {
		t.Fatal(err)
	}
	if err := j.DropBlob(key); err != nil {
		t.Fatal(err) // dropping a missing blob is a no-op
	}
	if _, err := j.LoadBlob(key); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("dropped blob: %v, want ErrNoBlob", err)
	}
	if err := j.SaveBlob("", nil); err == nil {
		t.Fatal("empty blob key accepted")
	}
}

// TestJournalContinuesLastSegment: re-opening a journal whose last
// segment still has room keeps appending to it rather than starting a
// new file per process lifetime.
func TestJournalContinuesLastSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Type: TypeAccepted, JobID: "job-000001"})
	j.Close()

	j2, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j2, Record{Type: TypeFinished, JobID: "job-000001"})
	j2.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want the restart to continue segment 1", len(segs))
	}
	recs, _ := replayAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}
