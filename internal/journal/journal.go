// Package journal is the write-ahead job journal of the serving
// layer: a stdlib-only, append-only log of job lifecycle records that
// survives process crashes. A serving process appends one record per
// lifecycle transition (accepted, started, checkpoint, finished,
// cancelled, failed); after a crash, replaying the journal tells the
// restarted process exactly which jobs were in flight — and, via
// checkpoint records, where their solves left off.
//
// # On-disk format
//
// A journal directory holds numbered segment files
// ("journal-000001.wal", "journal-000002.wal", ...). Each segment is a
// sequence of frames:
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload]
//
// The payload is the JSON encoding of one Record. Appends go to the
// highest-numbered segment; when it would grow past SegmentBytes a new
// segment is started. Nothing is ever rewritten in place, so the only
// corruption a crash can produce is a torn final frame — which replay
// detects (short frame or CRC mismatch), truncates, and reports,
// never refusing to start. Corruption earlier in a segment (bit rot,
// manual editing) ends that segment's replay at the last clean frame;
// the damage is counted in ReplayStats but later segments still
// replay, because a fleet restart must come back up with whatever
// history is readable.
//
// # Durability policy
//
// The Sync option selects when appends reach the disk platter:
// SyncAlways fsyncs after every append (a crashed process loses
// nothing it acknowledged), SyncInterval fsyncs lazily when at least
// SyncEvery has elapsed since the last sync — amortizing the fsync
// over bursts without needing a background goroutine (the goroutine
// containment rule of this repository confines `go` statements to the
// parallel/serve/cluster packages; the lazy sync keeps journal out of
// that set by design) — and SyncNone leaves flushing to the OS.
package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"irfusion/internal/faults"
)

// Record types, the lifecycle vocabulary of the journal. Replay folds
// the records of one JobID in order; the last type decides the job's
// fate (TypeFinished/TypeCancelled/TypeFailed are terminal, anything
// else marks an orphan to re-enqueue).
const (
	TypeAccepted   = "accepted"   // job admitted into the queue (carries the request)
	TypeStarted    = "started"    // a worker began executing the job
	TypeCheckpoint = "checkpoint" // a solver checkpoint was persisted (carries its key)
	TypeFinished   = "finished"   // job completed successfully
	TypeCancelled  = "cancelled"  // job cancelled by the client or shutdown
	TypeFailed     = "failed"     // job failed terminally (carries the error kind)
	// TypeRequeued marks a job put back into the queue — after a worker
	// panic (one retry) or by journal replay at restart. Deliberately
	// non-terminal: a requeued job is still in flight.
	TypeRequeued = "requeued"
)

// Record is one journal entry. Request is carried only by
// TypeAccepted (the full submission body, so replay can re-enqueue the
// job); CheckpointKey only by TypeCheckpoint and requeue-style
// TypeFailed records.
type Record struct {
	Type          string          `json:"type"`
	JobID         string          `json:"job_id"`
	Time          time.Time       `json:"time"`
	Request       json.RawMessage `json:"request,omitempty"`
	CheckpointKey string          `json:"checkpoint_key,omitempty"`
	Detail        string          `json:"detail,omitempty"`
}

// Terminal reports whether the record type ends a job's lifecycle.
func (r *Record) Terminal() bool {
	switch r.Type {
	case TypeFinished, TypeCancelled, TypeFailed:
		return true
	}
	return false
}

// Sync policies of Options.Sync.
const (
	SyncAlways   = "always"   // fsync after every append
	SyncInterval = "interval" // fsync lazily, at most once per SyncEvery
	SyncNone     = "none"     // never fsync; the OS flushes on its schedule
)

// Options tunes a journal. The zero value takes the defaults noted on
// each field.
type Options struct {
	// SegmentBytes bounds one segment file; appends that would exceed
	// it rotate to a fresh segment. Default 1 MiB.
	SegmentBytes int64
	// Sync is the fsync policy (SyncAlways/SyncInterval/SyncNone).
	// Default SyncAlways: a job journal is small-volume and its whole
	// point is surviving a crash.
	Sync string
	// SyncEvery is the lazy-sync period of SyncInterval. Default 100ms.
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// ReplayStats reports what Open found when replaying the directory.
type ReplayStats struct {
	Segments  int   // segment files scanned
	Records   int   // clean records replayed
	TornBytes int64 // bytes truncated off the final segment's torn tail
	Corrupt   int   // segments whose replay ended early at a bad frame
}

// frameHeader is [length][crc], both uint32 big-endian.
const frameHeader = 8

// maxPayload bounds one record's encoded size; a length field beyond
// it is treated as corruption rather than an allocation request.
const maxPayload = 8 << 20

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Journal is an open write-ahead journal. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	seq      int   // sequence number of the open segment
	size     int64 // bytes written to the open segment
	lastSync time.Time
	dirty    bool // unsynced appends outstanding (SyncInterval)
	closed   bool
}

// Open opens (creating if needed) the journal in dir, replays every
// readable record through replay (which may be nil), and returns the
// journal positioned for appending. A torn tail on the final segment
// is truncated; corruption never makes Open fail — the stats say what
// was lost. Only real I/O problems (permissions, disk errors) error.
func Open(dir string, opts Options, replay func(Record)) (*Journal, ReplayStats, error) {
	opts = opts.withDefaults()
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("journal: create dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	stats.Segments = len(segs)
	for i, seg := range segs {
		final := i == len(segs)-1
		if err := replaySegment(filepath.Join(dir, seg.name), final, replay, &stats); err != nil {
			return nil, stats, err
		}
	}
	j := &Journal{dir: dir, opts: opts, lastSync: time.Now()}
	// Continue the last segment when it has room, else start the next.
	seq := 1
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		fi, err := os.Stat(filepath.Join(dir, last.name))
		if err != nil {
			return nil, stats, fmt.Errorf("journal: stat %s: %w", last.name, err)
		}
		if fi.Size() < opts.SegmentBytes {
			seq = last.seq
		} else {
			seq = last.seq + 1
		}
	}
	if err := j.openSegment(seq); err != nil {
		return nil, stats, err
	}
	return j, stats, nil
}

type segment struct {
	name string
	seq  int
}

// listSegments returns the journal's segment files in sequence order.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: read dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "journal-%06d.wal", &seq); err == nil && seq > 0 {
			segs = append(segs, segment{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return segs, nil
}

// replaySegment streams one segment's frames through replay. On a bad
// frame (short read, oversized length, CRC mismatch, or undecodable
// payload) it stops at the last clean frame; when the segment is the
// journal's final one the file is truncated there so the next append
// lands on a clean boundary and re-opening is idempotent.
func replaySegment(path string, final bool, replay func(Record), stats *ReplayStats) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	defer f.Close()
	var clean int64 // offset after the last fully-valid frame
	var hdr [frameHeader]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end of segment
			}
			stats.Corrupt++
			break // torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxPayload {
			stats.Corrupt++
			break
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			stats.Corrupt++
			break // torn payload
		}
		if crc32.ChecksumIEEE(buf) != want {
			stats.Corrupt++
			break
		}
		var rec Record
		if err := json.Unmarshal(buf, &rec); err != nil {
			stats.Corrupt++
			break
		}
		clean += frameHeader + int64(length)
		stats.Records++
		if replay != nil {
			replay(rec)
		}
	}
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat segment: %w", err)
	}
	if torn := fi.Size() - clean; torn > 0 && final {
		stats.TornBytes += torn
		if err := os.Truncate(path, clean); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	return nil
}

// openSegment opens segment seq for appending; j.mu need not be held
// (only Open calls it before the journal is shared).
func (j *Journal) openSegment(seq int) error {
	name := filepath.Join(j.dir, fmt.Sprintf("journal-%06d.wal", seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment for append: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: stat segment: %w", err)
	}
	j.f, j.seq, j.size = f, seq, fi.Size()
	return nil
}

// Append encodes rec as one frame and writes it to the active
// segment, rotating first when the segment is full, then applies the
// sync policy. The faults site journal.append rehearses failure modes:
// ActFail fails the append without writing, ActTorn writes a
// deliberately truncated frame (simulating a crash mid-write) and
// reports an error — replay must truncate it.
func (j *Journal) Append(ctx context.Context, rec Record) error {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	frame := encodeFrame(payload)

	var torn bool
	if f := faults.ActiveOr(ctx).Fire(faults.SiteJournalAppend, rec.Type); f != nil {
		switch f.Action {
		case faults.ActFail:
			return fmt.Errorf("journal: append %s for %s: %w", rec.Type, rec.JobID, f.Error())
		case faults.ActTorn:
			torn = true
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.size > 0 && j.size+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if torn {
		// Crash simulation: half a frame reaches the disk, then the
		// "process dies". Sync so the torn bytes are really there for
		// the restart to find, and surface an error like a real torn
		// write would (the caller never got an acknowledgement).
		cut := frame[:frameHeader+len(payload)/2]
		if _, werr := j.f.Write(cut); werr != nil {
			return fmt.Errorf("journal: torn write: %w", werr)
		}
		j.size += int64(len(cut))
		//irfusion:lock-ok the WAL contract serializes appends with fsync under j.mu; a concurrent append observing a half-synced frame would corrupt the segment
		_ = j.f.Sync()
		return fmt.Errorf("journal: append %s for %s: injected torn write", rec.Type, rec.JobID)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: write frame: %w", err)
	}
	j.size += int64(len(frame))
	return j.syncLocked()
}

// encodeFrame builds [len][crc][payload].
//
//irfusion:hotpath-allow frames are built on the job-lifecycle path, not a solver inner loop; crc32 and append are the whole job
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame
}

// syncLocked applies the sync policy after an append; j.mu held.
func (j *Journal) syncLocked() error {
	switch j.opts.Sync {
	case SyncNone:
		return nil
	case SyncInterval:
		j.dirty = true
		if time.Since(j.lastSync) < j.opts.SyncEvery {
			return nil
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.lastSync = time.Now()
	j.dirty = false
	return nil
}

// rotateLocked closes the active segment and opens the next; j.mu held.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync before rotate: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	return j.openSegment(j.seq + 1)
}

// Sync forces outstanding appends to disk regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	//irfusion:lock-ok Sync must exclude concurrent appends so the durability point it reports covers every acknowledged record
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.lastSync = time.Now()
	j.dirty = false
	return nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and closes the journal. Further Appends return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	//irfusion:lock-ok final fsync must run after closed is set and before the fd closes; appends are already fenced off by ErrClosed
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: fsync on close: %w", err)
	}
	return j.f.Close()
}

// JobState folds one job's replayed records: the original request (from
// its accepted record), its latest checkpoint key, and whether any
// record marked it terminal.
type JobState struct {
	JobID         string
	Request       json.RawMessage
	CheckpointKey string
	LastType      string
	Terminal      bool
}

// Fold accumulates replayed records into per-job states, preserving
// first-acceptance order — the order orphans should be re-enqueued in.
type Fold struct {
	order []string
	jobs  map[string]*JobState
}

// NewFold returns an empty accumulator; pass its Add to Open.
func NewFold() *Fold {
	return &Fold{jobs: make(map[string]*JobState)}
}

// Add folds one record (usable directly as Open's replay callback).
func (f *Fold) Add(rec Record) {
	if rec.JobID == "" {
		return
	}
	st, ok := f.jobs[rec.JobID]
	if !ok {
		st = &JobState{JobID: rec.JobID}
		f.jobs[rec.JobID] = st
		f.order = append(f.order, rec.JobID)
	}
	st.LastType = rec.Type
	if rec.Terminal() {
		st.Terminal = true
	}
	if rec.Type == TypeAccepted && len(rec.Request) > 0 {
		st.Request = rec.Request
	}
	if rec.CheckpointKey != "" {
		st.CheckpointKey = rec.CheckpointKey
	}
}

// Orphans returns the jobs whose journal history never reached a
// terminal record — the ones a restarted server must re-enqueue — in
// acceptance order.
func (f *Fold) Orphans() []*JobState {
	var out []*JobState
	for _, id := range f.order {
		if st := f.jobs[id]; !st.Terminal {
			out = append(out, st)
		}
	}
	return out
}

// Len returns the number of distinct jobs folded.
func (f *Fold) Len() int { return len(f.jobs) }
