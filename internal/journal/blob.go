package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Checkpoint blobs: the journal records only a checkpoint's *key*;
// the (possibly megabytes-large) solver state itself is stored beside
// the log under <dir>/checkpoints/, one file per key, written
// atomically (temp file + rename + fsync) so a crash mid-save leaves
// either the previous blob or none — never a half-written one. The
// blob payload is opaque bytes (the cache layer gob-encodes its
// CheckpointArtifact), framed with the owning key and a CRC so a
// restart can verify integrity and key identity before trusting it.

// blobDir is the subdirectory holding checkpoint blobs.
const blobDir = "checkpoints"

// ErrNoBlob is returned by LoadBlob when no blob exists under the key.
var ErrNoBlob = errors.New("journal: no checkpoint blob")

// ErrBlobCorrupt is returned by LoadBlob when the stored blob fails
// its CRC or key check — the caller should fall back to a cold solve.
var ErrBlobCorrupt = errors.New("journal: checkpoint blob corrupt")

// blobPath maps a checkpoint key (free-form text) onto a filename via
// FNV-1a, with the key itself stored inside the blob for verification.
func (j *Journal) blobPath(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(j.dir, blobDir, fmt.Sprintf("%016x.ckpt", h.Sum64()))
}

// SaveBlob durably stores data under key, replacing any previous blob.
// Layout: [4B keyLen][key][data], wrapped as [4B totalLen][4B CRC][body].
func (j *Journal) SaveBlob(key string, data []byte) error {
	if key == "" {
		return errors.New("journal: empty blob key")
	}
	dir := filepath.Join(j.dir, blobDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: create blob dir: %w", err)
	}
	body := make([]byte, 4+len(key)+len(data))
	binary.BigEndian.PutUint32(body[0:4], uint32(len(key)))
	copy(body[4:], key)
	copy(body[4+len(key):], data)
	frame := encodeFrame(body)

	tmp, err := os.CreateTemp(dir, "blob-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: blob temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: write blob: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: fsync blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: close blob: %w", err)
	}
	if err := os.Rename(tmpName, j.blobPath(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: publish blob: %w", err)
	}
	return nil
}

// LoadBlob reads and verifies the blob stored under key. Missing blobs
// return ErrNoBlob; CRC or key mismatches return ErrBlobCorrupt.
func (j *Journal) LoadBlob(key string) ([]byte, error) {
	raw, err := os.ReadFile(j.blobPath(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoBlob, key)
		}
		return nil, fmt.Errorf("journal: read blob: %w", err)
	}
	if len(raw) < frameHeader {
		return nil, fmt.Errorf("%w: short frame", ErrBlobCorrupt)
	}
	length := binary.BigEndian.Uint32(raw[0:4])
	want := binary.BigEndian.Uint32(raw[4:8])
	if int(length) != len(raw)-frameHeader {
		return nil, fmt.Errorf("%w: length mismatch", ErrBlobCorrupt)
	}
	body := raw[frameHeader:]
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: crc mismatch", ErrBlobCorrupt)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: missing key header", ErrBlobCorrupt)
	}
	keyLen := binary.BigEndian.Uint32(body[0:4])
	if int(keyLen) > len(body)-4 {
		return nil, fmt.Errorf("%w: key length out of range", ErrBlobCorrupt)
	}
	if string(body[4:4+keyLen]) != key {
		return nil, fmt.Errorf("%w: key mismatch (hash collision or tampering)", ErrBlobCorrupt)
	}
	return body[4+keyLen:], nil
}

// DropBlob removes the blob stored under key (no-op when absent).
func (j *Journal) DropBlob(key string) error {
	if err := os.Remove(j.blobPath(key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: drop blob: %w", err)
	}
	return nil
}
