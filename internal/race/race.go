//go:build race

// Package race reports whether the race detector is compiled in, the
// stdlib idiom (internal/race in the Go runtime) used to skip tests
// whose assertions — allocation counts, timing windows — the
// detector's instrumentation invalidates.
package race

// Enabled is true when the build has the race detector compiled in.
const Enabled = true
