// Package report renders the CSV artifacts written by cmd/experiments
// into GitHub-flavored markdown tables, so measured results can be
// pasted into EXPERIMENTS.md verbatim.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSVToMarkdown converts a CSV stream (first row = header) to a
// markdown table. Numeric-looking cells are right-aligned by the
// alignment row.
func CSVToMarkdown(r io.Reader) (string, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return "", err
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("report: empty CSV")
	}
	cols := len(rows[0])
	for i, row := range rows {
		if len(row) != cols {
			return "", fmt.Errorf("report: row %d has %d fields, header has %d", i, len(row), cols)
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.TrimSpace(c))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	b.WriteString("|")
	for c := 0; c < cols; c++ {
		numeric := len(rows) > 1
		for _, row := range rows[1:] {
			if !looksNumeric(row[c]) {
				numeric = false
				break
			}
		}
		if numeric {
			b.WriteString("---:|")
		} else {
			b.WriteString("---|")
		}
	}
	b.WriteString("\n")
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String(), nil
}

func looksNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	dot := false
	for i, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '-' || c == '+':
			if i != 0 {
				return false
			}
		case c == '.':
			if dot {
				return false
			}
			dot = true
		case c == 'e' || c == 'E':
			// crude exponent tolerance
		default:
			return false
		}
	}
	return true
}

// Fill replaces <!-- TAG --> placeholders in a markdown document with
// rendered tables. Missing tags are left untouched.
func Fill(doc string, tables map[string]string) string {
	for tag, table := range tables {
		doc = strings.ReplaceAll(doc, "<!-- "+tag+" -->", table)
	}
	return doc
}
