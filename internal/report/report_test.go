package report

import (
	"strings"
	"testing"
)

func TestCSVToMarkdown(t *testing.T) {
	in := "method,mae,f1\nIREDGe,17.392,0.108\nIR-Fusion,15.704,0.186\n"
	md, err := CSVToMarkdown(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), md)
	}
	if lines[0] != "| method | mae | f1 |" {
		t.Errorf("header: %q", lines[0])
	}
	if lines[1] != "|---|---:|---:|" {
		t.Errorf("alignment: %q", lines[1])
	}
	if !strings.Contains(lines[3], "IR-Fusion") {
		t.Errorf("row: %q", lines[3])
	}
}

func TestCSVToMarkdownErrors(t *testing.T) {
	if _, err := CSVToMarkdown(strings.NewReader("")); err == nil {
		t.Error("expected error for empty CSV")
	}
	if _, err := CSVToMarkdown(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("expected error for ragged CSV")
	}
}

func TestLooksNumeric(t *testing.T) {
	for s, want := range map[string]bool{
		"1":     true,
		"-2.5":  true,
		"+3":    true,
		"1.2.3": false,
		"12e3":  true,
		"abc":   false,
		"":      false,
		"1-2":   false,
	} {
		if looksNumeric(s) != want {
			t.Errorf("looksNumeric(%q) = %v, want %v", s, !want, want)
		}
	}
}

func TestFill(t *testing.T) {
	doc := "before\n<!-- T1 -->\nafter\n<!-- T2 -->\n"
	out := Fill(doc, map[string]string{"T1": "|a|\n", "MISSING": "x"})
	if !strings.Contains(out, "|a|") {
		t.Error("T1 not substituted")
	}
	if !strings.Contains(out, "<!-- T2 -->") {
		t.Error("unknown tags must be preserved")
	}
}
