package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// cacheManifest builds a valid manifest carrying a cache trail.
func cacheManifest(t *testing.T, events ...CacheEvent) *Manifest {
	t.Helper()
	r := NewRecorder()
	st := r.StartStage("solve")
	time.Sleep(time.Millisecond)
	st.End()
	r.Add("designs", 1)
	for _, e := range events {
		r.RecordCacheEvent(e)
	}
	return r.Manifest("analyze", nil)
}

func TestCacheSectionTallies(t *testing.T) {
	m := cacheManifest(t,
		CacheEvent{Stage: "numerical.solve", Outcome: CacheMiss},
		CacheEvent{Stage: "numerical.solve", Outcome: CacheStore, Key: "abc"},
		CacheEvent{Stage: "numerical.solve", Outcome: CacheHit, Key: "abc"},
		CacheEvent{Stage: "numerical.solve", Outcome: CacheWarm, Key: "abc", Delta: 0.01},
		CacheEvent{Stage: "numerical.solve", Outcome: CacheStale, Key: "abc"},
	)
	c := m.Cache
	if c == nil {
		t.Fatal("manifest with cache events has no cache section")
	}
	if c.Hits != 1 || c.Misses != 1 || c.WarmStarts != 1 || c.Stale != 1 || c.Stores != 1 {
		t.Fatalf("tallies = %+v", c)
	}
	if len(c.Events) != 5 || c.Events[3].Delta != 0.01 {
		t.Fatalf("events = %+v", c.Events)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid cache manifest rejected: %v", err)
	}
}

func TestCacheSectionAbsentWithoutEvents(t *testing.T) {
	if m := cacheManifest(t); m.Cache != nil {
		t.Fatalf("manifest with no cache events grew a section: %+v", m.Cache)
	}
}

func TestCacheSectionValidation(t *testing.T) {
	base := func() *Manifest {
		return cacheManifest(t,
			CacheEvent{Stage: "numerical.solve", Outcome: CacheStore},
			CacheEvent{Stage: "numerical.solve", Outcome: CacheHit},
		)
	}
	mut := map[string]func(*Manifest){
		"empty-events":    func(m *Manifest) { m.Cache.Events = nil },
		"missing-stage":   func(m *Manifest) { m.Cache.Events[0].Stage = "" },
		"unknown-outcome": func(m *Manifest) { m.Cache.Events[0].Outcome = "lukewarm" },
		"delta-range":     func(m *Manifest) { m.Cache.Events[0].Delta = 1.5 },
		"tally-drift":     func(m *Manifest) { m.Cache.Hits = 7 },
	}
	for name, f := range mut {
		m := base()
		f(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken cache section", name)
		}
	}
}

func TestRecordCacheEventSanitizes(t *testing.T) {
	var nilRec *Recorder
	nilRec.RecordCacheEvent(CacheEvent{Stage: "s", Outcome: CacheHit}) // must not panic
	m := cacheManifest(t, CacheEvent{Stage: "s", Outcome: CacheWarm, Delta: math.NaN()})
	if d := m.Cache.Events[0].Delta; math.IsNaN(d) {
		t.Fatalf("NaN delta not sanitized: %v", d)
	}
}

func TestSummaryIncludesCacheLine(t *testing.T) {
	m := cacheManifest(t,
		CacheEvent{Stage: "numerical.solve", Outcome: CacheStore},
		CacheEvent{Stage: "numerical.solve", Outcome: CacheWarm, Delta: 0.01},
	)
	s := m.Summary()
	if !strings.Contains(s, "warm start") {
		t.Fatalf("summary lacks the cache line:\n%s", s)
	}
}
