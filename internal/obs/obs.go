// Package obs is the dependency-free observability layer of the
// IR-Fusion pipeline. It makes the fused numerical+ML run measurable
// instead of a black box: where the wall time goes stage by stage, how
// the PCG residual actually converged, what the AMG setup produced,
// and what the shared worker pool (package parallel) contributed.
//
// The package has three parts:
//
//   - A per-run Recorder of named counters, gauges, labeled solver
//     convergence traces, per-epoch training records, and monotonic
//     stage timers (wall time plus runtime.ReadMemStats allocation
//     deltas). Every Recorder method is safe for concurrent use and
//     safe on a nil receiver, so instrumented code calls it
//     unconditionally: when no run is being observed, Active() returns
//     nil and the instrumentation reduces to a pointer test.
//
//   - Process-wide global counters (GlobalCounter): single atomic
//     adds, cheap enough to stay permanently enabled inside the hot
//     kernels of package parallel. A Recorder snapshots the globals at
//     creation, so each run manifest reports the per-run delta.
//
//   - Run manifests (manifest.go): one structured JSON document per
//     Analyzer/Trainer run, written through a pluggable Sink, plus an
//     optional debug HTTP endpoint (debug.go) exposing expvar and
//     pprof.
//
// obs imports only the standard library; every other internal package
// may import it without creating a cycle.
package obs

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter, the unit of
// the process-wide (global) metric registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//irfusion:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//irfusion:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
//
//irfusion:hotpath
func (c *Counter) Load() int64 { return c.v.Load() }

var (
	globalMu sync.Mutex
	globals  = map[string]*Counter{}
)

// GlobalCounter returns the process-wide counter registered under
// name, creating it on first use. The returned pointer is stable for
// the process lifetime; hot paths should capture it in a package
// variable so each event costs one atomic add.
func GlobalCounter(name string) *Counter {
	globalMu.Lock()
	defer globalMu.Unlock()
	c, ok := globals[name]
	if !ok {
		c = &Counter{}
		globals[name] = c
	}
	return c
}

// CounterValue returns the current value of the named global counter,
// or 0 when it was never registered.
func CounterValue(name string) int64 {
	globalMu.Lock()
	c := globals[name]
	globalMu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// GlobalCounters returns a snapshot of every registered global
// counter.
func GlobalCounters() map[string]int64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	out := make(map[string]int64, len(globals))
	for name, c := range globals {
		out[name] = c.Load()
	}
	return out
}

// StageRecord aggregates every completed timer of one stage name:
// how often the stage ran, its total wall time, and the total heap
// allocation it caused (process-global ReadMemStats deltas, so
// concurrent allocation from other goroutines is attributed too —
// treat the byte counts as indicative, not exact).
type StageRecord struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	Seconds    float64 `json:"seconds"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Mallocs    uint64  `json:"mallocs"`
}

// Precision values of SolveRecord: full float64 arithmetic throughout,
// or the mixed path (float32 V-cycle preconditioner inside a float64
// iterative-refinement correction).
const (
	PrecisionFull  = "full"
	PrecisionMixed = "mixed"
)

// SolveRecord is one labeled Krylov solve: iteration count, final
// relative residual, and the full per-iteration residual history (the
// convergence trace the fusion trade-off study reads). Format and
// Precision say which SpMV storage format and arithmetic-precision
// path produced the solve — optional keys of irfusion/run-manifest/v1
// (absent on records from solvers that predate them, e.g. the random
// walk), so their addition needs no schema-version bump.
type SolveRecord struct {
	Label      string    `json:"label"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Converged  bool      `json:"converged"`
	Seconds    float64   `json:"seconds"`
	History    []float64 `json:"history,omitempty"`
	Format     string    `json:"format,omitempty"`
	Precision  string    `json:"precision,omitempty"`
}

// DegradationAttempt is one try of one ladder rung: which rung, the
// 1-based attempt number on that rung, the error that ended it (empty
// on success), the backoff slept before retrying, and — when the rung
// was never tried at all — why it was skipped (e.g. "breaker-open").
type DegradationAttempt struct {
	Rung           string  `json:"rung"`
	Attempt        int     `json:"attempt"`
	Error          string  `json:"error,omitempty"`
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
	Skipped        string  `json:"skipped,omitempty"`
}

// Degradation records how one laddered operation produced its answer:
// the component that ran the ladder, the rung that finally served
// (empty when the ladder was exhausted), its index (0 = the preferred
// backend, >0 = a fallback), and the full attempt trail including
// retries, backoffs, and breaker skips. A served response therefore
// always says *how* its answer was produced — the manifest contract
// the resilience layer adds to irfusion/run-manifest/v1 (optional
// key, no version bump).
type Degradation struct {
	Component string               `json:"component"`
	Rung      string               `json:"rung,omitempty"`
	RungIndex int                  `json:"rung_index"`
	Exhausted bool                 `json:"exhausted,omitempty"`
	Attempts  []DegradationAttempt `json:"attempts"`
}

// Degraded reports whether the record describes anything other than a
// clean first-attempt success on the preferred rung.
func (d *Degradation) Degraded() bool {
	if d.RungIndex > 0 || d.Exhausted {
		return true
	}
	for _, a := range d.Attempts {
		if a.Error != "" || a.Skipped != "" {
			return true
		}
	}
	return false
}

// EpochRecord is one training epoch: loss trajectory, learning rate,
// curriculum subset size, and timing.
type EpochRecord struct {
	Epoch   int      `json:"epoch"`
	Loss    float64  `json:"loss"`
	ValLoss *float64 `json:"val_loss,omitempty"`
	LR      float64  `json:"lr"`
	Samples int      `json:"samples"`
	Batches int      `json:"batches"`
	Seconds float64  `json:"seconds"`
}

// Recorder accumulates the observations of one run. The zero value is
// not usable; construct with NewRecorder. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Recorder struct {
	start time.Time
	base  map[string]int64 // global-counter snapshot at creation

	mu         sync.Mutex
	counters   map[string]int64
	gauges     map[string]float64
	stageOrder []string
	stages     map[string]*StageRecord
	solves     []SolveRecord
	epochs     []EpochRecord
	degrads    []Degradation
	cacheEvts  []CacheEvent
	resume     *ResumeSection
}

// NewRecorder returns a recorder whose manifest will report global
// counters as deltas from this moment.
func NewRecorder() *Recorder {
	return &Recorder{
		start:    time.Now(),
		base:     GlobalCounters(),
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		stages:   map[string]*StageRecord{},
	}
}

// Add increments a per-run counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets a per-run gauge to v (last write wins).
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddSeconds accumulates a duration into the gauge "<name>.seconds"
// and bumps the counter "<name>.count" — the idiom for hot
// sub-stage timings (AMG cycles, per-map rasterization) that are too
// frequent for individual stage records.
func (r *Recorder) AddSeconds(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name+".seconds"] += d.Seconds()
	r.counters[name+".count"]++
	r.mu.Unlock()
}

// Stage is an in-flight stage timer returned by StartStage. End
// completes it; a nil Stage (from a nil Recorder) is inert.
type Stage struct {
	r       *Recorder
	name    string
	start   time.Time
	alloc   uint64
	mallocs uint64
}

// StartStage begins a named stage timer, snapshotting wall clock and
// allocation statistics. Stages of the same name aggregate into one
// StageRecord (count, total seconds, total allocation).
func (r *Recorder) StartStage(name string) *Stage {
	if r == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Stage{r: r, name: name, start: time.Now(), alloc: ms.TotalAlloc, mallocs: ms.Mallocs}
}

// End completes the stage and folds it into the recorder.
func (s *Stage) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.r.recordStage(s.name, d, ms.TotalAlloc-s.alloc, ms.Mallocs-s.mallocs)
}

func (r *Recorder) recordStage(name string, d time.Duration, alloc, mallocs uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr, ok := r.stages[name]
	if !ok {
		sr = &StageRecord{Name: name}
		r.stages[name] = sr
		r.stageOrder = append(r.stageOrder, name)
	}
	sr.Count++
	sr.Seconds += d.Seconds()
	sr.AllocBytes += alloc
	sr.Mallocs += mallocs
}

// RecordSolve appends a labeled solver convergence trace. The history
// slice is copied, so callers may keep mutating theirs.
func (r *Recorder) RecordSolve(s SolveRecord) {
	if r == nil {
		return
	}
	s.History = append([]float64(nil), s.History...)
	for i, v := range s.History {
		s.History[i] = sanitize(v)
	}
	s.Residual = sanitize(s.Residual)
	r.mu.Lock()
	r.solves = append(r.solves, s)
	r.mu.Unlock()
}

// RecordDegradation appends a degradation record (ladder outcome).
// The attempts slice is copied, so callers may keep mutating theirs.
func (r *Recorder) RecordDegradation(d Degradation) {
	if r == nil {
		return
	}
	d.Attempts = append([]DegradationAttempt(nil), d.Attempts...)
	r.mu.Lock()
	r.degrads = append(r.degrads, d)
	r.mu.Unlock()
}

// Cache-event outcomes, the vocabulary of CacheEvent.Outcome. The
// artifact-cache layer records one event per cache interaction of a
// pipeline stage; manifest validation rejects anything else.
const (
	CacheHit   = "hit"   // exact fingerprint hit, guard passed
	CacheMiss  = "miss"  // no usable entry; cold path taken
	CacheWarm  = "warm"  // neighbor warm start (delta-solve) taken
	CacheStale = "stale" // cached state rejected by a guard; cold fallback
	CacheStore = "store" // freshly computed artifact stored
)

// CacheEvent records one artifact-cache interaction of a pipeline
// stage: which stage consulted the cache, what came of it, the
// (abbreviated) content address involved, and — for warm starts — the
// matrix-delta fraction against the donor entry.
type CacheEvent struct {
	Stage   string  `json:"stage"`
	Outcome string  `json:"outcome"`
	Key     string  `json:"key,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

// RecordCacheEvent appends a cache-interaction record.
func (r *Recorder) RecordCacheEvent(e CacheEvent) {
	if r == nil {
		return
	}
	e.Delta = sanitize(e.Delta)
	r.mu.Lock()
	r.cacheEvts = append(r.cacheEvts, e)
	r.mu.Unlock()
}

// Resume outcomes, the vocabulary of ResumeSection.Outcome.
const (
	// ResumeAccepted: the checkpoint passed the residual guard and the
	// solve continued from its iterate.
	ResumeAccepted = "resumed"
	// ResumeRejected: the checkpoint failed the residual guard
	// (corrupt, stale, or foreign); the solve fell through to the cold
	// ladder.
	ResumeRejected = "guard-rejected"
)

// ResumeSection records a checkpoint-resume attempt of one run: where
// the checkpoint came from ("restart", "requeue", or a donor shard
// name), its cache key (abbreviated), how far the donor solve had
// gotten, and whether the residual guard accepted it. Optional key of
// irfusion/run-manifest/v1 (absent = no resume was attempted), so its
// addition needs no schema-version bump.
type ResumeSection struct {
	From          string  `json:"from,omitempty"`
	CheckpointKey string  `json:"checkpoint_key,omitempty"`
	Iter          int     `json:"iter"`
	Residual      float64 `json:"residual,omitempty"`
	Outcome       string  `json:"outcome"`
}

// RecordResume records the run's checkpoint-resume attempt (last
// write wins — a run attempts at most one resume, but a guard
// rejection followed by a cold solve keeps the rejection record).
func (r *Recorder) RecordResume(rs ResumeSection) {
	if r == nil {
		return
	}
	rs.Residual = sanitize(rs.Residual)
	r.mu.Lock()
	r.resume = &rs
	r.mu.Unlock()
}

// RecordEpoch appends a training-epoch record.
func (r *Recorder) RecordEpoch(e EpochRecord) {
	if r == nil {
		return
	}
	e.Loss = sanitize(e.Loss)
	if e.ValLoss != nil {
		v := sanitize(*e.ValLoss)
		e.ValLoss = &v
	}
	r.mu.Lock()
	r.epochs = append(r.epochs, e)
	r.mu.Unlock()
}

// sanitize maps non-finite values onto JSON-representable sentinels:
// NaN becomes -1 (no valid residual/loss is negative) and ±Inf
// saturates to ±MaxFloat64, so a diverged run still produces a valid
// manifest instead of a json.Marshal error.
func sanitize(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return -1
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	default:
		return v
	}
}

// active is the process-wide recorder instrumented code reports to.
var active atomic.Pointer[Recorder]

// Active returns the recorder of the run in progress, or nil when
// nothing is being observed. Instrumented hot paths call
// obs.Active() and skip all work on nil — that pointer test is the
// whole cost of disabled observability.
func Active() *Recorder { return active.Load() }

// SetActive installs r (which may be nil) as the process-wide
// recorder and returns the previous one, enabling save/restore in
// tests:
//
//	prev := obs.SetActive(obs.NewRecorder())
//	defer obs.SetActive(prev)
func SetActive(r *Recorder) *Recorder {
	prev := active.Load()
	active.Store(r)
	return prev
}

// sortedKeys returns the keys of a map in sorted order (manifest
// determinism for maps rendered as JSON arrays or summaries).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
