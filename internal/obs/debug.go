package obs

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration (expvar.Publish panics
// on duplicate names).
var publishOnce sync.Once

// ServeDebug starts the optional debug HTTP endpoint on addr
// (e.g. "localhost:6060", or "127.0.0.1:0" for an ephemeral port) and
// returns the server plus the bound address. The endpoint is off
// unless a front end calls this — it is the --debug-addr flag of
// cmd/irfusion and cmd/experiments.
//
// Routes:
//
//	/debug/vars    expvar (includes the irfusion global counters)
//	/debug/pprof/  CPU/heap/goroutine profiles and execution traces
//
// The server runs until the process exits or Close is called; errors
// after startup are dropped (debug-only traffic).
func ServeDebug(addr string) (*http.Server, string, error) {
	publishOnce.Do(func() {
		expvar.Publish("irfusion_counters", expvar.Func(func() any {
			return GlobalCounters()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
