package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion identifies the manifest layout. Bump only when a
// required key changes meaning or disappears; adding optional keys is
// backward compatible and does not bump the version.
const SchemaVersion = "irfusion/run-manifest/v1"

// Manifest is the structured record of one pipeline run — the JSON
// document behind the --manifest flag of cmd/irfusion and
// cmd/experiments. Required keys (enforced by Validate and the CI
// schema smoke test): schema, kind, start_time, wall_seconds, host,
// stages, counters.
type Manifest struct {
	Schema      string             `json:"schema"`
	Kind        string             `json:"kind"`
	Start       time.Time          `json:"start_time"`
	WallSeconds float64            `json:"wall_seconds"`
	Host        Host               `json:"host"`
	Config      any                `json:"config,omitempty"`
	Stages      []StageRecord      `json:"stages"`
	Counters    map[string]int64   `json:"counters"`
	Gauges      map[string]float64 `json:"gauges,omitempty"`
	Solves      []SolveRecord      `json:"solves,omitempty"`
	Epochs      []EpochRecord      `json:"epochs,omitempty"`
	// Degradations is the resilience trail: one record per laddered
	// operation saying which backend rung produced the answer, with
	// every retry, backoff, and breaker skip along the way. Optional
	// key of irfusion/run-manifest/v1 (absent = no laddered
	// operation ran).
	Degradations []Degradation `json:"degradation,omitempty"`
	// Cache is the artifact-cache trail: per-stage hit/miss/warm-start
	// events with aggregate tallies. Optional key of
	// irfusion/run-manifest/v1 (absent = no cache interaction), so its
	// addition needs no schema-version bump.
	Cache *CacheSection `json:"cache,omitempty"`
	// Shard names the serving shard that produced this run, so
	// manifests aggregated across a cluster stay attributable. Optional
	// key of irfusion/run-manifest/v1 (absent = standalone process), so
	// its addition needs no schema-version bump.
	Shard string `json:"shard,omitempty"`
	// Resume records the run's checkpoint-resume attempt: provenance,
	// checkpoint key, donor progress, and the residual-guard verdict.
	// Optional key of irfusion/run-manifest/v1 (absent = no resume
	// attempted), so its addition needs no schema-version bump.
	Resume *ResumeSection `json:"resume,omitempty"`
}

// CacheSection aggregates the run's artifact-cache interactions for
// the manifest. Tallies are derived from Events and must agree with
// them (Validate enforces it).
type CacheSection struct {
	Hits       int          `json:"hits"`
	Misses     int          `json:"misses"`
	WarmStarts int          `json:"warm_starts"`
	Stale      int          `json:"stale"`
	Stores     int          `json:"stores"`
	Events     []CacheEvent `json:"events"`
}

// Host captures the execution environment of the run.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Manifest freezes the recorder into a manifest of the given kind
// ("analyze", "solve", "train", "experiments", ...) with an optional
// configuration payload. Global counters are reported as deltas since
// NewRecorder, merged with the per-run counters (names are
// namespaced by convention: "parallel.*" global, everything else
// per-run). The recorder remains usable afterwards.
func (r *Recorder) Manifest(kind string, config any) *Manifest {
	m := &Manifest{
		Schema: SchemaVersion,
		Kind:   kind,
		Config: config,
		Host: Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
	}
	if r == nil {
		m.Start = time.Now()
		return m
	}
	m.Start = r.start
	m.WallSeconds = time.Since(r.start).Seconds()
	for name, now := range GlobalCounters() {
		if d := now - r.base[name]; d != 0 {
			m.Counters[name] = d
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		m.Counters[name] += v
	}
	for name, v := range r.gauges {
		m.Gauges[name] = sanitize(v)
	}
	for _, name := range r.stageOrder {
		m.Stages = append(m.Stages, *r.stages[name])
	}
	m.Solves = append([]SolveRecord(nil), r.solves...)
	m.Epochs = append([]EpochRecord(nil), r.epochs...)
	m.Degradations = append([]Degradation(nil), r.degrads...)
	if len(r.cacheEvts) > 0 {
		cs := &CacheSection{Events: append([]CacheEvent(nil), r.cacheEvts...)}
		for _, e := range cs.Events {
			switch e.Outcome {
			case CacheHit:
				cs.Hits++
			case CacheMiss:
				cs.Misses++
			case CacheWarm:
				cs.WarmStarts++
			case CacheStale:
				cs.Stale++
			case CacheStore:
				cs.Stores++
			}
		}
		m.Cache = cs
	}
	if r.resume != nil {
		rs := *r.resume
		m.Resume = &rs
	}

	// Derived pool-utilization gauge from the well-known parallel.*
	// counters (see internal/parallel): the fraction of kernel
	// dispatches that actually ran on the worker pool.
	par := m.Counters["parallel.for.parallel"] + m.Counters["parallel.do.parallel"]
	ser := m.Counters["parallel.for.serial"] + m.Counters["parallel.do.serial"]
	if par+ser > 0 {
		m.Gauges["pool.parallel_fraction"] = float64(par) / float64(par+ser)
	}
	return m
}

// Validate checks the invariants every manifest must satisfy —
// the contract of SchemaVersion. It is the test used by the CI
// schema smoke job (cmd/manifestcheck).
func (m *Manifest) Validate() error {
	switch {
	case m.Schema != SchemaVersion:
		return fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, SchemaVersion)
	case m.Kind == "":
		return errors.New("obs: manifest kind missing")
	case m.Start.IsZero():
		return errors.New("obs: manifest start_time missing")
	case m.WallSeconds <= 0:
		return errors.New("obs: manifest wall_seconds not positive")
	case len(m.Stages) == 0:
		return errors.New("obs: manifest has no stages")
	case len(m.Counters) == 0:
		return errors.New("obs: manifest has no counters")
	}
	timed := false
	for _, s := range m.Stages {
		if s.Name == "" || s.Count <= 0 || s.Seconds < 0 {
			return fmt.Errorf("obs: malformed stage record %+v", s)
		}
		if s.Seconds > 0 {
			timed = true
		}
	}
	if !timed {
		return errors.New("obs: every stage reports zero wall time")
	}
	for _, s := range m.Solves {
		if s.Label == "" || s.Iterations < 0 {
			return fmt.Errorf("obs: malformed solve record %+v", s)
		}
	}
	for _, d := range m.Degradations {
		if d.Component == "" {
			return fmt.Errorf("obs: degradation record missing component: %+v", d)
		}
		if d.Rung == "" && !d.Exhausted {
			return fmt.Errorf("obs: degradation record for %s has no rung and is not exhausted", d.Component)
		}
		if d.RungIndex < 0 {
			return fmt.Errorf("obs: degradation record for %s has negative rung_index", d.Component)
		}
		if len(d.Attempts) == 0 {
			return fmt.Errorf("obs: degradation record for %s has no attempts", d.Component)
		}
		for _, a := range d.Attempts {
			if a.Rung == "" {
				return fmt.Errorf("obs: degradation attempt missing rung: %+v", a)
			}
			if a.Skipped == "" && a.Attempt <= 0 {
				return fmt.Errorf("obs: degradation attempt for %s not positive: %+v", d.Component, a)
			}
		}
	}
	if c := m.Cache; c != nil {
		if len(c.Events) == 0 {
			return fmt.Errorf("obs: cache section present but has no events")
		}
		var hits, misses, warms, stale, stores int
		for _, e := range c.Events {
			if e.Stage == "" {
				return fmt.Errorf("obs: cache event missing stage: %+v", e)
			}
			if e.Delta < 0 || e.Delta > 1 {
				return fmt.Errorf("obs: cache event for %s has delta %g outside [0,1]", e.Stage, e.Delta)
			}
			switch e.Outcome {
			case CacheHit:
				hits++
			case CacheMiss:
				misses++
			case CacheWarm:
				warms++
			case CacheStale:
				stale++
			case CacheStore:
				stores++
			default:
				return fmt.Errorf("obs: cache event for %s has unknown outcome %q", e.Stage, e.Outcome)
			}
		}
		if hits != c.Hits || misses != c.Misses || warms != c.WarmStarts ||
			stale != c.Stale || stores != c.Stores {
			return fmt.Errorf("obs: cache tallies %d/%d/%d/%d/%d disagree with events %d/%d/%d/%d/%d",
				c.Hits, c.Misses, c.WarmStarts, c.Stale, c.Stores,
				hits, misses, warms, stale, stores)
		}
	}
	if rs := m.Resume; rs != nil {
		switch rs.Outcome {
		case ResumeAccepted, ResumeRejected:
		default:
			return fmt.Errorf("obs: resume section has unknown outcome %q", rs.Outcome)
		}
		if rs.Iter < 0 {
			return fmt.Errorf("obs: resume section has negative iter %d", rs.Iter)
		}
		if rs.Outcome == ResumeAccepted && rs.Iter == 0 {
			return errors.New("obs: resume accepted a checkpoint at iteration 0 (nothing to resume)")
		}
	}
	return nil
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Summary renders the human-readable end-of-run table printed by the
// CLI front ends: per-stage wall times and allocations, solver
// convergence, training trajectory, and worker-pool utilization.
func (m *Manifest) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "── run manifest: %s (%.2fs wall, go %s, %d CPU) ──\n",
		m.Kind, m.WallSeconds, m.Host.GoVersion, m.Host.NumCPU)
	if len(m.Stages) > 0 {
		fmt.Fprintf(&b, "%-28s %7s %12s %12s\n", "stage", "count", "wall", "alloc")
		for _, s := range m.Stages {
			fmt.Fprintf(&b, "%-28s %7d %12s %12s\n",
				s.Name, s.Count, fmtSeconds(s.Seconds), fmtBytes(s.AllocBytes))
		}
	}
	if len(m.Solves) > 0 {
		fmt.Fprintf(&b, "%-28s %7s %12s %12s %s\n", "solve", "iters", "wall", "residual", "converged")
		for _, s := range m.Solves {
			fmt.Fprintf(&b, "%-28s %7d %12s %12.3g %v\n",
				s.Label, s.Iterations, fmtSeconds(s.Seconds), s.Residual, s.Converged)
		}
	}
	for _, d := range m.Degradations {
		state := "clean"
		switch {
		case d.Exhausted:
			state = "EXHAUSTED"
		case d.Degraded():
			state = "degraded"
		}
		fmt.Fprintf(&b, "resilience: %s served by rung %d (%s), %d attempt(s), %s\n",
			d.Component, d.RungIndex, orDash(d.Rung), len(d.Attempts), state)
	}
	if n := len(m.Epochs); n > 0 {
		first, last := m.Epochs[0], m.Epochs[n-1]
		fmt.Fprintf(&b, "training: %d epochs, loss %.4g → %.4g\n", n, first.Loss, last.Loss)
	}
	if c := m.Cache; c != nil {
		fmt.Fprintf(&b, "cache: %d hit(s), %d miss(es), %d warm start(s), %d stale, %d store(s)\n",
			c.Hits, c.Misses, c.WarmStarts, c.Stale, c.Stores)
	}
	if rs := m.Resume; rs != nil {
		fmt.Fprintf(&b, "resume: %s from %s at iteration %d (key %s)\n",
			rs.Outcome, orDash(rs.From), rs.Iter, orDash(rs.CheckpointKey))
	}
	par := m.Counters["parallel.for.parallel"] + m.Counters["parallel.do.parallel"]
	ser := m.Counters["parallel.for.serial"] + m.Counters["parallel.do.serial"]
	if par+ser > 0 {
		fmt.Fprintf(&b, "pool: %d kernel dispatches, %.1f%% parallel, %d helper tasks\n",
			par+ser, 100*float64(par)/float64(par+ser), m.Counters["parallel.tasks"])
	}
	var rest []string
	for _, name := range sortedKeys(m.Counters) {
		if !strings.HasPrefix(name, "parallel.") {
			rest = append(rest, fmt.Sprintf("%s=%d", name, m.Counters[name]))
		}
	}
	if len(rest) > 0 {
		fmt.Fprintf(&b, "counters: %s\n", strings.Join(rest, " "))
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func fmtSeconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	}
}

// Sink receives completed manifests. Implementations: FileSink,
// WriterSink, DiscardSink.
type Sink interface {
	Write(m *Manifest) error
}

// FileSink returns a sink that (re)creates path and writes the
// manifest as indented JSON.
func FileSink(path string) Sink { return fileSink(path) }

type fileSink string

func (f fileSink) Write(m *Manifest) error {
	file, err := os.Create(string(f))
	if err != nil {
		return err
	}
	if err := m.Encode(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// WriterSink returns a sink that encodes manifests to w.
func WriterSink(w io.Writer) Sink { return writerSink{w} }

type writerSink struct{ w io.Writer }

func (s writerSink) Write(m *Manifest) error { return m.Encode(s.w) }

// DiscardSink returns a sink that drops manifests — the configured
// default when no --manifest flag is given.
func DiscardSink() Sink { return discardSink{} }

type discardSink struct{}

func (discardSink) Write(*Manifest) error { return nil }

// DecodeManifest decodes a manifest from its JSON encoding (the
// inverse of Encode).
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decode manifest: %w", err)
	}
	return &m, nil
}

// ReadManifestFile decodes a manifest JSON file (the inverse of
// FileSink, used by cmd/manifestcheck and tests).
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := DecodeManifest(f)
	if err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return m, nil
}
