package obs

import "context"

// Recorder-in-context plumbing. The process-global Active() recorder
// is the right model for a CLI run — one run at a time, instrumented
// code anywhere in the call tree reports to it. A serving process
// breaks that model: many analyses run concurrently and each needs its
// own recorder, or their manifests cross-talk. WithRecorder binds a
// recorder to a context.Context; the context-aware entry points
// (solver.PCGCtx, dataset.BuildCtx, core's *Ctx methods) resolve their
// recorder with ActiveOr, preferring the context-bound recorder and
// falling back to the global one, so CLI flows keep working unchanged
// while concurrent callers stay isolated.

// ctxKey is the private context key for a bound Recorder.
type ctxKey struct{}

// WithRecorder returns a copy of ctx carrying r. A nil r is allowed
// and means "explicitly unobserved": ActiveOr will still fall back to
// the global recorder, so pass a fresh Recorder to isolate a run.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder bound to ctx, or nil when none is
// bound (or ctx is nil).
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// ActiveOr resolves the recorder for a context-aware call: the
// context-bound recorder when present, otherwise the process-global
// Active() recorder (which may be nil — every Recorder method is
// nil-safe).
func ActiveOr(ctx context.Context) *Recorder {
	if r := FromContext(ctx); r != nil {
		return r
	}
	return Active()
}
