package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.SetGauge("g", 1)
	r.AddSeconds("s", time.Second)
	r.RecordSolve(SolveRecord{Label: "x"})
	r.RecordEpoch(EpochRecord{})
	st := r.StartStage("stage")
	if st != nil {
		t.Fatal("nil recorder must hand out nil stages")
	}
	st.End() // must not panic
	m := r.Manifest("test", nil)
	if m.Schema != SchemaVersion {
		t.Errorf("nil-recorder manifest schema %q", m.Schema)
	}
}

func TestGlobalCounterRegistry(t *testing.T) {
	c := GlobalCounter("test.registry.counter")
	if c != GlobalCounter("test.registry.counter") {
		t.Fatal("GlobalCounter not idempotent")
	}
	before := CounterValue("test.registry.counter")
	c.Add(3)
	c.Inc()
	if got := CounterValue("test.registry.counter"); got != before+4 {
		t.Errorf("counter = %d, want %d", got, before+4)
	}
	if CounterValue("test.registry.never-registered") != 0 {
		t.Error("unregistered counter must read 0")
	}
	if _, ok := GlobalCounters()["test.registry.counter"]; !ok {
		t.Error("snapshot missing registered counter")
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines;
// the CI race job (-race with a wide pool) is the real assertion.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	g := GlobalCounter("test.concurrent.global")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add("hits", 1)
				r.SetGauge(fmt.Sprintf("gauge%d", w), float64(i))
				r.AddSeconds("work", time.Microsecond)
				st := r.StartStage("stage")
				st.End()
				r.RecordSolve(SolveRecord{Label: "s", Iterations: i, History: []float64{1, 0.5}})
				r.RecordEpoch(EpochRecord{Epoch: i})
				g.Inc()
			}
		}(w)
	}
	wg.Wait()
	m := r.Manifest("test", nil)
	if m.Counters["hits"] != 1600 {
		t.Errorf("hits = %d, want 1600", m.Counters["hits"])
	}
	if m.Counters["work.count"] != 1600 {
		t.Errorf("work.count = %d, want 1600", m.Counters["work.count"])
	}
	if len(m.Solves) != 1600 || len(m.Epochs) != 1600 {
		t.Errorf("solves/epochs = %d/%d, want 1600 each", len(m.Solves), len(m.Epochs))
	}
	if len(m.Stages) != 1 || m.Stages[0].Count != 1600 {
		t.Errorf("stage aggregation wrong: %+v", m.Stages)
	}
	if m.Counters["test.concurrent.global"] != 1600 {
		t.Errorf("global delta = %d, want 1600", m.Counters["test.concurrent.global"])
	}
}

func TestActiveSaveRestore(t *testing.T) {
	r := NewRecorder()
	prev := SetActive(r)
	if Active() != r {
		t.Fatal("Active() did not return the installed recorder")
	}
	if got := SetActive(prev); got != r {
		t.Fatal("SetActive did not return the previous recorder")
	}
}

func testManifest(t *testing.T) *Manifest {
	t.Helper()
	r := NewRecorder()
	GlobalCounter("parallel.for.parallel").Add(3)
	GlobalCounter("parallel.for.serial").Add(1)
	st := r.StartStage("solve")
	time.Sleep(2 * time.Millisecond)
	st.End()
	r.Add("designs", 2)
	r.SetGauge("amg.levels", 4)
	r.RecordSolve(SolveRecord{
		Label: "golden", Iterations: 3, Residual: 1e-11, Converged: true,
		Seconds: 0.01, History: []float64{1, 0.1, 1e-6, 1e-11},
	})
	vl := 0.5
	r.RecordEpoch(EpochRecord{Epoch: 0, Loss: 1.5, ValLoss: &vl, LR: 1e-3, Samples: 8, Batches: 2, Seconds: 0.1})
	return r.Manifest("analyze", map[string]int{"iters": 3})
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh manifest invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped manifest invalid: %v", err)
	}
	if back.Kind != "analyze" || len(back.Solves) != 1 || len(back.Solves[0].History) != 4 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Counters["parallel.for.parallel"] != 3 {
		t.Errorf("global counter delta lost: %v", back.Counters)
	}
	if f := back.Gauges["pool.parallel_fraction"]; f != 0.75 {
		t.Errorf("pool.parallel_fraction = %v, want 0.75", f)
	}
	if back.Epochs[0].ValLoss == nil || *back.Epochs[0].ValLoss != 0.5 {
		t.Error("val loss lost")
	}
}

// TestManifestSchemaStability pins the required top-level JSON keys.
// Renaming or removing any of these is a schema break and must bump
// SchemaVersion (and this test).
func TestManifestSchemaStability(t *testing.T) {
	var buf bytes.Buffer
	if err := testManifest(t).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema", "kind", "start_time", "wall_seconds", "host",
		"stages", "counters", "gauges", "solves", "epochs",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("manifest missing required key %q", key)
		}
	}
	if raw["schema"] != SchemaVersion {
		t.Errorf("schema = %v", raw["schema"])
	}
	stage := raw["stages"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "count", "seconds", "alloc_bytes", "mallocs"} {
		if _, ok := stage[key]; !ok {
			t.Errorf("stage record missing key %q", key)
		}
	}
	solve := raw["solves"].([]any)[0].(map[string]any)
	for _, key := range []string{"label", "iterations", "residual", "converged", "seconds", "history"} {
		if _, ok := solve[key]; !ok {
			t.Errorf("solve record missing key %q", key)
		}
	}
}

func TestValidateRejectsBrokenManifests(t *testing.T) {
	mut := map[string]func(*Manifest){
		"schema":   func(m *Manifest) { m.Schema = "bogus" },
		"kind":     func(m *Manifest) { m.Kind = "" },
		"stages":   func(m *Manifest) { m.Stages = nil },
		"wall":     func(m *Manifest) { m.WallSeconds = 0 },
		"counters": func(m *Manifest) { m.Counters = nil },
		"zero-time-stages": func(m *Manifest) {
			for i := range m.Stages {
				m.Stages[i].Seconds = 0
			}
		},
	}
	for name, f := range mut {
		m := testManifest(t)
		f(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken manifest", name)
		}
	}
}

func TestNonFiniteValuesSanitized(t *testing.T) {
	r := NewRecorder()
	st := r.StartStage("s")
	st.End()
	r.SetGauge("bad", math.Inf(1))
	r.RecordSolve(SolveRecord{Label: "d", Residual: math.NaN(), History: []float64{math.Inf(-1)}})
	loss := math.NaN()
	r.RecordEpoch(EpochRecord{Loss: math.NaN(), ValLoss: &loss})
	var buf bytes.Buffer
	if err := r.Manifest("test", nil).Encode(&buf); err != nil {
		t.Fatalf("manifest with non-finite inputs must still encode: %v", err)
	}
}

func TestSinks(t *testing.T) {
	m := testManifest(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := FileSink(path).Write(m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriterSink(&buf).Write(m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("writer sink wrote nothing")
	}
	if err := DiscardSink().Write(m); err != nil {
		t.Error(err)
	}
	if err := FileSink(filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")).Write(m); err == nil {
		t.Error("file sink must surface create errors")
	}
	if _, err := ReadManifestFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing manifest must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := ReadManifestFile(bad); err == nil {
		t.Error("reading garbage must fail")
	}
}

func TestSummary(t *testing.T) {
	s := testManifest(t).Summary()
	for _, want := range []string{"analyze", "solve", "golden", "pool:", "designs=2", "training: 1 epochs"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestServeDebug(t *testing.T) {
	srv, addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "irfusion_counters") {
		t.Error("/debug/vars does not expose the global counters")
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
	if _, _, err := ServeDebug(addr); err == nil {
		t.Error("binding the same address twice must fail")
	}
}
