// Package faults is a deterministic, seed-driven fault-injection
// harness for exercising the degradation paths of the analysis
// pipeline on demand. It is stdlib-only and follows the same
// nil-safe, context-or-global resolution pattern as internal/obs:
// instrumented code resolves an *Injector with ActiveOr(ctx) and pays
// one atomic pointer load plus a nil check when injection is off —
// no allocations, no locks, no branches beyond the nil test.
//
// An injector is configured by a spec string, either per-process via
// the IRFUSION_FAULTS environment variable (parsed at package init,
// so `IRFUSION_FAULTS=... go test ./...` chaos runs need no code
// changes) or per-test/per-request via Parse + WithInjector.
//
// # Spec grammar
//
// A spec is a semicolon-separated list of clauses:
//
//	spec   := clause (";" clause)*
//	clause := "seed=" int
//	        | site ":" action [":" key "=" val ("," key "=" val)*]
//
// Sites and the actions they honor:
//
//	solver.pcg    breakdown | indefinite | nan | inf | panic
//	amg.setup     fail
//	dataset.build latency | stall
//	features.map  latency
//	serve.worker  panic | latency | stall
//	cache.lookup  stale | evict | fail
//	cache.delta   latency | fail
//	cluster.probe   fail | latency
//	cluster.forward fail | latency
//	journal.append     fail | torn
//	checkpoint.save    latency | fail
//	checkpoint.restore corrupt | fail
//
// Modifier keys (all optional):
//
//	p=F        fire with probability F (seeded rng; default 1)
//	times=N    fire at most N times (default unlimited)
//	after=K    skip the first K matching arrivals (default 0)
//	delay=D    duration for latency faults (Go syntax, e.g. 50ms)
//	label=S    only match when the call site passes label S
//	           (e.g. a solve's obs label; default: match any)
//
// Example — force a numerical breakdown in every AMG-rung solve and
// add 20ms of latency to half of all dataset builds:
//
//	IRFUSION_FAULTS='solver.pcg:breakdown:label=numerical.amg;dataset.build:latency:delay=20ms,p=0.5'
//
// Matching is deterministic: the seeded generator (default seed 1,
// overridden by a seed= clause) drives every probability draw, so a
// given spec produces the same fault sequence run to run.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection sites. Call sites pass these to Fire; specs name them.
const (
	SitePCG          = "solver.pcg"    // per-iteration hook in solver.PCGCtx
	SiteAMGSetup     = "amg.setup"     // hierarchy construction in amg.BuildCtx
	SiteDatasetBuild = "dataset.build" // start of dataset.BuildCtx
	SiteFeatures     = "features.map"  // per-map hook in internal/features
	SiteServeWorker  = "serve.worker"  // job execution in internal/serve workers
	SiteCacheLookup  = "cache.lookup"  // exact-hit artifact lookup in internal/cache
	SiteCacheDelta   = "cache.delta"   // neighbor delta check before a warm start

	// Cluster sites fire in the gateway (internal/cluster), labeled
	// with the target shard's name: cluster.probe simulates a dead or
	// slow shard health probe (fail records a probe failure without
	// touching the network, latency delays the probe past its budget),
	// and cluster.forward kills a request forward as if the shard
	// connection dropped — exercising ring handoff to the successor.
	SiteClusterProbe   = "cluster.probe"   // shard health probe in the gateway
	SiteClusterForward = "cluster.forward" // request forward in the gateway

	// Durability sites fire in the crash-recovery layer:
	// journal.append at every write-ahead journal append (labeled with
	// the record type, so a spec can target e.g. only "checkpoint"
	// records), checkpoint.save when a solver checkpoint is persisted,
	// and checkpoint.restore when a cached/journaled checkpoint is
	// loaded for a resume — ActCorrupt there poisons the restored
	// iterate so the resume residual guard must reject it.
	SiteJournalAppend     = "journal.append"     // WAL append in internal/journal
	SiteCheckpointSave    = "checkpoint.save"    // checkpoint persistence in internal/cache
	SiteCheckpointRestore = "checkpoint.restore" // checkpoint restore in internal/cache
)

// knownSites is the closed registry Parse validates spec sites
// against: a typo'd site in IRFUSION_FAULTS used to be accepted
// silently and simply never fire, running a chaos suite that injected
// nothing. irfusionlint's sitedrift rule keeps this map and the Site*
// constants in lockstep (both directions) and flags Fire calls naming
// sites outside it.
var knownSites = map[string]bool{
	SitePCG:               true,
	SiteAMGSetup:          true,
	SiteDatasetBuild:      true,
	SiteFeatures:          true,
	SiteServeWorker:       true,
	SiteCacheLookup:       true,
	SiteCacheDelta:        true,
	SiteClusterProbe:      true,
	SiteClusterForward:    true,
	SiteJournalAppend:     true,
	SiteCheckpointSave:    true,
	SiteCheckpointRestore: true,
}

// Actions a fired fault can request. The call site interprets them;
// unknown actions at a site are ignored (Fire returns them anyway so
// new actions can be added without touching the parser).
const (
	ActBreakdown  = "breakdown"  // return solver.ErrBreakdown
	ActIndefinite = "indefinite" // return solver.ErrIndefinite
	ActNaN        = "nan"        // poison a residual entry with NaN
	ActInf        = "inf"        // poison a residual entry with +Inf
	ActFail       = "fail"       // fail the operation with an injected error
	ActLatency    = "latency"    // sleep Delay before proceeding
	ActStall      = "stall"      // block until the context is cancelled
	ActPanic      = "panic"      // panic inside the instrumented goroutine
	ActStale      = "stale"      // serve a corrupted copy of a cache entry (guards must catch it)
	ActEvict      = "evict"      // drop the entry mid-lookup, as if eviction won the race
	ActTorn       = "torn"       // tear a journal append mid-frame, as if the process crashed
	ActCorrupt    = "corrupt"    // poison a restored checkpoint (the resume guard must catch it)
)

// Fault describes one fired injection. Exactly what the call site
// asked Fire about, plus the action and parameters from the matching
// rule.
type Fault struct {
	Site   string
	Action string
	Label  string        // the label the call site passed to Fire
	Delay  time.Duration // for ActLatency
}

// Sleep performs a latency or stall fault cooperatively: latency
// sleeps Delay (interruptible by ctx), stall blocks until ctx is
// done. Returns the context error when interrupted, nil otherwise.
// Other actions are a no-op. Callers without a context should pass
// context.Background() and only configure latency faults at that
// site — a stall there would block forever by design.
func (f *Fault) Sleep(ctx context.Context) error {
	if f == nil {
		return nil
	}
	switch f.Action {
	case ActLatency:
		if f.Delay <= 0 {
			return nil
		}
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ActStall:
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// Error returns the error an ActFail fault carries to the caller.
func (f *Fault) Error() error {
	return fmt.Errorf("faults: injected %s at %s", f.Action, f.Site)
}

// rule is one parsed clause with its firing state.
type rule struct {
	site   string
	action string
	label  string  // empty matches any label
	p      float64 // firing probability; 1 fires always
	times  int     // max fires; 0 means unlimited
	after  int     // matching arrivals to skip first
	delay  time.Duration

	matched int // arrivals that matched site+label
	fired   int
}

// Injector evaluates fault rules. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Injector never fires).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*rule
	spec  string
	seed  int64
}

// Parse builds an Injector from a spec string. An empty or
// whitespace-only spec yields nil (injection disabled) with no error.
func Parse(spec string) (*Injector, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return nil, nil
	}
	in := &Injector{spec: trimmed, seed: 1}
	for _, clause := range strings.Split(trimmed, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed clause %q: %w", clause, err)
			}
			in.seed = seed
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		in.rules = append(in.rules, r)
	}
	if len(in.rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q has no fault clauses", trimmed)
	}
	in.rng = rand.New(rand.NewSource(in.seed))
	return in, nil
}

func parseRule(clause string) (*rule, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) < 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return nil, fmt.Errorf("faults: clause %q is not site:action[:params]", clause)
	}
	r := &rule{
		site:   strings.TrimSpace(parts[0]),
		action: strings.TrimSpace(parts[1]),
		p:      1,
	}
	if !knownSites[r.site] {
		return nil, fmt.Errorf("faults: clause %q names unknown site %q; known sites are the faults.Site* constants", clause, r.site)
	}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: clause %q: parameter %q is not key=value", clause, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "p":
				r.p, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.p < 0 || r.p > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", r.p)
				}
			case "times":
				r.times, err = strconv.Atoi(val)
			case "after":
				r.after, err = strconv.Atoi(val)
			case "delay":
				r.delay, err = time.ParseDuration(val)
			case "label":
				r.label = val
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		}
	}
	return r, nil
}

// MustParse is Parse that panics on a malformed spec — for tests and
// for the env-var path, where a typo should fail loudly rather than
// silently run an un-injected chaos suite.
func MustParse(spec string) *Injector {
	in, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// Fire asks whether a fault should trigger at site for the given
// label (empty when the site has no label concept). It returns the
// fault to apply, or nil. Nil-safe: a nil receiver always returns
// nil, so the disabled-path cost at a call site is one nil check.
func (in *Injector) Fire(site, label string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.site != site || (r.label != "" && r.label != label) {
			continue
		}
		r.matched++
		if r.matched <= r.after {
			continue
		}
		if r.times > 0 && r.fired >= r.times {
			continue
		}
		if r.p < 1 && in.rng.Float64() >= r.p {
			continue
		}
		r.fired++
		return &Fault{Site: site, Action: r.action, Label: label, Delay: r.delay}
	}
	return nil
}

// Spec returns the spec string the injector was parsed from.
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// active is the process-global injector, installed from the
// IRFUSION_FAULTS environment variable at init or via SetActive.
var active atomic.Pointer[Injector]

// EnvVar is the environment variable holding the process-wide fault
// spec.
const EnvVar = "IRFUSION_FAULTS"

func init() {
	if spec := os.Getenv(EnvVar); strings.TrimSpace(spec) != "" {
		in, err := Parse(spec)
		if err != nil {
			// A malformed chaos spec must not silently disable the
			// chaos run it was meant to drive.
			panic(fmt.Sprintf("faults: invalid %s: %v", EnvVar, err))
		}
		active.Store(in)
	}
}

// Active returns the process-global injector, or nil when injection
// is disabled.
func Active() *Injector { return active.Load() }

// SetActive installs (or, with nil, removes) the process-global
// injector. Tests that use it should restore the previous value.
func SetActive(in *Injector) { active.Store(in) }

// ctxKey is the private context key for a bound Injector.
type ctxKey struct{}

// WithInjector returns a copy of ctx carrying in, scoping injection
// to one request or test without touching process-global state.
func WithInjector(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// FromContext returns the injector bound to ctx, or nil.
func FromContext(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// ActiveOr resolves the injector for a context-aware call site: the
// context-bound injector when present, otherwise the process-global
// one. Either may be nil; every Injector method is nil-safe.
func ActiveOr(ctx context.Context) *Injector {
	if in := FromContext(ctx); in != nil {
		return in
	}
	return Active()
}
