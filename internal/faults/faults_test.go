package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseRejectsMalformedSpecs(t *testing.T) {
	bad := []string{
		"solver.pcg",                 // no action
		":breakdown",                 // no site
		"solver.pcg:breakdown:p",     // param not key=value
		"solver.pcg:breakdown:p=2",   // probability out of range
		"solver.pcg:breakdown:q=1",   // unknown key
		"solver.pcg:latency:delay=x", // bad duration
		"seed=abc;solver.pcg:nan",    // bad seed
		"seed=3",                     // seed only, no fault clause
		"solver.pcg:breakdown:times=x",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

// Regression: Parse used to accept any site string, so a typo'd spec
// ran an entire chaos suite that injected nothing. Unknown sites must
// be rejected against the knownSites registry.
func TestParseRejectsUnknownSites(t *testing.T) {
	for _, spec := range []string{
		"solver.pgc:breakdown", // transposed letters
		"sovler.pcg:nan:p=0.5",
		"cache.lookup.exact:stale", // over-qualified
	} {
		_, err := Parse(spec)
		if err == nil || !strings.Contains(err.Error(), "unknown site") {
			t.Errorf("Parse(%q) = %v; want unknown-site error", spec, err)
		}
	}
	if _, err := Parse(SiteCacheLookup + ":stale"); err != nil {
		t.Errorf("Parse of known site failed: %v", err)
	}
}

// The registry and the Site* constants must agree — the sitedrift lint
// rule checks the source, this checks the built artifact.
func TestKnownSitesCoverDeclaredConstants(t *testing.T) {
	for _, site := range []string{
		SitePCG, SiteAMGSetup, SiteDatasetBuild, SiteFeatures,
		SiteServeWorker, SiteCacheLookup, SiteCacheDelta,
		SiteClusterProbe, SiteClusterForward,
		SiteJournalAppend, SiteCheckpointSave, SiteCheckpointRestore,
	} {
		if !knownSites[site] {
			t.Errorf("site %q missing from knownSites", site)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "  ", "\t"} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if f := in.Fire(SitePCG, "numerical.amg"); f != nil {
		t.Fatalf("nil injector fired %+v", f)
	}
	if in.Spec() != "" {
		t.Fatalf("nil injector spec %q", in.Spec())
	}
}

func TestFireMatchesSiteAndLabel(t *testing.T) {
	in := MustParse("solver.pcg:breakdown:label=numerical.amg")
	if f := in.Fire(SiteAMGSetup, ""); f != nil {
		t.Fatalf("wrong site fired %+v", f)
	}
	if f := in.Fire(SitePCG, "golden"); f != nil {
		t.Fatalf("wrong label fired %+v", f)
	}
	f := in.Fire(SitePCG, "numerical.amg")
	if f == nil || f.Action != ActBreakdown || f.Label != "numerical.amg" {
		t.Fatalf("expected breakdown fault, got %+v", f)
	}
}

func TestTimesAndAfterModifiers(t *testing.T) {
	in := MustParse("amg.setup:fail:after=1,times=2")
	var fires []bool
	for i := 0; i < 5; i++ {
		fires = append(fires, in.Fire(SiteAMGSetup, "") != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("arrival %d: fired=%v, want %v (all: %v)", i, fires[i], want[i], fires)
		}
	}
}

// TestProbabilityIsSeedDeterministic runs the same probabilistic spec
// twice and demands an identical fire sequence, then checks a
// different seed produces a different sequence (the whole point of
// seeded injection: chaos runs are reproducible).
func TestProbabilityIsSeedDeterministic(t *testing.T) {
	seq := func(spec string) string {
		in := MustParse(spec)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.Fire(SitePCG, "") != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a := seq("seed=7;solver.pcg:breakdown:p=0.5")
	b := seq("seed=7;solver.pcg:breakdown:p=0.5")
	if a != b {
		t.Fatalf("same seed, different sequences:\n%s\n%s", a, b)
	}
	c := seq("seed=8;solver.pcg:breakdown:p=0.5")
	if a == c {
		t.Fatalf("different seeds produced identical sequences: %s", a)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Fatalf("p=0.5 sequence is degenerate: %s", a)
	}
}

func TestSleepLatencyAndStall(t *testing.T) {
	f := &Fault{Action: ActLatency, Delay: 5 * time.Millisecond}
	start := time.Now()
	if err := f.Sleep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency slept only %v", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	stall := &Fault{Action: ActStall}
	if err := stall.Sleep(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall returned %v, want deadline exceeded", err)
	}

	var none *Fault
	if err := none.Sleep(context.Background()); err != nil {
		t.Fatalf("nil fault Sleep: %v", err)
	}
}

func TestContextResolution(t *testing.T) {
	prev := Active()
	defer SetActive(prev)
	SetActive(nil)

	if got := ActiveOr(context.Background()); got != nil {
		t.Fatalf("ActiveOr with nothing installed = %v", got)
	}
	global := MustParse("serve.worker:panic")
	SetActive(global)
	if got := ActiveOr(context.Background()); got != global {
		t.Fatalf("ActiveOr did not fall back to global")
	}
	bound := MustParse("amg.setup:fail")
	ctx := WithInjector(context.Background(), bound)
	if got := ActiveOr(ctx); got != bound {
		t.Fatalf("ActiveOr did not prefer the context-bound injector")
	}
	if got := FromContext(nil); got != nil {
		t.Fatalf("FromContext(nil) = %v", got)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := MustParse("solver.pcg:nan:p=0.5;dataset.build:latency:delay=1ms,times=3")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				in.Fire(SitePCG, "numerical.amg")
				in.Fire(SiteDatasetBuild, "")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
