package solver

// Solver checkpointing: a PCG (or mixed-precision refinement) run can
// periodically snapshot its current iterate so a crashed or handed-off
// solve resumes from the last snapshot instead of iteration 0. The
// mechanism deliberately reuses the warm-start contract of the
// artifact cache (docs/CACHING.md): a checkpoint's X is just an
// initial guess, restored through flexible PCG — which tolerates a
// different (even foreign) preconditioner — and validated by the same
// residual-guard idea, so a corrupt or stale checkpoint degrades to a
// cold solve, never to a wrong answer.

// historyTailLen bounds the residual-history slice carried by one
// checkpoint: enough to see the convergence trend on restore without
// copying a thousand-entry trace every interval.
const historyTailLen = 8

// Checkpoint is one solver snapshot: the iterate, how far the solve
// had gotten, and the solve configuration that produced it — enough
// for a restarted process to decide whether (and how) to resume.
type Checkpoint struct {
	// X is a copy of the iterate at snapshot time.
	X []float64
	// Iter is the completed-iteration count (for MPPCGCtx, the summed
	// inner iterations across completed refinement rounds).
	Iter int
	// Residual is the relative residual at snapshot time.
	Residual float64
	// HistoryTail is the last few recorded relative residuals (at most
	// historyTailLen entries), newest last.
	HistoryTail []float64
	// Tol, MaxIter, Flexible, Label, Format mirror the Options of the
	// solve that produced the snapshot.
	Tol      float64
	MaxIter  int
	Flexible bool
	Label    string
	Format   string
	// Precision is the arithmetic path (obs.PrecisionFull or
	// obs.PrecisionMixed) of the producing solve.
	Precision string
}

// CheckpointSink receives checkpoints as a solve progresses. Save is
// called from inside the iteration loop every Options.CheckpointEvery
// iterations; implementations own the Checkpoint (its slices are
// freshly copied) and must not block longer than they can afford to
// stall the solve.
type CheckpointSink interface {
	SaveCheckpoint(cp Checkpoint)
}

// snapshot builds a Checkpoint from the current solve state, copying
// x and the history tail so the sink's view is stable while the solve
// keeps iterating.
func snapshot(x []float64, iter int, rel float64, history []float64, opts Options, precision string) Checkpoint {
	cp := Checkpoint{
		X:         append([]float64(nil), x...),
		Iter:      iter,
		Residual:  rel,
		Tol:       opts.Tol,
		MaxIter:   opts.MaxIter,
		Flexible:  opts.Flexible,
		Label:     opts.Label,
		Format:    opts.Format,
		Precision: precision,
	}
	if n := len(history); n > 0 {
		tail := n - historyTailLen
		if tail < 0 {
			tail = 0
		}
		cp.HistoryTail = append([]float64(nil), history[tail:]...)
	}
	return cp
}
