package solver

import (
	"math"
	"testing"

	"irfusion/internal/amg"
	"irfusion/internal/obs"
)

// sinkRecorder collects every checkpoint a solve hands over.
type sinkRecorder struct{ cps []Checkpoint }

func (s *sinkRecorder) SaveCheckpoint(cp Checkpoint) { s.cps = append(s.cps, cp) }

// TestPCGCheckpointCadence: with CheckpointEvery set, PCGCtx must
// snapshot exactly every N-th completed iteration, each snapshot
// carrying an independent copy of the iterate, the solve options, and
// a bounded history tail.
func TestPCGCheckpointCadence(t *testing.T) {
	a, _, b := randomSystem(16, 16, 11)
	n := len(b)
	sink := &sinkRecorder{}
	x := make([]float64, n)
	const every = 8
	res, err := PCG(a, x, b, NewJacobi(a), Options{
		Tol: 1e-10, MaxIter: 2000, Record: true, Label: "ckpt-test",
		CheckpointEvery: every, CheckpointSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge (rel %v)", res.Residual)
	}
	want := res.Iterations / every
	if len(sink.cps) != want {
		t.Fatalf("got %d checkpoints over %d iterations, want %d (every %d)",
			len(sink.cps), res.Iterations, want, every)
	}
	for i, cp := range sink.cps {
		if cp.Iter != (i+1)*every {
			t.Errorf("checkpoint %d at iteration %d, want %d", i, cp.Iter, (i+1)*every)
		}
		if len(cp.X) != n {
			t.Errorf("checkpoint %d iterate length %d, want %d", i, len(cp.X), n)
		}
		if len(cp.HistoryTail) == 0 || len(cp.HistoryTail) > historyTailLen {
			t.Errorf("checkpoint %d history tail has %d entries, want 1..%d",
				i, len(cp.HistoryTail), historyTailLen)
		}
		if got := cp.HistoryTail[len(cp.HistoryTail)-1]; got != cp.Residual { //irfusion:exact the tail's newest entry is the snapshot residual by construction
			t.Errorf("checkpoint %d residual %g != newest tail entry %g", i, cp.Residual, got)
		}
		if cp.Tol != 1e-10 || cp.MaxIter != 2000 || cp.Label != "ckpt-test" { //irfusion:exact options are echoed verbatim into the snapshot
			t.Errorf("checkpoint %d options not echoed: %+v", i, cp)
		}
		if cp.Precision != obs.PrecisionFull {
			t.Errorf("checkpoint %d precision %q", i, cp.Precision)
		}
	}
	// Snapshots must be copies: the mid-solve iterate differs from the
	// final one unless the copy aliased the live buffer.
	first := sink.cps[0]
	same := true
	for i := range first.X {
		if first.X[i] != x[i] { //irfusion:exact aliasing check — identical bits at every index would mean the snapshot shares the live slice
			same = false
			break
		}
	}
	if same {
		t.Error("first checkpoint's iterate equals the converged iterate — snapshot did not copy")
	}
	// Residuals must improve across checkpoints (monotone to within the
	// usual PCG wobble of a couple orders).
	if last, firstR := sink.cps[len(sink.cps)-1].Residual, first.Residual; last >= firstR {
		t.Errorf("residual did not improve across checkpoints: %g → %g", firstR, last)
	}
}

// TestPCGCheckpointDisabled: no sink, or a non-positive interval,
// means no snapshots.
func TestPCGCheckpointDisabled(t *testing.T) {
	a, _, b := randomSystem(12, 12, 12)
	sink := &sinkRecorder{}
	x := make([]float64, len(b))
	if _, err := PCG(a, x, b, NewJacobi(a), Options{
		Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 0, CheckpointSink: sink,
	}); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, len(b))
	if _, err := PCG(a, x2, b, NewJacobi(a), Options{
		Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 8,
	}); err != nil {
		t.Fatal(err)
	}
	if len(sink.cps) != 0 {
		t.Fatalf("checkpointing disabled but %d snapshots taken", len(sink.cps))
	}
}

// TestMPPCGCheckpointsPerRound: the mixed-precision driver snapshots
// once per completed refinement round (rounds, not inner iterations,
// are its unit of progress), tagging the snapshots as mixed precision.
func TestMPPCGCheckpointsPerRound(t *testing.T) {
	a, _, b := randomSystem(24, 24, 13)
	h, err := amg.Build(a, amg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := &sinkRecorder{}
	x := make([]float64, len(b))
	opts := DefaultOptions()
	opts.CheckpointEvery = 1
	opts.CheckpointSink = sink
	res, err := MPPCGCtx(t.Context(), a, x, b, amg.NewHierarchy32(h), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("mixed solve did not converge (rel %v)", res.Residual)
	}
	if len(sink.cps) == 0 {
		t.Fatal("no per-round checkpoints taken")
	}
	for i, cp := range sink.cps {
		if cp.Precision != obs.PrecisionMixed {
			t.Errorf("checkpoint %d precision %q, want %q", i, cp.Precision, obs.PrecisionMixed)
		}
		if cp.Iter <= 0 {
			t.Errorf("checkpoint %d carries iteration count %d", i, cp.Iter)
		}
		if math.IsNaN(cp.Residual) || math.IsInf(cp.Residual, 0) {
			t.Errorf("checkpoint %d residual %v", i, cp.Residual)
		}
	}
}
