package solver

import (
	"testing"

	"irfusion/internal/parallel"
)

// TestPCGDeterministicAcrossWorkersAndRuns is the reproducibility
// contract of the parallel numerical stage: with the deterministic
// blocked reductions, the PCG residual history is bitwise identical
// across repeated runs and across every parallel worker count.
func TestPCGDeterministicAcrossWorkersAndRuns(t *testing.T) {
	a, _, b := randomSystem(48, 48, 11)

	solve := func() []float64 {
		x := make([]float64, len(b))
		res, err := PCG(a, x, b, NewSSOR(a, 2), RoughOptions(15))
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}

	prev := parallel.SetDefault(parallel.New(2).SetMinWork(1))
	defer parallel.SetDefault(prev)

	var ref []float64
	for _, w := range []int{2, 3, 4, 8} {
		p := parallel.New(w).SetMinWork(1)
		parallel.SetDefault(p)
		for run := 0; run < 3; run++ {
			hist := solve()
			if ref == nil {
				ref = hist
				continue
			}
			if len(hist) != len(ref) {
				t.Fatalf("workers=%d run=%d: history length %d, want %d", w, run, len(hist), len(ref))
			}
			for k := range hist {
				if hist[k] != ref[k] {
					t.Fatalf("workers=%d run=%d: history[%d] = %x, want %x",
						w, run, k, hist[k], ref[k])
				}
			}
		}
		p.Close()
	}

	// A single-worker pool must also be self-consistent (and runs the
	// exact serial seed code path).
	p1 := parallel.New(1)
	parallel.SetDefault(p1)
	s1, s2 := solve(), solve()
	for k := range s1 {
		if s1[k] != s2[k] {
			t.Fatalf("serial repeat: history[%d] = %x vs %x", k, s1[k], s2[k])
		}
	}
}

// TestPCGParallelSolutionMatchesSerial checks the parallel solve still
// lands on the same answer as the serial one within solver tolerance.
func TestPCGParallelSolutionMatchesSerial(t *testing.T) {
	a, want, b := randomSystem(32, 32, 5)

	solve := func() []float64 {
		x := make([]float64, len(b))
		res, err := PCG(a, x, b, NewJacobi(a), Options{Tol: 1e-12, MaxIter: 5000})
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res.Converged)
		}
		return x
	}

	prev := parallel.SetDefault(parallel.New(1))
	defer parallel.SetDefault(prev)
	serial := solve()

	p := parallel.New(4).SetMinWork(1)
	parallel.SetDefault(p)
	defer p.Close()
	par := solve()

	if d := MaxAbsDiff(serial, par); d > 1e-9 {
		t.Errorf("parallel vs serial solution differ by %v", d)
	}
	if d := MaxAbsDiff(par, want); d > 1e-6 {
		t.Errorf("parallel solution misses ground truth by %v", d)
	}
}
