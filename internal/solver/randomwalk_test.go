package solver

import (
	"math"
	"math/rand"
	"testing"

	"irfusion/internal/sparse"
)

// padChain builds the drop-system of pad --1Ω-- a --1Ω-- b with a
// 1 A load at b: G = [[2,-1],[-1,1]], I = [0,1]; solution d = [1,2].
func padChain() (*sparse.CSR, []float64, []float64) {
	t := sparse.NewTriplet(2, 2, 4)
	t.Add(0, 0, 2)
	t.Add(0, 1, -1)
	t.Add(1, 0, -1)
	t.Add(1, 1, 1)
	return t.ToCSR(), []float64{0, 1}, []float64{1, 2}
}

func TestRandomWalkChainAnalytic(t *testing.T) {
	a, b, want := padChain()
	rw, err := NewRandomWalk(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i, w := range want {
		got := rw.Node(i, 20000, rng)
		if math.Abs(got-w) > 0.05*w {
			t.Errorf("node %d: walk estimate %v, want %v", i, got, w)
		}
	}
}

func TestRandomWalkMatchesPCG(t *testing.T) {
	// A grid with pad elimination: interior Laplacian rows plus
	// strictly dominant boundary rows.
	nx, ny := 6, 6
	n := nx * ny
	tr := sparse.NewTriplet(n, n, 5*n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			tr.Add(i, i, 4) // boundary rows keep full diagonal -> pad coupling
			if x > 0 {
				tr.Add(i, idx(x-1, y), -1)
			}
			if x < nx-1 {
				tr.Add(i, idx(x+1, y), -1)
			}
			if y > 0 {
				tr.Add(i, idx(x, y-1), -1)
			}
			if y < ny-1 {
				tr.Add(i, idx(x, y+1), -1)
			}
		}
	}
	a := tr.ToCSR()
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range b {
		b[i] = rng.Float64() * 0.1
	}
	exact := make([]float64, n)
	if _, err := CG(a, exact, b, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	rw, err := NewRandomWalk(a, b)
	if err != nil {
		t.Fatal(err)
	}
	est := make([]float64, n)
	rw.Solve(est, 3000, rng)
	maxRef := 0.0
	for _, v := range exact {
		if v > maxRef {
			maxRef = v
		}
	}
	for i := range exact {
		if math.Abs(est[i]-exact[i]) > 0.1*maxRef {
			t.Fatalf("node %d: walk %v vs exact %v (tol %v)", i, est[i], exact[i], 0.1*maxRef)
		}
	}
}

func TestRandomWalkZeroLoadZeroDrop(t *testing.T) {
	a, _, _ := padChain()
	rw, err := NewRandomWalk(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if got := rw.Node(1, 100, rng); got != 0 {
		t.Errorf("no load should mean no drop, got %v", got)
	}
}

func TestRandomWalkRejectsBadMatrices(t *testing.T) {
	// Positive off-diagonal (not an M-matrix).
	tr := sparse.NewTriplet(2, 2, 3)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 1, 2)
	if _, err := NewRandomWalk(tr.ToCSR(), []float64{0, 0}); err == nil {
		t.Error("expected M-matrix error")
	}
	// Singular Laplacian with zero row sums everywhere (no pads).
	tr2 := sparse.NewTriplet(2, 2, 4)
	tr2.Add(0, 0, 1)
	tr2.Add(0, 1, -1)
	tr2.Add(1, 0, -1)
	tr2.Add(1, 1, 1)
	if _, err := NewRandomWalk(tr2.ToCSR(), []float64{0, 0}); err != ErrNotWalkable {
		t.Errorf("err = %v, want ErrNotWalkable", err)
	}
	// Non-positive diagonal.
	tr3 := sparse.NewTriplet(1, 1, 1)
	tr3.Add(0, 0, -1)
	if _, err := NewRandomWalk(tr3.ToCSR(), []float64{0}); err == nil {
		t.Error("expected diagonal error")
	}
}

func TestRandomWalkVarianceShrinksWithWalks(t *testing.T) {
	a, b, want := padChain()
	rw, err := NewRandomWalk(a, b)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(walks int, seed int64) float64 {
		worst := 0.0
		for trial := int64(0); trial < 8; trial++ {
			rng := rand.New(rand.NewSource(seed + trial))
			if d := math.Abs(rw.Node(1, walks, rng) - want[1]); d > worst {
				worst = d
			}
		}
		return worst
	}
	few := spread(50, 10)
	many := spread(5000, 10)
	if many >= few {
		t.Errorf("estimate spread did not shrink: %v (50 walks) vs %v (5000 walks)", few, many)
	}
}
