package solver

// Zero-allocation regression guards for the preconditioner hot paths;
// see internal/sparse/alloc_test.go for the pattern rationale.

import (
	"testing"

	"irfusion/internal/parallel"
	"irfusion/internal/race"
	"irfusion/internal/sparse"
)

func pinSerialPool(t *testing.T) {
	t.Helper()
	prev := parallel.SetDefault(parallel.New(1))
	t.Cleanup(func() { parallel.SetDefault(prev) })
}

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	fn()
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %v allocs per run in steady state, want 0", name, allocs)
	}
}

func allocTestSystem() (*sparse.CSR, []float64, []float64) {
	a := laplacian2D(16, 16)
	n := a.Rows()
	z := make([]float64, n)
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%9) + 1
	}
	return a, z, r
}

func TestZeroAllocIdentityApply(t *testing.T) {
	pinSerialPool(t)
	_, z, r := allocTestSystem()
	requireZeroAllocs(t, "Identity.Apply", func() { Identity{}.Apply(z, r) })
}

func TestZeroAllocJacobiApply(t *testing.T) {
	pinSerialPool(t)
	a, z, r := allocTestSystem()
	j := NewJacobi(a)
	requireZeroAllocs(t, "Jacobi.Apply", func() { j.Apply(z, r) })
}

func TestZeroAllocSSORApply(t *testing.T) {
	pinSerialPool(t)
	a, z, r := allocTestSystem()
	s := NewSSOR(a, 1)
	requireZeroAllocs(t, "SSOR.Apply", func() { s.Apply(z, r) })
}
