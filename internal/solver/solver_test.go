package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"irfusion/internal/amg"
	"irfusion/internal/sparse"
)

func laplacian2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	t := sparse.NewTriplet(n, n, 5*n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			t.Add(i, i, 4)
			if x > 0 {
				t.Add(i, idx(x-1, y), -1)
			}
			if x < nx-1 {
				t.Add(i, idx(x+1, y), -1)
			}
			if y > 0 {
				t.Add(i, idx(x, y-1), -1)
			}
			if y < ny-1 {
				t.Add(i, idx(x, y+1), -1)
			}
		}
	}
	return t.ToCSR()
}

func randomSystem(nx, ny int, seed int64) (*sparse.CSR, []float64, []float64) {
	a := laplacian2D(nx, ny)
	n := a.Rows()
	rng := rand.New(rand.NewSource(seed))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	return a, want, b
}

func TestCGConverges(t *testing.T) {
	a, want, b := randomSystem(16, 16, 1)
	x := make([]float64, len(b))
	res, err := CG(a, x, b, Options{Tol: 1e-10, MaxIter: 2000, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: rel=%v after %d iters", res.Residual, res.Iterations)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Residual history should be recorded and end small.
	if len(res.History) == 0 || res.History[len(res.History)-1] > 1e-10 {
		t.Error("history missing or final residual too large")
	}
}

func TestJacobiPCGFasterThanCG(t *testing.T) {
	// Scale rows/cols to make the diagonal wildly nonuniform, where
	// Jacobi preconditioning visibly helps.
	a := laplacian2D(16, 16)
	n := a.Rows()
	s := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range s {
		s[i] = math.Exp(3 * rng.Float64())
	}
	tr := sparse.NewTriplet(n, n, a.NNZ())
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			tr.Add(i, a.ColInd[p], s[i]*a.Val[p]*s[a.ColInd[p]])
		}
	}
	scaled := tr.ToCSR()
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	scaled.MulVec(b, want)

	x1 := make([]float64, n)
	plain, err := CG(scaled, x1, b, Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	jac, err := PCG(scaled, x2, b, NewJacobi(scaled), Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !jac.Converged {
		t.Fatal("solvers did not converge")
	}
	if jac.Iterations >= plain.Iterations {
		t.Errorf("Jacobi-PCG (%d iters) not faster than CG (%d iters)",
			jac.Iterations, plain.Iterations)
	}
}

func TestAMGPCGFastest(t *testing.T) {
	a, _, b := randomSystem(32, 32, 3)
	n := len(b)
	h, err := amg.Build(a, amg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	resAMG, err := PCG(a, x, b, h, Options{Tol: 1e-10, MaxIter: 200, Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	resCG, err := CG(a, x2, b, Options{Tol: 1e-10, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !resAMG.Converged {
		t.Fatalf("AMG-PCG did not converge (rel %v)", resAMG.Residual)
	}
	if resAMG.Iterations >= resCG.Iterations {
		t.Errorf("AMG-PCG (%d) should beat CG (%d)", resAMG.Iterations, resCG.Iterations)
	}
	if resAMG.Iterations > 30 {
		t.Errorf("AMG-PCG took %d iterations; expected mesh-independent fast convergence", resAMG.Iterations)
	}
}

func TestRoughSolveStopsAtBudget(t *testing.T) {
	a, _, b := randomSystem(24, 24, 4)
	h, err := amg.Build(a, amg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5} {
		x := make([]float64, len(b))
		res, err := PCG(a, x, b, h, RoughOptions(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != k {
			t.Errorf("budget %d: ran %d iterations", k, res.Iterations)
		}
	}
}

func TestResidualMonotoneWithIterations(t *testing.T) {
	// Property: more rough iterations never yield a (much) worse
	// residual — the core premise of the fusion trade-off (Fig 7).
	a, _, b := randomSystem(24, 24, 5)
	h, err := amg.Build(a, amg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 1; k <= 10; k++ {
		x := make([]float64, len(b))
		res, err := PCG(a, x, b, h, RoughOptions(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Residual > prev*1.01 {
			t.Errorf("residual increased with budget %d: %v -> %v", k, prev, res.Residual)
		}
		prev = res.Residual
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a := laplacian2D(8, 8)
	x := make([]float64, a.Rows())
	for i := range x {
		x[i] = 9
	}
	res, err := CG(a, x, make([]float64, a.Rows()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS must give zero solution")
		}
	}
}

func TestPCGWarmStart(t *testing.T) {
	a, want, b := randomSystem(16, 16, 6)
	// Starting at the exact solution should converge in zero iterations.
	x := append([]float64(nil), want...)
	res, err := CG(a, x, b, Options{Tol: 1e-8, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || !res.Converged {
		t.Errorf("warm start: %d iterations, converged=%v", res.Iterations, res.Converged)
	}
}

func TestPCGDimensionMismatch(t *testing.T) {
	a := laplacian2D(4, 4)
	if _, err := CG(a, make([]float64, 3), make([]float64, 16), DefaultOptions()); err == nil {
		t.Error("expected dimension error")
	}
}

func TestPCGIndefiniteDetected(t *testing.T) {
	tr := sparse.NewTriplet(2, 2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -1)
	a := tr.ToCSR()
	x := make([]float64, 2)
	b := []float64{0, 1} // immediately probes the negative direction
	_, err := CG(a, x, b, Options{Tol: 1e-12, MaxIter: 10})
	if err != ErrIndefinite {
		t.Errorf("err = %v, want ErrIndefinite", err)
	}
}

func TestRelResidual(t *testing.T) {
	a := laplacian2D(4, 4)
	x := make([]float64, 16)
	b := make([]float64, 16)
	b[0] = 2
	if r := RelResidual(a, x, b); math.Abs(r-1) > 1e-14 {
		t.Errorf("zero guess residual = %v, want 1", r)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 5, 2}); d != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", d)
	}
}

func TestFlexibleMatchesStandardForLinearPreconditioner(t *testing.T) {
	// With a fixed (linear) preconditioner, flexible and standard PCG
	// should follow nearly identical trajectories.
	err := quick.Check(func(seed int64) bool {
		a, _, b := randomSystem(8, 8, seed)
		m := NewJacobi(a)
		x1 := make([]float64, len(b))
		x2 := make([]float64, len(b))
		r1, err1 := PCG(a, x1, b, m, Options{Tol: 1e-9, MaxIter: 500, Flexible: false})
		r2, err2 := PCG(a, x2, b, m, Options{Tol: 1e-9, MaxIter: 500, Flexible: true})
		if err1 != nil || err2 != nil || !r1.Converged || !r2.Converged {
			return false
		}
		// Same solutions and iteration counts within slack.
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x1[i])) {
				return false
			}
		}
		diff := r1.Iterations - r2.Iterations
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Error(err)
	}
}

func TestSSORPreconditionerAcceleratesCG(t *testing.T) {
	a, _, b := randomSystem(16, 16, 8)
	x1 := make([]float64, len(b))
	plain, err := CG(a, x1, b, Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, len(b))
	ss, err := PCG(a, x2, b, NewSSOR(a, 2), Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !ss.Converged {
		t.Fatal("solvers did not converge")
	}
	if ss.Iterations >= plain.Iterations {
		t.Errorf("SSOR-PCG (%d) should beat plain CG (%d)", ss.Iterations, plain.Iterations)
	}
	// Sweep clamp: 0 sweeps coerces to 1 and still works.
	p := NewSSOR(a, 0)
	if p.Sweeps != 1 {
		t.Errorf("Sweeps = %d, want clamped 1", p.Sweeps)
	}
	z := make([]float64, len(b))
	p.Apply(z, b)
	nonzero := false
	for _, v := range z {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("SSOR Apply produced a zero vector")
	}
}
