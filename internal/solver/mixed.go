// Mixed-precision solve: a float64 iterative-refinement outer loop
// whose corrections come from inner PCG solves preconditioned by a
// float32 AMG V-cycle (amg.Hierarchy32). The outer loop recomputes the
// true residual in float64 each round, so the fixed point it converges
// to is the float64 solution — the float32 arithmetic only shapes how
// fast each correction is, never what the answer is. The harness test
// pinning this is the Cholesky golden oracle (golden_test.go).

package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"irfusion/internal/obs"
	"irfusion/internal/parallel"
	"irfusion/internal/sparse"
)

// ErrMPStagnation is returned when the float64 refinement loop stops
// making progress — the per-round residual reduction falls above
// mpStagnationFactor, or the outer budget runs out short of tolerance.
// On ill-conditioned systems the float32 V-cycle loses too much of the
// correction to rounding for refinement to converge; the degradation
// ladder in internal/core treats this as structural and falls straight
// to the full-precision AMG rung.
var ErrMPStagnation = errors.New("solver: mixed-precision refinement stagnated")

const (
	// mpInnerTol is the relative residual reduction each inner PCG
	// correction targets. Near the float32 rounding floor there is no
	// point asking the inner solve for more.
	mpInnerTol = 1e-4
	// mpInnerIters caps one inner correction solve.
	mpInnerIters = 100
	// mpMaxOuter caps the refinement rounds. Each round reduces the
	// residual by roughly mpInnerTol, so a healthy solve reaches 1e-10
	// in three or four rounds; needing more than mpMaxOuter means the
	// float32 preconditioner is not pulling its weight.
	mpMaxOuter = 12
	// mpStagnationFactor is the refinement give-up threshold: a round
	// that leaves more than this fraction of the residual standing
	// (reduction factor ≥ 0.9) marks the loop as stagnated.
	mpStagnationFactor = 0.9
)

// MPPCGCtx solves A·x = b with mixed-precision AMG-PCG: float64
// iterative refinement around inner PCG corrections preconditioned by
// m32 (normally an amg.Hierarchy32, the float32 V-cycle). x holds the
// initial guess on entry and the solution on return.
//
// Each round computes the true float64 residual r = b − A·x, solves
// the correction system A·e ≈ r with a few PCG iterations, and updates
// x += e; opts.Tol (on ‖b−Ax‖/‖b‖, float64) decides convergence
// exactly as in PCGCtx, so a converged mixed solve is interchangeable
// with a full-precision one. When refinement stagnates the partial
// Result comes back wrapped in ErrMPStagnation so ladder callers can
// fall back to full precision.
//
// The solve reports one SolveRecord under opts.Label (default
// "mp-pcg") with Precision "mixed": Iterations counts the inner PCG
// iterations summed over all rounds, History holds the outer residual
// trace. Inner solves are recorded nowhere — their histories are
// diagnostics of the correction equation, not of the system being
// solved.
func MPPCGCtx(ctx context.Context, a *sparse.CSR, x, b []float64, m32 Preconditioner, opts Options) (res Result, err error) {
	op := resolveFormat(a, opts.Format)
	if rec := obs.ActiveOr(ctx); rec != nil {
		label := opts.Label
		if label == "" {
			label = "mp-pcg"
		}
		start := time.Now()
		defer func() {
			rec.RecordSolve(obs.SolveRecord{
				Label:      label,
				Iterations: res.Iterations,
				Residual:   res.Residual,
				Converged:  res.Converged,
				Seconds:    time.Since(start).Seconds(),
				History:    res.History,
				Format:     op.Format(),
				Precision:  obs.PrecisionMixed,
			})
		}()
	}
	n := a.Rows()
	if len(x) != n || len(b) != n {
		return Result{}, errors.New("solver: dimension mismatch")
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}

	bn := sparse.Norm2(b)
	if bn == 0 { //irfusion:exact a zero right-hand side has the exact solution x = 0; any nonzero norm must run the solve
		sparse.Zero(x)
		return Result{Converged: true}, nil
	}

	r := make([]float64, n)
	e := make([]float64, n)
	pool := parallel.Default()
	residual := func() float64 {
		op.MulVec(r, x)
		pool.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r[i] = b[i] - r[i]
			}
		})
		return sparse.Norm2(r) / bn
	}

	// Inner solve records would bury the manifest under one entry per
	// refinement round; bind a throwaway recorder so they vanish while
	// fault injection and cancellation still flow through ctx.
	ictx := obs.WithRecorder(ctx, obs.NewRecorder())
	iopts := Options{
		Tol:      mpInnerTol,
		MaxIter:  mpInnerIters,
		Flexible: true,
		Format:   opts.Format,
		Label:    opts.Label,
	}

	rel := residual()
	if opts.Record {
		res.History = append(res.History, rel)
	}
	res.Residual = rel
	if rel == 0 || rel < opts.Tol { //irfusion:exact an exactly zero residual means the guess already solves the system
		res.Converged = true
		return res, nil
	}
	for outer := 0; outer < mpMaxOuter; outer++ {
		if cerr := ctx.Err(); cerr != nil {
			return res, fmt.Errorf("%w after %d refinement rounds: %w", ErrCancelled, outer, cerr)
		}
		// Correction solve A·e ≈ r from a zero guess, preconditioned
		// by the float32 V-cycle.
		sparse.Zero(e)
		ires, ierr := PCGCtx(ictx, a, e, r, m32, iopts)
		res.Iterations += ires.Iterations
		if ierr != nil {
			if errors.Is(ierr, ErrCancelled) || errors.Is(ierr, ErrBreakdown) {
				return res, ierr
			}
			// Indefiniteness here is float32 rounding destroying the
			// preconditioner's positive definiteness — a stagnation of
			// the mixed path, not of the system.
			return res, fmt.Errorf("%w: correction solve failed: %w", ErrMPStagnation, ierr)
		}
		sparse.Axpy(1, e, x)

		prev := rel
		rel = residual()
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			res.Residual = rel
			return res, ErrBreakdown
		}
		if opts.Record {
			res.History = append(res.History, rel)
		}
		res.Residual = rel
		// Checkpoint once per completed refinement round: rounds are the
		// unit of progress here (each spans ~mpInnerIters inner PCG
		// iterations), so the iteration-interval knob just gates whether
		// checkpointing is on.
		if opts.CheckpointSink != nil && opts.CheckpointEvery > 0 {
			opts.CheckpointSink.SaveCheckpoint(snapshot(x, res.Iterations, rel, res.History, opts, obs.PrecisionMixed))
		}
		if rel == 0 || rel < opts.Tol { //irfusion:exact an exactly zero residual is solved; the tolerance handles everything else
			res.Converged = true
			return res, nil
		}
		if rel >= prev*mpStagnationFactor {
			return res, fmt.Errorf("%w: round %d reduced the residual only %.3g → %.3g",
				ErrMPStagnation, outer+1, prev, rel)
		}
	}
	return res, fmt.Errorf("%w: residual %.3g after %d rounds (tol %.3g)",
		ErrMPStagnation, rel, mpMaxOuter, opts.Tol)
}
