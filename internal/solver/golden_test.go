package solver_test

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"irfusion/internal/amg"
	"irfusion/internal/circuit"
	"irfusion/internal/pgen"
	"irfusion/internal/solver"
	"irfusion/internal/sparse"
)

var update = flag.Bool("update", false, "rewrite the golden solution file from the Cholesky oracle")

// oracleCase pins the design the golden-oracle tests solve. Changing
// it invalidates testdata/golden_fake12_seed1.json (regenerate with
// go test ./internal/solver -run TestGoldenSolutionFile -update).
const (
	oracleSize = 12
	oracleSeed = 1
)

const goldenFile = "testdata/golden_fake12_seed1.json"

// oracleSystem assembles the pinned pgen design into its conductance
// system.
func oracleSystem(t *testing.T) *circuit.System {
	t.Helper()
	d, err := pgen.Generate(pgen.DefaultConfig("oracle", pgen.Fake, oracleSize, oracleSize, oracleSeed))
	if err != nil {
		t.Fatalf("pgen: %v", err)
	}
	nw, err := circuit.FromNetlist(d.Netlist)
	if err != nil {
		t.Fatalf("circuit: %v", err)
	}
	sys, err := nw.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return sys
}

// choleskySolve factors G directly and solves for the exact node
// voltages — the oracle the iterative solvers are measured against.
func choleskySolve(t *testing.T, sys *circuit.System) []float64 {
	t.Helper()
	chol, err := sparse.NewCholesky(sys.G)
	if err != nil {
		t.Fatalf("cholesky: %v", err)
	}
	x := make([]float64, sys.G.Rows())
	chol.Solve(x, sys.I)
	return x
}

func relErr(x, oracle []float64) float64 {
	var dn, on float64
	for i := range x {
		d := x[i] - oracle[i]
		dn += d * d
		on += oracle[i] * oracle[i]
	}
	return math.Sqrt(dn) / math.Sqrt(on)
}

// TestPCGMatchesCholeskyOracle checks both production iterative
// configurations — SSOR-PCG and AMG-PCG — against a direct sparse
// Cholesky factorization of the same system: a fully converged
// iterative solve must agree with the exact solution to 1e-8 relative
// error.
func TestPCGMatchesCholeskyOracle(t *testing.T) {
	sys := oracleSystem(t)
	oracle := choleskySolve(t, sys)

	t.Run("ssor-pcg", func(t *testing.T) {
		x := make([]float64, sys.G.Rows())
		res, err := solver.PCG(sys.G, x, sys.I, solver.NewSSOR(sys.G, 2), solver.DefaultOptions())
		if err != nil {
			t.Fatalf("PCG: %v", err)
		}
		if !res.Converged {
			t.Fatalf("PCG did not converge: %d iterations, residual %g", res.Iterations, res.Residual)
		}
		if e := relErr(x, oracle); e > 1e-8 {
			t.Errorf("SSOR-PCG vs Cholesky relative error %g, want <= 1e-8", e)
		}
	})

	t.Run("amg-pcg", func(t *testing.T) {
		h, err := amg.Build(sys.G, amg.DefaultOptions())
		if err != nil {
			t.Fatalf("amg: %v", err)
		}
		x := make([]float64, sys.G.Rows())
		res, err := solver.PCG(sys.G, x, sys.I, h, solver.DefaultOptions())
		if err != nil {
			t.Fatalf("PCG: %v", err)
		}
		if !res.Converged {
			t.Fatalf("AMG-PCG did not converge: %d iterations, residual %g", res.Iterations, res.Residual)
		}
		if e := relErr(x, oracle); e > 1e-8 {
			t.Errorf("AMG-PCG vs Cholesky relative error %g, want <= 1e-8", e)
		}
	})

	// The mixed-precision row: float64 iterative refinement around a
	// float32 V-cycle must land on the SAME fixed point as the direct
	// factorization — the float32 arithmetic may only affect speed,
	// never the answer.
	t.Run("mp-amg-pcg", func(t *testing.T) {
		h, err := amg.Build(sys.G, amg.DefaultOptions())
		if err != nil {
			t.Fatalf("amg: %v", err)
		}
		x := make([]float64, sys.G.Rows())
		res, err := solver.MPPCGCtx(context.Background(), sys.G, x, sys.I, amg.NewHierarchy32(h), solver.DefaultOptions())
		if err != nil {
			t.Fatalf("MPPCG: %v", err)
		}
		if !res.Converged {
			t.Fatalf("MP-AMG-PCG did not converge: %d iterations, residual %g", res.Iterations, res.Residual)
		}
		if e := relErr(x, oracle); e > 1e-8 {
			t.Errorf("MP-AMG-PCG vs Cholesky relative error %g, want <= 1e-8", e)
		}
	})

	// Forcing the SELL-C-σ format must not move the answer either: the
	// formats are bitwise-identical by contract, so the iterate
	// sequence — and therefore the converged solution — is the same.
	t.Run("amg-pcg-sell", func(t *testing.T) {
		h, err := amg.Build(sys.G, amg.DefaultOptions())
		if err != nil {
			t.Fatalf("amg: %v", err)
		}
		want := make([]float64, sys.G.Rows())
		base := solver.DefaultOptions()
		base.Format = sparse.FormatCSR
		if _, err := solver.PCG(sys.G, want, sys.I, h.Clone(), base); err != nil {
			t.Fatalf("CSR PCG: %v", err)
		}
		x := make([]float64, sys.G.Rows())
		forced := solver.DefaultOptions()
		forced.Format = sparse.FormatSELL
		res, err := solver.PCG(sys.G, x, sys.I, h.Clone(), forced)
		if err != nil {
			t.Fatalf("SELL PCG: %v", err)
		}
		if !res.Converged {
			t.Fatalf("SELL-format PCG did not converge: %d iterations, residual %g", res.Iterations, res.Residual)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
				t.Fatalf("SELL-format solution differs at node %d: %x vs %x", i, x[i], want[i])
			}
		}
		if e := relErr(x, oracle); e > 1e-8 {
			t.Errorf("SELL-format AMG-PCG vs Cholesky relative error %g, want <= 1e-8", e)
		}
	})
}

// goldenSolution is the committed per-node oracle solution.
type goldenSolution struct {
	Design string    `json:"design"`
	Size   int       `json:"size"`
	Seed   int64     `json:"seed"`
	Nodes  int       `json:"nodes"`
	X      []float64 `json:"x"`
}

// TestGoldenSolutionFile regression-tests the whole numerical front
// end — generator, assembly, node ordering, factorization — against a
// committed per-node solution. Any drift beyond 1e-10 per node means
// the numerics changed in a way the next PR author must sign off on
// by re-running with -update.
func TestGoldenSolutionFile(t *testing.T) {
	sys := oracleSystem(t)
	oracle := choleskySolve(t, sys)

	if *update {
		g := goldenSolution{
			Design: "fake",
			Size:   oracleSize,
			Seed:   oracleSeed,
			Nodes:  len(oracle),
			X:      oracle,
		}
		b, err := json.MarshalIndent(g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d nodes)", goldenFile, len(oracle))
		return
	}

	b, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var g goldenSolution
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if g.Nodes != len(oracle) || len(g.X) != len(oracle) {
		t.Fatalf("golden has %d nodes (file says %d), oracle has %d", len(g.X), g.Nodes, len(oracle))
	}
	worst := 0.0
	for i := range oracle {
		if d := math.Abs(oracle[i] - g.X[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-10 {
		t.Errorf("oracle drifted from committed golden: max per-node diff %g, want <= 1e-10", worst)
	}
}
