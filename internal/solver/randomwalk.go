package solver

import (
	"errors"
	"math/rand"

	"irfusion/internal/sparse"
)

// RandomWalk is the Monte-Carlo power-grid solver of Qian, Nassif and
// Sapatnekar ("Power grid analysis using random walks", TCAD 2005),
// included as the stochastic baseline of the solver family. For the
// IR-drop system G·d = I (diagonally dominant M-matrix with the pads
// eliminated at drop 0), the drop at node i is the expected payoff of
// a random walk that, at each node j, either
//
//   - terminates ("reaches home") with probability g_pad(j)/G_jj —
//     the conductance from j to eliminated pad nodes — collecting 0, or
//   - steps to neighbor k with probability g_jk/G_jj,
//
// accumulating the motel cost I_j/G_jj at every visit of node j.
type RandomWalk struct {
	a      *sparse.CSR
	b      []float64
	motel  []float64   // I_j / G_jj
	stayP  []float64   // termination probability at j
	nbr    [][]int32   // neighbor node ids
	cumP   [][]float64 // cumulative transition probabilities (after termination slot)
	maxLen int
}

// ErrNotWalkable indicates the matrix is not strictly diagonally
// dominant anywhere (no termination states), so walks cannot end.
var ErrNotWalkable = errors.New("solver: random walk needs at least one strictly dominant row")

// NewRandomWalk prepares the walk tables for the SPD system a·d = b.
func NewRandomWalk(a *sparse.CSR, b []float64) (*RandomWalk, error) {
	n := a.Rows()
	rw := &RandomWalk{
		a: a, b: b,
		motel:  make([]float64, n),
		stayP:  make([]float64, n),
		nbr:    make([][]int32, n),
		cumP:   make([][]float64, n),
		maxLen: 100 * n,
	}
	anyTerm := false
	for i := 0; i < n; i++ {
		diag := 0.0
		var nbr []int32
		var w []float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColInd[p]
			v := a.Val[p]
			if j == i {
				diag = v
				continue
			}
			if v > 0 {
				return nil, errors.New("solver: random walk needs an M-matrix (non-positive off-diagonals)")
			}
			nbr = append(nbr, int32(j))
			w = append(w, -v)
		}
		if diag <= 0 {
			return nil, errors.New("solver: random walk needs a positive diagonal")
		}
		rw.motel[i] = b[i] / diag
		term := diag
		for _, x := range w {
			term -= x
		}
		if term < 0 {
			term = 0
		}
		rw.stayP[i] = term / diag
		if rw.stayP[i] > 1e-12 {
			anyTerm = true
		}
		cum := make([]float64, len(w))
		acc := rw.stayP[i]
		for k, x := range w {
			acc += x / diag
			cum[k] = acc
		}
		rw.nbr[i] = nbr
		rw.cumP[i] = cum
	}
	if !anyTerm {
		return nil, ErrNotWalkable
	}
	return rw, nil
}

// Node estimates d_i with walks Monte-Carlo runs. This is the
// headline capability of random-walk solvers: a single node's drop
// without solving the whole system.
func (rw *RandomWalk) Node(i int, walks int, rng *rand.Rand) float64 {
	if walks < 1 {
		walks = 1
	}
	total := 0.0
	for w := 0; w < walks; w++ {
		total += rw.walkFrom(i, rng)
	}
	return total / float64(walks)
}

// Solve estimates the whole vector with walks runs per node. It is
// O(n·walks·len) and intended for cross-checking and small systems.
func (rw *RandomWalk) Solve(x []float64, walks int, rng *rand.Rand) {
	for i := range x {
		x[i] = rw.Node(i, walks, rng)
	}
}

// walkFrom runs one walk and returns its accumulated payoff.
func (rw *RandomWalk) walkFrom(start int, rng *rand.Rand) float64 {
	payoff := 0.0
	cur := start
	for step := 0; step < rw.maxLen; step++ {
		payoff += rw.motel[cur]
		u := rng.Float64()
		if u < rw.stayP[cur] {
			return payoff // reached a pad-adjacent termination
		}
		cum := rw.cumP[cur]
		// Linear scan: node degrees in power grids are tiny (≤ 6).
		next := len(cum) - 1
		for k, c := range cum {
			if u < c {
				next = k
				break
			}
		}
		cur = int(rw.nbr[cur][next])
	}
	return payoff // truncated; bias vanishes as maxLen grows
}
