// Package solver provides the Krylov solvers of the numerical stage:
// conjugate gradients (CG), preconditioned CG, and flexible PCG for
// nonlinear preconditioners such as the AMG K-cycle. It exposes the
// single knob the IR-Fusion framework relies on — the iteration budget
// — so callers can request a deliberately rough solution.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"irfusion/internal/faults"
	"irfusion/internal/obs"
	"irfusion/internal/parallel"
	"irfusion/internal/sparse"
)

// Preconditioner applies z = M⁻¹·r. Implementations must treat z as
// output-only. The AMG hierarchy (amg.Hierarchy) implements this.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the trivial preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
//
//irfusion:hotpath
func (Identity) Apply(z, r []float64) { copy(z, r) }

// cForSerial accounts the serial fast paths of the preconditioner
// kernels under the pool's own elementwise-serial counter, keeping
// pool-utilization numbers honest (same idiom as package sparse).
var cForSerial = obs.GlobalCounter("parallel.for.serial")

// Jacobi is diagonal scaling, the cheapest nontrivial preconditioner
// and a classic baseline against AMG.
type Jacobi struct {
	InvDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
func NewJacobi(a *sparse.CSR) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 { //irfusion:exact an absent diagonal reads as exactly zero; its inverse stays zero so the row is skipped
			inv[i] = 1 / v
		}
	}
	return &Jacobi{InvDiag: inv}
}

// Apply computes z = D⁻¹·r.
//
//irfusion:hotpath
func (j *Jacobi) Apply(z, r []float64) {
	n := len(r)
	if n == 0 {
		return
	}
	pool := parallel.Default()
	if pool.SerialFor(n) {
		cForSerial.Inc()
		jacobiApplyRange(z, r, j.InvDiag, 0, n)
		return
	}
	pool.For(n, func(lo, hi int) {
		jacobiApplyRange(z, r, j.InvDiag, lo, hi)
	})
}

// jacobiApplyRange is the serial z = D⁻¹·r leaf over [lo, hi).
//
//irfusion:hotpath
func jacobiApplyRange(z, r, invDiag []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		z[i] = invDiag[i] * r[i]
	}
}

// Options controls a PCG run.
type Options struct {
	// Tol is the relative-residual stopping tolerance ‖r‖/‖b‖.
	Tol float64
	// MaxIter caps the number of iterations. For the rough solves of
	// the fusion pipeline this IS the budget (set Tol to 0 to force
	// exactly MaxIter iterations unless the residual hits zero).
	MaxIter int
	// Flexible selects the Polak-Ribière update of β, required when
	// the preconditioner is nonlinear (the AMG K-cycle is: its
	// truncation test makes M⁻¹ vary between applications).
	Flexible bool
	// Record keeps the relative residual after every iteration.
	Record bool
	// Label names the solve in observability output: when a run
	// recorder is active (obs.Active), PCG reports its iteration
	// count, timing, and residual history under this label. Empty
	// defaults to "pcg".
	Label string
	// Format selects the SpMV storage format the solve multiplies by:
	// sparse.FormatAuto lets sparse.SelectFormat pick per matrix from
	// its row-length variance, sparse.FormatSELL forces SELL-C-σ, and
	// sparse.FormatCSR (or empty, the zero value) forces CSR. The
	// formats produce bitwise-identical products, so this is purely a
	// performance knob; the resolved format is reported in the solve
	// record.
	Format string
	// CheckpointEvery, when positive and CheckpointSink is set, makes
	// the iteration loop snapshot the solve (iterate, iteration count,
	// residual history tail) every CheckpointEvery completed
	// iterations, so a crashed or handed-off solve can resume from the
	// last snapshot instead of iteration 0 (see checkpoint.go).
	CheckpointEvery int
	// CheckpointSink receives the periodic snapshots. Nil disables
	// checkpointing regardless of CheckpointEvery.
	CheckpointSink CheckpointSink
}

// DefaultOptions returns a converged-solve configuration.
func DefaultOptions() Options {
	return Options{Tol: 1e-10, MaxIter: 1000, Flexible: true, Record: true, Format: sparse.FormatAuto}
}

// RoughOptions returns the k-iteration rough-solve configuration used
// by the fusion pipeline.
func RoughOptions(iters int) Options {
	return Options{Tol: 0, MaxIter: iters, Flexible: true, Record: true, Format: sparse.FormatAuto}
}

// resolveFormat maps Options.Format to the operator the solve
// multiplies by. The conversion (if any) is cached on the matrix, so
// repeated solves against one system resolve to the same operator
// without rebuilding it.
func resolveFormat(a *sparse.CSR, format string) sparse.Operator {
	switch format {
	case sparse.FormatSELL:
		return a.SELL()
	case sparse.FormatAuto:
		return a.Operator()
	default:
		return a
	}
}

// Result reports the outcome of a solve.
type Result struct {
	Iterations int
	Residual   float64   // final relative residual ‖b−Ax‖/‖b‖
	History    []float64 // per-iteration relative residuals (if recorded)
	Converged  bool
}

// ErrIndefinite is returned when CG detects a non-SPD operator or
// preconditioner (non-positive curvature or inner product).
var ErrIndefinite = errors.New("solver: operator or preconditioner not positive definite")

// ErrCancelled is returned (wrapped around the context's error, so
// errors.Is matches both) when a context-aware solve is cancelled or
// times out mid-iteration. The accompanying Result is a valid partial
// outcome: iterations completed so far, the last relative residual,
// and the recorded residual history up to the cancellation point.
var ErrCancelled = errors.New("solver: solve cancelled")

// ErrBreakdown is returned when an inner product or the residual norm
// becomes non-finite (overflow or NaN), which a budgeted Tol=0 solve
// can reach when pushed far past machine precision.
var ErrBreakdown = errors.New("solver: numerical breakdown (non-finite value)")

// PCG solves A·x = b with preconditioned conjugate gradients. x holds
// the initial guess on entry and the solution on return.
//
// All vector kernels run on the shared worker pool. Inner products
// use the pool's deterministic blocked reduction, so the residual
// history is bitwise reproducible run-to-run and across parallel
// worker counts; a single-worker pool reproduces the serial seed
// results exactly.
//
// When a run recorder is active (obs.Active), the outcome — iteration
// count, wall time, final residual, and the recorded history — is
// reported as a SolveRecord under opts.Label.
func PCG(a *sparse.CSR, x, b []float64, m Preconditioner, opts Options) (Result, error) {
	return PCGCtx(context.Background(), a, x, b, m, opts)
}

// PCGCtx is PCG with cooperative cancellation: the iteration loop
// checks ctx before every iteration and stops early — returning the
// partial Result wrapped in ErrCancelled — when the context is
// cancelled or its deadline passes. The solve record (including the
// partial residual history) is still reported to the run recorder, so
// a cancelled request's manifest shows how far the solve got.
//
// The recorder is resolved with obs.ActiveOr(ctx): a recorder bound to
// ctx via obs.WithRecorder isolates this solve's records from
// concurrent solves; without one the process-global recorder is used.
func PCGCtx(ctx context.Context, a *sparse.CSR, x, b []float64, m Preconditioner, opts Options) (res Result, err error) {
	op := resolveFormat(a, opts.Format)
	if rec := obs.ActiveOr(ctx); rec != nil {
		label := opts.Label
		if label == "" {
			label = "pcg"
		}
		start := time.Now()
		defer func() {
			rec.RecordSolve(obs.SolveRecord{
				Label:      label,
				Iterations: res.Iterations,
				Residual:   res.Residual,
				Converged:  res.Converged,
				Seconds:    time.Since(start).Seconds(),
				History:    res.History,
				Format:     op.Format(),
				Precision:  obs.PrecisionFull,
			})
		}()
	}
	n := a.Rows()
	if len(x) != n || len(b) != n {
		return Result{}, errors.New("solver: dimension mismatch")
	}
	if m == nil {
		m = Identity{}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = n
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var zPrev, rPrev []float64
	if opts.Flexible {
		zPrev = make([]float64, n)
		rPrev = make([]float64, n)
	}

	bn := sparse.Norm2(b)
	if bn == 0 { //irfusion:exact a zero right-hand side has the exact solution x = 0; any nonzero norm must run the solve
		sparse.Zero(x)
		return Result{Converged: true}, nil
	}

	pool := parallel.Default()
	op.MulVec(r, x)
	pool.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = b[i] - r[i]
		}
	})
	rel := sparse.Norm2(r) / bn
	if opts.Record {
		res.History = append(res.History, rel)
	}
	if rel == 0 || (opts.Tol > 0 && rel < opts.Tol) { //irfusion:exact an exactly zero residual means the guess already solves the system; Tol=0 budget solves must not stop on merely-small residuals
		res.Converged = true
		res.Residual = rel
		return res, nil
	}

	m.Apply(z, r)
	copy(p, z)
	rz := sparse.Dot(r, z)
	if math.IsNaN(rz) || math.IsInf(rz, 0) {
		return res, ErrBreakdown
	}
	if rz <= 0 {
		if rz == 0 { //irfusion:exact exact-zero inner product is sub-machine-precision convergence; negative is indefiniteness — the sign split must be exact
			// r·M⁻¹r underflowed to exact zero: the residual is solved
			// to beyond machine precision. Converged, not indefinite.
			res.Converged = true
			res.Residual = rel
			return res, nil
		}
		return res, ErrIndefinite
	}

	// Fault-injection hook (faults.SitePCG): resolved once, one nil
	// check per iteration when injection is disabled. NaN/Inf faults
	// poison the residual vector so the solver's own non-finite
	// detection path — not a shortcut — produces the ErrBreakdown.
	inj := faults.ActiveOr(ctx)

	for k := 0; k < opts.MaxIter; k++ {
		if cerr := ctx.Err(); cerr != nil {
			res.Residual = rel
			return res, fmt.Errorf("%w after %d iterations: %w", ErrCancelled, res.Iterations, cerr)
		}
		if inj != nil {
			if f := inj.Fire(faults.SitePCG, opts.Label); f != nil {
				switch f.Action {
				case faults.ActBreakdown:
					res.Residual = rel
					return res, fmt.Errorf("%w (injected at iteration %d)", ErrBreakdown, k)
				case faults.ActIndefinite:
					res.Residual = rel
					return res, fmt.Errorf("%w (injected at iteration %d)", ErrIndefinite, k)
				case faults.ActNaN:
					r[0] = math.NaN()
				case faults.ActInf:
					r[0] = math.Inf(1)
				case faults.ActPanic:
					// Die mid-iteration like a real crash would: the
					// restart-recovery tests use this (after= selects the
					// iteration) to kill a solve after checkpoints exist.
					panic(fmt.Sprintf("faults: injected panic at %s iteration %d", faults.SitePCG, k))
				}
			}
		}
		op.MulVec(ap, p)
		pap := sparse.Dot(p, ap)
		if math.IsNaN(pap) || math.IsInf(pap, 0) {
			return res, ErrBreakdown
		}
		if pap <= 0 {
			if pap == 0 { //irfusion:exact exact-zero curvature means no representable progress; negative means indefinite — the sign split must be exact
				// Search-direction curvature underflowed to zero: no
				// further progress is representable. Treat as converged
				// at the current (sub-machine-precision) residual.
				res.Converged = true
				res.Residual = rel
				return res, nil
			}
			return res, ErrIndefinite
		}
		alpha := rz / pap
		if opts.Flexible {
			copy(rPrev, r)
			copy(zPrev, z)
		}
		sparse.Axpy(alpha, p, x)
		sparse.Axpy(-alpha, ap, r)
		res.Iterations = k + 1

		rel = sparse.Norm2(r) / bn
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			res.Residual = rel
			return res, ErrBreakdown
		}
		if opts.Record {
			res.History = append(res.History, rel)
		}
		if opts.CheckpointSink != nil && opts.CheckpointEvery > 0 && res.Iterations%opts.CheckpointEvery == 0 {
			opts.CheckpointSink.SaveCheckpoint(snapshot(x, res.Iterations, rel, res.History, opts, obs.PrecisionFull))
		}
		if rel == 0 || (opts.Tol > 0 && rel < opts.Tol) { //irfusion:exact an exactly zero residual is solved; Tol=0 budget solves must not stop on merely-small residuals
			res.Converged = true
			break
		}

		m.Apply(z, r)
		var rzNew float64
		var beta float64
		if opts.Flexible {
			// Polak-Ribière: β = z·(r − r_prev) / (z_prev·r_prev).
			// Deterministic blocked reduction, same scheme as Dot.
			num := pool.ReduceSum(n, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += z[i] * (r[i] - rPrev[i])
				}
				return s
			})
			rzNew = sparse.Dot(r, z)
			beta = num / rz
			if beta < 0 {
				beta = 0 // restart
			}
		} else {
			rzNew = sparse.Dot(r, z)
			beta = rzNew / rz
		}
		pool.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
		})
		if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			return res, ErrBreakdown
		}
		if rzNew <= 0 {
			if rzNew == 0 { //irfusion:exact exact-zero preconditioned residual is sub-machine-precision convergence; the sign split must be exact
				// Same underflow situation as above: the preconditioned
				// residual vanished at machine scale.
				res.Converged = true
				break
			}
			return res, ErrIndefinite
		}
		rz = rzNew
	}
	res.Residual = rel
	if opts.Tol > 0 && rel < opts.Tol {
		res.Converged = true
	}
	return res, nil
}

// CG solves A·x = b with unpreconditioned conjugate gradients.
func CG(a *sparse.CSR, x, b []float64, opts Options) (Result, error) {
	opts.Flexible = false
	return PCG(a, x, b, Identity{}, opts)
}

// RelResidual returns ‖b − A·x‖ / ‖b‖ (or the absolute residual norm
// when b is zero).
func RelResidual(a *sparse.CSR, x, b []float64) float64 {
	n := a.Rows()
	r := make([]float64, n)
	a.MulVec(r, x)
	parallel.Default().For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = b[i] - r[i]
		}
	})
	bn := sparse.Norm2(b)
	if bn == 0 { //irfusion:exact a zero right-hand side switches to the absolute residual; no tolerance is meaningful here
		return sparse.Norm2(r)
	}
	return sparse.Norm2(r) / bn
}

// MaxAbsDiff returns max_i |a_i − b_i|, a convenience for comparing a
// rough solution against golden.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// SSOR is a symmetric-Gauss-Seidel (SSOR-type) preconditioner: each
// application performs Sweeps symmetric sweeps on A·z = r from a zero
// guess. Its per-iteration progress is deliberately modest — on the
// miniature grids of this reproduction it emulates how AMG-PCG
// advances per iteration on industrial-scale designs, keeping the
// paper's 1-10 iteration trade-off axis meaningful (see DESIGN.md).
type SSOR struct {
	A      *sparse.CSR
	Sweeps int
}

// NewSSOR builds the smoother preconditioner.
func NewSSOR(a *sparse.CSR, sweeps int) *SSOR {
	if sweeps < 1 {
		sweeps = 1
	}
	return &SSOR{A: a, Sweeps: sweeps}
}

// Apply runs the symmetric sweeps.
//
//irfusion:hotpath
func (s *SSOR) Apply(z, r []float64) {
	sparse.Zero(z)
	sparse.SymmetricGaussSeidel(s.A, z, r, s.Sweeps)
}
