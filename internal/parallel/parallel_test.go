package parallel

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerCountClamping(t *testing.T) {
	t.Setenv(envWorkers, "")
	t.Setenv(envMinWork, "")
	auto := New(0)
	defer auto.Close()
	if got, want := auto.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	neg := New(-3)
	defer neg.Close()
	if neg.Workers() != auto.Workers() {
		t.Errorf("New(-3).Workers() = %d, want %d", neg.Workers(), auto.Workers())
	}
	if got := New(1).Workers(); got != 1 {
		t.Errorf("New(1).Workers() = %d, want 1", got)
	}
	// Oversubscription past NumCPU is allowed (needed for scaling
	// tests on small machines) but capped at MaxWorkers.
	over := New(runtime.NumCPU() + 7)
	defer over.Close()
	if got, want := over.Workers(), runtime.NumCPU()+7; got != want {
		t.Errorf("New(NumCPU+7).Workers() = %d, want %d", got, want)
	}
	huge := New(1 << 20)
	defer huge.Close()
	if got := huge.Workers(); got != MaxWorkers {
		t.Errorf("New(1<<20).Workers() = %d, want cap %d", got, MaxWorkers)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	p := New(4).SetMinWork(1)
	defer p.Close()
	const n = 10_000
	visits := make([]int32, n)
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestEnvKnobs(t *testing.T) {
	t.Setenv(envWorkers, "5")
	t.Setenv(envMinWork, "123")
	p := New(0)
	defer p.Close()
	if p.Workers() != 5 {
		t.Errorf("Workers() = %d with %s=5", p.Workers(), envWorkers)
	}
	if p.MinWork() != 123 {
		t.Errorf("MinWork() = %d with %s=123", p.MinWork(), envMinWork)
	}
	t.Setenv(envWorkers, "not-a-number")
	q := New(0)
	defer q.Close()
	if got, want := q.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d with garbage env, want %d", got, want)
	}
}

func TestForSerialFallbackBelowThreshold(t *testing.T) {
	p := New(8).SetMinWork(1000)
	defer p.Close()
	var calls int32
	p.For(999, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 999 {
			t.Errorf("serial fallback got range [%d,%d), want [0,999)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("below-threshold For made %d calls, want 1 serial call", calls)
	}
	// At the threshold the parallel path engages and splits the range.
	calls = 0
	p.For(1000, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
	if calls < 2 {
		t.Errorf("at-threshold For made %d calls, want a parallel split", calls)
	}
}

func TestPoolReuseAcrossCalls(t *testing.T) {
	p := New(4).SetMinWork(1)
	defer p.Close()
	const n = 4096
	x := make([]float64, n)
	for round := 0; round < 50; round++ {
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i]++
			}
		})
	}
	for i, v := range x {
		if v != 50 {
			t.Fatalf("x[%d] = %v after 50 rounds, want 50", i, v)
		}
	}
	// Goroutine count must not grow with use: workers are persistent.
	before := runtime.NumGoroutine()
	for round := 0; round < 100; round++ {
		p.For(n, func(lo, hi int) {})
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d across reused dispatches", before, after)
	}
}

func TestConcurrentCallersShareOnePool(t *testing.T) {
	p := New(4).SetMinWork(1)
	defer p.Close()
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.For(1000, func(lo, hi int) {
				atomic.AddInt64(&total, int64(hi-lo))
			})
		}()
	}
	wg.Wait()
	if total != 8*1000 {
		t.Errorf("concurrent callers covered %d indices, want %d", total, 8*1000)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(4).SetMinWork(1)
	defer p.Close()
	var total int64
	p.For(64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(32, func(l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 64*32 {
		t.Errorf("nested For covered %d, want %d", total, 64*32)
	}
}

func TestDoRunsEachTaskOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const k = 137
	visits := make([]int32, k)
	p.Do(k, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("task %d ran %d times", i, v)
		}
	}
}

func TestReduceSumMatchesSerialWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 3 * ReduceBlock / 2
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := 0.0
	for _, v := range x {
		serial += v
	}
	p := New(4).SetMinWork(1)
	defer p.Close()
	got := p.ReduceSum(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	})
	if math.Abs(got-serial) > 1e-9*math.Max(1, math.Abs(serial)) {
		t.Errorf("ReduceSum = %v, serial = %v", got, serial)
	}
}

// TestReduceSumDeterministicAcrossWorkers is the core reproducibility
// guarantee: the parallel reduction returns identical bits at every
// parallel worker count and across repeated runs, and a single-worker
// pool reproduces the plain serial accumulation exactly.
func TestReduceSumDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5*ReduceBlock + 311
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Exp(10*rng.Float64()-5)
	}
	sum := func(p *Pool) float64 {
		return p.ReduceSum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		})
	}

	ref := math.NaN()
	for _, w := range []int{2, 3, 4, 8} {
		p := New(w).SetMinWork(1)
		for run := 0; run < 5; run++ {
			got := sum(p)
			if math.IsNaN(ref) {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("workers=%d run=%d: ReduceSum = %x, want %x", w, run, got, ref)
			}
		}
		p.Close()
	}

	serial := 0.0
	for _, v := range x {
		serial += v
	}
	p1 := New(1)
	defer p1.Close()
	if got := sum(p1); got != serial {
		t.Errorf("single-worker ReduceSum = %x, want exact serial %x", got, serial)
	}
}

func TestCloseFallsBackToSerial(t *testing.T) {
	p := New(4).SetMinWork(1)
	p.Close()
	var calls int32
	p.For(5000, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
	if calls != 1 {
		t.Errorf("closed pool made %d calls, want 1 serial call", calls)
	}
}

func TestDefaultPoolSwap(t *testing.T) {
	orig := Default()
	if orig == nil {
		t.Fatal("Default() returned nil")
	}
	prev := SetDefaultWorkers(3)
	if prev != orig.Workers() {
		t.Errorf("SetDefaultWorkers returned %d, want previous count %d", prev, orig.Workers())
	}
	if got := Default().Workers(); got != 3 {
		t.Errorf("Default().Workers() = %d after SetDefaultWorkers(3)", got)
	}
	SetDefault(orig)
	if Default() != orig {
		t.Error("SetDefault did not restore the original pool")
	}
}
