// Package parallel provides the shared worker pool behind every
// multi-threaded numerical kernel in this repository: sparse
// matrix-vector products, multigrid smoothers, the PCG reduction
// kernels, and the dense GEMM / im2col loops of the neural stage.
//
// The pool keeps a fixed set of persistent goroutines alive for the
// lifetime of the process, so hot solver loops pay no goroutine
// spawn cost per kernel call. Work is handed out through an atomic
// chunk counter (work stealing between the caller and the pool
// workers), which makes nested parallel calls deadlock-free: the
// calling goroutine always participates and can finish the job alone
// if every worker is busy.
//
// # Sizing and knobs
//
//   - Worker count defaults to runtime.GOMAXPROCS(0) and can be
//     overridden with the IRFUSION_WORKERS environment variable or
//     programmatically with New / SetDefaultWorkers.
//   - Kernels fall back to their exact serial implementation when the
//     problem is smaller than the pool's minimum-work threshold
//     (default DefaultMinWork, overridable with the
//     IRFUSION_PAR_THRESHOLD environment variable or SetMinWork), so
//     tiny grids and coarse multigrid levels never pay dispatch
//     overhead.
//
// # Determinism
//
// Elementwise loops (For) partition work by index and are bitwise
// deterministic at every worker count. Floating-point reductions
// (ReduceSum) use a fixed block size that is independent of the
// worker count, with block partials accumulated in block order, so a
// reduction over n elements returns the same bits at 2, 4, or 8
// workers and across repeated runs. A pool with a single worker (or a
// below-threshold problem) runs the plain serial loop, reproducing
// the pre-parallel seed results bit-for-bit.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"irfusion/internal/obs"
)

// Dispatch counters, permanently enabled (one atomic add per kernel
// dispatch, noise next to any kernel's work). They are the raw data
// behind the worker-pool utilization reported in run manifests and
// the bench_test worker-sweep metrics:
//
//	parallel.for.parallel  For/ForMin kernels dispatched to the pool
//	parallel.for.serial    For/ForMin kernels on the serial fallback
//	parallel.do.parallel   Do/ReduceSum kernels dispatched to the pool
//	parallel.do.serial     Do/ReduceSum kernels on the serial fallback
//	parallel.tasks         helper tasks accepted by pool workers
var (
	cForParallel = obs.GlobalCounter("parallel.for.parallel")
	cForSerial   = obs.GlobalCounter("parallel.for.serial")
	cDoParallel  = obs.GlobalCounter("parallel.do.parallel")
	cDoSerial    = obs.GlobalCounter("parallel.do.serial")
	cTasks       = obs.GlobalCounter("parallel.tasks")
)

const (
	// DefaultMinWork is the default minimum problem size (loop
	// iterations for For, vector elements for ReduceSum) below which
	// kernels run serially.
	DefaultMinWork = 2048
	// ReduceBlock is the fixed block size of deterministic
	// reductions. It depends only on the problem size — never on the
	// worker count — which is what makes ReduceSum reproducible
	// across pool configurations.
	ReduceBlock = 4096
	// MaxWorkers caps the pool size; worker counts are inputs from
	// env vars and options, and a runaway value must not fork-bomb
	// the scheduler. Oversubscription beyond NumCPU is allowed (it is
	// useful for scaling tests on small machines).
	MaxWorkers = 1024

	// chunksPerWorker oversubscribes For chunks relative to workers
	// so an unlucky chunk (e.g. dense rows of a CSR matrix) does not
	// leave the rest of the pool idle.
	chunksPerWorker = 4
)

// envWorkers and envMinWork names of the process-wide knobs.
const (
	envWorkers = "IRFUSION_WORKERS"
	envMinWork = "IRFUSION_PAR_THRESHOLD"
)

// Pool is a fixed-size set of persistent worker goroutines. A Pool of
// one worker executes everything on the calling goroutine. The zero
// value is not usable; construct with New.
type Pool struct {
	workers int
	minWork int
	tasks   chan func()
	closed  atomic.Bool
}

// New returns a pool with the given worker count. workers <= 0
// resolves the count from the IRFUSION_WORKERS environment variable,
// falling back to runtime.GOMAXPROCS(0); the result is clamped to
// [1, MaxWorkers]. The calling goroutine counts as one worker, so New
// spawns workers-1 goroutines.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = envInt(envWorkers, runtime.GOMAXPROCS(0))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	p := &Pool{workers: workers, minWork: envInt(envMinWork, DefaultMinWork)}
	if p.minWork < 1 {
		p.minWork = 1
	}
	if workers > 1 {
		p.tasks = make(chan func())
		for i := 0; i < workers-1; i++ {
			go worker(p.tasks)
		}
	}
	return p
}

func worker(tasks chan func()) {
	for task := range tasks {
		task()
	}
}

// Workers returns the pool's worker count (including the caller).
//
//irfusion:hotpath
func (p *Pool) Workers() int { return p.workers }

// MinWork returns the serial-fallback threshold.
//
//irfusion:hotpath
func (p *Pool) MinWork() int { return p.minWork }

// SerialFor reports whether a For of n iterations would run on the
// calling goroutine. Hot kernels branch on it to run their plain
// serial loop directly — skipping the closure construction a pool
// dispatch needs — which is what keeps their serial steady state
// allocation-free (see the //irfusion:hotpath contract).
//
//irfusion:hotpath
func (p *Pool) SerialFor(n int) bool { return p.serial() || n < p.minWork }

// SerialForMin is SerialFor with an explicit threshold, matching
// ForMin.
//
//irfusion:hotpath
func (p *Pool) SerialForMin(n, minWork int) bool { return p.serial() || n < minWork }

// SetMinWork sets the serial-fallback threshold (clamped to >= 1) and
// returns the pool for chaining. Not safe to call concurrently with
// kernel dispatch; intended for configuration at construction time
// and in tests.
func (p *Pool) SetMinWork(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p.minWork = n
	return p
}

// Close releases the pool's worker goroutines. The pool remains
// usable afterwards but runs everything on the calling goroutine.
// Close must not race with in-flight dispatch.
func (p *Pool) Close() {
	if p.tasks != nil && p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
}

// serial reports whether dispatch must run on the calling goroutine.
//
//irfusion:hotpath
func (p *Pool) serial() bool {
	return p.tasks == nil || p.workers <= 1 || p.closed.Load()
}

// run executes runner on up to helpers pool workers plus the calling
// goroutine and returns when every participant has finished. Helper
// submission is non-blocking: when a worker is busy (nested
// parallelism, concurrent callers) the caller simply absorbs that
// worker's share through the chunk counter, so run can never
// deadlock.
func (p *Pool) run(helpers int, runner func()) {
	var wg sync.WaitGroup
submit:
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		task := func() {
			defer wg.Done()
			runner()
		}
		select {
		case p.tasks <- task:
			cTasks.Inc()
		default:
			wg.Done()
			break submit
		}
	}
	runner()
	wg.Wait()
}

// For runs fn over contiguous sub-ranges covering [0, n), in parallel
// when n is at least the pool threshold. Each index is visited
// exactly once; fn must be safe to call concurrently on disjoint
// ranges. Elementwise updates are bitwise identical at every worker
// count.
//
//irfusion:hotpath-allow closures and chunk bookkeeping allocate only on the parallel dispatch path; kernels use SerialFor to skip it entirely when serial
func (p *Pool) For(n int, fn func(lo, hi int)) {
	p.ForMin(n, p.minWork, fn)
}

// ForMin is For with an explicit serial-fallback threshold, for
// kernels whose per-index cost differs wildly from the vector-op
// default (e.g. GEMM rows, where each index is O(k·n) flops).
//
//irfusion:hotpath-allow closures and chunk bookkeeping allocate only on the parallel dispatch path; kernels use SerialForMin to skip it entirely when serial
func (p *Pool) ForMin(n, minWork int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.serial() || n < minWork {
		cForSerial.Inc()
		fn(0, n)
		return
	}
	cForParallel.Inc()
	chunks := p.workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	var next int64
	runner := func() {
		for {
			c := int(atomic.AddInt64(&next, 1)) - 1
			if c >= chunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	p.run(helpers, runner)
}

// Do runs fn(0) … fn(k-1), in parallel when the pool has workers to
// spare. Unlike For it applies no size threshold: callers use Do when
// they have already partitioned the work into balanced tasks (e.g.
// nnz-balanced CSR row ranges).
//
//irfusion:hotpath-allow closures allocate only on the parallel dispatch path; serial callers hit the plain loop
func (p *Pool) Do(k int, fn func(i int)) {
	if k <= 0 {
		return
	}
	if p.serial() || k == 1 {
		cDoSerial.Inc()
		for i := 0; i < k; i++ {
			fn(i)
		}
		return
	}
	cDoParallel.Inc()
	var next int64
	runner := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= k {
				return
			}
			fn(i)
		}
	}
	helpers := p.workers - 1
	if helpers > k-1 {
		helpers = k - 1
	}
	p.run(helpers, runner)
}

// ReduceSum computes the sum of fn over [0, n) split into fixed-size
// blocks: fn(lo, hi) must return the partial sum of its range.
// Because the block partitioning depends only on n (see ReduceBlock)
// and the block partials are accumulated in block order, the result
// is bitwise reproducible across runs and across every parallel
// worker count. Below the threshold — or on a single-worker pool —
// it degenerates to the plain serial accumulation fn(0, n),
// preserving the seed's serial results bit-for-bit.
//
//irfusion:hotpath-allow the block-partial buffer allocates only on the parallel dispatch path; kernels use SerialFor to skip it entirely when serial
func (p *Pool) ReduceSum(n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if p.serial() || n < p.minWork {
		cDoSerial.Inc()
		return fn(0, n)
	}
	blocks := (n + ReduceBlock - 1) / ReduceBlock
	partial := make([]float64, blocks)
	p.Do(blocks, func(b int) {
		lo := b * ReduceBlock
		hi := lo + ReduceBlock
		if hi > n {
			hi = n
		}
		partial[b] = fn(lo, hi)
	})
	sum := 0.0
	for _, v := range partial {
		sum += v
	}
	return sum
}

// defaultPool holds the process-wide pool used by the numerical
// kernels. It is created lazily on first use so that env knobs set by
// a test harness before any kernel call are honoured.
var defaultPool atomic.Pointer[Pool]

// Default returns the process-wide pool, creating it from the
// environment (IRFUSION_WORKERS, IRFUSION_PAR_THRESHOLD, falling back
// to GOMAXPROCS) on first use.
//
//irfusion:hotpath-allow one-time pool construction on first use; steady state is a single atomic load
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := New(0)
	if !defaultPool.CompareAndSwap(nil, p) {
		p.Close() // lost the race; discard the extra pool
	}
	return defaultPool.Load()
}

// SetDefault replaces the process-wide pool and returns the previous
// one (never nil). The previous pool is left open because concurrent
// kernels may still hold it; callers that know it is idle may Close
// it. Intended for benchmarks and tests that sweep worker counts.
func SetDefault(p *Pool) *Pool {
	if p == nil {
		p = New(0)
	}
	prev := Default()
	defaultPool.Store(p)
	return prev
}

// SetDefaultWorkers replaces the process-wide pool with one of n
// workers (same resolution rules as New) and returns the previous
// pool's worker count, making worker-count sweeps trivial:
//
//	prev := parallel.SetDefaultWorkers(4)
//	defer parallel.SetDefaultWorkers(prev)
func SetDefaultWorkers(n int) int {
	return SetDefault(New(n)).Workers()
}

func envInt(name string, fallback int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return fallback
}
