package nn

// Conv2D applies a 2-D convolution (cross-correlation) with weights
// w[OC, IC, KH, KW], optional bias b[OC] (nil to skip), the given
// stride, and symmetric zero padding. Implemented as im2col + GEMM.
func Conv2D(tp *Tape, x, w, b *Tensor, stride, pad int) *Tensor {
	n, ic, ih, iw := x.Dims4()
	oc, wic, kh, kw := w.Dims4()
	if wic != ic {
		panic("nn: Conv2D channel mismatch")
	}
	if b != nil && (len(b.Shape) != 1 || b.Shape[0] != oc) {
		panic("nn: Conv2D bias must be [OC]")
	}
	if stride < 1 {
		panic("nn: Conv2D stride must be >= 1")
	}
	oh := (ih+2*pad-kh)/stride + 1
	ow := (iw+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic("nn: Conv2D output collapsed to zero size")
	}
	if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
		return conv1x1(tp, x, w, b)
	}

	k := ic * kh * kw
	cols := make([]float64, k*oh*ow) // per-sample column buffer
	inputs := []*Tensor{x, w}
	if b != nil {
		inputs = append(inputs, b)
	}
	out := result(tp, []int{n, oc, oh, ow}, inputs...)

	// Forward per sample to bound the buffer size.
	var colsPerSample [][]float64
	keepCols := out.needsGrad && w.needsGrad
	for ni := 0; ni < n; ni++ {
		im2col(x.Data[ni*ic*ih*iw:(ni+1)*ic*ih*iw], cols, ic, ih, iw, kh, kw, stride, pad, oh, ow)
		gemm(w.Data, cols, out.Data[ni*oc*oh*ow:(ni+1)*oc*oh*ow], oc, k, oh*ow, false)
		if keepCols {
			colsPerSample = append(colsPerSample, append([]float64(nil), cols...))
		}
	}
	if b != nil {
		hw := oh * ow
		for ni := 0; ni < n; ni++ {
			for c := 0; c < oc; c++ {
				base := (ni*oc + c) * hw
				bv := b.Data[c]
				for j := 0; j < hw; j++ {
					out.Data[base+j] += bv
				}
			}
		}
	}

	if out.needsGrad {
		tp.record(func() {
			hw := oh * ow
			if b != nil && b.needsGrad {
				b.ensureGrad()
				for ni := 0; ni < n; ni++ {
					for c := 0; c < oc; c++ {
						base := (ni*oc + c) * hw
						sum := 0.0
						for j := 0; j < hw; j++ {
							sum += out.Grad[base+j]
						}
						b.Grad[c] += sum
					}
				}
			}
			colBuf := make([]float64, k*hw)
			for ni := 0; ni < n; ni++ {
				gradOut := out.Grad[ni*oc*hw : (ni+1)*oc*hw]
				if w.needsGrad {
					w.ensureGrad()
					// dW += dOut · colsᵀ : [oc, hw]·[hw, k]
					gemmTB(gradOut, colsPerSample[ni], w.Grad, oc, hw, k, true)
				}
				if x.needsGrad {
					x.ensureGrad()
					// dCols = Wᵀ · dOut : [k, oc]·[oc, hw]
					gemmTA(w.Data, gradOut, colBuf, k, oc, hw, false)
					col2im(colBuf, x.Grad[ni*ic*ih*iw:(ni+1)*ic*ih*iw], ic, ih, iw, kh, kw, stride, pad, oh, ow)
				}
			}
		})
	}
	return out
}

// im2col unrolls input patches into columns: cols[k, oh*ow] with
// k = ic*kh*kw.
//
//irfusion:hotpath
func im2col(img, cols []float64, ic, ih, iw, kh, kw, stride, pad, oh, ow int) {
	rows := ic * kh * kw
	if rows <= 0 {
		return
	}
	if serialFor(rows) {
		cForSerial.Inc()
		im2colRange(img, cols, ih, iw, kh, kw, stride, pad, oh, ow, 0, rows)
		return
	}
	parallelFor(rows, func(start, end int) {
		im2colRange(img, cols, ih, iw, kh, kw, stride, pad, oh, ow, start, end)
	})
}

// im2colRange unrolls patch rows [start, end) into columns.
//
//irfusion:hotpath
func im2colRange(img, cols []float64, ih, iw, kh, kw, stride, pad, oh, ow, start, end int) {
	for row := start; row < end; row++ {
		c := row / (kh * kw)
		rem := row % (kh * kw)
		dy := rem / kw
		dx := rem % kw
		dst := row * oh * ow
		for oy := 0; oy < oh; oy++ {
			sy := oy*stride + dy - pad
			if sy < 0 || sy >= ih {
				for ox := 0; ox < ow; ox++ {
					cols[dst] = 0
					dst++
				}
				continue
			}
			srcBase := (c*ih + sy) * iw
			for ox := 0; ox < ow; ox++ {
				sx := ox*stride + dx - pad
				if sx < 0 || sx >= iw {
					cols[dst] = 0
				} else {
					cols[dst] = img[srcBase+sx]
				}
				dst++
			}
		}
	}
}

// col2im scatters column gradients back into the image gradient
// (accumulating).
//
//irfusion:hotpath
func col2im(cols, img []float64, ic, ih, iw, kh, kw, stride, pad, oh, ow int) {
	if ic <= 0 {
		return
	}
	// Parallelize over channels: rows of the same channel write to
	// disjoint channel planes only if we group by c.
	if serialFor(ic) {
		cForSerial.Inc()
		col2imRange(cols, img, ih, iw, kh, kw, stride, pad, oh, ow, 0, ic)
		return
	}
	parallelFor(ic, func(cStart, cEnd int) {
		col2imRange(cols, img, ih, iw, kh, kw, stride, pad, oh, ow, cStart, cEnd)
	})
}

// col2imRange scatters the columns of channels [cStart, cEnd) back
// into their image planes.
//
//irfusion:hotpath
func col2imRange(cols, img []float64, ih, iw, kh, kw, stride, pad, oh, ow, cStart, cEnd int) {
	for c := cStart; c < cEnd; c++ {
		for dy := 0; dy < kh; dy++ {
			for dx := 0; dx < kw; dx++ {
				row := (c*kh+dy)*kw + dx
				src := row * oh * ow
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride + dy - pad
					if sy < 0 || sy >= ih {
						src += ow
						continue
					}
					dstBase := (c*ih + sy) * iw
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride + dx - pad
						if sx >= 0 && sx < iw {
							img[dstBase+sx] += cols[src]
						}
						src++
					}
				}
			}
		}
	}
}

// MaxPool2x2 performs 2×2 max pooling with stride 2. Odd trailing
// rows/cols are dropped (floor semantics).
func MaxPool2x2(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		panic("nn: MaxPool2x2 input too small")
	}
	out := result(tp, []int{n, c, oh, ow}, x)
	argmax := make([]int32, out.Size())
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * h * w
			outBase := nc * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i0 := inBase + (2*oy)*w + 2*ox
					best, bi := x.Data[i0], i0
					if v := x.Data[i0+1]; v > best {
						best, bi = v, i0+1
					}
					if v := x.Data[i0+w]; v > best {
						best, bi = v, i0+w
					}
					if v := x.Data[i0+w+1]; v > best {
						best, bi = v, i0+w+1
					}
					out.Data[outBase+oy*ow+ox] = best
					argmax[outBase+oy*ow+ox] = int32(bi)
				}
			}
		}
	})
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for i, g := range out.Grad {
				x.Grad[argmax[i]] += g
			}
		})
	}
	return out
}

// AvgPool2x2 performs 2×2 average pooling with stride 2.
func AvgPool2x2(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		panic("nn: AvgPool2x2 input too small")
	}
	out := result(tp, []int{n, c, oh, ow}, x)
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * h * w
			outBase := nc * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i0 := inBase + (2*oy)*w + 2*ox
					out.Data[outBase+oy*ow+ox] = 0.25 * (x.Data[i0] + x.Data[i0+1] + x.Data[i0+w] + x.Data[i0+w+1])
				}
			}
		}
	})
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				inBase := nc * h * w
				outBase := nc * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						g := 0.25 * out.Grad[outBase+oy*ow+ox]
						i0 := inBase + (2*oy)*w + 2*ox
						x.Grad[i0] += g
						x.Grad[i0+1] += g
						x.Grad[i0+w] += g
						x.Grad[i0+w+1] += g
					}
				}
			}
		})
	}
	return out
}

// Upsample2x doubles spatial resolution by nearest-neighbor
// replication (the decoder upsampling used before concat+conv).
func Upsample2x(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	oh, ow := 2*h, 2*w
	out := result(tp, []int{n, c, oh, ow}, x)
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * h * w
			outBase := nc * oh * ow
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					v := x.Data[inBase+y*w+xx]
					d := outBase + (2*y)*ow + 2*xx
					out.Data[d] = v
					out.Data[d+1] = v
					out.Data[d+ow] = v
					out.Data[d+ow+1] = v
				}
			}
		}
	})
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				inBase := nc * h * w
				outBase := nc * oh * ow
				for y := 0; y < h; y++ {
					for xx := 0; xx < w; xx++ {
						d := outBase + (2*y)*ow + 2*xx
						x.Grad[inBase+y*w+xx] += out.Grad[d] + out.Grad[d+1] + out.Grad[d+ow] + out.Grad[d+ow+1]
					}
				}
			}
		})
	}
	return out
}

// GlobalAvgPool reduces [N,C,H,W] to [N,C,1,1] by spatial averaging.
func GlobalAvgPool(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	out := result(tp, []int{n, c, 1, 1}, x)
	hw := h * w
	inv := 1 / float64(hw)
	for nc := 0; nc < n*c; nc++ {
		sum := 0.0
		base := nc * hw
		for j := 0; j < hw; j++ {
			sum += x.Data[base+j]
		}
		out.Data[nc] = sum * inv
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				g := out.Grad[nc] * inv
				base := nc * hw
				for j := 0; j < hw; j++ {
					x.Grad[base+j] += g
				}
			}
		})
	}
	return out
}

// GlobalMaxPool reduces [N,C,H,W] to [N,C,1,1] by spatial max.
func GlobalMaxPool(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	out := result(tp, []int{n, c, 1, 1}, x)
	hw := h * w
	arg := make([]int, n*c)
	for nc := 0; nc < n*c; nc++ {
		base := nc * hw
		best, bi := x.Data[base], base
		for j := 1; j < hw; j++ {
			if v := x.Data[base+j]; v > best {
				best, bi = v, base+j
			}
		}
		out.Data[nc] = best
		arg[nc] = bi
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				x.Grad[arg[nc]] += out.Grad[nc]
			}
		})
	}
	return out
}

// ChannelMean reduces [N,C,H,W] to [N,1,H,W] averaging over channels
// (spatial-attention input of CBAM).
func ChannelMean(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	out := result(tp, []int{n, 1, h, w}, x)
	hw := h * w
	inv := 1 / float64(c)
	for ni := 0; ni < n; ni++ {
		oBase := ni * hw
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			for j := 0; j < hw; j++ {
				out.Data[oBase+j] += x.Data[base+j]
			}
		}
		for j := 0; j < hw; j++ {
			out.Data[oBase+j] *= inv
		}
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for ni := 0; ni < n; ni++ {
				oBase := ni * hw
				for ci := 0; ci < c; ci++ {
					base := (ni*c + ci) * hw
					for j := 0; j < hw; j++ {
						x.Grad[base+j] += out.Grad[oBase+j] * inv
					}
				}
			}
		})
	}
	return out
}

// ChannelMax reduces [N,C,H,W] to [N,1,H,W] taking the max over
// channels.
func ChannelMax(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	out := result(tp, []int{n, 1, h, w}, x)
	hw := h * w
	arg := make([]int, n*hw)
	for ni := 0; ni < n; ni++ {
		oBase := ni * hw
		for j := 0; j < hw; j++ {
			base := ni * c * hw
			best, bi := x.Data[base+j], base+j
			for ci := 1; ci < c; ci++ {
				idx := (ni*c+ci)*hw + j
				if v := x.Data[idx]; v > best {
					best, bi = v, idx
				}
			}
			out.Data[oBase+j] = best
			arg[oBase+j] = bi
		}
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for i, g := range out.Grad {
				x.Grad[arg[i]] += g
			}
		})
	}
	return out
}

// Linear applies y = x·Wᵀ + b for x[N, In], w[Out, In], b[Out] (nil
// to skip).
func Linear(tp *Tape, x, w, b *Tensor) *Tensor {
	if len(x.Shape) != 2 || len(w.Shape) != 2 {
		panic("nn: Linear expects 2-D input and weights")
	}
	n, in := x.Shape[0], x.Shape[1]
	outDim, win := w.Shape[0], w.Shape[1]
	if win != in {
		panic("nn: Linear dimension mismatch")
	}
	inputs := []*Tensor{x, w}
	if b != nil {
		inputs = append(inputs, b)
	}
	out := result(tp, []int{n, outDim}, inputs...)
	gemmTB(x.Data, w.Data, out.Data, n, in, outDim, false)
	if b != nil {
		for i := 0; i < n; i++ {
			for j := 0; j < outDim; j++ {
				out.Data[i*outDim+j] += b.Data[j]
			}
		}
	}
	if out.needsGrad {
		tp.record(func() {
			if b != nil && b.needsGrad {
				b.ensureGrad()
				for i := 0; i < n; i++ {
					for j := 0; j < outDim; j++ {
						b.Grad[j] += out.Grad[i*outDim+j]
					}
				}
			}
			if w.needsGrad {
				w.ensureGrad()
				// dW += dOutᵀ · x : [outDim, n]·[n, in]
				gemmTA(out.Grad, x.Data, w.Grad, outDim, n, in, true)
			}
			if x.needsGrad {
				x.ensureGrad()
				// dX += dOut · W : [n, outDim]·[outDim, in]
				gemm(out.Grad, w.Data, x.Grad, n, outDim, in, true)
			}
		})
	}
	return out
}

// conv1x1 is the pointwise-convolution fast path: a pure GEMM with no
// im2col staging. It matters because Inception blocks and attention
// gates are dominated by 1×1 convolutions.
func conv1x1(tp *Tape, x, w, b *Tensor) *Tensor {
	n, ic, h, wd := x.Dims4()
	oc := w.Shape[0]
	hw := h * wd
	inputs := []*Tensor{x, w}
	if b != nil {
		inputs = append(inputs, b)
	}
	out := result(tp, []int{n, oc, h, wd}, inputs...)
	wmat := w.Data // [oc, ic] row-major (kh=kw=1)
	for ni := 0; ni < n; ni++ {
		gemm(wmat, x.Data[ni*ic*hw:(ni+1)*ic*hw], out.Data[ni*oc*hw:(ni+1)*oc*hw], oc, ic, hw, false)
	}
	if b != nil {
		for ni := 0; ni < n; ni++ {
			for c := 0; c < oc; c++ {
				base := (ni*oc + c) * hw
				bv := b.Data[c]
				for j := 0; j < hw; j++ {
					out.Data[base+j] += bv
				}
			}
		}
	}
	if out.needsGrad {
		tp.record(func() {
			if b != nil && b.needsGrad {
				b.ensureGrad()
				for ni := 0; ni < n; ni++ {
					for c := 0; c < oc; c++ {
						base := (ni*oc + c) * hw
						sum := 0.0
						for j := 0; j < hw; j++ {
							sum += out.Grad[base+j]
						}
						b.Grad[c] += sum
					}
				}
			}
			for ni := 0; ni < n; ni++ {
				gradOut := out.Grad[ni*oc*hw : (ni+1)*oc*hw]
				if w.needsGrad {
					w.ensureGrad()
					// dW += dOut · Xᵀ : [oc, hw]·[hw, ic]
					gemmTB(gradOut, x.Data[ni*ic*hw:(ni+1)*ic*hw], w.Grad, oc, hw, ic, true)
				}
				if x.needsGrad {
					x.ensureGrad()
					// dX += Wᵀ · dOut : [ic, oc]·[oc, hw]
					gemmTA(wmat, gradOut, x.Grad[ni*ic*hw:(ni+1)*ic*hw], ic, oc, hw, true)
				}
			}
		})
	}
	return out
}
