package nn

import (
	"math"
	"testing"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR{Base: 0.1}
	for _, e := range []int{0, 5, 99} {
		if s.Rate(e, 100) != 0.1 {
			t.Fatal("constant schedule must not vary")
		}
	}
}

func TestCosineLREndpoints(t *testing.T) {
	s := CosineLR{Base: 1, Min: 0.01}
	if got := s.Rate(0, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("start = %v, want 1", got)
	}
	if got := s.Rate(9, 10); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("end = %v, want 0.01", got)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for e := 0; e < 10; e++ {
		cur := s.Rate(e, 10)
		if cur > prev {
			t.Fatalf("cosine not monotone at %d: %v -> %v", e, prev, cur)
		}
		prev = cur
	}
	// Degenerate single-epoch run.
	if s.Rate(0, 1) != 1 {
		t.Error("single-epoch run should use base")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.1, Every: 3}
	cases := map[int]float64{0: 1, 2: 1, 3: 0.1, 5: 0.1, 6: 0.01}
	for e, want := range cases {
		if got := s.Rate(e, 100); math.Abs(got-want) > 1e-12 {
			t.Errorf("epoch %d: %v, want %v", e, got, want)
		}
	}
	bad := StepLR{Base: 1, Gamma: 0.1, Every: 0}
	if bad.Rate(7, 10) != 1 {
		t.Error("Every=0 should behave as constant")
	}
}

func TestWarmupCosineLR(t *testing.T) {
	s := WarmupCosineLR{Base: 1, Min: 0, Warmup: 4}
	if got := s.Rate(0, 20); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("first warmup step %v, want 0.25", got)
	}
	if got := s.Rate(3, 20); math.Abs(got-1) > 1e-12 {
		t.Errorf("last warmup step %v, want 1", got)
	}
	if got := s.Rate(4, 20); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-warmup start %v, want base", got)
	}
	if got := s.Rate(19, 20); math.Abs(got) > 1e-12 {
		t.Errorf("end %v, want Min=0", got)
	}
}
