package nn

import (
	"math"
	"math/rand"
)

// Conv2d is a trainable convolution layer.
type Conv2d struct {
	W, B        *Tensor // W[OC,IC,KH,KW], B[OC] (may be nil)
	Stride, Pad int
}

// NewConv2d creates a He-initialized convolution with "same" padding
// for odd kernels when pad is kh/2.
func NewConv2d(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2d {
	w := NewParam(outC, inC, k, k)
	w.HeInit(rng, inC*k*k)
	b := NewParam(outC)
	return &Conv2d{W: w, B: b, Stride: stride, Pad: pad}
}

// NewConv2dRect creates a convolution with a rectangular kernel
// (kh×kw), used by Inception's 1×7 / 7×1 factorized branches.
func NewConv2dRect(rng *rand.Rand, inC, outC, kh, kw, stride, padH, padW int) *Conv2dRect {
	w := NewParam(outC, inC, kh, kw)
	w.HeInit(rng, inC*kh*kw)
	b := NewParam(outC)
	return &Conv2dRect{W: w, B: b, Stride: stride, PadH: padH, PadW: padW}
}

// Forward applies the convolution.
func (l *Conv2d) Forward(tp *Tape, x *Tensor) *Tensor {
	return Conv2D(tp, x, l.W, l.B, l.Stride, l.Pad)
}

// Params returns the trainable tensors.
func (l *Conv2d) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Conv2dRect is a convolution with independent vertical/horizontal
// padding, enabling rectangular kernels.
type Conv2dRect struct {
	W, B       *Tensor
	Stride     int
	PadH, PadW int
}

// Forward applies the rectangular convolution.
func (l *Conv2dRect) Forward(tp *Tape, x *Tensor) *Tensor {
	return conv2DRect(tp, x, l.W, l.B, l.Stride, l.PadH, l.PadW)
}

// Params returns the trainable tensors.
func (l *Conv2dRect) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// conv2DRect pads asymmetrically by materializing the padded input;
// kernels are small and this path is used sparingly (Inception B/C).
func conv2DRect(tp *Tape, x, w, b *Tensor, stride, padH, padW int) *Tensor {
	if padH == padW {
		return Conv2D(tp, x, w, b, stride, padH)
	}
	padded := Pad2D(tp, x, padH, padW)
	return Conv2D(tp, padded, w, b, stride, 0)
}

// Pad2D zero-pads the spatial dims by (padH, padW) on each side.
func Pad2D(tp *Tape, x *Tensor, padH, padW int) *Tensor {
	n, c, h, w := x.Dims4()
	oh, ow := h+2*padH, w+2*padW
	out := result(tp, []int{n, c, oh, ow}, x)
	for nc := 0; nc < n*c; nc++ {
		for y := 0; y < h; y++ {
			src := nc*h*w + y*w
			dst := nc*oh*ow + (y+padH)*ow + padW
			copy(out.Data[dst:dst+w], x.Data[src:src+w])
		}
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				for y := 0; y < h; y++ {
					src := nc*h*w + y*w
					dst := nc*oh*ow + (y+padH)*ow + padW
					for i := 0; i < w; i++ {
						x.Grad[src+i] += out.Grad[dst+i]
					}
				}
			}
		})
	}
	return out
}

// BatchNorm2d normalizes per channel over (N, H, W) with learnable
// scale and shift, tracking running statistics for inference.
type BatchNorm2d struct {
	Gamma, Beta      *Tensor
	RunMean, RunVar  []float64
	Momentum, Eps    float64
	Training         bool
	initializedStats bool
}

// NewBatchNorm2d returns a batch-norm layer for c channels.
func NewBatchNorm2d(c int) *BatchNorm2d {
	g := NewParam(c)
	g.Fill(1)
	b := NewParam(c)
	return &BatchNorm2d{
		Gamma: g, Beta: b,
		RunMean: make([]float64, c), RunVar: make([]float64, c),
		Momentum: 0.1, Eps: 1e-5, Training: true,
	}
}

// Params returns the trainable tensors.
func (l *BatchNorm2d) Params() []*Tensor { return []*Tensor{l.Gamma, l.Beta} }

// Forward applies batch normalization. In training mode batch
// statistics are used and running statistics updated; in eval mode the
// running statistics are used.
func (l *BatchNorm2d) Forward(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	if c != len(l.RunMean) {
		panic("nn: BatchNorm2d channel mismatch")
	}
	out := result(tp, x.Shape, x, l.Gamma, l.Beta)
	hw := h * w
	m := float64(n * hw)

	mean := make([]float64, c)
	varc := make([]float64, c)
	if l.Training {
		for ci := 0; ci < c; ci++ {
			sum := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					sum += x.Data[base+j]
				}
			}
			mu := sum / m
			mean[ci] = mu
			vs := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					d := x.Data[base+j] - mu
					vs += d * d
				}
			}
			varc[ci] = vs / m
		}
		mom := l.Momentum
		if !l.initializedStats {
			mom = 1
			l.initializedStats = true
		}
		for ci := 0; ci < c; ci++ {
			l.RunMean[ci] = (1-mom)*l.RunMean[ci] + mom*mean[ci]
			l.RunVar[ci] = (1-mom)*l.RunVar[ci] + mom*varc[ci]
		}
	} else {
		copy(mean, l.RunMean)
		copy(varc, l.RunVar)
	}

	invStd := make([]float64, c)
	for ci := range invStd {
		invStd[ci] = 1 / math.Sqrt(varc[ci]+l.Eps)
	}
	xhat := make([]float64, x.Size())
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * hw
			g, bta := l.Gamma.Data[ci], l.Beta.Data[ci]
			mu, is := mean[ci], invStd[ci]
			for j := 0; j < hw; j++ {
				xh := (x.Data[base+j] - mu) * is
				xhat[base+j] = xh
				out.Data[base+j] = g*xh + bta
			}
		}
	}

	if out.needsGrad {
		training := l.Training
		tp.record(func() {
			if l.Beta.needsGrad {
				l.Beta.ensureGrad()
				for ni := 0; ni < n; ni++ {
					for ci := 0; ci < c; ci++ {
						base := (ni*c + ci) * hw
						sum := 0.0
						for j := 0; j < hw; j++ {
							sum += out.Grad[base+j]
						}
						l.Beta.Grad[ci] += sum
					}
				}
			}
			if l.Gamma.needsGrad {
				l.Gamma.ensureGrad()
				for ni := 0; ni < n; ni++ {
					for ci := 0; ci < c; ci++ {
						base := (ni*c + ci) * hw
						sum := 0.0
						for j := 0; j < hw; j++ {
							sum += out.Grad[base+j] * xhat[base+j]
						}
						l.Gamma.Grad[ci] += sum
					}
				}
			}
			if x.needsGrad {
				x.ensureGrad()
				for ci := 0; ci < c; ci++ {
					g := l.Gamma.Data[ci]
					is := invStd[ci]
					if !training {
						// Running stats are constants: dx = dy·γ·invStd.
						for ni := 0; ni < n; ni++ {
							base := (ni*c + ci) * hw
							for j := 0; j < hw; j++ {
								x.Grad[base+j] += out.Grad[base+j] * g * is
							}
						}
						continue
					}
					// Batch statistics depend on x: full adjoint.
					sumDy, sumDyXhat := 0.0, 0.0
					for ni := 0; ni < n; ni++ {
						base := (ni*c + ci) * hw
						for j := 0; j < hw; j++ {
							dy := out.Grad[base+j]
							sumDy += dy
							sumDyXhat += dy * xhat[base+j]
						}
					}
					for ni := 0; ni < n; ni++ {
						base := (ni*c + ci) * hw
						for j := 0; j < hw; j++ {
							dy := out.Grad[base+j]
							x.Grad[base+j] += g * is / m *
								(m*dy - sumDy - xhat[base+j]*sumDyXhat)
						}
					}
				}
			}
		})
	}
	return out
}

// SetTraining toggles train/eval mode.
func (l *BatchNorm2d) SetTraining(v bool) { l.Training = v }

// StateVectors exposes the non-trainable running statistics for
// checkpointing (order: mean, variance).
func (l *BatchNorm2d) StateVectors() [][]float64 {
	return [][]float64{l.RunMean, l.RunVar}
}
