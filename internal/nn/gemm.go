package nn

import (
	"irfusion/internal/obs"
	"irfusion/internal/parallel"
)

// cGemm counts dense GEMM kernel calls (nn.gemm_calls in manifests):
// the dominant cost driver of the ML stage, cheap to count with one
// atomic add against the O(m·k·n) flops each call performs.
var cGemm = obs.GlobalCounter("nn.gemm_calls")

// parallelFor splits [0, n) across the shared worker pool and runs
// fn(start, end) on each chunk concurrently. The indices here are
// GEMM/im2col rows carrying substantial per-index work, so the serial
// cutoff is far below the pool's vector-element default.
func parallelFor(n int, fn func(start, end int)) {
	parallel.Default().ForMin(n, 64, fn)
}

// gemm computes C = A·B (+C when accumulate) for row-major dense
// matrices: A is m×k, B is k×n, C is m×n. The (i,k,j) loop order keeps
// the inner loop streaming over B and C rows; rows of C are
// parallelized across cores.
func gemm(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	parallelFor(m, func(start, end int) {
		for i := start; i < end; i++ {
			ci := c[i*n : (i+1)*n]
			if !accumulate {
				for j := range ci {
					ci[j] = 0
				}
			}
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// gemmTA computes C = Aᵀ·B (+C when accumulate): A is k×m (so Aᵀ is
// m×k), B is k×n, C is m×n.
func gemmTA(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	parallelFor(m, func(start, end int) {
		for i := start; i < end; i++ {
			ci := c[i*n : (i+1)*n]
			if !accumulate {
				for j := range ci {
					ci[j] = 0
				}
			}
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// gemmTB computes C = A·Bᵀ (+C when accumulate): A is m×k, B is n×k,
// C is m×n.
func gemmTB(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	parallelFor(m, func(start, end int) {
		for i := start; i < end; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				sum := 0.0
				for p := 0; p < k; p++ {
					sum += ai[p] * bj[p]
				}
				if accumulate {
					ci[j] += sum
				} else {
					ci[j] = sum
				}
			}
		}
	})
}
