package nn

import (
	"irfusion/internal/obs"
	"irfusion/internal/parallel"
)

// cGemm counts dense GEMM kernel calls (nn.gemm_calls in manifests):
// the dominant cost driver of the ML stage, cheap to count with one
// atomic add against the O(m·k·n) flops each call performs.
var cGemm = obs.GlobalCounter("nn.gemm_calls")

// cForSerial accounts the serial fast paths of the GEMM/im2col kernels
// under the pool's own elementwise-serial counter, keeping
// pool-utilization numbers honest (same idiom as package sparse).
var cForSerial = obs.GlobalCounter("parallel.for.serial")

// gemmMinWork is the serial cutoff of the row-parallel kernels. The
// indices here are GEMM/im2col rows carrying substantial per-index
// work, so the cutoff is far below the pool's vector-element default.
const gemmMinWork = 64

// parallelFor splits [0, n) across the shared worker pool and runs
// fn(start, end) on each chunk concurrently; see gemmMinWork.
//
//irfusion:hotpath-allow thin wrapper over ForMin; closures allocate only on the parallel dispatch path
func parallelFor(n int, fn func(start, end int)) {
	parallel.Default().ForMin(n, gemmMinWork, fn)
}

// serialFor reports whether parallelFor would run serially; hot
// kernels branch on it to skip the closure a dispatch constructs.
//
//irfusion:hotpath
func serialFor(n int) bool {
	return parallel.Default().SerialForMin(n, gemmMinWork)
}

// gemm computes C = A·B (+C when accumulate) for row-major dense
// matrices: A is m×k, B is k×n, C is m×n. The (i,k,j) loop order keeps
// the inner loop streaming over B and C rows; rows of C are
// parallelized across cores.
//
//irfusion:hotpath
func gemm(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	if m <= 0 {
		return
	}
	if serialFor(m) {
		cForSerial.Inc()
		gemmRange(a, b, c, k, n, accumulate, 0, m)
		return
	}
	parallelFor(m, func(start, end int) {
		gemmRange(a, b, c, k, n, accumulate, start, end)
	})
}

// gemmRange is the serial C = A·B leaf over rows [start, end).
//
//irfusion:hotpath
func gemmRange(a, b, c []float64, k, n int, accumulate bool, start, end int) {
	for i := start; i < end; i++ {
		ci := c[i*n : (i+1)*n]
		if !accumulate {
			for j := range ci {
				ci[j] = 0
			}
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 { //irfusion:exact skipping exactly zero multiplicands changes no bits of the sum; near-zero values must still multiply
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// gemmTA computes C = Aᵀ·B (+C when accumulate): A is k×m (so Aᵀ is
// m×k), B is k×n, C is m×n.
//
//irfusion:hotpath
func gemmTA(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	if m <= 0 {
		return
	}
	if serialFor(m) {
		cForSerial.Inc()
		gemmTARange(a, b, c, m, k, n, accumulate, 0, m)
		return
	}
	parallelFor(m, func(start, end int) {
		gemmTARange(a, b, c, m, k, n, accumulate, start, end)
	})
}

// gemmTARange is the serial C = Aᵀ·B leaf over rows [start, end).
//
//irfusion:hotpath
func gemmTARange(a, b, c []float64, m, k, n int, accumulate bool, start, end int) {
	for i := start; i < end; i++ {
		ci := c[i*n : (i+1)*n]
		if !accumulate {
			for j := range ci {
				ci[j] = 0
			}
		}
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 { //irfusion:exact skipping exactly zero multiplicands changes no bits of the sum; near-zero values must still multiply
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// gemmTB computes C = A·Bᵀ (+C when accumulate): A is m×k, B is n×k,
// C is m×n.
//
//irfusion:hotpath
func gemmTB(a []float64, b []float64, c []float64, m, k, n int, accumulate bool) {
	cGemm.Inc()
	if m <= 0 {
		return
	}
	if serialFor(m) {
		cForSerial.Inc()
		gemmTBRange(a, b, c, k, n, accumulate, 0, m)
		return
	}
	parallelFor(m, func(start, end int) {
		gemmTBRange(a, b, c, k, n, accumulate, start, end)
	})
}

// gemmTBRange is the serial C = A·Bᵀ leaf over rows [start, end).
//
//irfusion:hotpath
func gemmTBRange(a, b, c []float64, k, n int, accumulate bool, start, end int) {
	for i := start; i < end; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			sum := 0.0
			for p := 0; p < k; p++ {
				sum += ai[p] * bj[p]
			}
			if accumulate {
				ci[j] += sum
			} else {
				ci[j] = sum
			}
		}
	}
}
