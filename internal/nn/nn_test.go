package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Size() != 6 || x.Dim(1) != 3 {
		t.Error("shape accessors wrong")
	}
	x.Fill(2)
	if x.Data[5] != 2 {
		t.Error("Fill failed")
	}
	r := x.Reshape(3, 2)
	r.Data[0] = 9
	if x.Data[0] != 9 {
		t.Error("Reshape must share storage")
	}
	c := x.Clone()
	c.Data[0] = 1
	if x.Data[0] != 9 {
		t.Error("Clone must copy")
	}
}

func TestTensorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad-dim":      func() { NewTensor(0, 2) },
		"bad-reshape":  func() { NewTensor(2, 2).Reshape(3) },
		"bad-from":     func() { FromSlice([]float64{1}, 2, 2) },
		"non-4d":       func() { NewTensor(2, 2).Dims4() },
		"add-mismatch": func() { Add(nil, NewTensor(2), NewTensor(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += a[i*k+p] * b[p*n+j]
				}
				want[i*n+j] = s
			}
		}
		c := make([]float64, m*n)
		gemm(a, b, c, m, k, n, false)
		for i := range c {
			if math.Abs(c[i]-want[i]) > 1e-10 {
				return false
			}
		}
		// Aᵀ path: build at = transpose(a), then gemmTA(at) == a·b.
		at := make([]float64, k*m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at[p*m+i] = a[i*k+p]
			}
		}
		c2 := make([]float64, m*n)
		gemmTA(at, b, c2, m, k, n, false)
		for i := range c2 {
			if math.Abs(c2[i]-want[i]) > 1e-10 {
				return false
			}
		}
		// Bᵀ path.
		bt := make([]float64, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b[p*n+j]
			}
		}
		c3 := make([]float64, m*n)
		gemmTB(a, bt, c3, m, k, n, false)
		for i := range c3 {
			if math.Abs(c3[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestGemmAccumulate(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := []float64{10}
	gemm(a, []float64{3, 4}, c, 1, 2, 1, true)
	_ = b
	if c[0] != 10+11 {
		t.Errorf("accumulate: got %v, want 21", c[0])
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1x1 input channel, 3x3 image, identity-ish kernel.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := FromSlice([]float64{
		0, 0, 0,
		0, 1, 0,
		0, 0, 0,
	}, 1, 1, 3, 3)
	y := Conv2D(nil, x, w, nil, 1, 1)
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity kernel changed data: %v", y.Data)
		}
	}
	// Sum kernel, valid padding.
	ws := FromSlice([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	y2 := Conv2D(nil, x, ws, nil, 1, 0)
	if y2.Size() != 1 || y2.Data[0] != 45 {
		t.Fatalf("sum kernel: got %v, want [45]", y2.Data)
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 1, 1,
		0, 9, 1, 1,
	}, 1, 1, 4, 4)
	y := MaxPool2x2(nil, x)
	want := []float64{4, 8, 9, 1}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool: got %v, want %v", y.Data, want)
		}
	}
}

func TestUpsampleKnownValues(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	y := Upsample2x(nil, x)
	want := []float64{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("upsample: got %v", y.Data)
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := NewTensor(4, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = 5 + 3*rng.NormFloat64()
	}
	bn := NewBatchNorm2d(2)
	y := bn.Forward(nil, x)
	// Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
	for c := 0; c < 2; c++ {
		sum, sum2, n := 0.0, 0.0, 0
		for ni := 0; ni < 4; ni++ {
			for j := 0; j < 64; j++ {
				v := y.Data[(ni*2+c)*64+j]
				sum += v
				sum2 += v * v
				n++
			}
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		// Variance lands at σ²/(σ²+ε), slightly below 1.
		if math.Abs(mean) > 1e-10 || math.Abs(variance-1) > 1e-4 {
			t.Errorf("channel %d: mean %v var %v", c, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bn := NewBatchNorm2d(1)
	x := NewTensor(2, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = 10 + rng.NormFloat64()
	}
	bn.Forward(nil, x) // sets running stats
	bn.SetTraining(false)
	// A wildly different input must be normalized by the OLD stats.
	z := NewTensor(1, 1, 4, 4)
	z.Fill(10)
	y := bn.Forward(nil, z)
	// Expected: (10 - runMean)/sqrt(runVar + eps).
	want := (10 - bn.RunMean[0]) / math.Sqrt(bn.RunVar[0]+bn.Eps)
	if math.Abs(y.Data[0]-want) > 1e-12 {
		t.Errorf("eval output %v, want %v", y.Data[0], want)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||x - target||² — Adam should get close quickly.
	target := []float64{1, -2, 3}
	x := NewParam(3)
	opt := NewAdam(0.1)
	tt := NewTensor(3)
	copy(tt.Data, target)
	for step := 0; step < 300; step++ {
		tp := NewTape()
		loss := MSELoss(tp, x, tt)
		ZeroGrads([]*Tensor{x})
		tp.Backward(loss)
		opt.Step([]*Tensor{x})
	}
	for i := range target {
		if math.Abs(x.Data[i]-target[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, x.Data[i], target[i])
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	target := []float64{0.5, -0.5}
	x := NewParam(2)
	tt := NewTensor(2)
	copy(tt.Data, target)
	opt := NewSGD(0.05, 0.9)
	for step := 0; step < 400; step++ {
		tp := NewTape()
		loss := MSELoss(tp, x, tt)
		ZeroGrads([]*Tensor{x})
		tp.Backward(loss)
		opt.Step([]*Tensor{x})
	}
	for i := range target {
		if math.Abs(x.Data[i]-target[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, x.Data[i], target[i])
		}
	}
}

func TestAdamGradClip(t *testing.T) {
	x := NewParam(2)
	x.Grad[0] = 300
	x.Grad[1] = 400 // norm 500
	opt := NewAdam(0.1)
	opt.GradClip = 5
	opt.Step([]*Tensor{x})
	norm := math.Sqrt(x.Grad[0]*x.Grad[0] + x.Grad[1]*x.Grad[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Errorf("clipped norm %v, want 5", norm)
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 5)
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Tensor{a, b}); err != nil {
		t.Fatal(err)
	}
	a2 := NewParam(3, 4)
	b2 := NewParam(5)
	if err := LoadParams(&buf, []*Tensor{a2, b2}); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a2.Data[i] != a.Data[i] {
			t.Fatal("param a not restored")
		}
	}
	for i := range b.Data {
		if b2.Data[i] != b.Data[i] {
			t.Fatal("param b not restored")
		}
	}
}

func TestLoadParamsMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, []*Tensor{NewParam(2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, []*Tensor{NewParam(3)}); err == nil {
		t.Error("expected size mismatch error")
	}
	var buf2 bytes.Buffer
	if err := SaveParams(&buf2, []*Tensor{NewParam(2)}); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf2, []*Tensor{NewParam(2), NewParam(2)}); err == nil {
		t.Error("expected count mismatch error")
	}
}

func TestNumParams(t *testing.T) {
	if n := NumParams([]*Tensor{NewParam(2, 3), NewParam(4)}); n != 10 {
		t.Errorf("NumParams = %d, want 10", n)
	}
}

func TestNilTapeSkipsRecording(t *testing.T) {
	x := NewParam(2, 2, 4, 4)
	y := ReLU(nil, x)
	if y.needsGrad {
		t.Error("nil tape must not mark outputs as differentiable")
	}
	var tp *Tape
	if tp.Len() != 0 {
		t.Error("nil tape Len should be 0")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	x := NewParam(2)
	y := Scale(tp, x, 2)
	tp.Backward(y)
}

func TestTrainingReducesLossOnTinyCNN(t *testing.T) {
	// End-to-end: a 2-layer CNN should fit a fixed random mapping.
	rng := rand.New(rand.NewSource(23))
	x := NewTensor(2, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := NewTensor(2, 1, 8, 8)
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64() * 0.1
	}
	c1 := NewConv2d(rng, 2, 6, 3, 1, 1)
	c2 := NewConv2d(rng, 6, 1, 3, 1, 1)
	params := append(c1.Params(), c2.Params()...)
	opt := NewAdam(0.01)
	var first, last float64
	for step := 0; step < 150; step++ {
		tp := NewTape()
		h := ReLU(tp, c1.Forward(tp, x))
		pred := c2.Forward(tp, h)
		loss := MSELoss(tp, pred, target)
		if step == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
		ZeroGrads(params)
		tp.Backward(loss)
		opt.Step(params)
	}
	if last > first*0.5 {
		t.Errorf("training barely reduced loss: %v -> %v", first, last)
	}
}

func TestConv2dRectLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	l := NewConv2dRect(rng, 2, 3, 1, 7, 1, 0, 3)
	if len(l.Params()) != 2 {
		t.Fatal("rect conv params wrong")
	}
	x := NewTensor(1, 2, 5, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := l.Forward(nil, x)
	if n, c, h, w := y.Dims4(); n != 1 || c != 3 || h != 5 || w != 9 {
		t.Fatalf("rect conv shape [%d %d %d %d]", n, c, h, w)
	}
}

func TestConv2dParamsAndStateAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := NewConv2d(rng, 2, 3, 3, 1, 1)
	if len(c.Params()) != 2 {
		t.Fatal("conv params wrong")
	}
	bn := NewBatchNorm2d(3)
	if len(bn.Params()) != 2 {
		t.Fatal("bn params wrong")
	}
	st := bn.StateVectors()
	if len(st) != 2 || len(st[0]) != 3 {
		t.Fatal("bn state wrong")
	}
}

func TestGradNorm(t *testing.T) {
	p := NewParam(2)
	p.Grad[0], p.Grad[1] = 3, 4
	if GradNorm([]*Tensor{p}) != 5 {
		t.Errorf("GradNorm = %v, want 5", GradNorm([]*Tensor{p}))
	}
}

func TestNeedsGrad(t *testing.T) {
	if !NewParam(1).NeedsGrad() || NewTensor(1).NeedsGrad() {
		t.Error("NeedsGrad flags wrong")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	// Large n exercises the multi-worker path; verify exact coverage.
	n := 10000
	hits := make([]int32, n)
	parallelFor(n, func(start, end int) {
		for i := start; i < end; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestLoadCheckpointStateMismatch(t *testing.T) {
	var buf bytes.Buffer
	p := NewParam(2)
	if err := SaveCheckpoint(&buf, []*Tensor{p}, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	q := NewParam(2)
	// Wrong state vector count.
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), []*Tensor{q}, [][]float64{{0, 0}, {0}}); err == nil {
		t.Error("expected state count mismatch")
	}
	// Wrong state vector size.
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), []*Tensor{q}, [][]float64{{0}}); err == nil {
		t.Error("expected state size mismatch")
	}
	// Correct restore.
	state := [][]float64{{0, 0}}
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), []*Tensor{q}, state); err != nil {
		t.Fatal(err)
	}
	if state[0][0] != 1 || state[0][1] != 2 {
		t.Error("state not restored")
	}
}
