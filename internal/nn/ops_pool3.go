package nn

// AvgPool3x3Same performs 3×3 average pooling with stride 1 and
// zero padding 1 (count-include-pad semantics), preserving the spatial
// size. Used by the pooling branch of Inception blocks.
func AvgPool3x3Same(tp *Tape, x *Tensor) *Tensor {
	n, c, h, w := x.Dims4()
	out := result(tp, x.Shape, x)
	const inv = 1.0 / 9.0
	for nc := 0; nc < n*c; nc++ {
		base := nc * h * w
		for y := 0; y < h; y++ {
			y0, y1 := y-1, y+1
			for xx := 0; xx < w; xx++ {
				sum := 0.0
				for sy := y0; sy <= y1; sy++ {
					if sy < 0 || sy >= h {
						continue
					}
					row := base + sy*w
					for sx := xx - 1; sx <= xx+1; sx++ {
						if sx >= 0 && sx < w {
							sum += x.Data[row+sx]
						}
					}
				}
				out.Data[base+y*w+xx] = sum * inv
			}
		}
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				base := nc * h * w
				for y := 0; y < h; y++ {
					for xx := 0; xx < w; xx++ {
						g := out.Grad[base+y*w+xx] * inv
						for sy := y - 1; sy <= y+1; sy++ {
							if sy < 0 || sy >= h {
								continue
							}
							row := base + sy*w
							for sx := xx - 1; sx <= xx+1; sx++ {
								if sx >= 0 && sx < w {
									x.Grad[row+sx] += g
								}
							}
						}
					}
				}
			}
		})
	}
	return out
}

// BroadcastHW expands x[N,C,1,1] to [N,C,H,W] by replication (the
// upsampling of a globally pooled pyramid level).
func BroadcastHW(tp *Tape, x *Tensor, h, w int) *Tensor {
	n, c, xh, xw := x.Dims4()
	if xh != 1 || xw != 1 {
		panic("nn: BroadcastHW input must be [N,C,1,1]")
	}
	out := result(tp, []int{n, c, h, w}, x)
	hw := h * w
	for nc := 0; nc < n*c; nc++ {
		v := x.Data[nc]
		base := nc * hw
		for j := 0; j < hw; j++ {
			out.Data[base+j] = v
		}
	}
	if out.needsGrad {
		tp.record(func() {
			x.ensureGrad()
			for nc := 0; nc < n*c; nc++ {
				base := nc * hw
				sum := 0.0
				for j := 0; j < hw; j++ {
					sum += out.Grad[base+j]
				}
				x.Grad[nc] += sum
			}
		})
	}
	return out
}
